//! E1: Datalog evaluation — naive vs semi-naive, TC and Q_{2,0} across
//! input sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kv_core::datalog::programs::{q_kl, transitive_closure};
use kv_core::datalog::{EvalOptions, Evaluator};
use kv_core::structures::generators::{directed_path, random_digraph};

fn bench_tc(c: &mut Criterion) {
    let program = transitive_closure();
    let mut group = c.benchmark_group("E1_transitive_closure");
    for n in [16usize, 32, 64] {
        let path = directed_path(n);
        group.bench_with_input(BenchmarkId::new("semi_naive/path", n), &path, |b, s| {
            b.iter(|| Evaluator::new(&program).run(s, EvalOptions::default()))
        });
        group.bench_with_input(BenchmarkId::new("naive/path", n), &path, |b, s| {
            b.iter(|| {
                Evaluator::new(&program).run(
                    s,
                    EvalOptions {
                        semi_naive: false,
                        ..EvalOptions::default()
                    },
                )
            })
        });
    }
    for n in [16usize, 24] {
        let g = random_digraph(n, 0.15, 7).to_structure();
        group.bench_with_input(BenchmarkId::new("semi_naive/random", n), &g, |b, s| {
            b.iter(|| Evaluator::new(&program).run(s, EvalOptions::default()))
        });
    }
    group.finish();
}

fn bench_q_kl(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12_q_kl_program");
    group.sample_size(10);
    for n in [8usize, 12] {
        let g = random_digraph(n, 0.25, 11).to_structure();
        let program = q_kl(2, 0);
        group.bench_with_input(BenchmarkId::new("Q_2_0", n), &g, |b, s| {
            b.iter(|| Evaluator::new(&program).goal(s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tc, bench_q_kl);
criterion_main!(benches);
