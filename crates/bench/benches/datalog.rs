//! E1: Datalog evaluation — naive vs semi-naive, TC and Q_{2,0} across
//! input sizes. Run with `cargo bench --features bench` (or
//! `cargo bench --features bench --bench datalog`).

use kv_bench::microbench::bench;
use kv_core::datalog::programs::{q_kl, transitive_closure};
use kv_core::datalog::{EvalOptions, Evaluator};
use kv_core::structures::generators::{directed_path, random_digraph};

fn bench_tc() {
    let program = transitive_closure();
    for n in [16usize, 32, 64] {
        let path = directed_path(n);
        bench(
            "E1_transitive_closure",
            &format!("semi_naive/path/{n}"),
            2,
            10,
            || Evaluator::new(&program).run(&path, EvalOptions::default()),
        );
        bench(
            "E1_transitive_closure",
            &format!("naive/path/{n}"),
            2,
            10,
            || {
                Evaluator::new(&program).run(
                    &path,
                    EvalOptions {
                        semi_naive: false,
                        ..EvalOptions::default()
                    },
                )
            },
        );
    }
    for n in [16usize, 24] {
        let g = random_digraph(n, 0.15, 7).to_structure();
        bench(
            "E1_transitive_closure",
            &format!("semi_naive/random/{n}"),
            2,
            10,
            || Evaluator::new(&program).run(&g, EvalOptions::default()),
        );
    }
}

fn bench_q_kl() {
    for n in [8usize, 12] {
        let g = random_digraph(n, 0.25, 11).to_structure();
        let program = q_kl(2, 0);
        bench("E12_q_kl_program", &format!("Q_2_0/{n}"), 1, 10, || {
            Evaluator::new(&program).goal(&g)
        });
    }
}

fn main() {
    bench_tc();
    bench_q_kl();
}
