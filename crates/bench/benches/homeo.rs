//! E12/E13: the case-study solvers — flow vs program vs brute force, and
//! the acyclic-input game machinery. Run with
//! `cargo bench --features bench --bench homeo`.

use kv_bench::microbench::bench;
use kv_core::homeo::flow_solver::solve_class_c_auto;
use kv_core::homeo::{brute_force_homeomorphism, PatternSpec};
use kv_core::pebble::acyclic::AcyclicGame;
use kv_core::structures::generators::{random_dag, random_digraph};

fn bench_flow_vs_brute() {
    let star = PatternSpec {
        node_count: 3,
        edges: vec![(0, 1), (0, 2)],
    };
    for n in [10usize, 20, 40] {
        let g = random_digraph(n, 0.2, 17);
        bench("E12_fan_solvers", &format!("flow/{n}"), 2, 20, || {
            solve_class_c_auto(&star, &g, &[0, 1, 2])
        });
        if n <= 20 {
            bench("E12_fan_solvers", &format!("brute/{n}"), 1, 10, || {
                brute_force_homeomorphism(&star, &g, &[0, 1, 2])
            });
        }
    }
}

fn bench_acyclic_game() {
    let pattern = PatternSpec::two_disjoint_edges();
    for n in [8usize, 12, 16] {
        let g = random_dag(n, 0.3, 23);
        let d = [0u32, (n - 2) as u32, 1, (n - 1) as u32];
        bench(
            "E13_acyclic_game",
            &format!("two_player/{n}"),
            1,
            20,
            || AcyclicGame::solve(pattern.clone(), &g, &d).duplicator_wins(),
        );
    }
}

fn main() {
    bench_flow_vs_brute();
    bench_acyclic_game();
}
