//! E12/E13: the case-study solvers — flow vs program vs brute force, and
//! the acyclic-input game machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kv_core::homeo::flow_solver::solve_class_c_auto;
use kv_core::homeo::{brute_force_homeomorphism, PatternSpec};
use kv_core::pebble::acyclic::AcyclicGame;
use kv_core::structures::generators::{random_dag, random_digraph};

fn bench_flow_vs_brute(c: &mut Criterion) {
    let star = PatternSpec {
        node_count: 3,
        edges: vec![(0, 1), (0, 2)],
    };
    let mut group = c.benchmark_group("E12_fan_solvers");
    for n in [10usize, 20, 40] {
        let g = random_digraph(n, 0.2, 17);
        group.bench_with_input(BenchmarkId::new("flow", n), &g, |b, g| {
            b.iter(|| solve_class_c_auto(&star, g, &[0, 1, 2]))
        });
        if n <= 20 {
            group.bench_with_input(BenchmarkId::new("brute", n), &g, |b, g| {
                b.iter(|| brute_force_homeomorphism(&star, g, &[0, 1, 2]))
            });
        }
    }
    group.finish();
}

fn bench_acyclic_game(c: &mut Criterion) {
    let pattern = PatternSpec::two_disjoint_edges();
    let mut group = c.benchmark_group("E13_acyclic_game");
    group.sample_size(20);
    for n in [8usize, 12, 16] {
        let g = random_dag(n, 0.3, 23);
        let d = [0u32, (n - 2) as u32, 1, (n - 1) as u32];
        group.bench_with_input(BenchmarkId::new("two_player", n), &g, |b, g| {
            b.iter(|| AcyclicGame::solve(pattern.clone(), g, &d).duplicator_wins())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow_vs_brute, bench_acyclic_game);
criterion_main!(benches);
