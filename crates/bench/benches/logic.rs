//! E3/E4/E5: formula evaluation and the Theorem 3.6 stage translation.
//! Run with `cargo bench --features bench --bench logic`.

use kv_bench::microbench::bench;
use kv_core::datalog::programs::{avoiding_path, transitive_closure};
use kv_core::logic::builders::path_formula;
use kv_core::logic::eval::Evaluator as LogicEvaluator;
use kv_core::logic::stage::StageTranslation;
use kv_core::structures::generators::random_digraph;
use kv_core::structures::RelId;

fn bench_path_formula_eval() {
    let s = random_digraph(10, 0.3, 3).to_structure();
    for n in [4usize, 8, 16] {
        let f = path_formula(RelId(0), n);
        bench(
            "E4_path_formula_eval",
            &format!("p_n_all_pairs/{n}"),
            2,
            20,
            || {
                let mut ev = LogicEvaluator::new(&s);
                let mut hits = 0;
                for a in 0..10u32 {
                    for t in 0..10u32 {
                        let mut asg = vec![Some(a), Some(t), None];
                        if ev.eval(&f, &mut asg) {
                            hits += 1;
                        }
                    }
                }
                hits
            },
        );
    }
}

fn bench_stage_translation() {
    for (name, program) in [("tc", transitive_closure()), ("avoid", avoiding_path())] {
        bench(
            "E5_stage_translation",
            &format!("build_10_stages/{name}"),
            2,
            20,
            || {
                let mut t = StageTranslation::new(&program);
                t.stage(10, program.goal()).dag_size()
            },
        );
    }
}

fn main() {
    bench_path_formula_eval();
    bench_stage_translation();
}
