//! E6/E7/E8/E14: existential k-pebble game solving (Proposition 5.3
//! scaling) and CNF formula games (Definition 6.5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kv_core::pebble::cnf::CnfFormula;
use kv_core::pebble::{solve_by_win_iteration, CnfGame, ExistentialGame};
use kv_core::structures::generators::{
    directed_path, two_crossing_paths, two_disjoint_paths,
};
use kv_core::structures::HomKind;

fn bench_path_games(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_solver_scaling_paths");
    group.sample_size(10);
    for n in [8usize, 16, 24] {
        let a = directed_path(n);
        let b = directed_path(n + 2);
        group.bench_with_input(BenchmarkId::new("k2", n), &(a, b), |bench, (a, b)| {
            bench.iter(|| ExistentialGame::solve(a, b, 2, HomKind::OneToOne).winner())
        });
    }
    for n in [6usize, 9] {
        let a = directed_path(n);
        let b = directed_path(n + 2);
        group.bench_with_input(BenchmarkId::new("k3", n), &(a, b), |bench, (a, b)| {
            bench.iter(|| ExistentialGame::solve(a, b, 3, HomKind::OneToOne).winner())
        });
    }
    group.finish();
}

fn bench_example_4_5(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_disjoint_vs_crossing");
    group.sample_size(10);
    for n in [1usize, 2] {
        let a = two_disjoint_paths(n);
        let b = two_crossing_paths(n);
        group.bench_with_input(BenchmarkId::new("k3", n), &(a, b), |bench, (a, b)| {
            bench.iter(|| ExistentialGame::solve(a, b, 3, HomKind::OneToOne).winner())
        });
    }
    group.finish();
}

/// Ablation: the deletion-fixpoint solver vs the paper's literal value
/// iteration (both decide Proposition 5.3's question).
fn bench_solver_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_ablation_fixpoint_vs_win_iteration");
    group.sample_size(10);
    for n in [8usize, 14] {
        let a = directed_path(n);
        let b = directed_path(n + 2);
        group.bench_with_input(BenchmarkId::new("fixpoint", n), &(a.clone(), b.clone()), |bench, (a, b)| {
            bench.iter(|| ExistentialGame::solve(a, b, 2, HomKind::OneToOne).winner())
        });
        group.bench_with_input(BenchmarkId::new("win_iteration", n), &(a, b), |bench, (a, b)| {
            bench.iter(|| solve_by_win_iteration(a, b, 2, HomKind::OneToOne).0)
        });
    }
    group.finish();
}

fn bench_cnf_games(c: &mut Criterion) {
    let mut group = c.benchmark_group("E14_cnf_games");
    group.sample_size(10);
    for k in [1usize, 2, 3] {
        let phi = CnfFormula::complete(k);
        group.bench_with_input(BenchmarkId::new("phi_k_own_game", k), &phi, |b, f| {
            b.iter(|| CnfGame::solve(f, k).winner())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_path_games,
    bench_example_4_5,
    bench_solver_ablation,
    bench_cnf_games
);
criterion_main!(benches);
