//! E6/E7/E8/E14: existential k-pebble game solving (Proposition 5.3
//! scaling) and CNF formula games (Definition 6.5). Run with
//! `cargo bench --features bench --bench pebble`.

use kv_bench::microbench::bench;
use kv_core::pebble::cnf::CnfFormula;
use kv_core::pebble::{solve_by_win_iteration, CnfGame, ExistentialGame};
use kv_core::structures::generators::{directed_path, two_crossing_paths, two_disjoint_paths};
use kv_core::structures::HomKind;

fn bench_path_games() {
    for n in [8usize, 16, 24] {
        let a = directed_path(n);
        let b = directed_path(n + 2);
        bench("E8_solver_scaling_paths", &format!("k2/{n}"), 1, 10, || {
            ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne).winner()
        });
    }
    for n in [6usize, 9] {
        let a = directed_path(n);
        let b = directed_path(n + 2);
        bench("E8_solver_scaling_paths", &format!("k3/{n}"), 1, 10, || {
            ExistentialGame::solve(&a, &b, 3, HomKind::OneToOne).winner()
        });
    }
}

fn bench_example_4_5() {
    for n in [1usize, 2] {
        let a = two_disjoint_paths(n);
        let b = two_crossing_paths(n);
        bench("E7_disjoint_vs_crossing", &format!("k3/{n}"), 1, 10, || {
            ExistentialGame::solve(&a, &b, 3, HomKind::OneToOne).winner()
        });
    }
}

/// Ablation: the deletion-fixpoint solver vs the paper's literal value
/// iteration (both decide Proposition 5.3's question).
fn bench_solver_ablation() {
    for n in [8usize, 14] {
        let a = directed_path(n);
        let b = directed_path(n + 2);
        bench("E8_ablation", &format!("fixpoint/{n}"), 1, 10, || {
            ExistentialGame::solve(&a, &b, 2, HomKind::OneToOne).winner()
        });
        bench("E8_ablation", &format!("win_iteration/{n}"), 1, 10, || {
            solve_by_win_iteration(&a, &b, 2, HomKind::OneToOne).0
        });
    }
}

fn bench_cnf_games() {
    for k in [1usize, 2, 3] {
        let phi = CnfFormula::complete(k);
        bench(
            "E14_cnf_games",
            &format!("phi_k_own_game/{k}"),
            1,
            10,
            || CnfGame::solve(&phi, k).winner(),
        );
    }
}

fn main() {
    bench_path_games();
    bench_example_4_5();
    bench_solver_ablation();
    bench_cnf_games();
}
