//! E10/E11/E15/E16: the gadget machinery — switch verification, G_φ
//! construction, the simulation strategy's response latency, and the
//! even-path reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kv_core::pebble::cnf::CnfFormula;
use kv_core::pebble::play::{play_game, RandomSpoiler};
use kv_core::reduction::even_reduction::even_path_instance;
use kv_core::reduction::thm66::Thm66Witness;
use kv_core::reduction::{GPhi, Switch};
use kv_core::structures::generators::random_digraph;
use kv_core::structures::HomKind;

fn bench_switch_lemma(c: &mut Criterion) {
    c.bench_function("E10_lemma_6_4_exhaustive", |b| {
        b.iter(|| Switch::verify_lemma_6_4().is_ok())
    });
}

fn bench_gphi_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_gphi_build");
    for k in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("phi_k", k), &k, |b, &k| {
            b.iter(|| GPhi::build(CnfFormula::complete(k)).graph.node_count())
        });
    }
    group.finish();
}

fn bench_simulation_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("E15_simulation_strategy");
    group.sample_size(10);
    for k in [1usize, 2, 3] {
        let w = Thm66Witness::new(k);
        group.bench_with_input(BenchmarkId::new("300_rounds", k), &w, |b, w| {
            b.iter(|| {
                let mut sp = RandomSpoiler::new(w.a.universe_size(), 5);
                let mut dup = w.duplicator();
                play_game(&w.a, &w.b, k, HomKind::OneToOne, &mut sp, &mut dup, 300)
            })
        });
    }
    group.finish();
}

fn bench_even_path_instance(c: &mut Criterion) {
    let mut group = c.benchmark_group("E16_even_path_reduction");
    for n in [10usize, 40, 160] {
        let g = random_digraph(n, 0.1, 31);
        group.bench_with_input(BenchmarkId::new("build", n), &g, |b, g| {
            b.iter(|| even_path_instance(g, [0, 1, 2, 3]).graph.node_count())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_switch_lemma,
    bench_gphi_build,
    bench_simulation_strategy,
    bench_even_path_instance
);
criterion_main!(benches);
