//! E10/E11/E15/E16: the gadget machinery — switch verification, G_φ
//! construction, the simulation strategy's response latency, and the
//! even-path reduction. Run with `cargo bench --features bench --bench reduction`.

use kv_bench::microbench::bench;
use kv_core::pebble::cnf::CnfFormula;
use kv_core::pebble::play::{play_game, RandomSpoiler};
use kv_core::reduction::even_reduction::even_path_instance;
use kv_core::reduction::thm66::Thm66Witness;
use kv_core::reduction::{GPhi, Switch};
use kv_core::structures::generators::random_digraph;
use kv_core::structures::HomKind;

fn bench_switch_lemma() {
    bench("E10_lemma_6_4", "exhaustive", 1, 10, || {
        Switch::verify_lemma_6_4().is_ok()
    });
}

fn bench_gphi_build() {
    for k in [1usize, 2, 3, 4] {
        bench("E11_gphi_build", &format!("phi_k/{k}"), 1, 10, || {
            GPhi::build(CnfFormula::complete(k)).graph.node_count()
        });
    }
}

fn bench_simulation_strategy() {
    for k in [1usize, 2, 3] {
        let w = Thm66Witness::new(k);
        bench(
            "E15_simulation_strategy",
            &format!("300_rounds/{k}"),
            1,
            10,
            || {
                let mut sp = RandomSpoiler::new(w.a.universe_size(), 5);
                let mut dup = w.duplicator();
                play_game(&w.a, &w.b, k, HomKind::OneToOne, &mut sp, &mut dup, 300)
            },
        );
    }
}

fn bench_even_path_instance() {
    for n in [10usize, 40, 160] {
        let g = random_digraph(n, 0.1, 31);
        bench(
            "E16_even_path_reduction",
            &format!("build/{n}"),
            1,
            10,
            || even_path_instance(&g, [0, 1, 2, 3]).graph.node_count(),
        );
    }
}

fn main() {
    bench_switch_lemma();
    bench_gphi_build();
    bench_simulation_strategy();
    bench_even_path_instance();
}
