//! Prints every experiment table (markdown) — the source of
//! EXPERIMENTS.md's measured columns — and writes the machine-readable
//! solver/engine reports `BENCH_pebble.json` and `BENCH_datalog.json` to
//! the current directory.

fn main() {
    let start = std::time::Instant::now();
    println!("# Experiment harness — Kolaitis & Vardi (PODS 1990) reproduction\n");
    assert!(
        kv_bench::experiments::smoke_validate_play(),
        "play smoke test"
    );
    for table in kv_bench::all_experiments() {
        print!("{}", table.to_markdown());
    }
    for (path, report) in [
        ("BENCH_pebble.json", kv_bench::report::pebble_report()),
        ("BENCH_datalog.json", kv_bench::report::datalog_report()),
    ] {
        match std::fs::write(path, &report) {
            Ok(()) => println!("\n_wrote {path}_"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    println!("\n_total harness time: {:.2?}_", start.elapsed());
}
