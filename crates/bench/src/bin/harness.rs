//! Prints every experiment table (markdown) — the source of
//! EXPERIMENTS.md's measured columns.

fn main() {
    let start = std::time::Instant::now();
    println!("# Experiment harness — Kolaitis & Vardi (PODS 1990) reproduction\n");
    assert!(kv_bench::experiments::smoke_validate_play(), "play smoke test");
    for table in kv_bench::all_experiments() {
        print!("{}", table.to_markdown());
    }
    println!("\n_total harness time: {:.2?}_", start.elapsed());
}
