//! Prints every experiment table (markdown) — the source of
//! EXPERIMENTS.md's measured columns — and writes the machine-readable
//! solver/engine reports `BENCH_pebble.json` and `BENCH_datalog.json` to
//! the current directory.
//!
//! `harness --smoke` skips the tables and instead runs the demand-path
//! and planner cross-checks ([`kv_bench::report::smoke_check`]): magic-set
//! answers must match full saturation without extra derivations, the
//! cost-based planner must be stage-identical to textual evaluation with
//! no extra probes, the sharded evaluator (W ∈ {1, 4} hash-partitioned
//! shards with delta exchange) must be stage-identical to the unsharded
//! run, the incremental engine must hold exactly the
//! from-scratch fixpoint after every churn batch, a durable engine
//! re-opened from disk after the same batches must match the volatile
//! engine tuple-for-tuple (the recovered ≡ clean gate), and the lazy
//! pebble solver must agree with the eager
//! one. It also re-measures the engine counters against the committed
//! `BENCH_datalog.json` ([`kv_bench::report::regression_check`]) and
//! fails on >10% regressions of `join_probes` /
//! `duplicate_derivations` in either planner mode. Exits nonzero on any
//! violation (the CI bench-smoke gate).
//!
//! `harness --service` runs the full multi-tenant service load
//! generator (open-loop clients over snapshot-isolated reads with a
//! concurrent churn writer) and writes `BENCH_service.json`;
//! `harness --service-smoke` runs the small fixed-seed configuration and
//! additionally enforces the machine-independent gates — popular-tenant
//! cache hit rate above 50% and deterministic rejection of the
//! over-budget tenant — exiting nonzero on violation (the CI
//! bench-service gate).

fn main() {
    let start = std::time::Instant::now();
    if std::env::args().any(|a| a == "--service") {
        // Full-size multi-tenant service load run: the committed
        // BENCH_service.json (open-loop clients, concurrent writer).
        let report = kv_bench::service::service_report();
        match std::fs::write("BENCH_service.json", &report) {
            Ok(()) => println!("wrote BENCH_service.json"),
            Err(e) => eprintln!("failed to write BENCH_service.json: {e}"),
        }
        println!("total harness time: {:.2?}", start.elapsed());
        return;
    }
    if std::env::args().any(|a| a == "--service-smoke") {
        // CI gate: small fixed-seed run; machine-independent invariants
        // (repeat-query hit rate floor, deterministic starved-tenant
        // rejection) must hold or the job fails.
        let (report, violations) = kv_bench::service::service_smoke();
        match std::fs::write("BENCH_service.json", &report) {
            Ok(()) => println!("wrote BENCH_service.json (smoke config)"),
            Err(e) => eprintln!("failed to write BENCH_service.json: {e}"),
        }
        if violations.is_empty() {
            println!("service smoke: cache and admission gates hold ✓");
            println!("total harness time: {:.2?}", start.elapsed());
            return;
        }
        for v in &violations {
            eprintln!("service smoke violation: {v}");
        }
        std::process::exit(1);
    }
    if std::env::args().any(|a| a == "--smoke") {
        let mut violations = kv_bench::report::smoke_check();
        // Gate against the committed report *before* overwriting it.
        match std::fs::read_to_string("BENCH_datalog.json") {
            Ok(committed) => violations.extend(kv_bench::report::regression_check(&committed)),
            Err(e) => println!("no committed BENCH_datalog.json ({e}); skipping regression gate"),
        }
        for (path, report) in [
            ("BENCH_pebble.json", kv_bench::report::pebble_report()),
            ("BENCH_datalog.json", kv_bench::report::datalog_report()),
        ] {
            match std::fs::write(path, &report) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
        if violations.is_empty() {
            println!("bench smoke: demand and planned paths agree with baselines ✓");
            println!("total harness time: {:.2?}", start.elapsed());
            return;
        }
        for v in &violations {
            eprintln!("bench smoke violation: {v}");
        }
        std::process::exit(1);
    }
    println!("# Experiment harness — Kolaitis & Vardi (PODS 1990) reproduction\n");
    assert!(
        kv_bench::experiments::smoke_validate_play(),
        "play smoke test"
    );
    for table in kv_bench::all_experiments() {
        print!("{}", table.to_markdown());
    }
    for (path, report) in [
        ("BENCH_pebble.json", kv_bench::report::pebble_report()),
        ("BENCH_datalog.json", kv_bench::report::datalog_report()),
    ] {
        match std::fs::write(path, &report) {
            Ok(()) => println!("\n_wrote {path}_"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    println!("\n_total harness time: {:.2?}_", start.elapsed());
}
