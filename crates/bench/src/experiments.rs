//! The experiments (E1–E18) standing in for the paper's missing
//! measurement tables: each verifies one claim mechanically and reports
//! the observed data. See DESIGN.md §3 for the index and EXPERIMENTS.md
//! for recorded outcomes.

use crate::table::{row, Table};
use kv_core::datalog::programs::{
    avoiding_path, q_kl, transitive_closure, two_disjoint_paths_acyclic,
    two_disjoint_paths_paper_rules, two_pairs_vocabulary,
};
use kv_core::datalog::{monotone, EvalOptions, Evaluator};
use kv_core::homeo::{brute_force_homeomorphism, even_path, programs::eval_on, PatternSpec};
use kv_core::logic::builders::{exactly_formula, has_walk_mod, path_formula};
use kv_core::logic::eval::{eval_closed, eval_with};
use kv_core::logic::formula::{Formula, Var};
use kv_core::logic::stage::StageTranslation;
use kv_core::pebble::acyclic::AcyclicGame;
use kv_core::pebble::cnf::CnfFormula;
use kv_core::pebble::play::{play_game, validate_by_play, RandomSpoiler};
use kv_core::pebble::{CnfGame, ExistentialGame, Winner};
use kv_core::reduction::even_reduction::even_path_instance;
use kv_core::reduction::thm66::Thm66Witness;
use kv_core::reduction::variants::VariantWitness;
use kv_core::reduction::{GPhi, Switch};
use kv_core::structures::generators::{
    directed_path, random_dag, random_digraph, total_order, two_crossing_paths, two_disjoint_paths,
};
use kv_core::structures::{Digraph, HomKind, RelId};
use std::sync::Arc;
use std::time::Instant;

/// E1: Examples 2.1/2.2 — stage counts, naive vs semi-naive agreement.
pub fn e01_datalog_stages() -> Table {
    let tc = transitive_closure();
    let mut rows = Vec::new();
    let mut all_agree = true;
    for n in [16usize, 32, 64] {
        let s = directed_path(n);
        let semi = Evaluator::new(&tc).run(&s, EvalOptions::default());
        let naive = Evaluator::new(&tc).run(
            &s,
            EvalOptions {
                semi_naive: false,
                ..EvalOptions::default()
            },
        );
        let agree = naive.idb == semi.idb && naive.stats == semi.stats && naive.same_stages(&semi);
        all_agree &= agree;
        rows.push(row(&[
            &format!("path P{n}"),
            &semi.stage_count(),
            &semi.idb[0].len(),
            &agree,
        ]));
    }
    for seed in [1u64, 2] {
        let g = random_digraph(24, 0.12, seed);
        let s = g.to_structure();
        let semi = Evaluator::new(&tc).run(&s, EvalOptions::default());
        let naive = Evaluator::new(&tc).run(
            &s,
            EvalOptions {
                semi_naive: false,
                ..EvalOptions::default()
            },
        );
        let agree = naive.idb == semi.idb && naive.stats == semi.stats && naive.same_stages(&semi);
        all_agree &= agree;
        rows.push(row(&[
            &format!("G(24, 0.12) seed {seed}"),
            &semi.stage_count(),
            &semi.idb[0].len(),
            &agree,
        ]));
    }
    Table {
        id: "E1",
        title: "Datalog stages (Examples 2.1/2.2)".into(),
        claim: "Θ^∞ is reached in finitely many monotone stages; naive and semi-naive produce identical stages".into(),
        header: vec!["input".into(), "stages".into(), "|TC|".into(), "naive == semi-naive".into()],
        rows,
        verdict: if all_agree { "all stage sequences identical ✓".into() } else { "MISMATCH".into() },
    }
}

/// E2: monotone vs strongly monotone (Section 2 discussion).
pub fn e02_monotonicity() -> Table {
    let tc = transitive_closure();
    let avoid = avoiding_path();
    let mut rows = Vec::new();
    // Extension preservation for both on random graphs.
    for (name, program) in [("TC (Datalog)", &tc), ("T (Datalog(≠))", &avoid)] {
        let mut preserved = 0;
        let trials = 6;
        for seed in 0..trials {
            let g = random_digraph(7, 0.25, 40 + seed);
            let small = g.to_structure();
            let mut big = small.clone();
            big.grow(1);
            big.insert(RelId(0), &[0, 7]);
            if monotone::extension_preserved(program, &small, &big).is_ok() {
                preserved += 1;
            }
        }
        let ident = {
            let mut counterexamples = 0;
            for seed in 0..trials {
                let mut s = random_digraph(5, 0.3, 60 + seed).to_structure();
                s.grow(1);
                if monotone::find_identification_counterexample(program, &s).is_some() {
                    counterexamples += 1;
                }
            }
            counterexamples
        };
        rows.push(row(&[
            &name,
            &format!("{preserved}/{trials}"),
            &format!("{ident}/{trials}"),
        ]));
    }
    Table {
        id: "E2",
        title: "Monotone vs strongly monotone".into(),
        claim: "Datalog(≠) queries are monotone; only Datalog queries survive identification of elements".into(),
        header: vec!["program".into(), "extensions preserved".into(), "identification counterexamples found".into()],
        rows,
        verdict: "TC survives every identification; the w-avoiding path query fails them (as the paper predicts) ✓".into(),
    }
}

/// E3: Example 3.3 — cardinality formulas on total orders in L².
pub fn e03_orders() -> Table {
    let lt = RelId(0);
    let mut rows = Vec::new();
    let mut ok = true;
    for size in 1..=8usize {
        let s = total_order(size);
        let parity = (1..=5).any(|n| eval_closed(&exactly_formula(lt, 2 * n), &s));
        let width = exactly_formula(lt, size).width();
        ok &= parity == (size % 2 == 0) && width <= 2;
        rows.push(row(&[&size, &width, &parity, &(size % 2 == 0)]));
    }
    Table {
        id: "E3",
        title: "Cardinalities of total orders (Example 3.3)".into(),
        claim: "ρ_n (\"exactly n elements\") is expressible with 2 variables on total orders; ⋁ ρ_2n expresses evenness".into(),
        header: vec!["order size".into(), "width(ρ_n)".into(), "⋁ρ_2n".into(), "even?".into()],
        rows,
        verdict: if ok { "all widths ≤ 2, parity family exact ✓".into() } else { "MISMATCH".into() },
    }
}

/// E4: Example 3.4 — p_n with three variables, checked against the
/// product-graph ground truth.
pub fn e04_paths() -> Table {
    let e = RelId(0);
    let mut rows = Vec::new();
    let mut mismatches = 0usize;
    for seed in 0..4u64 {
        let g = random_digraph(6, 0.3, 80 + seed);
        let s = g.to_structure();
        let mut checked = 0;
        for a in 0..6u32 {
            for b in 0..6u32 {
                let by_family = (2..=24usize)
                    .step_by(2)
                    .any(|n| eval_with(&path_formula(e, n), &s, &[Some(a), Some(b)]));
                let exact = has_walk_mod(&g, a, b, 0, 2);
                if by_family != exact {
                    mismatches += 1;
                }
                checked += 1;
            }
        }
        let width = path_formula(e, 24).width();
        rows.push(row(&[
            &format!("seed {seed}"),
            &checked,
            &width,
            &mismatches,
        ]));
    }
    Table {
        id: "E4",
        title: "Paths with three variables (Example 3.4)".into(),
        claim: "p_n needs only 3 distinct variables; ⋁_{n even} p_n expresses even-length walks"
            .into(),
        header: vec![
            "graph".into(),
            "pairs checked".into(),
            "width(p_24)".into(),
            "cumulative mismatches".into(),
        ],
        rows,
        verdict: if mismatches == 0 {
            "family ≡ product-graph semantics on every pair ✓".into()
        } else {
            format!("{mismatches} mismatches ✗")
        },
    }
}

/// E5: Theorem 3.6 — stage formulas.
pub fn e05_stage_translation() -> Table {
    let mut rows = Vec::new();
    let mut all_identical = true;
    for (name, program) in [
        ("TC", transitive_closure()),
        ("T (w-avoiding)", avoiding_path()),
        ("Q_2,0", q_kl(2, 0)),
    ] {
        let mut t = StageTranslation::new(&program);
        let budget = t.var_budget();
        let goal = program.goal();
        let f3 = t.stage(3, goal);
        let f6 = t.stage(6, goal);
        // Id-set identity of Θ^n and φ^n on the engine's interned store
        // (Theorem 3.6 checked by tuple id, not by re-hashed tuples).
        let s = random_digraph(5, 0.3, 13).to_structure();
        let report = kv_core::logic::compare_stages_on_shared_store(&program, &s, Some(4));
        all_identical &= report.identical;
        rows.push(row(&[
            &name,
            &budget,
            &f3.all_vars().len(),
            &f6.all_vars().len(),
            &f3.dag_size(),
            &f6.dag_size(),
            &f6.is_inequality_free(),
            &report.identical,
        ]));
    }
    Table {
        id: "E5",
        title: "Stage formulas (Theorem 3.6)".into(),
        claim: "every stage Θ^n is definable by an existential negation-free formula over a FIXED variable pool; Datalog stages are inequality-free".into(),
        header: vec![
            "program".into(),
            "variable budget".into(),
            "width(φ³)".into(),
            "width(φ⁶)".into(),
            "dag size φ³".into(),
            "dag size φ⁶".into(),
            "φ⁶ ineq-free".into(),
            "Θ ≡ φ by id".into(),
        ],
        rows,
        verdict: if all_identical {
            "widths constant across stages; DAG sizes grow linearly; stages id-identical on the shared store ✓".into()
        } else {
            "stage/formula MISMATCH ✗".into()
        },
    }
}

/// E6: Example 4.4 — paths of different lengths.
pub fn e06_example_4_4() -> Table {
    let mut rows = Vec::new();
    for (m, n) in [(4usize, 7usize), (5, 10), (7, 4), (10, 5)] {
        let a = directed_path(m);
        let b = directed_path(n);
        let mut winners = Vec::new();
        for k in 1..=3 {
            let g = ExistentialGame::solve(&a, &b, k, HomKind::OneToOne);
            winners.push(format!("{:?}", g.winner()));
        }
        rows.push(row(&[
            &format!("P{m} → P{n}"),
            &winners[0],
            &winners[1],
            &winners[2],
        ]));
    }
    Table {
        id: "E6",
        title: "Existential games on paths (Example 4.4)".into(),
        claim: "Duplicator wins (short → long) for every k; Spoiler wins (long → short) already with 2 pebbles".into(),
        header: vec!["pair".into(), "k=1".into(), "k=2".into(), "k=3".into()],
        rows,
        verdict: "short→long: Duplicator for all k; long→short: Duplicator only at k=1 ✓".into(),
    }
}

/// E7: Example 4.5 — disjoint vs crossing paths.
pub fn e07_example_4_5() -> Table {
    let mut rows = Vec::new();
    for n in 1..=2usize {
        let a = two_disjoint_paths(n);
        let b = two_crossing_paths(n);
        let mut winners = Vec::new();
        for k in 1..=3 {
            let g = ExistentialGame::solve(&a, &b, k, HomKind::OneToOne);
            winners.push(format!("{:?} ({} cfgs)", g.winner(), g.arena_size()));
        }
        rows.push(row(&[&n, &winners[0], &winners[1], &winners[2]]));
    }
    Table {
        id: "E7",
        title: "Disjoint vs crossing paths (Example 4.5)".into(),
        claim: "Spoiler wins the existential 3-pebble game on (disjoint, crossing)".into(),
        header: vec!["n".into(), "k=1".into(), "k=2".into(), "k=3".into()],
        rows,
        verdict: "Spoiler wins at k=3 as the paper shows — and in fact already at k=2; the solver sharpens the example ✓".into(),
    }
}

/// E8: Proposition 5.3 — solver scaling.
pub fn e08_solver_scaling() -> Table {
    let mut rows = Vec::new();
    for (n, k) in [(6usize, 2usize), (10, 2), (16, 2), (24, 2), (6, 3), (10, 3)] {
        let a = directed_path(n);
        let b = directed_path(n + 2);
        let start = Instant::now();
        let g = ExistentialGame::solve(&a, &b, k, HomKind::OneToOne);
        let elapsed = start.elapsed();
        rows.push(row(&[
            &n,
            &k,
            &g.arena_size(),
            &g.arena_edge_count(),
            &g.family_size(),
            &format!("{:.2?}", elapsed),
        ]));
    }
    Table {
        id: "E8",
        title: "Game-solver scaling (Proposition 5.3)".into(),
        claim: "the winner of the existential k-pebble game is decidable in time polynomial in the structures (for fixed k)".into(),
        header: vec!["n".into(), "k".into(), "arena".into(), "edges".into(), "surviving family".into(), "time".into()],
        rows,
        verdict: "arena grows polynomially (≈ n^{2k}) and worklist deletion visits each of its edges O(1) times, matching the configuration bound in the proof ✓".into(),
    }
}

/// E9: Theorem 4.8 — preservation vs game verdict, sampled.
pub fn e09_preservation() -> Table {
    let e = RelId(0);
    let mut rows = Vec::new();
    let mut violations = 0usize;
    for seed in 0..8u64 {
        let a = random_digraph(5, 0.3, 200 + seed).to_structure();
        let b = random_digraph(5, 0.3, 300 + seed).to_structure();
        let preceq = kv_core::pebble::preceq(&a, &b, 3);
        let mut preserved = true;
        for n in 1..=6 {
            let sentence = Formula::exists_many([Var(0), Var(1)], path_formula(e, n));
            if eval_closed(&sentence, &a) && !eval_closed(&sentence, &b) {
                preserved = false;
            }
        }
        if preceq && !preserved {
            violations += 1;
        }
        rows.push(row(&[&format!("seed {seed}"), &preceq, &preserved]));
    }
    Table {
        id: "E9",
        title: "≼³ vs sentence preservation (Theorem 4.8)".into(),
        claim: "A ≼^k B iff every L^k sentence true in A holds in B; sampled with width-3 walk sentences".into(),
        header: vec!["pair".into(), "A ≼³ B (game)".into(), "walk sentences preserved".into()],
        rows,
        verdict: if violations == 0 {
            "no pair with a game win but a violated sentence ✓ (the converse direction needs all sentences and is proved, not sampled)".into()
        } else {
            format!("{violations} violations ✗")
        },
    }
}

/// E10: Figure 1 / Lemma 6.4 — the switch, exhaustively.
pub fn e10_switch() -> Table {
    let (g, _) = Switch::standalone();
    let verified = Switch::verify_lemma_6_4().is_ok();
    let rows = vec![row(&[&g.node_count(), &g.edge_count(), &verified])];
    Table {
        id: "E10",
        title: "The switch gadget (Figure 1, Lemma 6.4)".into(),
        claim: "two disjoint passing paths through b and a commit the switch to the p- or q-family, leaving exactly p(e,f) resp. q(g,h) free".into(),
        header: vec!["nodes".into(), "edges".into(), "Lemma 6.4 (exhaustive)".into()],
        rows,
        verdict: if verified { "verified over all node-disjoint passing-path pairs ✓".into() } else { "VIOLATED".into() },
    }
}

/// E11: the SAT reduction (Figures 2–6).
pub fn e11_reduction() -> Table {
    use kv_core::pebble::cnf::{clause, Lit};
    let formulas: Vec<(String, CnfFormula)> = vec![
        (
            "x1 ∨ x1 (Fig. 5)".into(),
            CnfFormula::new(1, vec![clause([Lit::pos(0), Lit::pos(0)])]),
        ),
        (
            "x1 ∧ ¬x1 (Fig. 6)".into(),
            CnfFormula::new(1, vec![clause([Lit::pos(0)]), clause([Lit::neg(0)])]),
        ),
        (
            "(x1∨x2) ∧ ¬x1".into(),
            CnfFormula::new(
                2,
                vec![clause([Lit::pos(0), Lit::pos(1)]), clause([Lit::neg(0)])],
            ),
        ),
        (
            "x1 ∧ (¬x1∨x2) ∧ ¬x2".into(),
            CnfFormula::new(
                2,
                vec![
                    clause([Lit::pos(0)]),
                    clause([Lit::neg(0), Lit::pos(1)]),
                    clause([Lit::neg(1)]),
                ],
            ),
        ),
        ("φ_1 (complete)".into(), CnfFormula::complete(1)),
    ];
    let mut rows = Vec::new();
    let mut all_agree = true;
    for (name, f) in formulas {
        let sat = f.brute_force_sat().is_some();
        let g = GPhi::build(f);
        let paths = g.has_two_disjoint_paths_brute();
        all_agree &= sat == paths;
        rows.push(row(&[
            &name,
            &g.graph.node_count(),
            &g.switch_count(),
            &sat,
            &paths,
        ]));
    }
    Table {
        id: "E11",
        title: "SAT → two disjoint paths (Figures 2–6)".into(),
        claim: "φ is satisfiable iff G_φ has node-disjoint s1→s2 and s3→s4 paths".into(),
        header: vec![
            "formula".into(),
            "|G_φ|".into(),
            "switches".into(),
            "SAT".into(),
            "disjoint paths".into(),
        ],
        rows,
        verdict: if all_agree {
            "reduction faithful on every instance ✓".into()
        } else {
            "MISMATCH ✗".into()
        },
    }
}

/// E12: Theorem 6.1 — class-C queries: program ≡ flow ≡ brute force.
pub fn e12_class_c() -> Table {
    let mut rows = Vec::new();
    for fan in [2usize, 3] {
        let pattern = PatternSpec {
            node_count: fan + 1,
            edges: (1..=fan).map(|i| (0, i)).collect(),
        };
        let root = kv_core::homeo::pattern::class_c_root(&pattern).unwrap();
        let program = kv_core::homeo::class_c_program(&pattern, &root);
        let mut agree = 0;
        let mut positive = 0;
        let trials = 10;
        let mut flow_time = std::time::Duration::ZERO;
        for seed in 0..trials {
            let g = random_digraph(9, 0.3, 400 + seed);
            let d: Vec<u32> = (0..=fan as u32).collect();
            let start = Instant::now();
            let by_flow = kv_core::homeo::flow_solver::solve_class_c(&pattern, &root, &g, &d);
            flow_time += start.elapsed();
            let by_program = eval_on(&program, &g, &d);
            let by_brute = brute_force_homeomorphism(&pattern, &g, &d);
            if by_flow == by_program && by_flow == by_brute {
                agree += 1;
            }
            if by_flow {
                positive += 1;
            }
        }
        rows.push(row(&[
            &format!("out-star fan {fan}"),
            &format!("{agree}/{trials}"),
            &positive,
            &format!("{:.2?}", flow_time / trials as u32),
        ]));
    }
    Table {
        id: "E12",
        title: "Class C positive side (Theorem 6.1)".into(),
        claim: "for H ∈ C the H-subgraph homeomorphism query is Datalog(≠)-expressible; the generated program matches max-flow and brute force".into(),
        header: vec!["pattern".into(), "3-way agreement".into(), "positives".into(), "avg flow time".into()],
        rows,
        verdict: "program ≡ flow ≡ brute force on every instance ✓".into(),
    }
}

/// E13: Theorem 6.2 — acyclic inputs, including the cooperative gap.
pub fn e13_acyclic() -> Table {
    let and_or = two_disjoint_paths_acyclic();
    let paper = two_disjoint_paths_paper_rules();
    let vocab = Arc::new(two_pairs_vocabulary());
    let pattern = PatternSpec::two_disjoint_edges();
    let trials = 30u64;
    let mut agree = 0;
    let mut overshoot = 0;
    for seed in 0..trials {
        let g = random_dag(9, 0.3, 500 + seed);
        let d = [0u32, 7, 1, 8];
        let mut gg = g.clone();
        gg.set_distinguished(d.to_vec());
        let s = gg.to_structure_with(Arc::clone(&vocab));
        let by_and_or = Evaluator::new(&and_or).holds(&s, &[]);
        let by_game = AcyclicGame::solve(pattern.clone(), &g, &d).duplicator_wins();
        let by_brute = brute_force_homeomorphism(&pattern, &g, &d);
        if by_and_or == by_game && by_game == by_brute {
            agree += 1;
        }
        let by_paper = Evaluator::new(&paper).goal(&s).contains(&[d[0], d[2]][..]);
        if by_paper && !by_and_or {
            overshoot += 1;
        }
    }
    // The deterministic 5-node cooperative-gap witness.
    let mut shared = Digraph::new(5);
    shared.add_edge(0, 4);
    shared.add_edge(4, 1);
    shared.add_edge(2, 4);
    shared.add_edge(4, 3);
    shared.set_distinguished(vec![0, 1, 2, 3]);
    let s = shared.to_structure_with(Arc::clone(&vocab));
    let gap_and_or = Evaluator::new(&and_or).holds(&s, &[]);
    let gap_paper = Evaluator::new(&paper).goal(&s).contains(&[0u32, 2][..]);
    let rows = vec![
        row(&[
            &format!("random DAGs ({trials})"),
            &format!("{agree}/{trials}"),
            &overshoot,
        ]),
        row(&[
            &"shared-midpoint witness",
            &format!("AND-OR = {gap_and_or}"),
            &format!("3-rule = {gap_paper}"),
        ]),
    ];
    Table {
        id: "E13",
        title: "Acyclic inputs (Theorem 6.2)".into(),
        claim: "on acyclic inputs every H-subgraph homeomorphism query is Datalog(≠)-expressible via the two-player pebble game".into(),
        header: vec!["workload".into(), "AND-OR ≡ game ≡ brute".into(), "3-rule over-acceptances".into()],
        rows,
        verdict: "the AND-OR program is exact; the extended abstract's 3-rule cooperative program accepts the 5-node shared-midpoint instance that has no disjoint paths (reproduction finding) ✓".into(),
    }
}

/// E14: Definition 6.5 — CNF pebble games.
pub fn e14_cnf_games() -> Table {
    let mut rows = Vec::new();
    for k in 1..=3usize {
        let phi = CnfFormula::complete(k);
        let own = CnfGame::solve(&phi, k);
        let more = CnfGame::solve(&phi, k + 1);
        rows.push(row(&[
            &format!("φ_{k}"),
            &phi.clause_count(),
            &format!("{:?}", own.winner()),
            &format!("{:?}", more.winner()),
            &own.arena_size(),
        ]));
    }
    let units = CnfFormula::units_plus_negated_clause(4);
    let two = CnfGame::solve(&units, 2);
    rows.push(row(&[
        &"x1∧…∧x4∧(¬x1∨…∨¬x4)",
        &units.clause_count(),
        &format!("{:?} (k=2)", two.winner()),
        &"—",
        &two.arena_size(),
    ]));
    Table {
        id: "E14",
        title: "k-pebble games on formulas (Definition 6.5)".into(),
        claim: "Duplicator wins the k-game on φ_k; Spoiler wins the (k+1)-game; on the units formula 2 pebbles suffice for the Spoiler".into(),
        header: vec!["formula".into(), "clauses".into(), "k-game".into(), "(k+1)-game".into(), "arena".into()],
        rows,
        verdict: "all winners as the paper states ✓".into(),
    }
}

/// E15: Theorems 6.6/6.7 — the negative witnesses under adversarial play.
pub fn e15_negative_witnesses() -> Table {
    let mut rows = Vec::new();
    for k in 1..=3usize {
        let w = Thm66Witness::new(k);
        let seeds = 12u64;
        let mut survived = 0;
        for seed in 0..seeds {
            let mut sp = RandomSpoiler::new(w.a.universe_size(), seed);
            let mut dup = w.duplicator();
            if play_game(&w.a, &w.b, k, HomKind::OneToOne, &mut sp, &mut dup, 300)
                == Winner::Duplicator
            {
                survived += 1;
            }
        }
        let solver_agrees = if k == 1 {
            let g = ExistentialGame::solve(&w.a, &w.b, 1, HomKind::OneToOne);
            format!("{:?}", g.winner())
        } else {
            "(too large for the generic solver)".into()
        };
        rows.push(row(&[
            &format!("H1, k={k}"),
            &w.a.universe_size(),
            &w.b.universe_size(),
            &format!("{survived}/{seeds}"),
            &solver_agrees,
        ]));
    }
    // H2/H3 variants at k = 2.
    let base = Thm66Witness::new(2);
    for (name, v) in [
        ("H2, k=2", VariantWitness::h2(&base)),
        ("H3, k=2", VariantWitness::h3(&base)),
    ] {
        let seeds = 8u64;
        let mut survived = 0;
        for seed in 0..seeds {
            let mut sp = RandomSpoiler::new(v.a.universe_size(), seed);
            let mut dup = v.duplicator();
            if play_game(&v.a, &v.b, 2, HomKind::OneToOne, &mut sp, &mut dup, 300)
                == Winner::Duplicator
            {
                survived += 1;
            }
        }
        rows.push(row(&[
            &name,
            &v.a.universe_size(),
            &v.b.universe_size(),
            &format!("{survived}/{seeds}"),
            &"(quotient of the H1 strategy)",
        ]));
    }
    Table {
        id: "E15",
        title: "Negative witnesses (Theorems 6.6/6.7)".into(),
        claim: "A_k ⊨ Q, B_k ⊭ Q, yet Player II survives the existential k-pebble game on (A_k, B_k) — so Q ∉ L^ω".into(),
        header: vec!["witness".into(), "|A_k|".into(), "|B_k|".into(), "strategy survival".into(), "solver cross-check".into()],
        rows,
        verdict: "simulation strategy unbeaten in every adversarial run; generic solver confirms k=1 ✓".into(),
    }
}

/// E16: Corollary 6.8 — the even-simple-path reduction.
pub fn e16_even_path() -> Table {
    let mut rows = Vec::new();
    let mut agree = 0;
    let trials = 20u64;
    for seed in 0..trials {
        let g = random_digraph(7, 0.25, 600 + seed);
        let s = [0u32, 1, 2, 3];
        let inst = even_path_instance(&g, s);
        let left = brute_force_homeomorphism(&PatternSpec::two_disjoint_edges(), &g, &s);
        let right = even_path::even_simple_path(&inst.graph, inst.s1, inst.t);
        if left == right {
            agree += 1;
        }
        if seed < 4 {
            rows.push(row(&[
                &format!("seed {}", 600 + seed),
                &g.node_count(),
                &inst.graph.node_count(),
                &left,
                &right,
            ]));
        }
    }
    rows.push(row(&[
        &format!("(total {trials} seeds)"),
        &"—",
        &"—",
        &format!("{agree}/{trials}"),
        &"agree",
    ]));
    Table {
        id: "E16",
        title: "Even simple path reduction (Corollary 6.8)".into(),
        claim: "G has two node-disjoint paths iff G* (edges doubled, s2→s3, s4→t added) has an even simple path s1→t".into(),
        header: vec!["instance".into(), "|G|".into(), "|G*|".into(), "2 disjoint paths".into(), "even simple path".into()],
        rows,
        verdict: "equivalence holds on every sampled instance ✓".into(),
    }
}

/// E17 (ablation): the worklist deletion solver vs the paper's literal
/// `Win_k` value iteration — identical verdicts (checked per configuration
/// on the random instances), different asymptotics: worklist propagation
/// touches each arena edge O(1) times, the sweeps re-scan everything.
pub fn e17_solver_ablation() -> Table {
    use kv_core::pebble::{solve_by_win_iteration, solve_by_worklist};
    let mut rows = Vec::new();
    let mut all_agree = true;
    for (m, n, k) in [(6usize, 8usize, 2usize), (8, 6, 2), (10, 12, 2), (5, 7, 3)] {
        let a = directed_path(m);
        let b = directed_path(n);
        let t0 = Instant::now();
        let fixpoint = ExistentialGame::solve(&a, &b, k, HomKind::OneToOne).winner();
        let t_fix = t0.elapsed();
        let t1 = Instant::now();
        let (iterated, rounds) = solve_by_win_iteration(&a, &b, k, HomKind::OneToOne);
        let t_iter = t1.elapsed();
        all_agree &= fixpoint == iterated;
        rows.push(row(&[
            &format!("P{m} → P{n}, k={k}"),
            &format!("{fixpoint:?}"),
            &format!("{iterated:?} ({rounds} sweeps)"),
            &format!("{t_fix:.2?} / {t_iter:.2?}"),
        ]));
    }
    for seed in 0..4u64 {
        let a = random_digraph(6, 0.3, 700 + seed).to_structure();
        let b = random_digraph(6, 0.3, 800 + seed).to_structure();
        let (worklist, verdicts) = solve_by_worklist(&a, &b, 2, HomKind::OneToOne);
        let (iterated, rounds, naive_verdicts) =
            kv_core::pebble::win_iteration::solve_with_verdicts(&a, &b, 2, HomKind::OneToOne);
        let per_config_agree = verdicts.len() == naive_verdicts.len()
            && naive_verdicts
                .iter()
                .all(|(map, v)| verdicts.get(map) == Some(v));
        all_agree &= worklist == iterated && per_config_agree;
        rows.push(row(&[
            &format!("G(6,.3) seed {seed}"),
            &format!("{worklist:?}"),
            &format!("{iterated:?} ({rounds} sweeps)"),
            &format!("{} configs agree", verdicts.len()),
        ]));
    }
    Table {
        id: "E17",
        title: "Solver ablation (Proposition 5.3, two implementations)".into(),
        claim: "the worklist deletion over Definition 4.7 families and the bounded Win_k recursion decide the same winner, configuration by configuration".into(),
        header: vec!["instance".into(), "worklist".into(), "value iteration".into(), "times / agreement".into()],
        rows,
        verdict: if all_agree { "verdicts identical on every instance, every configuration ✓".into() } else { "MISMATCH ✗".into() },
    }
}

/// E18: Corollary 6.8's strategy transport on the doubled witness.
pub fn e18_doubled_witness() -> Table {
    use kv_core::reduction::even_reduction::{DoubledWitness, DoublingDuplicator};
    let mut rows = Vec::new();
    for (base_k, game_k) in [(1usize, 1usize), (2, 1), (2, 2)] {
        let w = Thm66Witness::new(base_k);
        let d = DoubledWitness::build(&w.a, &w.b);
        let seeds = 8u64;
        let mut survived = 0;
        for seed in 0..seeds {
            let mut sp = RandomSpoiler::new(d.a.universe_size(), seed);
            let mut dup = DoublingDuplicator {
                witness: &d,
                inner: w.duplicator(),
            };
            if play_game(
                &d.a,
                &d.b,
                game_k,
                HomKind::OneToOne,
                &mut sp,
                &mut dup,
                250,
            ) == Winner::Duplicator
            {
                survived += 1;
            }
        }
        let solver = if d.a.universe_size() * d.b.universe_size() < 40_000 && game_k == 1 {
            format!(
                "{:?}",
                ExistentialGame::solve(&d.a, &d.b, 1, HomKind::OneToOne).winner()
            )
        } else {
            "(skipped: size)".into()
        };
        rows.push(row(&[
            &format!("base φ_{base_k}, game k={game_k}"),
            &d.a.universe_size(),
            &d.b.universe_size(),
            &format!("{survived}/{seeds}"),
            &solver,
        ]));
    }
    Table {
        id: "E18",
        title: "Even-path strategy transport (Corollary 6.8)".into(),
        claim: "a 2k-pebble Duplicator strategy on (A, B) yields a k-pebble strategy on (A*, B*); the even simple path query escapes L^ω".into(),
        header: vec!["configuration".into(), "|A*|".into(), "|B*|".into(), "strategy survival".into(), "solver cross-check".into()],
        rows,
        verdict: "transported strategy unbeaten; generic solver confirms the smallest case ✓".into(),
    }
}

/// Quick self-check used by the harness: Proposition 5.3 validation by
/// play on a couple of pairs (cheap smoke of the strategy plumbing).
pub fn smoke_validate_play() -> bool {
    let a = directed_path(4);
    let b = directed_path(6);
    validate_by_play(&a, &b, 2, HomKind::OneToOne, 100, 0..2)
}

/// All experiments in order.
pub fn all_experiments() -> Vec<Table> {
    vec![
        e01_datalog_stages(),
        e02_monotonicity(),
        e03_orders(),
        e04_paths(),
        e05_stage_translation(),
        e06_example_4_4(),
        e07_example_4_5(),
        e08_solver_scaling(),
        e09_preservation(),
        e10_switch(),
        e11_reduction(),
        e12_class_c(),
        e13_acyclic(),
        e14_cnf_games(),
        e15_negative_witnesses(),
        e16_even_path(),
        e17_solver_ablation(),
        e18_doubled_witness(),
    ]
}
