//! Experiment harness: the experiments (E1–E18) that stand in for
//! the paper's missing measurement tables, plus a dependency-free
//! micro-benchmark runner for the `benches/` binaries.
//!
//! Run the harness with:
//!
//! ```sh
//! cargo run -p kv-bench --release --bin harness
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod microbench;
pub mod report;
pub mod service;
pub mod table;

pub use experiments::all_experiments;
pub use table::Table;
