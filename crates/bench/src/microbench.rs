//! A tiny in-tree micro-benchmark runner: warmup, repeated timed runs,
//! median/min reporting. Replaces the external Criterion dependency so the
//! workspace builds fully offline; statistical rigor is traded for zero
//! dependencies.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median wall time of the timed runs.
    pub median: Duration,
    /// Fastest observed run.
    pub min: Duration,
    /// Number of timed runs.
    pub runs: usize,
}

impl Measurement {
    /// Median in nanoseconds (saturating).
    pub fn median_nanos(&self) -> u128 {
        self.median.as_nanos()
    }
}

/// Time `f` with `warmup` untimed runs followed by `runs` timed runs.
/// The closure's result goes through [`black_box`] so the optimizer cannot
/// delete the work.
pub fn time_fn<R>(warmup: usize, runs: usize, mut f: impl FnMut() -> R) -> Measurement {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples: Vec<Duration> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    Measurement {
        median: samples[samples.len() / 2],
        min: samples[0],
        runs: samples.len(),
    }
}

/// Run and print one named benchmark line: `group/name ... median  (min)`.
pub fn bench<R>(group: &str, name: &str, warmup: usize, runs: usize, f: impl FnMut() -> R) {
    let m = time_fn(warmup, runs, f);
    println!(
        "{group}/{name:<28} median {:>12?}  min {:>12?}  ({} runs)",
        m.median, m.min, m.runs
    );
}
