//! Machine-readable benchmark reports (`BENCH_pebble.json`,
//! `BENCH_datalog.json`), emitted by the harness binary.
//!
//! The JSON is hand-rolled (the workspace builds offline with zero
//! external dependencies): every value is a number, a string of known-safe
//! characters, or a flat object, so no escaping machinery is needed.

use crate::microbench::time_fn;
use kv_core::datalog::programs::{avoiding_path, q_kl, transitive_closure};
use kv_core::datalog::{EvalOptions, Evaluator};
use kv_core::pebble::win_iteration::solve_by_win_iteration;
use kv_core::pebble::ExistentialGame;
use kv_core::structures::generators::{directed_path, random_digraph};
use kv_core::structures::govern::{Budget, CancelToken, Deadline, Governor};
use kv_core::structures::par::thread_count;
use kv_core::structures::HomKind;
use std::time::Duration;

/// A governor with every interrupt source armed (step budget, deadline,
/// cancellation token) but none close to tripping: the cost it measures
/// is pure governance accounting, not interruption handling.
fn armed_governor() -> Governor {
    Governor::new(
        Budget::steps(u64::MAX / 2),
        Deadline::within(Duration::from_secs(3600)),
        CancelToken::new(),
    )
}

/// Percent overhead of `governed` over `plain`, from the *minimum*
/// observed times (the standard microbenchmark noise filter), clamped at
/// 0 from below so residual timer noise does not render as a negative
/// cost.
fn overhead_pct(plain: Duration, governed: Duration) -> f64 {
    let p = plain.as_secs_f64();
    let g = governed.as_secs_f64();
    if p <= 0.0 {
        return 0.0;
    }
    ((g - p) / p * 100.0).max(0.0)
}

/// A flat JSON object: keys paired with pre-rendered JSON values.
struct Obj(Vec<(String, String)>);

impl Obj {
    fn new() -> Self {
        Self(Vec::new())
    }
    fn str(mut self, k: &str, v: &str) -> Self {
        self.0.push((k.into(), format!("\"{v}\"")));
        self
    }
    fn num(mut self, k: &str, v: impl std::fmt::Display) -> Self {
        self.0.push((k.into(), v.to_string()));
        self
    }
    fn render(&self) -> String {
        let fields: Vec<String> = self
            .0
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", fields.join(", "))
    }
}

fn render_report(cases: &[Obj]) -> String {
    let rows: Vec<String> = cases
        .iter()
        .map(|c| format!("    {}", c.render()))
        .collect();
    format!(
        "{{\n  \"threads\": {},\n  \"cases\": [\n{}\n  ]\n}}\n",
        thread_count(),
        rows.join(",\n")
    )
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Pebble-game solver report: arena size, propagation edge count, and the
/// wall time of the worklist solver next to the paper's naive `Win_k`
/// value iteration on the same instance.
pub fn pebble_report() -> String {
    let mut cases = Vec::new();
    let instances: Vec<(String, _, _, usize)> = vec![
        (
            "path_9_vs_8_k2".into(),
            directed_path(9),
            directed_path(8),
            2,
        ),
        (
            "path_7_vs_6_k3".into(),
            directed_path(7),
            directed_path(6),
            3,
        ),
        (
            "random_7_vs_7_k2".into(),
            random_digraph(7, 0.3, 42).to_structure(),
            random_digraph(7, 0.3, 43).to_structure(),
            2,
        ),
        (
            "random_6_vs_6_k3".into(),
            random_digraph(6, 0.3, 44).to_structure(),
            random_digraph(6, 0.3, 45).to_structure(),
            3,
        ),
    ];
    for (name, a, b, k) in &instances {
        let game = ExistentialGame::solve(a, b, *k, HomKind::OneToOne);
        let worklist = time_fn(2, 15, || {
            ExistentialGame::solve(a, b, *k, HomKind::OneToOne).winner()
        });
        let naive = time_fn(1, 5, || {
            solve_by_win_iteration(a, b, *k, HomKind::OneToOne).0
        });
        let governed = time_fn(2, 15, || {
            let gov = armed_governor();
            match ExistentialGame::try_solve(a, b, *k, HomKind::OneToOne, &gov) {
                Ok(game) => game.winner(),
                Err(e) => unreachable!("armed-but-ample governor interrupted: {e}"),
            }
        });
        cases.push(
            Obj::new()
                .str("name", name)
                .num("k", k)
                .num("arena_size", game.arena_size())
                .num("arena_edges", game.arena_edge_count())
                .num("worklist_ms", format!("{:.4}", ms(worklist.median)))
                .num("value_iteration_ms", format!("{:.4}", ms(naive.median)))
                .num("governed_ms", format!("{:.4}", ms(governed.median)))
                .num(
                    "governance_overhead_pct",
                    format!("{:.2}", overhead_pct(worklist.min, governed.min)),
                ),
        );
    }
    render_report(&cases)
}

/// Datalog engine report: fixpoint size, stage count, the storage-engine
/// counters (interned tuples, join probes, duplicate derivations), and
/// wall time with rule-variant parallelism on vs. off (both semi-naive).
pub fn datalog_report() -> String {
    let mut cases = Vec::new();
    let instances: Vec<(String, _, _)> = vec![
        (
            "tc_n60_p0.06".into(),
            transitive_closure(),
            random_digraph(60, 0.06, 7),
        ),
        (
            "avoiding_path_n16_p0.12".into(),
            avoiding_path(),
            random_digraph(16, 0.12, 8),
        ),
        (
            "q_2_1_n12_p0.15".into(),
            q_kl(2, 1),
            random_digraph(12, 0.15, 9),
        ),
    ];
    for (name, program, graph) in &instances {
        let s = graph.to_structure();
        let ev = Evaluator::new(program);
        let opts = |parallel| EvalOptions {
            parallel,
            ..EvalOptions::default()
        };
        let result = ev.run(&s, opts(true));
        let parallel = time_fn(2, 15, || ev.run(&s, opts(true)).stats.len());
        let sequential = time_fn(1, 5, || ev.run(&s, opts(false)).stats.len());
        let governed = time_fn(2, 15, || {
            let gov = armed_governor();
            match ev.try_run_governed(&s, opts(true), &gov) {
                Ok(result) => result.stats.len(),
                Err(e) => unreachable!("armed-but-ample governor interrupted: {e}"),
            }
        });
        cases.push(
            Obj::new()
                .str("name", name)
                .num("stages", result.stage_count())
                .num("tuples", result.idb.iter().map(|r| r.len()).sum::<usize>())
                .num("tuples_interned", result.eval_stats.tuples_interned)
                .num("join_probes", result.eval_stats.join_probes)
                .num(
                    "duplicate_derivations",
                    result.eval_stats.duplicate_derivations,
                )
                .num("parallel_ms", format!("{:.4}", ms(parallel.median)))
                .num("sequential_ms", format!("{:.4}", ms(sequential.median)))
                .num("governed_ms", format!("{:.4}", ms(governed.median)))
                .num(
                    "governance_overhead_pct",
                    format!("{:.2}", overhead_pct(parallel.min, governed.min)),
                ),
        );
    }
    render_report(&cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_are_well_formed() {
        for report in [pebble_report(), datalog_report()] {
            assert!(report.starts_with("{\n  \"threads\":"));
            assert!(report.trim_end().ends_with('}'));
            assert_eq!(
                report.matches('{').count(),
                report.matches('}').count(),
                "balanced braces"
            );
            assert!(report.contains("\"cases\": ["));
        }
    }
}
