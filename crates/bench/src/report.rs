//! Machine-readable benchmark reports (`BENCH_pebble.json`,
//! `BENCH_datalog.json`), emitted by the harness binary.
//!
//! The JSON is hand-rolled (the workspace builds offline with zero
//! external dependencies): every value is a number, a string of known-safe
//! characters, or a flat object, so no escaping machinery is needed.
//!
//! Next to the eager baselines each report carries the demand-driven
//! columns: `demand_ms`/`demand_tuples`/`magic_probes` for the magic-set
//! rewrite of each Datalog case queried at a fixed goal tuple, and
//! `lazy_ms`/`lazy_arena_size` for the lazy, root-directed pebble solver.
//! The Datalog report additionally carries the cost-based planner columns
//! (`planned_ms`, `planned_join_probes`, `planned_duplicate_derivations`,
//! `scc_count`, `probe_savings_pct`), the batched/worst-case-optimal join
//! columns (`planned_block_probes`, `planned_gallop_steps`,
//! `planned_wcoj_rules`), the durability columns (`recovery_ms` — cold
//! reopen of a WAL-backed directory at the mid-cadence point, snapshot
//! load + WAL-tail replay; `flush_overhead_pct` — the per-round WAL tax,
//! the directly measured cost of the round's two framed WAL appends as a
//! percentage of the volatile maintenance round), the sharded-evaluation
//! columns (`sharded_ms` at W = 4, `exchanged_tuples`, `shard_skew_pct`,
//! and `shard_scaling` rows at 1/2/4/8 shards whose `work_balance_x` is
//! the machine-independent load-balance ceiling — wall clock is bounded
//! by the header's `host_cpus`), and per-case thread-scaling rows at
//! 1/2/4 workers for both planner modes.
//!
//! Every report header is stamped with the git revision and a UTC
//! timestamp, and every case records the RNG seed of its input structure,
//! so a committed JSON identifies its provenance exactly.
//!
//! [`smoke_check`] cross-validates the demand paths against the eager
//! ones (same answers, no extra derivations), the cost-based planner
//! against textual-order evaluation (stage-identical runs, no extra
//! probes), and the generic worst-case-optimal lowering against the
//! binary kernels (stage-identical fixpoints under both forced
//! lowerings); [`regression_check`] compares freshly measured engine
//! counters against a committed `BENCH_datalog.json` and flags >10%
//! regressions. Both are wired to the harness's `--smoke` flag for CI.

use crate::microbench::time_fn;
use kv_core::datalog::programs::{avoiding_path, q_kl, transitive_closure, triangles};
use kv_core::datalog::{
    BindingPattern, DurabilityOptions, DurableEngine, EvalOptions, Evaluator, Fact, IdbId,
    IncrementalEngine, JoinLowering, MagicProgram, PlannerMode, Program,
};
use kv_core::pebble::win_iteration::solve_by_win_iteration;
use kv_core::pebble::ExistentialGame;
use kv_core::structures::generators::{directed_path, random_digraph};
use kv_core::structures::govern::{Budget, CancelToken, Deadline, Governor};
use kv_core::structures::par::thread_count;
use kv_core::structures::persist::SegmentedLog;
use kv_core::structures::{Digraph, Element, HomKind, SplitMix64, Structure};
use std::time::Duration;

/// A governor with every interrupt source armed (step budget, deadline,
/// cancellation token) but none close to tripping: the cost it measures
/// is pure governance accounting, not interruption handling.
fn armed_governor() -> Governor {
    Governor::new(
        Budget::steps(u64::MAX / 2),
        Deadline::within(Duration::from_secs(3600)),
        CancelToken::new(),
    )
}

/// Percent overhead of `governed` over `plain`, from the *minimum*
/// observed times (the standard microbenchmark noise filter), clamped at
/// 0 from below so residual timer noise does not render as a negative
/// cost.
fn overhead_pct(plain: Duration, governed: Duration) -> f64 {
    let p = plain.as_secs_f64();
    let g = governed.as_secs_f64();
    if p <= 0.0 {
        return 0.0;
    }
    ((g - p) / p * 100.0).max(0.0)
}

/// A flat JSON object: keys paired with pre-rendered JSON values.
pub(crate) struct Obj(pub(crate) Vec<(String, String)>);

impl Obj {
    pub(crate) fn new() -> Self {
        Self(Vec::new())
    }
    pub(crate) fn str(mut self, k: &str, v: &str) -> Self {
        self.0.push((k.into(), format!("\"{v}\"")));
        self
    }
    pub(crate) fn num(mut self, k: &str, v: impl std::fmt::Display) -> Self {
        self.0.push((k.into(), v.to_string()));
        self
    }
    /// A pre-rendered JSON value (nested array/object), inserted verbatim.
    pub(crate) fn raw(mut self, k: &str, v: String) -> Self {
        self.0.push((k.into(), v));
        self
    }
    pub(crate) fn render(&self) -> String {
        let fields: Vec<String> = self
            .0
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", fields.join(", "))
    }
}

/// The current git revision (short hash, `-dirty` suffixed when the work
/// tree has modifications), or `"unknown"` outside a git checkout.
pub(crate) fn git_revision() -> String {
    let out = |args: &[&str]| -> Option<String> {
        let out = std::process::Command::new("git").args(args).output().ok()?;
        out.status
            .success()
            .then(|| String::from_utf8_lossy(&out.stdout).trim().to_string())
    };
    match out(&["rev-parse", "--short", "HEAD"]) {
        Some(rev) if !rev.is_empty() => {
            let dirty = out(&["status", "--porcelain"]).is_some_and(|s| !s.is_empty());
            if dirty {
                format!("{rev}-dirty")
            } else {
                rev
            }
        }
        _ => "unknown".into(),
    }
}

/// The current time as `YYYY-MM-DDTHH:MM:SSZ`, derived from the system
/// clock with the standard civil-from-days conversion (no date crate —
/// the workspace builds offline with zero external dependencies).
pub(crate) fn utc_timestamp() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (days, rem) = (secs / 86_400, secs % 86_400);
    let (hh, mm, ss) = (rem / 3_600, rem % 3_600 / 60, rem % 60);
    // Civil-from-days (Howard Hinnant's algorithm), valid for the entire
    // u64 range we can encounter.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}Z")
}

/// Physical CPUs of the measuring host — provenance for every wall-clock
/// column. Sharded wall times cannot beat this bound no matter how well
/// the partition balances; the machine-independent `work_balance_x`
/// column is the signal to read on small hosts.
pub(crate) fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub(crate) fn render_report(cases: &[Obj]) -> String {
    let rows: Vec<String> = cases
        .iter()
        .map(|c| format!("    {}", c.render()))
        .collect();
    format!(
        "{{\n  \"revision\": \"{}\",\n  \"generated_utc\": \"{}\",\n  \"threads\": {},\n  \"host_cpus\": {},\n  \"cases\": [\n{}\n  ]\n}}\n",
        git_revision(),
        utc_timestamp(),
        thread_count(),
        host_cpus(),
        rows.join(",\n")
    )
}

pub(crate) fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The pebble-report workload: `(name, A, B, k, seed)` — `seed` is the
/// RNG seed of the case's input structures (`0` for the deterministic
/// path families; random pairs use `seed` and `seed + 1`). The
/// Duplicator-win cases are where the lazy solver's early termination
/// pays — it stops as soon as a forth-closed witness family around the
/// root is complete.
fn pebble_instances() -> Vec<(String, Structure, Structure, usize, u64)> {
    vec![
        (
            "path_9_vs_8_k2".into(),
            directed_path(9),
            directed_path(8),
            2,
            0,
        ),
        (
            "path_7_vs_6_k3".into(),
            directed_path(7),
            directed_path(6),
            3,
            0,
        ),
        (
            "path_7_vs_9_k2".into(),
            directed_path(7),
            directed_path(9),
            2,
            0,
        ),
        (
            "path_6_vs_8_k3".into(),
            directed_path(6),
            directed_path(8),
            3,
            0,
        ),
        (
            "random_7_vs_7_k2".into(),
            random_digraph(7, 0.3, 42).to_structure(),
            random_digraph(7, 0.3, 43).to_structure(),
            2,
            42,
        ),
        (
            "random_6_vs_6_k3".into(),
            random_digraph(6, 0.3, 44).to_structure(),
            random_digraph(6, 0.3, 45).to_structure(),
            3,
            44,
        ),
    ]
}

/// The Datalog-report workload: `(name, program, input, goal tuple,
/// seed)` — `seed` is the RNG seed of the case's input digraph. The goal
/// tuple is the bounded query the demand columns measure — every goal
/// position bound, so the magic-set rewrite seeds from the full tuple.
fn datalog_instances() -> Vec<(String, Program, Structure, Vec<Element>, u64)> {
    vec![
        (
            "tc_n60_p0.06".into(),
            transitive_closure(),
            random_digraph(60, 0.06, 7).to_structure(),
            vec![0, 59],
            7,
        ),
        (
            "avoiding_path_n16_p0.12".into(),
            avoiding_path(),
            random_digraph(16, 0.12, 8).to_structure(),
            vec![0, 15, 7],
            8,
        ),
        (
            "q_2_1_n12_p0.15".into(),
            q_kl(2, 1),
            random_digraph(12, 0.15, 9).to_structure(),
            vec![0, 10, 11, 5],
            9,
        ),
        // The cyclic triangle body on a skewed layered input: the case
        // where the planner's Auto lowering flips to the worst-case-optimal
        // generic join and the per-variable intersection prunes the m³
        // path set a binary join must enumerate.
        (
            "tri_layered_m12_b3".into(),
            triangles(),
            layered_triangle_structure(12, 3),
            vec![0, 12, 24],
            0,
        ),
    ]
}

/// A layered tripartite digraph: complete bipartite stages `L → M` and
/// `M → R` of width `m`, plus `back` edges `R → L` closing a few
/// triangles. This is the canonical skew case for worst-case-optimal
/// joins: a binary plan probes every one of the `m³` `L → M → R` paths
/// before the closing edge check fails, while the generic join's
/// variable-at-a-time intersection dead-ends immediately on every seed
/// edge whose source has no `R`-predecessor.
fn layered_triangle_structure(m: u32, back: u32) -> Structure {
    let mut g = Digraph::new(3 * m as usize);
    for a in 0..m {
        for b in 0..m {
            g.add_edge(a, m + b);
            g.add_edge(m + a, 2 * m + b);
        }
    }
    for i in 0..back.min(m) {
        g.add_edge(2 * m + i, i);
    }
    g.to_structure()
}

/// Pebble-game solver report: arena size, propagation edge count, and the
/// wall time of the worklist solver next to the paper's naive `Win_k`
/// value iteration and the lazy demand-driven solver on the same instance.
pub fn pebble_report() -> String {
    let mut cases = Vec::new();
    for (name, a, b, k, seed) in &pebble_instances() {
        let game = ExistentialGame::solve(a, b, *k, HomKind::OneToOne);
        let lazy_game = ExistentialGame::solve_lazy(a, b, *k, HomKind::OneToOne);
        let worklist = time_fn(2, 15, || {
            ExistentialGame::solve(a, b, *k, HomKind::OneToOne).winner()
        });
        let naive = time_fn(1, 5, || {
            solve_by_win_iteration(a, b, *k, HomKind::OneToOne).0
        });
        let lazy = time_fn(2, 15, || {
            ExistentialGame::solve_lazy(a, b, *k, HomKind::OneToOne).winner()
        });
        let governed = time_fn(2, 15, || {
            let gov = armed_governor();
            match ExistentialGame::try_solve(a, b, *k, HomKind::OneToOne, &gov) {
                Ok(game) => game.winner(),
                Err(e) => unreachable!("armed-but-ample governor interrupted: {e}"),
            }
        });
        cases.push(
            Obj::new()
                .str("name", name)
                .num("k", k)
                .num("seed", seed)
                .num("threads", thread_count())
                .num("arena_size", game.arena_size())
                .num("arena_edges", game.arena_edge_count())
                .num("lazy_arena_size", lazy_game.arena_size())
                .num("worklist_ms", format!("{:.4}", ms(worklist.median)))
                .num("value_iteration_ms", format!("{:.4}", ms(naive.median)))
                .num("lazy_ms", format!("{:.4}", ms(lazy.median)))
                .num("governed_ms", format!("{:.4}", ms(governed.median)))
                .num(
                    "governance_overhead_pct",
                    format!("{:.2}", overhead_pct(worklist.min, governed.min)),
                ),
        );
    }
    render_report(&cases)
}

/// The churn set of a mutation workload: the first `k` tuples of the
/// structure's first relation (the EDB edges every case mutates).
pub(crate) fn churn_set(s: &Structure, k: usize) -> Vec<Fact> {
    let rel = match s.vocabulary().relations().next() {
        Some(r) => r,
        None => return Vec::new(),
    };
    s.relation(rel)
        .iter()
        .take(k)
        .map(|t| (rel, t.to_vec()))
        .collect()
}

/// One steady-state maintenance round against a live engine: retract the
/// churn set, then reinsert it (two batches). Returns the second batch's
/// summary (the reinsertion delta).
fn churn_round(engine: &mut IncrementalEngine, churn: &[Fact]) -> kv_core::datalog::BatchSummary {
    engine.apply_batch(&[], churn);
    engine.apply_batch(churn, &[])
}

/// Every EDB fact of `s`, as the seed batch that loads a fresh durable
/// directory (epoch 1 of the WAL).
fn edb_facts(s: &Structure) -> Vec<Fact> {
    let mut facts = Vec::new();
    for rel in s.vocabulary().relations() {
        for t in s.relation(rel).iter() {
            facts.push((rel, t.to_vec()));
        }
    }
    facts
}

/// A per-case scratch directory for durable-engine measurements, namespaced
/// by pid so concurrent harness runs do not collide. The caller removes it
/// when done; a stale leftover from a killed run is clobbered here.
fn durable_scratch_dir(tag: &str, case: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("kv-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Percent saved by `planned` relative to `textual` (0 when the textual
/// count is zero or the planned count is no smaller).
fn savings_pct(textual: u64, planned: u64) -> f64 {
    if textual == 0 || planned >= textual {
        return 0.0;
    }
    (textual - planned) as f64 / textual as f64 * 100.0
}

/// Datalog engine report: fixpoint size, stage count, the storage-engine
/// counters (interned tuples, join probes, duplicate derivations), wall
/// time with rule-variant parallelism on vs. off (both semi-naive), the
/// magic-set demand columns for the case's bounded goal query, the
/// cost-based planner columns (`planned_*`, `scc_count`,
/// `probe_savings_pct`), the durability columns (`flush_overhead_pct`,
/// `recovery_ms`), and thread-scaling rows at 1/2/4 workers for both
/// planner modes.
pub fn datalog_report() -> String {
    let mut cases = Vec::new();
    for (name, program, s, query, seed) in &datalog_instances() {
        let ev = Evaluator::new(program);
        let opts = |parallel| EvalOptions {
            parallel,
            ..EvalOptions::default()
        };
        let planned_opts = |parallel| opts(parallel).with_planner(PlannerMode::CostBased);
        let result = ev.run(s, opts(true));
        // Engine counters compare the two planner modes on identical
        // sequential runs (deterministic counters, no scratch merging).
        let textual_seq = ev.run(s, opts(false));
        let planned_seq = ev.run(s, planned_opts(false));
        let parallel = time_fn(2, 15, || ev.run(s, opts(true)).stats.len());
        let sequential = time_fn(1, 5, || ev.run(s, opts(false)).stats.len());
        let planned = time_fn(2, 15, || ev.run(s, planned_opts(true)).stats.len());
        let governed = time_fn(2, 15, || {
            let gov = armed_governor();
            match ev.try_run_governed(s, opts(true), &gov) {
                Ok(result) => result.stats.len(),
                Err(e) => unreachable!("armed-but-ample governor interrupted: {e}"),
            }
        });
        // Sharded-evaluation columns: W = 4 hash-partitioned shards with
        // inter-worker delta exchange. Wall clock is honest for *this*
        // host (see the report's `host_cpus`); `shard_skew_pct` and the
        // scaling rows' `work_balance_x` are the machine-independent
        // signals — how evenly the planner's shard keys split the
        // derivation work.
        let sharded_result = ev.run(s, opts(true).with_shards(Some(4)));
        let sharded = time_fn(2, 15, || {
            ev.run(s, opts(true).with_shards(Some(4))).stats.len()
        });
        let (exchanged, skew) = sharded_result
            .shard
            .as_ref()
            .map(|ss| (ss.exchanged_tuples, ss.skew_pct()))
            .unwrap_or((0, 0.0));
        // Shard-scaling rows: W ∈ {1, 2, 4, 8}. `work_balance_x` is
        // total owned delta work over the most loaded worker's share —
        // the load-balance ceiling on parallel speedup, independent of
        // how many CPUs this host has.
        let shard_rows: Vec<String> = [1usize, 2, 4, 8]
            .iter()
            .map(|&w| {
                let r = ev.run(s, opts(true).with_shards(Some(w)));
                let t = time_fn(1, 5, || {
                    ev.run(s, opts(true).with_shards(Some(w))).stats.len()
                });
                let (exch, skew, balance) = r
                    .shard
                    .as_ref()
                    .map(|ss| {
                        let total: u64 = ss.owned.iter().sum();
                        let max = ss.owned.iter().copied().max().unwrap_or(0);
                        let balance = if max == 0 {
                            1.0
                        } else {
                            total as f64 / max as f64
                        };
                        (ss.exchanged_tuples, ss.skew_pct(), balance)
                    })
                    .unwrap_or((0, 0.0, 1.0));
                Obj::new()
                    .num("shards", w)
                    .num("sharded_ms", format!("{:.4}", ms(t.median)))
                    .num("exchanged_tuples", exch)
                    .num("shard_skew_pct", format!("{:.2}", skew))
                    .num("work_balance_x", format!("{:.2}", balance))
                    .render()
            })
            .collect();
        // Thread-scaling rows: pinned worker counts, both planner modes.
        let scaling_rows: Vec<String> = [1usize, 2, 4]
            .iter()
            .map(|&t| {
                let textual_t = time_fn(1, 5, || {
                    ev.run(s, opts(true).with_threads(Some(t))).stats.len()
                });
                let planned_t = time_fn(1, 5, || {
                    ev.run(s, planned_opts(true).with_threads(Some(t)))
                        .stats
                        .len()
                });
                Obj::new()
                    .num("threads", t)
                    .num("textual_ms", format!("{:.4}", ms(textual_t.median)))
                    .num("planned_ms", format!("{:.4}", ms(planned_t.median)))
                    .render()
            })
            .collect();
        let pattern = BindingPattern::new(vec![true; query.len()]);
        // The bench programs are all rewritable; a failure here is a
        // report bug worth surfacing loudly.
        #[allow(clippy::expect_used)]
        let magic = MagicProgram::rewrite(program, &pattern).expect("bench program rewrites");
        let compiled = magic.compile();
        let seeds = [(magic.magic_goal(), magic.seed(query))];
        #[allow(clippy::expect_used)]
        let demand_result = compiled
            .try_run_seeded(s, opts(true), &seeds)
            .expect("no limits configured");
        let demand = time_fn(2, 15, || {
            match compiled.try_run_seeded(s, opts(true), &seeds) {
                Ok(r) => r.stats.len(),
                Err(e) => unreachable!("no limits configured: {e:?}"),
            }
        });
        // Incremental maintenance columns: steady-state churn of a small
        // edge set (one retract batch + one reinsert batch per round)
        // against a live engine, vs. re-running the fixpoint from scratch
        // after every batch.
        let churn = churn_set(s, 4);
        let (mut engine, _) = IncrementalEngine::from_structure(program, s, opts(true));
        let dropped = engine.apply_batch(&[], &churn);
        let steady = engine.apply_batch(&churn, &[]);
        let incremental = time_fn(2, 15, || churn_round(&mut engine, &churn).epoch);
        // Durability columns. A durable round is the volatile round plus
        // exactly two framed WAL appends (the engine work is the same
        // code), so the flush tax is *measured directly* — time appends
        // of the engine's own average WAL record size — rather than
        // subtracted from two noisy end-to-end timings that cannot
        // resolve a few microseconds. `recovery_ms` is a cold reopen at
        // the realistic mid-cadence point: a checkpoint snapshot plus a
        // two-round WAL tail.
        let durable_dir = durable_scratch_dir("bench-durable", name);
        let durability = DurabilityOptions {
            checkpoint_every: 0, // checkpoint manually, below
            ..DurabilityOptions::default()
        };
        #[allow(clippy::expect_used)]
        let mut durable =
            DurableEngine::open(program, s, opts(true), &durable_dir, durability.clone())
                .expect("durable scratch dir opens");
        #[allow(clippy::expect_used)]
        durable
            .apply_batch(&edb_facts(s), &[])
            .expect("seed batch persists");
        let before = durable.flush_stats();
        for _ in 0..4 {
            #[allow(clippy::expect_used)]
            durable.apply_batch(&[], &churn).expect("retract persists");
            #[allow(clippy::expect_used)]
            durable.apply_batch(&churn, &[]).expect("reinsert persists");
        }
        let after = durable.flush_stats();
        let record_bytes =
            (after.wal_bytes - before.wal_bytes) / (after.wal_records - before.wal_records).max(1);
        let payload = vec![0u8; record_bytes as usize];
        #[allow(clippy::expect_used)]
        let mut tax_log = SegmentedLog::create(&durable_dir, "bench-flush-tax", 1 << 20)
            .expect("tax log creates");
        let flush_tax = time_fn(3, 31, || {
            #[allow(clippy::expect_used)]
            tax_log.append(&payload).expect("tax append");
            #[allow(clippy::expect_used)]
            tax_log.append(&payload).expect("tax append");
            2u64
        });
        drop(tax_log);
        SegmentedLog::remove_all(&durable_dir, "bench-flush-tax");
        #[allow(clippy::expect_used)]
        durable.checkpoint().expect("snapshot persists");
        for _ in 0..2 {
            #[allow(clippy::expect_used)]
            durable.apply_batch(&[], &churn).expect("retract persists");
            #[allow(clippy::expect_used)]
            durable.apply_batch(&churn, &[]).expect("reinsert persists");
        }
        drop(durable);
        let recovery = time_fn(1, 5, || {
            #[allow(clippy::expect_used)]
            DurableEngine::open(program, s, opts(true), &durable_dir, durability.clone())
                .expect("recovery succeeds")
                .epoch()
        });
        let _ = std::fs::remove_dir_all(&durable_dir);
        let flush_overhead =
            flush_tax.median.as_secs_f64() / incremental.median.as_secs_f64().max(1e-12) * 100.0;
        cases.push(
            Obj::new()
                .str("name", name)
                .num("seed", seed)
                .num("threads", thread_count())
                .num("stages", result.stage_count())
                .num("tuples", result.idb.iter().map(|r| r.len()).sum::<usize>())
                .num("tuples_interned", result.eval_stats.tuples_interned)
                .num("join_probes", textual_seq.eval_stats.join_probes)
                .num(
                    "duplicate_derivations",
                    textual_seq.eval_stats.duplicate_derivations,
                )
                .num("planned_join_probes", planned_seq.eval_stats.join_probes)
                .num(
                    "planned_duplicate_derivations",
                    planned_seq.eval_stats.duplicate_derivations,
                )
                .num("planned_block_probes", planned_seq.eval_stats.block_probes)
                .num("planned_gallop_steps", planned_seq.eval_stats.gallop_steps)
                .num("planned_wcoj_rules", planned_seq.eval_stats.wcoj_rules)
                .num("scc_count", ev.compiled().scc_count())
                .num(
                    "probe_savings_pct",
                    format!(
                        "{:.2}",
                        savings_pct(
                            textual_seq.eval_stats.join_probes,
                            planned_seq.eval_stats.join_probes,
                        )
                    ),
                )
                .num("demand_tuples", demand_result.eval_stats.tuples_interned)
                .num("magic_probes", demand_result.eval_stats.magic_probes)
                .num("parallel_ms", format!("{:.4}", ms(parallel.median)))
                .num("sequential_ms", format!("{:.4}", ms(sequential.median)))
                .num("planned_ms", format!("{:.4}", ms(planned.median)))
                .num("sharded_ms", format!("{:.4}", ms(sharded.median)))
                .num("exchanged_tuples", exchanged)
                .num("shard_skew_pct", format!("{:.2}", skew))
                .num("demand_ms", format!("{:.4}", ms(demand.median)))
                // Per maintenance round (one retract + one reinsert batch
                // of the churn set) against the live engine.
                .num("incremental_ms", format!("{:.4}", ms(incremental.median)))
                // Durable engine: WAL tax per maintenance round, and the
                // wall time of a cold reopen (recovery) of its directory.
                .num("flush_overhead_pct", format!("{:.2}", flush_overhead))
                .num("recovery_ms", format!("{:.4}", ms(recovery.median)))
                .num("delta_tuples", steady.delta_tuples)
                .num("rederived_tuples", dropped.rederived_tuples)
                .num("governed_ms", format!("{:.4}", ms(governed.median)))
                .num(
                    "governance_overhead_pct",
                    format!("{:.2}", overhead_pct(parallel.min, governed.min)),
                )
                .raw("scaling", format!("[{}]", scaling_rows.join(", ")))
                .raw("shard_scaling", format!("[{}]", shard_rows.join(", "))),
        );
    }
    cases.push(mutation_case());
    render_report(&cases)
}

/// A disjoint union of `blocks` random digraphs of `k` nodes each: the
/// steady-state "live service" shape of the mutation workload, where the
/// EDB is many independent tenants/regions and any one batch only touches
/// one of them. Edges are sampled independently within each block with
/// probability `p`; there are no cross-block edges, so a mutation's blast
/// radius is bounded by its own component's closure.
pub(crate) fn component_graph(blocks: usize, k: usize, p: f64, seed: u64) -> Structure {
    let mut g = Digraph::new(blocks * k);
    let mut rng = SplitMix64::seed_from_u64(seed);
    for b in 0..blocks {
        for u in 0..k {
            for v in 0..k {
                if u != v && rng.gen_bool(p) {
                    g.add_edge((b * k + u) as u32, (b * k + v) as u32);
                }
            }
        }
    }
    g.to_structure()
}

/// The dedicated mutation workload: `transitive_closure` over a
/// multi-tenant component graph (48 disjoint random blocks of 12 nodes),
/// churning a 4-edge set inside one block (one retract batch + one
/// reinsert batch per round) against a live [`IncrementalEngine`].
/// `scratch_ms` is the cost of re-running the from-scratch fixpoint after
/// each of the round's two batches; `speedup_x` is scratch-per-round over
/// incremental-per-round — the steady-state advantage of maintenance.
///
/// The component shape is the honest setting for maintenance: deletion
/// work is proportional to the mutated block's closure, not the whole
/// EDB's. (A single dense SCC is the known DRed pathology — retracting a
/// few edges overdeletes almost the entire closure before rederiving it,
/// and no incremental algorithm beats from-scratch there; see
/// EXPERIMENTS.md for the measured contrast.)
fn mutation_case() -> Obj {
    let program = transitive_closure();
    let s = component_graph(48, 12, 0.25, 7);
    let churn = churn_set(&s, 4);
    let ev = Evaluator::new(&program);
    let opts = EvalOptions::default();
    let (mut engine, _) = IncrementalEngine::from_structure(&program, &s, opts);
    let dropped = engine.apply_batch(&[], &churn);
    let steady = engine.apply_batch(&churn, &[]);
    let round = time_fn(2, 15, || churn_round(&mut engine, &churn).epoch);
    let scratch = time_fn(2, 15, || ev.run(&s, opts).stats.len());
    let speedup = (2.0 * scratch.median.as_secs_f64()) / round.median.as_secs_f64().max(1e-9);
    // Shard-scaling rows for maintenance: the same churn round through
    // engines pinned at W ∈ {1, 2, 4, 8} shards. Batch routing is
    // exercised end to end (owner-sorted appends, per-stage exchange);
    // `exchanged_tuples` counts the reinsert batch's cross-worker
    // traffic. Wall clock is bounded by the report's `host_cpus`.
    let shard_rows: Vec<String> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| {
            let w_opts = opts.with_shards(Some(w));
            let (mut sharded_engine, _) = IncrementalEngine::from_structure(&program, &s, w_opts);
            sharded_engine.apply_batch(&[], &churn);
            let summary = sharded_engine.apply_batch(&churn, &[]);
            let t = time_fn(1, 9, || churn_round(&mut sharded_engine, &churn).epoch);
            Obj::new()
                .num("shards", w)
                .num("incremental_ms", format!("{:.4}", ms(t.median)))
                .num("exchanged_tuples", summary.exchanged_tuples)
                .render()
        })
        .collect();
    Obj::new()
        .str("name", "tc_mutation_tenants48x12_churn4")
        .num("seed", 7)
        .num("threads", thread_count())
        .num("churn_edges", churn.len())
        .num("incremental_ms", format!("{:.4}", ms(round.median)))
        .num("scratch_ms", format!("{:.4}", ms(scratch.median)))
        .num("speedup_x", format!("{:.2}", speedup))
        .num("delta_tuples", steady.delta_tuples)
        .num("deleted_tuples", dropped.deleted_tuples)
        .num("rederived_tuples", dropped.rederived_tuples)
        .raw("shard_scaling", format!("[{}]", shard_rows.join(", ")))
}

/// The `--smoke` durability gate for one case: loads `s` plus one churn
/// round (retract then reinsert) through a [`DurableEngine`] in a scratch
/// directory, drops the handle, recovers from disk, and compares the
/// recovered engine against `baseline` — a volatile engine that applied
/// the same batches. The cadence of 2 makes the run cross a checkpoint
/// *and* leave a WAL tail, so recovery exercises both the snapshot path
/// and replay. Every EDB relation must match live-tuple-for-live-tuple
/// with equal support counts, and every IDB must hold exactly the same
/// set. Returns the violations (empty = pass).
fn durable_recovery_check(
    name: &str,
    program: &Program,
    s: &Structure,
    churn: &[Fact],
    baseline: &IncrementalEngine,
) -> Vec<String> {
    let mut violations = Vec::new();
    let dir = durable_scratch_dir("smoke-durable", name);
    let durability = DurabilityOptions {
        checkpoint_every: 2,
        ..DurabilityOptions::default()
    };
    let opts = EvalOptions::default();
    let written = (|| -> Result<(), kv_core::datalog::RecoveryError> {
        let mut durable = DurableEngine::open(program, s, opts, &dir, durability.clone())?;
        durable.apply_batch(&edb_facts(s), &[])?;
        durable.apply_batch(&[], churn)?;
        durable.apply_batch(churn, &[])?;
        Ok(())
    })();
    if let Err(e) = written {
        violations.push(format!("{name}: durable batches failed to persist: {e}"));
        let _ = std::fs::remove_dir_all(&dir);
        return violations;
    }
    match DurableEngine::open(program, s, opts, &dir, durability) {
        Err(e) => violations.push(format!("{name}: durable recovery failed: {e}")),
        Ok(recovered) => {
            let rec = recovered.engine();
            for rel in s.vocabulary().relations() {
                let base = baseline.edb_store(rel);
                let got = rec.edb_store(rel);
                let same = base.live_len() == got.live_len()
                    && base.live_iter().all(|t| {
                        let bs = base.lookup(t).map(|id| base.support(id));
                        let gs = got.lookup(t).map(|id| got.support(id));
                        got.contains_live(t) && bs == gs
                    });
                if !same {
                    violations.push(format!(
                        "{name}: recovered EDB relation {} != volatile engine",
                        rel.0
                    ));
                }
            }
            for i in 0..program.idb_count() {
                let base = baseline.idb_store(IdbId(i));
                let got = rec.idb_store(IdbId(i));
                let same = base.live_len() == got.live_len()
                    && base.live_iter().all(|t| got.contains_live(t));
                if !same {
                    violations.push(format!("{name}: recovered IDB {i} != volatile engine"));
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    violations
}

/// CI gate over the demand paths and the cost-based planner, on the exact
/// report workloads:
///
/// * every Datalog case's magic-set run must give the same answer to the
///   bounded goal query as full saturation, without deriving more tuples;
/// * every Datalog case's cost-based run must be stage-identical to the
///   textual run, reach the same fixpoint, and issue no more join probes
///   or duplicate derivations;
/// * every Datalog case must reach the same fixpoint through the same
///   stages under both forced join lowerings (`Binary` vs `Generic` —
///   the worst-case-optimal executor is a pure execution-strategy swap);
/// * every Datalog case's sharded run (W ∈ {1, 4} hash-partitioned
///   shards with delta exchange) must be stage-identical to the
///   unsharded run with the same fixpoint, and a single shard must
///   exchange nothing;
/// * every Datalog case's incremental engine, after a churn batch
///   (retract then reinsert a small edge set), must hold exactly the
///   from-scratch fixpoint of its materialized EDB;
/// * every Datalog case's durable engine, re-opened from disk after the
///   same batches (crossing a checkpoint and leaving a WAL tail), must
///   match the volatile engine tuple-for-tuple with equal support counts;
/// * every pebble case's lazy solver must name the same winner as the
///   eager worklist solver, with an arena no larger.
///
/// Returns the list of violations (empty = pass).
pub fn smoke_check() -> Vec<String> {
    let mut violations = Vec::new();
    for (name, program, s, query, _seed) in &datalog_instances() {
        let ev = Evaluator::new(program);
        let full = ev.run(s, EvalOptions::default());
        // Incremental ≡ scratch: after each batch of the churn round the
        // maintained IDB must equal a from-scratch fixpoint over the
        // engine's own materialized EDB.
        let churn = churn_set(s, 4);
        let (mut engine, _) = IncrementalEngine::from_structure(program, s, EvalOptions::default());
        for phase in ["retract", "reinsert"] {
            if phase == "retract" {
                engine.apply_batch(&[], &churn);
            } else {
                engine.apply_batch(&churn, &[]);
            }
            let scratch = ev.run(&engine.edb_structure(), EvalOptions::default());
            for i in 0..program.idb_count() {
                let store = engine.idb_store(IdbId(i));
                let same = store.live_len() == scratch.idb[i].len()
                    && scratch.idb[i].iter().all(|t| store.contains_live(t));
                if !same {
                    violations.push(format!(
                        "{name}: incremental IDB {i} after {phase} batch != from-scratch fixpoint"
                    ));
                }
            }
        }
        // Recovered ≡ clean: the same load and churn round through a
        // durable engine, killed (dropped) and re-opened from disk, must
        // reproduce this volatile engine's state tuple-for-tuple.
        violations.extend(durable_recovery_check(name, program, s, &churn, &engine));
        let full_holds = full.idb[program.goal().0].contains(&query[..]);
        let full_tuples = full.eval_stats.tuples_interned;
        // Planned ≡ textual differential (sequential: exact counters).
        let seq = EvalOptions {
            parallel: false,
            ..EvalOptions::default()
        };
        let textual = ev.run(s, seq);
        let planned = ev.run(s, seq.with_planner(PlannerMode::CostBased));
        if !textual.same_stages(&planned) {
            violations.push(format!("{name}: planned run is not stage-identical"));
        }
        if textual.idb != planned.idb {
            violations.push(format!("{name}: planned fixpoint differs from textual"));
        }
        if planned.eval_stats.join_probes > textual.eval_stats.join_probes {
            violations.push(format!(
                "{name}: planned join_probes {} > textual {}",
                planned.eval_stats.join_probes, textual.eval_stats.join_probes
            ));
        }
        if planned.eval_stats.duplicate_derivations > textual.eval_stats.duplicate_derivations {
            violations.push(format!(
                "{name}: planned duplicate_derivations {} > textual {}",
                planned.eval_stats.duplicate_derivations, textual.eval_stats.duplicate_derivations
            ));
        }
        // Sharded ≡ unsharded: hash-partitioned evaluation is a pure
        // work-partitioning swap — stage identity and the fixpoint are
        // shard-count-free, and a single shard exchanges nothing.
        for w in [1usize, 4] {
            let sharded = ev.run(s, EvalOptions::default().with_shards(Some(w)));
            if !sharded.same_stages(&full) {
                violations.push(format!(
                    "{name}: sharded (W={w}) run is not stage-identical to unsharded"
                ));
            }
            for (i, (a, b)) in full.idb.iter().zip(&sharded.idb).enumerate() {
                let same = a.len() == b.len() && a.iter().all(|t| b.contains(t));
                if !same {
                    violations.push(format!(
                        "{name}: sharded (W={w}) IDB {i} differs from unsharded fixpoint"
                    ));
                }
            }
            let exchanged = sharded.shard.as_ref().map_or(0, |ss| ss.exchanged_tuples);
            if w == 1 && exchanged != 0 {
                violations.push(format!(
                    "{name}: single-shard run exchanged {exchanged} tuple(s)"
                ));
            }
        }
        // Generic ≡ binary differential: the worst-case-optimal lowering
        // must be a pure execution-strategy swap (same fixpoint, same
        // stage structure) on every report workload.
        let binary = ev.run(
            s,
            seq.with_planner(PlannerMode::CostBased)
                .with_lowering(JoinLowering::Binary),
        );
        let generic = ev.run(
            s,
            seq.with_planner(PlannerMode::CostBased)
                .with_lowering(JoinLowering::Generic),
        );
        if binary.idb != generic.idb {
            violations.push(format!(
                "{name}: generic lowering fixpoint differs from binary"
            ));
        }
        if !binary.same_stages(&generic) {
            violations.push(format!(
                "{name}: generic lowering is not stage-identical to binary"
            ));
        }
        let pattern = BindingPattern::new(vec![true; query.len()]);
        let magic = match MagicProgram::rewrite(program, &pattern) {
            Ok(m) => m,
            Err(e) => {
                violations.push(format!("{name}: magic rewrite failed: {e}"));
                continue;
            }
        };
        let seeds = [(magic.magic_goal(), magic.seed(query))];
        let demand = match magic
            .compile()
            .try_run_seeded(s, EvalOptions::default(), &seeds)
        {
            Ok(r) => r,
            Err(e) => {
                violations.push(format!("{name}: demand run hit a limit: {e:?}"));
                continue;
            }
        };
        let demand_holds = demand.idb[magic.goal().0].contains(&query[..]);
        if demand_holds != full_holds {
            violations.push(format!(
                "{name}: demand answer {demand_holds} != full answer {full_holds}"
            ));
        }
        if demand.eval_stats.tuples_interned > full_tuples {
            violations.push(format!(
                "{name}: demand_tuples {} > tuples {}",
                demand.eval_stats.tuples_interned, full_tuples
            ));
        }
    }
    for (name, a, b, k, _seed) in &pebble_instances() {
        let eager = ExistentialGame::solve(a, b, *k, HomKind::OneToOne);
        let lazy = ExistentialGame::solve_lazy(a, b, *k, HomKind::OneToOne);
        if lazy.winner() != eager.winner() {
            violations.push(format!(
                "{name}: lazy winner {:?} != eager winner {:?}",
                lazy.winner(),
                eager.winner()
            ));
        }
        if lazy.arena_size() > eager.arena_size() {
            violations.push(format!(
                "{name}: lazy arena {} > eager arena {}",
                lazy.arena_size(),
                eager.arena_size()
            ));
        }
    }
    violations
}

/// Extracts the numeric value of `key` inside the case object named
/// `case` from a report rendered by this module (one flat object per
/// line). Returns `None` when the case or key is absent — committed
/// reports predating a column simply skip its gate.
fn extract_case_num(report: &str, case: &str, key: &str) -> Option<f64> {
    let line = report
        .lines()
        .find(|l| l.contains(&format!("\"name\": \"{case}\"")))?;
    let tail = line.split(&format!("\"{key}\": ")).nth(1)?;
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// CI regression gate over the engine counters: re-measures every Datalog
/// case and compares `join_probes` / `duplicate_derivations` (both
/// planner modes) against the committed `BENCH_datalog.json` contents.
/// A counter more than 10% above its committed value is a violation;
/// counters are deterministic for fixed seeds, so anything beyond noise
/// margin means an engine regression. Returns the violations (empty =
/// pass); missing cases or columns in the committed report are skipped.
pub fn regression_check(committed: &str) -> Vec<String> {
    const TOLERANCE: f64 = 1.10;
    let mut violations = Vec::new();
    for (name, program, s, _query, _seed) in &datalog_instances() {
        let ev = Evaluator::new(program);
        let seq = EvalOptions {
            parallel: false,
            ..EvalOptions::default()
        };
        let textual = ev.run(s, seq);
        let planned = ev.run(s, seq.with_planner(PlannerMode::CostBased));
        let measured: [(&str, u64); 6] = [
            ("join_probes", textual.eval_stats.join_probes),
            (
                "duplicate_derivations",
                textual.eval_stats.duplicate_derivations,
            ),
            ("planned_join_probes", planned.eval_stats.join_probes),
            (
                "planned_duplicate_derivations",
                planned.eval_stats.duplicate_derivations,
            ),
            ("planned_block_probes", planned.eval_stats.block_probes),
            ("planned_gallop_steps", planned.eval_stats.gallop_steps),
        ];
        for (key, current) in measured {
            let Some(baseline) = extract_case_num(committed, name, key) else {
                continue;
            };
            if (current as f64) > baseline * TOLERANCE {
                violations.push(format!(
                    "{name}: {key} {current} regressed >10% over committed {baseline}"
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_are_well_formed() {
        for report in [pebble_report(), datalog_report()] {
            assert!(report.starts_with("{\n  \"revision\":"));
            assert!(report.trim_end().ends_with('}'));
            assert_eq!(
                report.matches('{').count(),
                report.matches('}').count(),
                "balanced braces"
            );
            assert!(report.contains("\"cases\": ["));
            assert!(report.contains("\"generated_utc\""));
            assert!(report.contains("\"threads\""));
            assert!(report.contains("\"seed\""));
        }
        let datalog = datalog_report();
        assert!(datalog.contains("\"demand_tuples\""));
        assert!(datalog.contains("\"planned_ms\""));
        assert!(datalog.contains("\"scc_count\""));
        assert!(datalog.contains("\"probe_savings_pct\""));
        assert!(datalog.contains("\"planned_block_probes\""));
        assert!(datalog.contains("\"planned_gallop_steps\""));
        assert!(datalog.contains("\"planned_wcoj_rules\""));
        assert!(datalog.contains("\"tri_layered_m12_b3\""));
        assert!(datalog.contains("\"incremental_ms\""));
        assert!(datalog.contains("\"flush_overhead_pct\""));
        assert!(datalog.contains("\"recovery_ms\""));
        assert!(datalog.contains("\"delta_tuples\""));
        assert!(datalog.contains("\"rederived_tuples\""));
        assert!(datalog.contains("\"tc_mutation_tenants48x12_churn4\""));
        assert!(datalog.contains("\"speedup_x\""));
        assert!(datalog.contains("\"scaling\": [{\"threads\": 1,"));
        assert!(datalog.contains("\"host_cpus\""));
        assert!(datalog.contains("\"sharded_ms\""));
        assert!(datalog.contains("\"exchanged_tuples\""));
        assert!(datalog.contains("\"shard_skew_pct\""));
        assert!(datalog.contains("\"work_balance_x\""));
        assert!(datalog.contains("\"shard_scaling\": [{\"shards\": 1,"));
        assert!(pebble_report().contains("\"lazy_arena_size\""));
    }

    #[test]
    fn utc_timestamp_is_iso_shaped() {
        let t = utc_timestamp();
        assert_eq!(t.len(), 20, "{t}");
        assert_eq!(&t[4..5], "-");
        assert_eq!(&t[10..11], "T");
        assert!(t.ends_with('Z'), "{t}");
    }

    #[test]
    fn smoke_check_passes_on_the_report_workloads() {
        let violations = smoke_check();
        assert!(violations.is_empty(), "smoke violations: {violations:?}");
    }

    #[test]
    fn regression_check_accepts_current_counters_and_flags_inflated_ones() {
        // A committed report that matches today's counters passes…
        let committed = datalog_report();
        let violations = regression_check(&committed);
        assert!(violations.is_empty(), "regressions: {violations:?}");
        // …and one whose counters are much smaller (as if the engine had
        // since regressed >10% relative to it) fails.
        let shrunk = committed
            .lines()
            .map(|l| {
                if l.contains("\"name\":") {
                    l.replace("\"join_probes\": ", "\"join_probes\": 0.")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(
            !regression_check(&shrunk).is_empty(),
            "shrunken baseline must flag regressions"
        );
        // Reports missing the planner columns entirely (older baselines)
        // are tolerated.
        assert!(regression_check("{}").is_empty());
    }
}
