//! Machine-readable benchmark reports (`BENCH_pebble.json`,
//! `BENCH_datalog.json`), emitted by the harness binary.
//!
//! The JSON is hand-rolled (the workspace builds offline with zero
//! external dependencies): every value is a number, a string of known-safe
//! characters, or a flat object, so no escaping machinery is needed.
//!
//! Next to the eager baselines each report carries the demand-driven
//! columns: `demand_ms`/`demand_tuples`/`magic_probes` for the magic-set
//! rewrite of each Datalog case queried at a fixed goal tuple, and
//! `lazy_ms`/`lazy_arena_size` for the lazy, root-directed pebble solver.
//! [`smoke_check`] cross-validates the demand paths against the eager
//! ones (same answers, no extra derivations) and is wired to the
//! harness's `--smoke` flag for CI.

use crate::microbench::time_fn;
use kv_core::datalog::programs::{avoiding_path, q_kl, transitive_closure};
use kv_core::datalog::{BindingPattern, EvalOptions, Evaluator, MagicProgram, Program};
use kv_core::pebble::win_iteration::solve_by_win_iteration;
use kv_core::pebble::ExistentialGame;
use kv_core::structures::generators::{directed_path, random_digraph};
use kv_core::structures::govern::{Budget, CancelToken, Deadline, Governor};
use kv_core::structures::par::thread_count;
use kv_core::structures::{Element, HomKind, Structure};
use std::time::Duration;

/// A governor with every interrupt source armed (step budget, deadline,
/// cancellation token) but none close to tripping: the cost it measures
/// is pure governance accounting, not interruption handling.
fn armed_governor() -> Governor {
    Governor::new(
        Budget::steps(u64::MAX / 2),
        Deadline::within(Duration::from_secs(3600)),
        CancelToken::new(),
    )
}

/// Percent overhead of `governed` over `plain`, from the *minimum*
/// observed times (the standard microbenchmark noise filter), clamped at
/// 0 from below so residual timer noise does not render as a negative
/// cost.
fn overhead_pct(plain: Duration, governed: Duration) -> f64 {
    let p = plain.as_secs_f64();
    let g = governed.as_secs_f64();
    if p <= 0.0 {
        return 0.0;
    }
    ((g - p) / p * 100.0).max(0.0)
}

/// A flat JSON object: keys paired with pre-rendered JSON values.
struct Obj(Vec<(String, String)>);

impl Obj {
    fn new() -> Self {
        Self(Vec::new())
    }
    fn str(mut self, k: &str, v: &str) -> Self {
        self.0.push((k.into(), format!("\"{v}\"")));
        self
    }
    fn num(mut self, k: &str, v: impl std::fmt::Display) -> Self {
        self.0.push((k.into(), v.to_string()));
        self
    }
    fn render(&self) -> String {
        let fields: Vec<String> = self
            .0
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", fields.join(", "))
    }
}

fn render_report(cases: &[Obj]) -> String {
    let rows: Vec<String> = cases
        .iter()
        .map(|c| format!("    {}", c.render()))
        .collect();
    format!(
        "{{\n  \"threads\": {},\n  \"cases\": [\n{}\n  ]\n}}\n",
        thread_count(),
        rows.join(",\n")
    )
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The pebble-report workload: `(name, A, B, k)`. The Duplicator-win
/// cases are where the lazy solver's early termination pays — it stops as
/// soon as a forth-closed witness family around the root is complete.
fn pebble_instances() -> Vec<(String, Structure, Structure, usize)> {
    vec![
        (
            "path_9_vs_8_k2".into(),
            directed_path(9),
            directed_path(8),
            2,
        ),
        (
            "path_7_vs_6_k3".into(),
            directed_path(7),
            directed_path(6),
            3,
        ),
        (
            "path_7_vs_9_k2".into(),
            directed_path(7),
            directed_path(9),
            2,
        ),
        (
            "path_6_vs_8_k3".into(),
            directed_path(6),
            directed_path(8),
            3,
        ),
        (
            "random_7_vs_7_k2".into(),
            random_digraph(7, 0.3, 42).to_structure(),
            random_digraph(7, 0.3, 43).to_structure(),
            2,
        ),
        (
            "random_6_vs_6_k3".into(),
            random_digraph(6, 0.3, 44).to_structure(),
            random_digraph(6, 0.3, 45).to_structure(),
            3,
        ),
    ]
}

/// The Datalog-report workload: `(name, program, input, goal tuple)`.
/// The goal tuple is the bounded query the demand columns measure — every
/// goal position bound, so the magic-set rewrite seeds from the full
/// tuple.
fn datalog_instances() -> Vec<(String, Program, Structure, Vec<Element>)> {
    vec![
        (
            "tc_n60_p0.06".into(),
            transitive_closure(),
            random_digraph(60, 0.06, 7).to_structure(),
            vec![0, 59],
        ),
        (
            "avoiding_path_n16_p0.12".into(),
            avoiding_path(),
            random_digraph(16, 0.12, 8).to_structure(),
            vec![0, 15, 7],
        ),
        (
            "q_2_1_n12_p0.15".into(),
            q_kl(2, 1),
            random_digraph(12, 0.15, 9).to_structure(),
            vec![0, 10, 11, 5],
        ),
    ]
}

/// Pebble-game solver report: arena size, propagation edge count, and the
/// wall time of the worklist solver next to the paper's naive `Win_k`
/// value iteration and the lazy demand-driven solver on the same instance.
pub fn pebble_report() -> String {
    let mut cases = Vec::new();
    for (name, a, b, k) in &pebble_instances() {
        let game = ExistentialGame::solve(a, b, *k, HomKind::OneToOne);
        let lazy_game = ExistentialGame::solve_lazy(a, b, *k, HomKind::OneToOne);
        let worklist = time_fn(2, 15, || {
            ExistentialGame::solve(a, b, *k, HomKind::OneToOne).winner()
        });
        let naive = time_fn(1, 5, || {
            solve_by_win_iteration(a, b, *k, HomKind::OneToOne).0
        });
        let lazy = time_fn(2, 15, || {
            ExistentialGame::solve_lazy(a, b, *k, HomKind::OneToOne).winner()
        });
        let governed = time_fn(2, 15, || {
            let gov = armed_governor();
            match ExistentialGame::try_solve(a, b, *k, HomKind::OneToOne, &gov) {
                Ok(game) => game.winner(),
                Err(e) => unreachable!("armed-but-ample governor interrupted: {e}"),
            }
        });
        cases.push(
            Obj::new()
                .str("name", name)
                .num("k", k)
                .num("threads", thread_count())
                .num("arena_size", game.arena_size())
                .num("arena_edges", game.arena_edge_count())
                .num("lazy_arena_size", lazy_game.arena_size())
                .num("worklist_ms", format!("{:.4}", ms(worklist.median)))
                .num("value_iteration_ms", format!("{:.4}", ms(naive.median)))
                .num("lazy_ms", format!("{:.4}", ms(lazy.median)))
                .num("governed_ms", format!("{:.4}", ms(governed.median)))
                .num(
                    "governance_overhead_pct",
                    format!("{:.2}", overhead_pct(worklist.min, governed.min)),
                ),
        );
    }
    render_report(&cases)
}

/// Datalog engine report: fixpoint size, stage count, the storage-engine
/// counters (interned tuples, join probes, duplicate derivations), wall
/// time with rule-variant parallelism on vs. off (both semi-naive), and
/// the magic-set demand columns for the case's bounded goal query.
pub fn datalog_report() -> String {
    let mut cases = Vec::new();
    for (name, program, s, query) in &datalog_instances() {
        let ev = Evaluator::new(program);
        let opts = |parallel| EvalOptions {
            parallel,
            ..EvalOptions::default()
        };
        let result = ev.run(s, opts(true));
        let parallel = time_fn(2, 15, || ev.run(s, opts(true)).stats.len());
        let sequential = time_fn(1, 5, || ev.run(s, opts(false)).stats.len());
        let governed = time_fn(2, 15, || {
            let gov = armed_governor();
            match ev.try_run_governed(s, opts(true), &gov) {
                Ok(result) => result.stats.len(),
                Err(e) => unreachable!("armed-but-ample governor interrupted: {e}"),
            }
        });
        let pattern = BindingPattern::new(vec![true; query.len()]);
        // The bench programs are all rewritable; a failure here is a
        // report bug worth surfacing loudly.
        #[allow(clippy::expect_used)]
        let magic = MagicProgram::rewrite(program, &pattern).expect("bench program rewrites");
        let compiled = magic.compile();
        let seeds = [(magic.magic_goal(), magic.seed(query))];
        #[allow(clippy::expect_used)]
        let demand_result = compiled
            .try_run_seeded(s, opts(true), &seeds)
            .expect("no limits configured");
        let demand = time_fn(2, 15, || {
            match compiled.try_run_seeded(s, opts(true), &seeds) {
                Ok(r) => r.stats.len(),
                Err(e) => unreachable!("no limits configured: {e:?}"),
            }
        });
        cases.push(
            Obj::new()
                .str("name", name)
                .num("threads", thread_count())
                .num("stages", result.stage_count())
                .num("tuples", result.idb.iter().map(|r| r.len()).sum::<usize>())
                .num("tuples_interned", result.eval_stats.tuples_interned)
                .num("join_probes", result.eval_stats.join_probes)
                .num(
                    "duplicate_derivations",
                    result.eval_stats.duplicate_derivations,
                )
                .num("demand_tuples", demand_result.eval_stats.tuples_interned)
                .num("magic_probes", demand_result.eval_stats.magic_probes)
                .num("parallel_ms", format!("{:.4}", ms(parallel.median)))
                .num("sequential_ms", format!("{:.4}", ms(sequential.median)))
                .num("demand_ms", format!("{:.4}", ms(demand.median)))
                .num("governed_ms", format!("{:.4}", ms(governed.median)))
                .num(
                    "governance_overhead_pct",
                    format!("{:.2}", overhead_pct(parallel.min, governed.min)),
                ),
        );
    }
    render_report(&cases)
}

/// CI gate over the demand paths, on the exact report workloads:
///
/// * every Datalog case's magic-set run must give the same answer to the
///   bounded goal query as full saturation, without deriving more tuples;
/// * every pebble case's lazy solver must name the same winner as the
///   eager worklist solver, with an arena no larger.
///
/// Returns the list of violations (empty = pass).
pub fn smoke_check() -> Vec<String> {
    let mut violations = Vec::new();
    for (name, program, s, query) in &datalog_instances() {
        let full = Evaluator::new(program).run(s, EvalOptions::default());
        let full_holds = full.idb[program.goal().0].contains(&query[..]);
        let full_tuples = full.eval_stats.tuples_interned;
        let pattern = BindingPattern::new(vec![true; query.len()]);
        let magic = match MagicProgram::rewrite(program, &pattern) {
            Ok(m) => m,
            Err(e) => {
                violations.push(format!("{name}: magic rewrite failed: {e}"));
                continue;
            }
        };
        let seeds = [(magic.magic_goal(), magic.seed(query))];
        let demand = match magic
            .compile()
            .try_run_seeded(s, EvalOptions::default(), &seeds)
        {
            Ok(r) => r,
            Err(e) => {
                violations.push(format!("{name}: demand run hit a limit: {e:?}"));
                continue;
            }
        };
        let demand_holds = demand.idb[magic.goal().0].contains(&query[..]);
        if demand_holds != full_holds {
            violations.push(format!(
                "{name}: demand answer {demand_holds} != full answer {full_holds}"
            ));
        }
        if demand.eval_stats.tuples_interned > full_tuples {
            violations.push(format!(
                "{name}: demand_tuples {} > tuples {}",
                demand.eval_stats.tuples_interned, full_tuples
            ));
        }
    }
    for (name, a, b, k) in &pebble_instances() {
        let eager = ExistentialGame::solve(a, b, *k, HomKind::OneToOne);
        let lazy = ExistentialGame::solve_lazy(a, b, *k, HomKind::OneToOne);
        if lazy.winner() != eager.winner() {
            violations.push(format!(
                "{name}: lazy winner {:?} != eager winner {:?}",
                lazy.winner(),
                eager.winner()
            ));
        }
        if lazy.arena_size() > eager.arena_size() {
            violations.push(format!(
                "{name}: lazy arena {} > eager arena {}",
                lazy.arena_size(),
                eager.arena_size()
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_are_well_formed() {
        for report in [pebble_report(), datalog_report()] {
            assert!(report.starts_with("{\n  \"threads\":"));
            assert!(report.trim_end().ends_with('}'));
            assert_eq!(
                report.matches('{').count(),
                report.matches('}').count(),
                "balanced braces"
            );
            assert!(report.contains("\"cases\": ["));
            assert!(report.contains("\"threads\""));
        }
        assert!(datalog_report().contains("\"demand_tuples\""));
        assert!(pebble_report().contains("\"lazy_arena_size\""));
    }

    #[test]
    fn smoke_check_passes_on_the_report_workloads() {
        let violations = smoke_check();
        assert!(violations.is_empty(), "smoke violations: {violations:?}");
    }
}
