//! Open-loop load generation for the multi-tenant query service
//! (`BENCH_service.json`).
//!
//! The workload is the `tc_mutation_tenants` shape: a disjoint union of
//! random blocks under `transitive_closure`, where each *popular* tenant
//! owns one block and replays a small fixed pool of reachability queries
//! inside it (the repeat-query traffic the shared cache exists for), one
//! *scan* tenant issues uniform random pairs across the whole universe
//! (cache-hostile), and one *starved* tenant runs with a tiny admission
//! credit balance so the QoS layer's deterministic rejection is exercised
//! under load. A writer thread concurrently churns edges in one block
//! (retract/reinsert batches), so every number below is measured under
//! mixed read/write multi-tenant contention.
//!
//! The generator is **open-loop**: each client thread schedules arrival
//! `j` at `start + j·Δ` and measures latency as completion minus the
//! *scheduled* arrival — a service that falls behind accumulates queueing
//! delay in its percentiles instead of silently back-pressuring the
//! generator (closed-loop measurement hides exactly the overload the
//! admission layer is for).

use crate::report::{component_graph, render_report, Obj};
use kv_core::datalog::programs::transitive_closure;
use kv_core::datalog::Fact;
use kv_core::structures::{Element, SplitMix64};
use kv_core::ProgramQuery;
use kv_service::{
    QueryId, QueryService, Request, Response, ServiceBuilder, TenantId, TenantPolicy,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape and intensity of one service-bench run.
pub struct ServiceBenchConfig {
    /// Disjoint random blocks in the EDB.
    pub blocks: usize,
    /// Nodes per block.
    pub block_size: usize,
    /// Within-block edge probability.
    pub edge_p: f64,
    /// RNG seed (graph, query pools, and schedules all derive from it).
    pub seed: u64,
    /// Popular (repeat-query) tenants; each owns one block.
    pub popular_tenants: usize,
    /// Distinct queries in each popular tenant's replay pool.
    pub pool_size: usize,
    /// Requests issued per client thread.
    pub requests_per_client: usize,
    /// Open-loop arrival interval per client thread.
    pub arrival_interval: Duration,
    /// Admission credits granted to the starved tenant.
    pub starved_credits: u64,
    /// Edges churned per writer batch.
    pub churn_edges: usize,
    /// Retract/reinsert writer batches applied during the run.
    pub churn_batches: usize,
    /// Shared result-cache capacity.
    pub cache_capacity: usize,
}

impl ServiceBenchConfig {
    /// The committed-report configuration (48 blocks of 12, as in the
    /// `tc_mutation_tenants48x12_churn4` maintenance case).
    pub fn full() -> Self {
        ServiceBenchConfig {
            blocks: 48,
            block_size: 12,
            edge_p: 0.25,
            seed: 7,
            popular_tenants: 8,
            pool_size: 8,
            requests_per_client: 600,
            arrival_interval: Duration::from_micros(250),
            starved_credits: 40,
            churn_edges: 4,
            churn_batches: 24,
            cache_capacity: 4096,
        }
    }

    /// A seconds-scale configuration for the CI smoke gate.
    pub fn smoke() -> Self {
        ServiceBenchConfig {
            blocks: 8,
            block_size: 8,
            edge_p: 0.3,
            seed: 7,
            popular_tenants: 4,
            pool_size: 6,
            requests_per_client: 150,
            arrival_interval: Duration::from_micros(400),
            starved_credits: 10,
            churn_edges: 3,
            churn_batches: 8,
            cache_capacity: 512,
        }
    }
}

/// What one client thread observed.
struct ClientStats {
    latencies: Vec<Duration>,
    answered: u64,
    rejected: u64,
    interrupted: u64,
}

/// Everything a run measured, for rendering and for the smoke gates.
pub struct ServiceRunStats {
    cfg_name: &'static str,
    cfg: ServiceBenchConfig,
    elapsed: Duration,
    latencies: Vec<Duration>,
    answered: u64,
    rejected: u64,
    interrupted: u64,
    /// (requests, hits, misses, rejected) aggregated over the popular
    /// tenants only — the repeat-query traffic the hit-rate gate is
    /// about.
    popular: (u64, u64, u64, u64),
    starved_requests: u64,
    starved_rejected: u64,
    metrics: kv_service::ServiceMetrics,
}

impl ServiceRunStats {
    /// Cache hit rate of the popular (repeat-query) tenants.
    pub fn popular_hit_rate(&self) -> f64 {
        let (_, hits, misses, _) = self.popular;
        if hits + misses == 0 {
            return 0.0;
        }
        hits as f64 / (hits + misses) as f64
    }

    /// Requests the starved tenant got admitted (≤ its credit balance,
    /// deterministically: every admitted request costs ≥ 1 credit).
    pub fn starved_admitted(&self) -> u64 {
        self.starved_requests - self.starved_rejected
    }

    /// Completed requests per second of wall clock.
    pub fn sustained_qps(&self) -> f64 {
        (self.answered + self.rejected + self.interrupted) as f64 / self.elapsed.as_secs_f64()
    }

    fn percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((self.latencies.len() - 1) as f64 * p).round() as usize;
        self.latencies[idx]
    }
}

/// Runs the mixed read/write multi-tenant workload and gathers stats.
pub fn run_service_bench(cfg: ServiceBenchConfig, cfg_name: &'static str) -> ServiceRunStats {
    let n = cfg.blocks * cfg.block_size;
    let s = component_graph(cfg.blocks, cfg.block_size, cfg.edge_p, cfg.seed);
    let mut builder = ServiceBuilder::new(&s).cache_capacity(cfg.cache_capacity);
    let query = builder.register_query(
        "tc",
        ProgramQuery::at_tuple("tc", transitive_closure(), vec![0, 1]),
    );
    let popular: Vec<TenantId> = (0..cfg.popular_tenants)
        .map(|i| builder.register_tenant(TenantPolicy::unlimited(format!("popular-{i}"))))
        .collect();
    let scan = builder.register_tenant(TenantPolicy::unlimited("scan"));
    let starved = builder
        .register_tenant(TenantPolicy::unlimited("starved").with_credits(cfg.starved_credits));
    let svc = Arc::new(builder.build());

    // Each popular tenant replays a fixed pool of queries inside its own
    // block; the pool is the workload's entire point — repeats hit the
    // shared cache across requests *and* across the tenant's lifetime.
    let pools: Vec<Vec<Vec<Element>>> = (0..cfg.popular_tenants)
        .map(|i| {
            let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ (0x9e37 + i as u64));
            let base = (i % cfg.blocks) * cfg.block_size;
            (0..cfg.pool_size)
                .map(|_| {
                    let u = base as u32 + rng.gen_range(0..cfg.block_size as u32);
                    let v = base as u32 + rng.gen_range(0..cfg.block_size as u32);
                    vec![u, v]
                })
                .collect()
        })
        .collect();

    let churn: Vec<Fact> = crate::report::churn_set(&s, cfg.churn_edges);
    let start = Instant::now();
    let mut clients: Vec<ClientStats> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        // Popular clients: one thread per tenant, replaying its pool.
        for (i, &tenant) in popular.iter().enumerate() {
            let svc = Arc::clone(&svc);
            let pool = pools[i].clone();
            let cfg = &cfg;
            handles.push(scope.spawn(move || {
                open_loop(&svc, tenant, query, cfg, move |r| {
                    pool[r as usize % pool.len()].clone()
                })
            }));
        }
        // The scan client: uniform random pairs, cache-hostile.
        {
            let svc = Arc::clone(&svc);
            let cfg = &cfg;
            handles.push(scope.spawn(move || {
                let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0x5ca9);
                open_loop(&svc, scan, query, cfg, move |_| {
                    vec![rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)]
                })
            }));
        }
        // The starved client: same traffic shape as a popular tenant,
        // but its credit balance runs dry almost immediately.
        {
            let svc = Arc::clone(&svc);
            let cfg = &cfg;
            handles.push(scope.spawn(move || {
                let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ 0xdead);
                open_loop(&svc, starved, query, cfg, move |_| {
                    vec![rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)]
                })
            }));
        }
        // The writer: churn one block's edges, retract/reinsert, while
        // every client above is in flight.
        let writer_svc = Arc::clone(&svc);
        let writer_churn = &churn;
        let batches = cfg.churn_batches;
        let writer = scope.spawn(move || {
            for _ in 0..batches {
                writer_svc.apply_batch(&[], writer_churn);
                writer_svc.apply_batch(writer_churn, &[]);
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        for h in handles {
            if let Ok(stats) = h.join() {
                clients.push(stats);
            }
        }
        let _ = writer.join();
    });

    let elapsed = start.elapsed();
    let mut latencies: Vec<Duration> = clients.iter().flat_map(|c| c.latencies.clone()).collect();
    latencies.sort_unstable();
    let metrics = svc.metrics();
    let pop_range = 0..cfg.popular_tenants;
    let popular_agg = metrics.tenants[pop_range]
        .iter()
        .fold((0, 0, 0, 0), |acc, t| {
            (
                acc.0 + t.requests,
                acc.1 + t.cache_hits,
                acc.2 + t.cache_misses,
                acc.3 + t.rejected,
            )
        });
    let starved_row = &metrics.tenants[cfg.popular_tenants + 1];
    ServiceRunStats {
        cfg_name,
        elapsed,
        latencies,
        answered: clients.iter().map(|c| c.answered).sum(),
        rejected: clients.iter().map(|c| c.rejected).sum(),
        interrupted: clients.iter().map(|c| c.interrupted).sum(),
        popular: popular_agg,
        starved_requests: starved_row.requests,
        starved_rejected: starved_row.rejected,
        metrics,
        cfg,
    }
}

/// One open-loop client: issues `cfg.requests_per_client` requests at
/// fixed arrival intervals, measuring completion minus *scheduled*
/// arrival.
fn open_loop(
    svc: &QueryService,
    tenant: TenantId,
    query: QueryId,
    cfg: &ServiceBenchConfig,
    mut next_tuple: impl FnMut(u64) -> Vec<Element>,
) -> ClientStats {
    let mut stats = ClientStats {
        latencies: Vec::with_capacity(cfg.requests_per_client),
        answered: 0,
        rejected: 0,
        interrupted: 0,
    };
    let start = Instant::now();
    for j in 0..cfg.requests_per_client as u64 {
        let scheduled = start + cfg.arrival_interval * j as u32;
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let tuple = next_tuple(j);
        let response = svc.serve(&Request {
            tenant,
            query,
            tuple,
        });
        stats.latencies.push(scheduled.elapsed());
        match response {
            Response::Answer { .. } => stats.answered += 1,
            Response::Rejected(_) => stats.rejected += 1,
            Response::Interrupted(_) => stats.interrupted += 1,
        }
    }
    stats
}

/// Renders `BENCH_service.json` for a finished run.
pub fn render_service_report(stats: &ServiceRunStats) -> String {
    let ms = |d: Duration| format!("{:.4}", d.as_secs_f64() * 1e3);
    let tenant_rows: Vec<String> = stats
        .metrics
        .tenants
        .iter()
        .map(|t| {
            Obj::new()
                .str("tenant", &t.name)
                .num("requests", t.requests)
                .num("cache_hits", t.cache_hits)
                .num("cache_misses", t.cache_misses)
                .num("rejected", t.rejected)
                .num("interrupted", t.interrupted)
                .num("credits_spent", t.credits_spent)
                .render()
        })
        .collect();
    let case = Obj::new()
        .str("name", stats.cfg_name)
        .num("seed", stats.cfg.seed)
        .num("blocks", stats.cfg.blocks)
        .num("block_size", stats.cfg.block_size)
        .num("tenants", stats.metrics.tenants.len())
        .num("clients", stats.cfg.popular_tenants + 2)
        .num("requests", stats.metrics.requests)
        .num("duration_ms", ms(stats.elapsed))
        .num("sustained_qps", format!("{:.1}", stats.sustained_qps()))
        .num("p50_ms", ms(stats.percentile(0.50)))
        .num("p99_ms", ms(stats.percentile(0.99)))
        .num("answered", stats.answered)
        .num("admission_rejected", stats.rejected)
        .num("interrupted", stats.interrupted)
        .num("cache_hits", stats.metrics.cache.hits)
        .num("cache_misses", stats.metrics.cache.misses)
        .num("cache_evictions", stats.metrics.cache.evictions)
        .num("cache_entries", stats.metrics.cache.entries)
        .num(
            "popular_hit_rate",
            format!("{:.3}", stats.popular_hit_rate()),
        )
        .num("starved_admitted", stats.starved_admitted())
        .num("starved_rejected", stats.starved_rejected)
        .num("writer_batches", stats.metrics.batches)
        .num("final_epoch", stats.metrics.epoch)
        .raw("tenant_rows", format!("[{}]", tenant_rows.join(", ")));
    render_report(&[case])
}

/// The full-size report (the committed `BENCH_service.json`).
pub fn service_report() -> String {
    render_service_report(&run_service_bench(
        ServiceBenchConfig::full(),
        "tc_service_tenants48x12",
    ))
}

/// The CI smoke gate: a small fixed-seed run whose invariants hold on
/// any machine. Returns (report, violations).
pub fn service_smoke() -> (String, Vec<String>) {
    let stats = run_service_bench(ServiceBenchConfig::smoke(), "tc_service_smoke8x8");
    let mut violations = Vec::new();
    let hit_rate = stats.popular_hit_rate();
    if hit_rate <= 0.5 {
        violations.push(format!(
            "popular-tenant cache hit rate {hit_rate:.3} is not > 0.5 on repeat-query traffic"
        ));
    }
    if stats.starved_rejected == 0 {
        violations.push("starved tenant was never rejected (admission gate inert)".into());
    }
    if stats.starved_admitted() > stats.cfg.starved_credits {
        violations.push(format!(
            "starved tenant admitted {} requests on {} credits (each admission must cost >= 1)",
            stats.starved_admitted(),
            stats.cfg.starved_credits
        ));
    }
    if stats.interrupted > 0 {
        violations.push(format!(
            "{} requests interrupted under unlimited budgets",
            stats.interrupted
        ));
    }
    (render_service_report(&stats), violations)
}
