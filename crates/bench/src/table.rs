//! Markdown table rendering for the experiment harness.

use std::fmt::Write as _;

/// One experiment's result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (`E1` … `E16`).
    pub id: &'static str,
    /// What the experiment reproduces.
    pub title: String,
    /// The paper's claim, in one line.
    pub claim: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// One-line verdict.
    pub verdict: String,
}

impl Table {
    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "*Paper claim:* {}\n", self.claim);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        let _ = writeln!(out, "\n**Measured:** {}\n", self.verdict);
        out
    }
}

/// Convenience row builder.
pub fn row(cells: &[&dyn std::fmt::Display]) -> Vec<String> {
    cells.iter().map(|c| c.to_string()).collect()
}
