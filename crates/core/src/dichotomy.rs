//! The end-to-end dichotomy: classify a pattern graph and produce either a
//! Datalog(≠) program (positive side, Theorems 6.1/6.2) or a
//! machine-checkable inexpressibility witness (negative side, Theorems
//! 6.6/6.7 via Lemma 6.3).

use kv_datalog::Program;
use kv_homeo::pattern::{classify, CBarWitness, PatternClass};
use kv_homeo::{acyclic_game_program, class_c_program, PatternSpec};
use kv_reduction::thm66::Thm66Witness;
use kv_reduction::variants::{lift_witness, LiftedWitness, VariantWitness};

/// Expressibility verdict for a fixed subgraph homeomorphism query.
#[derive(Debug)]
pub enum Expressibility {
    /// `H ∈ C`: expressible in Datalog(≠) on all inputs (Theorem 6.1);
    /// carries the generated program.
    ExpressibleEverywhere(Program),
    /// `H ∈ C̄`: not expressible in `L^ω` (Theorems 6.6/6.7), but
    /// expressible on acyclic inputs (Theorem 6.2); carries the
    /// acyclic-input program and the generating sub-pattern witness.
    InexpressibleGeneral {
        /// The `H1`/`H2`/`H3` sub-pattern the proof hangs on.
        generator: CBarWitness,
        /// The Theorem 6.2 program for acyclic inputs.
        acyclic_program: Program,
    },
    /// Degenerate pattern (empty or self-loops without a root) outside the
    /// FHW dichotomy.
    Degenerate,
}

/// The full report for a pattern.
#[derive(Debug)]
pub struct DichotomyReport {
    /// The pattern.
    pub pattern: PatternSpec,
    /// Its class.
    pub class: PatternClass,
    /// The verdict with its constructive payload.
    pub verdict: Expressibility,
}

/// Classifies `pattern` and assembles the constructive payload for its
/// side of the dichotomy.
pub fn classify_and_report(pattern: &PatternSpec) -> DichotomyReport {
    let class = classify(pattern);
    let verdict = match &class {
        PatternClass::InC(root) => {
            Expressibility::ExpressibleEverywhere(class_c_program(pattern, root))
        }
        PatternClass::InCBar(witness) => Expressibility::InexpressibleGeneral {
            generator: witness.clone(),
            acyclic_program: acyclic_game_program(pattern),
        },
        PatternClass::Empty | PatternClass::DegenerateSelfLoops => Expressibility::Degenerate,
    };
    DichotomyReport {
        pattern: pattern.clone(),
        class,
        verdict,
    }
}

/// A negative witness for an arbitrary pattern in `C̄`, built per the
/// paper's recipe: find the embedded `H1`/`H2`/`H3`, take its Theorem
/// 6.6/6.7 witness for `φ_k`, then lift through Lemma 6.3.
///
/// Because Lemma 6.3 assumes the sub-pattern occupies the *first* nodes of
/// the super-pattern, the witness is produced for a **relabeled** copy of
/// `pattern` (same graph up to renaming); `relabeling[i]` gives the new
/// index of original pattern node `i`. The query is invariant under
/// simultaneous relabeling, so the witness separates the original query as
/// well.
pub struct NegativeWitness {
    /// The lifted structures (and the relabeled pattern).
    pub lift: LiftedWitness,
    /// Original pattern node -> relabeled index.
    pub relabeling: Vec<usize>,
    /// The base witness the lift starts from (kept alive for strategies).
    pub base: Thm66Witness,
    /// Which generator pattern seeds the proof.
    pub generator: CBarWitness,
}

/// Builds the negative witness for `pattern ∈ C̄` at pebble budget `k`.
///
/// # Panics
/// Panics if `pattern` is not in `C̄`.
pub fn negative_witness(pattern: &PatternSpec, k: usize) -> NegativeWitness {
    let PatternClass::InCBar(generator) = classify(pattern) else {
        panic!("pattern must be in the complement of C");
    };
    // Order the sub-pattern's nodes first.
    let (front, base_edges_relabeled): (Vec<usize>, Vec<(usize, usize)>) = match &generator {
        CBarWitness::H1((a, b), (c, d)) => (vec![*a, *b, *c, *d], vec![(0, 1), (2, 3)]),
        CBarWitness::H2(a, b, c) => (vec![*a, *b, *c], vec![(0, 1), (1, 2)]),
        CBarWitness::H3(a, b) => (vec![*a, *b], vec![(0, 1), (1, 0)]),
    };
    let mut relabeling = vec![usize::MAX; pattern.node_count];
    for (new, &old) in front.iter().enumerate() {
        relabeling[old] = new;
    }
    let mut next = front.len();
    for slot in relabeling.iter_mut() {
        if *slot == usize::MAX {
            *slot = next;
            next += 1;
        }
    }
    let relabeled = PatternSpec {
        node_count: pattern.node_count,
        edges: pattern
            .edges
            .iter()
            .map(|&(i, j)| (relabeling[i], relabeling[j]))
            .collect(),
    };
    // Base witness for the generator.
    let base = Thm66Witness::new(k);
    let lift = match &generator {
        CBarWitness::H1(_, _) => lift_witness(&base.a, &base.b, &base_edges_relabeled, &relabeled),
        CBarWitness::H2(_, _, _) => {
            let v = VariantWitness::h2(&base);
            lift_witness(&v.a, &v.b, &base_edges_relabeled, &relabeled)
        }
        CBarWitness::H3(_, _) => {
            let v = VariantWitness::h3(&base);
            lift_witness(&v.a, &v.b, &base_edges_relabeled, &relabeled)
        }
    };
    NegativeWitness {
        lift,
        relabeling,
        base,
        generator,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_homeo::brute_force_homeomorphism;
    use kv_structures::Digraph;

    #[test]
    fn class_c_report_carries_program() {
        let star = PatternSpec {
            node_count: 3,
            edges: vec![(0, 1), (0, 2)],
        };
        let report = classify_and_report(&star);
        match report.verdict {
            Expressibility::ExpressibleEverywhere(p) => {
                assert!(p.idb_count() >= 2);
            }
            other => panic!("expected positive verdict, got {other:?}"),
        }
    }

    #[test]
    fn c_bar_report_carries_acyclic_program_and_generator() {
        let h1 = PatternSpec::two_disjoint_edges();
        let report = classify_and_report(&h1);
        match report.verdict {
            Expressibility::InexpressibleGeneral {
                generator,
                acyclic_program,
            } => {
                assert!(matches!(generator, CBarWitness::H1(_, _)));
                assert!(acyclic_program.idb_count() >= 4);
            }
            other => panic!("expected negative verdict, got {other:?}"),
        }
    }

    #[test]
    fn negative_witness_for_h1_separates_query() {
        let w = negative_witness(&PatternSpec::two_disjoint_edges(), 1);
        let ga = Digraph::from_structure(&w.lift.a);
        let da = w.lift.a.constant_values().to_vec();
        assert!(brute_force_homeomorphism(&w.lift.pattern, &ga, &da));
        let gb = Digraph::from_structure(&w.lift.b);
        let db = w.lift.b.constant_values().to_vec();
        assert!(!brute_force_homeomorphism(&w.lift.pattern, &gb, &db));
    }

    #[test]
    fn negative_witness_for_composite_pattern() {
        // A pattern strictly containing H2: 0 -> 1 -> 2 plus 3 -> 1.
        let p = PatternSpec {
            node_count: 4,
            edges: vec![(0, 1), (1, 2), (3, 1)],
        };
        let w = negative_witness(&p, 1);
        assert_eq!(w.lift.pattern.node_count, 4);
        assert_eq!(w.lift.pattern.edges.len(), 3);
        let ga = Digraph::from_structure(&w.lift.a);
        let da = w.lift.a.constant_values().to_vec();
        assert!(brute_force_homeomorphism(&w.lift.pattern, &ga, &da));
        let gb = Digraph::from_structure(&w.lift.b);
        let db = w.lift.b.constant_values().to_vec();
        assert!(!brute_force_homeomorphism(&w.lift.pattern, &gb, &db));
    }

    #[test]
    fn relabeling_is_a_permutation() {
        let p = PatternSpec {
            node_count: 5,
            edges: vec![(4, 3), (3, 2), (0, 1)],
        };
        let w = negative_witness(&p, 1);
        let mut sorted = w.relabeling.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "complement of C")]
    fn negative_witness_rejects_class_c() {
        negative_witness(
            &PatternSpec {
                node_count: 2,
                edges: vec![(0, 1)],
            },
            1,
        );
    }
}
