//! Facade crate: the complete toolkit of the Kolaitis–Vardi (PODS 1990)
//! reproduction.
//!
//! Re-exports every subsystem and adds the cross-cutting glue:
//!
//! - [`query`]: boolean queries on finite structures, with Datalog(≠)
//!   programs and the case-study solvers as instances;
//! - [`pattern_based`]: pattern-based queries (Definition 5.1) and the
//!   game-based evaluation of Proposition 5.4 / Theorem 5.5;
//! - [`dichotomy`]: the end-to-end classification of fixed subgraph
//!   homeomorphism queries — class `C` membership, the method that decides
//!   each side, and machine-checkable inexpressibility witnesses for the
//!   `C̄` side (Theorems 6.6/6.7 + Lemma 6.3).
//!
//! Crate map (bottom-up): [`structures`] → [`graphalg`] → [`datalog`],
//! [`logic`], [`pebble`] → [`homeo`], [`reduction`] → this crate.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub use kv_datalog as datalog;
pub use kv_graphalg as graphalg;
pub use kv_homeo as homeo;
pub use kv_logic as logic;
pub use kv_pebble as pebble;
pub use kv_reduction as reduction;
pub use kv_structures as structures;

pub mod dichotomy;
pub mod pattern_based;
pub mod query;

pub use dichotomy::{classify_and_report, negative_witness, DichotomyReport, Expressibility};
pub use kv_datalog::{
    BatchInterrupted, BatchSummary, CrashPoint, DurabilityOptions, DurableBatchError,
    DurableEngine, Fact, FlushStats, IncrementalEngine, RecoveryError, RecoveryReport,
};
pub use kv_structures::{
    CacheStats, DemandStrategy, QueryCache, QueryPlan, StructureId, StructureRegistry,
};
pub use pattern_based::PatternBasedQuery;
pub use query::{BooleanQuery, ProgramQuery};
