//! Pattern-based queries (Definition 5.1) and the Proposition 5.4 bridge.
//!
//! A query `Q` is *pattern-based* when a polynomial-time generator `α`
//! maps each structure `B` to a set of pattern structures such that `B`
//! satisfies `Q` iff some pattern of `α(B)` embeds into `B` by a
//! one-to-one homomorphism. Proposition 5.4 replaces the (NP-hard)
//! embedding test with the (polynomial, for fixed `k`) existential
//! k-pebble game — an *exact* procedure when `Q ∈ L^k`, an
//! overapproximation otherwise. Theorem 5.5 follows: pattern-based ∩
//! `L^ω` ⊆ PTIME.

use kv_pebble::{ExistentialGame, Winner};
use kv_structures::hom::find_homomorphism;
use kv_structures::{HomKind, Structure};

/// A pattern-based query: the generator plus a name.
pub struct PatternBasedQuery {
    name: String,
    #[allow(clippy::type_complexity)]
    generator: Box<dyn Fn(&Structure) -> Vec<Structure>>,
}

impl PatternBasedQuery {
    /// Creates a pattern-based query from its generator `α`.
    pub fn new(
        name: impl Into<String>,
        generator: impl Fn(&Structure) -> Vec<Structure> + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            generator: Box::new(generator),
        }
    }

    /// The query's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The patterns for a given input.
    pub fn patterns(&self, b: &Structure) -> Vec<Structure> {
        (self.generator)(b)
    }

    /// Reference semantics: does some pattern embed one-to-one
    /// (constant-respecting)? Exponential in pattern size.
    pub fn eval_by_embedding(&self, b: &Structure) -> bool {
        self.patterns(b)
            .iter()
            .any(|a| find_homomorphism(a, b, HomKind::OneToOne, true).is_some())
    }

    /// Proposition 5.4's procedure: does the Duplicator win the
    /// existential k-pebble game from some pattern into `b`? Polynomial
    /// for fixed `k`; exact iff the query is `L^k`-expressible.
    pub fn eval_by_games(&self, b: &Structure, k: usize) -> bool {
        self.patterns(b).iter().any(|a| {
            ExistentialGame::solve(a, b, k, HomKind::OneToOne).winner() == Winner::Duplicator
        })
    }

    /// Demand-driven variant of [`eval_by_games`](Self::eval_by_games):
    /// each game is solved lazily from the initial position, expanding
    /// only configurations the verdict depends on and stopping as soon as
    /// the root is decided. Same answer, typically a fraction of the
    /// arena.
    pub fn eval_by_games_lazy(&self, b: &Structure, k: usize) -> bool {
        self.patterns(b).iter().any(|a| {
            ExistentialGame::solve_lazy(a, b, k, HomKind::OneToOne).winner() == Winner::Duplicator
        })
    }

    /// The even simple path query as a pattern-based query (Example
    /// 5.2(1)): patterns are the odd-node directed paths with endpoints
    /// distinguished; inputs are graphs with two distinguished nodes.
    pub fn even_simple_path() -> Self {
        Self::new("even simple path", |b: &Structure| {
            kv_homeo::even_path::even_path_patterns(b.universe_size())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_homeo::even_path::even_simple_path;
    use kv_structures::generators::random_digraph;
    use kv_structures::{Digraph, Vocabulary};
    use std::sync::Arc;

    fn with_st(g: &Digraph, s: u32, t: u32) -> Structure {
        let mut g = g.clone();
        g.set_distinguished(vec![s, t]);
        g.to_structure_with(Arc::new(Vocabulary::graph_with_constants(2)))
    }

    #[test]
    fn embedding_semantics_match_brute_force() {
        let q = PatternBasedQuery::even_simple_path();
        for seed in 0..8 {
            let g = random_digraph(6, 0.3, 4000 + seed);
            let b = with_st(&g, 0, 5);
            assert_eq!(
                q.eval_by_embedding(&b),
                even_simple_path(&g, 0, 5),
                "seed {}",
                4000 + seed
            );
        }
    }

    #[test]
    fn game_procedure_dominates_embedding() {
        // Proposition 5.4, sound half: embedding ⇒ game win, any k.
        let q = PatternBasedQuery::even_simple_path();
        for seed in 0..6 {
            let g = random_digraph(6, 0.3, 4100 + seed);
            let b = with_st(&g, 0, 5);
            if q.eval_by_embedding(&b) {
                for k in 1..=2 {
                    assert!(q.eval_by_games(&b, k), "k={k} seed {}", 4100 + seed);
                }
            }
        }
    }

    #[test]
    fn lazy_game_procedure_matches_eager() {
        let q = PatternBasedQuery::even_simple_path();
        for seed in 0..6 {
            let g = random_digraph(5, 0.35, 4200 + seed);
            let b = with_st(&g, 0, 4);
            for k in 1..=2 {
                assert_eq!(
                    q.eval_by_games_lazy(&b, k),
                    q.eval_by_games(&b, k),
                    "k={k} seed {}",
                    4200 + seed
                );
            }
        }
    }

    #[test]
    fn every_query_is_pattern_based_trivially() {
        // Section 5's remark: α(B) = {B} or {} by the query itself.
        let q = PatternBasedQuery::new("has a 2-cycle", |b: &Structure| {
            let g = Digraph::from_structure(b);
            let yes = g.edges().any(|(u, v)| g.has_edge(v, u) && u != v);
            if yes {
                vec![b.clone()]
            } else {
                vec![]
            }
        });
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let b = g.to_structure();
        assert!(q.eval_by_embedding(&b));
        let mut h = Digraph::new(3);
        h.add_edge(0, 1);
        let c = h.to_structure();
        assert!(!q.eval_by_embedding(&c));
    }
}
