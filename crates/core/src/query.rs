//! Boolean queries on finite structures.
//!
//! The paper's objects of study are *queries* — isomorphism-invariant
//! boolean properties of finite structures over a fixed vocabulary. The
//! [`BooleanQuery`] trait is the common interface under which Datalog(≠)
//! programs, the flow/game solvers of the case study, and brute-force
//! oracles are compared by the experiments.

use kv_datalog::{
    BatchInterrupted, BatchSummary, BindingPattern, CompiledProgram, DurabilityOptions,
    DurableBatchError, DurableEngine, EvalOptions, EvalStats, Fact, FlushStats, IncrementalEngine,
    MagicProgram, Program, RecoveryError, RecoveryReport,
};
use kv_structures::{CacheStats, Governor, Interrupted, QueryCache, QueryPlan, Structure};
use std::path::Path;
use std::sync::Mutex;

/// A boolean query over structures of a fixed vocabulary.
pub trait BooleanQuery {
    /// A short display name.
    fn name(&self) -> &str;
    /// Evaluates the query.
    fn eval(&self, structure: &Structure) -> bool;
    /// Evaluates the query and, when the backend supports it, reports
    /// evaluation counters. The default forwards to [`eval`](Self::eval)
    /// with no stats.
    fn eval_with_stats(&self, structure: &Structure) -> (bool, Option<EvalStats>) {
        (self.eval(structure), None)
    }
    /// Governed evaluation: honors the governor's budget, deadline, and
    /// cancellation token, returning `Err(Interrupted)` instead of
    /// looping unbounded. The default checks the governor once up front
    /// and then runs [`eval`](Self::eval); backends with governed engines
    /// (e.g. [`ProgramQuery`]) override this with cooperative checks
    /// inside their hot loops.
    fn try_eval(&self, structure: &Structure, gov: &Governor) -> Result<bool, Interrupted> {
        gov.check()?;
        Ok(self.eval(structure))
    }
}

/// The compiled demand route of a [`ProgramQuery`]: the magic-set
/// rewritten program and its compiled form.
struct DemandPath {
    magic: MagicProgram,
    compiled: CompiledProgram,
}

/// The maintenance engine attached to a [`ProgramQuery`]: none, a
/// volatile in-memory engine, or a durable engine whose batches survive
/// the process (both boxed: an engine is hundreds of bytes of stores and
/// stats, and the slot lives inside every query's mutex).
enum EngineSlot {
    None,
    Memory(Box<IncrementalEngine>),
    Durable(Box<DurableEngine>),
}

impl EngineSlot {
    /// Read access to the wrapped engine, whichever mode is attached.
    fn engine(&self) -> Option<&IncrementalEngine> {
        match self {
            EngineSlot::None => None,
            EngineSlot::Memory(e) => Some(e),
            EngineSlot::Durable(d) => Some(d.engine()),
        }
    }
}

/// A Datalog(≠) program used as a boolean query: true iff the goal
/// relation contains the designated tuple (by default the empty tuple of a
/// nullary goal).
///
/// The program is compiled **once, at construction** — every `eval` call
/// reuses the same [`CompiledProgram`] (rule variants, index plan), so
/// running one query over a family of structures pays for compilation a
/// single time.
///
/// Construction also fixes a [`QueryPlan`]: fixed-tuple queries default to
/// the all-bound demand plan, under which evaluation runs the magic-set
/// rewrite of the program seeded with the query's bound values — deriving
/// only goal-relevant tuples — instead of saturating the full IDB. The
/// rewrite is prepared once at construction; if it is not applicable the
/// query silently falls back to full saturation. Answers are additionally
/// memoized in an engine-level [`QueryCache`] keyed by structure content
/// fingerprint + query tuple, serving repeated-query traffic without any
/// evaluation at all ([`cache_stats`](Self::cache_stats)).
pub struct ProgramQuery {
    name: String,
    program: Program,
    compiled: CompiledProgram,
    goal_tuple: Vec<kv_structures::Element>,
    plan: QueryPlan,
    demand: Option<DemandPath>,
    /// Worker count for sharded evaluation (`None` = unsharded); applies
    /// to every evaluation route this query issues, the incremental
    /// engine included.
    shards: Option<usize>,
    cache: Mutex<QueryCache>,
    incremental: Mutex<EngineSlot>,
}

impl ProgramQuery {
    /// Wraps a program with a nullary goal. All-free pattern: full
    /// saturation (demand buys nothing without bound positions).
    pub fn nullary(name: impl Into<String>, program: Program) -> Self {
        assert_eq!(
            program.idb_arity(program.goal()),
            0,
            "nullary goal expected"
        );
        Self::build(name.into(), program, Vec::new(), QueryPlan::full(0))
    }

    /// Wraps a program, reading the goal relation at a fixed tuple. The
    /// automatic plan binds every goal position, routing evaluation
    /// through the magic-set demand path.
    pub fn at_tuple(
        name: impl Into<String>,
        program: Program,
        goal_tuple: Vec<kv_structures::Element>,
    ) -> Self {
        let arity = program.idb_arity(program.goal());
        assert_eq!(arity, goal_tuple.len(), "tuple arity must match the goal");
        Self::build(
            name.into(),
            program,
            goal_tuple,
            QueryPlan::auto(vec![true; arity]),
        )
    }

    /// Wraps a program with an explicit [`QueryPlan`]. The query still
    /// answers "is `goal_tuple` in the goal relation"; the plan's pattern
    /// selects which positions seed the demand rewrite (a strict subset of
    /// the bound values is sound — the rewrite derives a superset of the
    /// matching tuples and membership of the exact tuple is preserved).
    pub fn with_plan(
        name: impl Into<String>,
        program: Program,
        goal_tuple: Vec<kv_structures::Element>,
        plan: QueryPlan,
    ) -> Self {
        let arity = program.idb_arity(program.goal());
        assert_eq!(arity, goal_tuple.len(), "tuple arity must match the goal");
        assert_eq!(
            arity,
            plan.pattern().len(),
            "plan pattern arity must match the goal"
        );
        Self::build(name.into(), program, goal_tuple, plan)
    }

    fn build(
        name: String,
        program: Program,
        goal_tuple: Vec<kv_structures::Element>,
        plan: QueryPlan,
    ) -> Self {
        let compiled = CompiledProgram::compile(&program);
        let demand = if plan.is_demand() {
            MagicProgram::rewrite(&program, &BindingPattern::new(plan.pattern().to_vec()))
                .ok()
                .map(|magic| DemandPath {
                    compiled: magic.compile(),
                    magic,
                })
        } else {
            None
        };
        Self {
            name,
            program,
            compiled,
            goal_tuple,
            plan,
            demand,
            shards: None,
            cache: Mutex::new(QueryCache::new()),
            incremental: Mutex::new(EngineSlot::None),
        }
    }

    /// Routes every evaluation this query issues through sharded
    /// execution at the given worker count: hash-partitioned deltas with
    /// inter-worker exchange at stage barriers. Answers are identical for
    /// every worker count (differential-tested); set before the first
    /// evaluation so cached answers and the incremental engine agree on
    /// the configuration.
    pub fn with_shards(mut self, shards: Option<usize>) -> Self {
        self.shards = shards;
        self
    }

    /// The wrapped program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The compiled form shared by every full-saturation evaluation.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// The query plan fixed at construction.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Whether evaluation actually takes the demand (magic-set) route —
    /// i.e. the plan asked for it *and* the rewrite applied.
    pub fn demand_active(&self) -> bool {
        self.demand.is_some()
    }

    /// Hit/miss/entry counters of the engine-level answer cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_cache().stats()
    }

    /// Engine options for every evaluation this query issues: defaults
    /// plus the [`kv_structures::PlannerMode`] and
    /// [`kv_structures::JoinLowering`] fixed by the query plan.
    fn eval_options(&self) -> EvalOptions {
        EvalOptions::default()
            .with_planner(self.plan.planner())
            .with_lowering(self.plan.lowering())
            .with_shards(self.shards)
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, QueryCache> {
        // A poisoned cache only means another thread panicked mid-insert;
        // the map itself is still coherent.
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Full-saturation evaluation with engine counters, bypassing both the
    /// demand path and the answer cache (differential partner and
    /// benchmark baseline for the demand route).
    pub fn eval_full_with_stats(&self, structure: &Structure) -> (bool, EvalStats) {
        // Infallible: default options configure no limits.
        #[allow(clippy::expect_used)]
        let result = self
            .compiled
            .try_run(structure, self.eval_options())
            .expect("no limits configured");
        let holds = result.idb[self.compiled.goal().0].contains(&self.goal_tuple);
        (holds, result.eval_stats)
    }

    /// Demand-path evaluation with engine counters, bypassing the answer
    /// cache. `None` when the demand route is inactive.
    pub fn eval_demand_with_stats(&self, structure: &Structure) -> Option<(bool, EvalStats)> {
        let path = self.demand.as_ref()?;
        let seeds = [(path.magic.magic_goal(), path.magic.seed(&self.goal_tuple))];
        // Infallible: default options configure no limits.
        #[allow(clippy::expect_used)]
        let result = path
            .compiled
            .try_run_seeded(structure, self.eval_options(), &seeds)
            .expect("no limits configured");
        let holds = result.idb[path.magic.goal().0].contains(&self.goal_tuple);
        Some((holds, result.eval_stats))
    }

    fn lock_engine(&self) -> std::sync::MutexGuard<'_, EngineSlot> {
        // Same poisoning argument as the cache: the engine is coherent
        // between batches, and a batch that panicked left it pending.
        self.incremental.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Switches this query into incremental maintenance mode: builds a
    /// [`IncrementalEngine`] whose EDB starts as `structure` (applied as
    /// the initial batch) and keeps the goal relation live across
    /// [`apply_batch`](Self::apply_batch) mutations. The answer cache is
    /// epoch-bumped and the initial answer patched in at the new epoch.
    ///
    /// Replaces any previously attached engine.
    pub fn enable_incremental(&self, structure: &Structure) -> BatchSummary {
        let (engine, summary) =
            IncrementalEngine::from_structure(&self.program, structure, self.eval_options());
        let mut slot = self.lock_engine();
        self.patch_cache(&engine);
        *slot = EngineSlot::Memory(Box::new(engine));
        summary
    }

    /// Switches this query into **durable** incremental maintenance mode
    /// backed by directory `dir`, with the default
    /// [`DurabilityOptions`]. See
    /// [`open_durable_with`](Self::open_durable_with).
    pub fn open_durable(
        &self,
        structure: &Structure,
        dir: &Path,
    ) -> Result<RecoveryReport, RecoveryError> {
        self.open_durable_with(structure, dir, DurabilityOptions::default())
    }

    /// Switches this query into durable incremental maintenance mode: a
    /// [`DurableEngine`] in `dir` write-ahead-logs every batch and
    /// checkpoints periodically, so the maintained state survives a
    /// crash and is recovered by the next `open_durable` on the same
    /// directory.
    ///
    /// On a **fresh** directory, `structure`'s facts are asserted as the
    /// initial batch (epoch 1), mirroring
    /// [`enable_incremental`](Self::enable_incremental). On an
    /// **existing** directory, the recovered state is authoritative and
    /// `structure` serves only as the template (vocabulary, universe,
    /// constants) — it is validated against the directory's fingerprint
    /// and its facts are ignored.
    ///
    /// The answer cache is epoch-bumped and the recovered answer patched
    /// in. Replaces any previously attached engine.
    pub fn open_durable_with(
        &self,
        structure: &Structure,
        dir: &Path,
        durability: DurabilityOptions,
    ) -> Result<RecoveryReport, RecoveryError> {
        let mut durable = DurableEngine::open(
            &self.program,
            structure,
            self.eval_options(),
            dir,
            durability,
        )?;
        if durable.epoch() == 0 {
            let mut inserts: Vec<Fact> = Vec::new();
            for r in structure.vocabulary().relations() {
                for t in structure.relation(r).iter() {
                    inserts.push((r, t.to_vec()));
                }
            }
            durable.apply_batch(&inserts, &[])?;
        }
        let report = durable.recovery().clone();
        let mut slot = self.lock_engine();
        self.patch_cache(durable.engine());
        *slot = EngineSlot::Durable(Box::new(durable));
        Ok(report)
    }

    /// Whether an incremental engine (volatile or durable) is attached.
    pub fn incremental_active(&self) -> bool {
        self.lock_engine().engine().is_some()
    }

    /// Whether the attached engine is durable.
    pub fn durable_active(&self) -> bool {
        matches!(&*self.lock_engine(), EngineSlot::Durable(_))
    }

    /// What recovery found when the durable engine opened (`None` when no
    /// durable engine is attached).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        match &*self.lock_engine() {
            EngineSlot::Durable(d) => Some(d.recovery().clone()),
            _ => None,
        }
    }

    /// Flush-side counters of the durable engine (`None` when no durable
    /// engine is attached).
    pub fn flush_stats(&self) -> Option<FlushStats> {
        match &*self.lock_engine() {
            EngineSlot::Durable(d) => Some(d.flush_stats()),
            _ => None,
        }
    }

    /// Forces a checkpoint of the durable engine right now (snapshot, new
    /// generation, fresh WAL). Returns the snapshot payload size.
    ///
    /// Panics if no durable engine is attached.
    pub fn checkpoint_now(&self) -> Result<u64, RecoveryError> {
        match &mut *self.lock_engine() {
            EngineSlot::Durable(d) => d.checkpoint(),
            _ => panic!("checkpoint_now requires open_durable"),
        }
    }

    /// The live answer maintained by the incremental engine: `None` when
    /// incremental mode is off or a batch is pending (mid-resume the goal
    /// relation is not at a fixpoint).
    pub fn incremental_holds(&self) -> Option<bool> {
        let slot = self.lock_engine();
        let engine = slot.engine()?;
        if engine.has_pending() {
            return None;
        }
        Some(engine.goal_contains(&self.goal_tuple))
    }

    /// Whether an interrupted maintenance batch is waiting for
    /// [`resume_batch`](Self::resume_batch).
    pub fn batch_pending(&self) -> bool {
        self.lock_engine().engine().is_some_and(|e| e.has_pending())
    }

    /// Applies a mutation batch to the incremental engine (ungoverned) and
    /// reconciles the answer cache: the epoch is bumped — so every answer
    /// cached against the pre-batch store can never be served again — and
    /// the recomputed answer for the post-batch EDB is patched in at the
    /// new epoch instead of dropping the cache wholesale.
    ///
    /// Panics if [`enable_incremental`](Self::enable_incremental) has not
    /// been called. With a durable engine attached, use
    /// [`try_apply_batch_durable`](Self::try_apply_batch_durable), which
    /// surfaces storage errors instead of panicking.
    pub fn apply_batch(&self, inserts: &[Fact], retracts: &[Fact]) -> BatchSummary {
        let mut slot = self.lock_engine();
        let engine = match &mut *slot {
            EngineSlot::Memory(e) => e,
            EngineSlot::Durable(_) => {
                panic!("durable engine attached: use try_apply_batch_durable")
            }
            EngineSlot::None => panic!("apply_batch requires enable_incremental"),
        };
        let summary = engine.apply_batch(inserts, retracts);
        self.patch_cache(engine);
        summary
    }

    /// Governed [`apply_batch`](Self::apply_batch): honors the governor
    /// exactly like a governed full evaluation. On interrupt the batch
    /// stays pending inside the engine — committed insertion stages are
    /// kept, the cache is untouched (pre-batch answers are still correct
    /// for pre-batch structures) — and [`resume_batch`](Self::resume_batch)
    /// continues to a result identical to an uninterrupted run.
    pub fn try_apply_batch_governed(
        &self,
        inserts: &[Fact],
        retracts: &[Fact],
        gov: &Governor,
    ) -> Result<BatchSummary, BatchInterrupted> {
        let mut slot = self.lock_engine();
        let engine = match &mut *slot {
            EngineSlot::Memory(e) => e,
            EngineSlot::Durable(_) => {
                panic!("durable engine attached: use try_apply_batch_durable")
            }
            EngineSlot::None => panic!("try_apply_batch_governed requires enable_incremental"),
        };
        let summary = engine.try_apply_batch_governed(inserts, retracts, gov)?;
        self.patch_cache(engine);
        Ok(summary)
    }

    /// Governed durable batch: write-ahead-logs the batch, applies it,
    /// and checkpoints when the cadence is due. Works on both engine
    /// modes (a volatile engine simply has no logging side), so callers
    /// can be written once against the durable API.
    ///
    /// Panics if no engine is attached.
    pub fn try_apply_batch_durable(
        &self,
        inserts: &[Fact],
        retracts: &[Fact],
        gov: &Governor,
    ) -> Result<BatchSummary, DurableBatchError> {
        let mut slot = self.lock_engine();
        let summary = match &mut *slot {
            EngineSlot::Memory(e) => e
                .try_apply_batch_governed(inserts, retracts, gov)
                .map_err(DurableBatchError::Interrupted)?,
            EngineSlot::Durable(d) => d.try_apply_batch_governed(inserts, retracts, gov)?,
            EngineSlot::None => panic!("try_apply_batch_durable requires an attached engine"),
        };
        // Unreachable only on EngineSlot::None, which panicked above.
        if let Some(engine) = slot.engine() {
            self.patch_cache(engine);
        }
        Ok(summary)
    }

    /// Resumes an interrupted maintenance batch under a fresh governor.
    pub fn resume_batch(&self, gov: &Governor) -> Result<BatchSummary, BatchInterrupted> {
        let mut slot = self.lock_engine();
        let engine = match &mut *slot {
            EngineSlot::Memory(e) => e,
            EngineSlot::Durable(_) => panic!("durable engine attached: use resume_batch_durable"),
            EngineSlot::None => panic!("resume_batch requires a pending batch"),
        };
        let summary = engine.resume_batch(gov)?;
        self.patch_cache(engine);
        Ok(summary)
    }

    /// Resumes an interrupted batch through the durable API (see
    /// [`try_apply_batch_durable`](Self::try_apply_batch_durable)).
    pub fn resume_batch_durable(&self, gov: &Governor) -> Result<BatchSummary, DurableBatchError> {
        let mut slot = self.lock_engine();
        let summary = match &mut *slot {
            EngineSlot::Memory(e) => e
                .resume_batch(gov)
                .map_err(DurableBatchError::Interrupted)?,
            EngineSlot::Durable(d) => d.resume_batch(gov)?,
            EngineSlot::None => panic!("resume_batch_durable requires a pending batch"),
        };
        if let Some(engine) = slot.engine() {
            self.patch_cache(engine);
        }
        Ok(summary)
    }

    /// Governed evaluation at a caller-supplied goal tuple, bypassing the
    /// per-query answer cache entirely — the serving layer's read path.
    ///
    /// A query service runs **many concurrent readers** against immutable
    /// snapshot structures and memoizes in its own *shared*, epoch-keyed
    /// cache (O(1) lookups — no per-request structure fingerprinting), so
    /// this path must neither consult nor populate the per-query cache.
    /// The demand (magic-set) route is taken when active: the rewrite is
    /// re-seeded with `tuple`, so one compiled query serves every goal
    /// tuple of its binding pattern. Requires `&self` only — the compiled
    /// program and rewrite are immutable after construction, so any number
    /// of reader threads evaluate concurrently with no shared lock.
    ///
    /// # Panics
    /// Panics if `tuple`'s arity differs from the goal's.
    pub fn try_eval_at_uncached(
        &self,
        structure: &Structure,
        tuple: &[kv_structures::Element],
        gov: &Governor,
    ) -> Result<bool, Interrupted> {
        assert_eq!(
            tuple.len(),
            self.program.idb_arity(self.program.goal()),
            "tuple arity must match the goal"
        );
        match self.demand.as_ref() {
            Some(path) => {
                let seeds = [(path.magic.magic_goal(), path.magic.seed(tuple))];
                let result = path
                    .compiled
                    .try_run_governed_seeded(structure, self.eval_options(), gov, &seeds)
                    .map_err(|e| e.reason)?;
                Ok(result.idb[path.magic.goal().0].contains(tuple))
            }
            None => {
                let result = self
                    .compiled
                    .try_run_governed(structure, self.eval_options(), gov)
                    .map_err(|e| e.reason)?;
                Ok(result.idb[self.compiled.goal().0].contains(tuple))
            }
        }
    }

    /// Governed, cache-bypassing evaluation at the query's own goal tuple
    /// (see [`try_eval_at_uncached`](Self::try_eval_at_uncached)).
    pub fn try_eval_uncached(
        &self,
        structure: &Structure,
        gov: &Governor,
    ) -> Result<bool, Interrupted> {
        self.try_eval_at_uncached(structure, &self.goal_tuple, gov)
    }

    /// After a committed batch: stale-out every cached answer and patch in
    /// the one just maintained.
    fn patch_cache(&self, engine: &IncrementalEngine) {
        let mut cache = self.lock_cache();
        cache.bump_epoch();
        cache.insert(
            &engine.edb_structure(),
            &self.goal_tuple,
            engine.goal_contains(&self.goal_tuple),
        );
    }
}

impl BooleanQuery for ProgramQuery {
    fn name(&self) -> &str {
        &self.name
    }

    /// Consults the answer cache first; on a miss, evaluates through the
    /// demand path when active (full saturation otherwise) and memoizes
    /// the answer.
    ///
    /// The epoch observed at lookup time travels with the computation:
    /// if a maintenance batch commits while the answer is being evaluated
    /// (the cache lock is *not* held across evaluation), the insert is
    /// rejected rather than stamping a pre-batch answer at the post-batch
    /// epoch.
    fn eval(&self, structure: &Structure) -> bool {
        let (cached, observed_epoch) = self.lock_cache().get_keyed(structure, &self.goal_tuple);
        if let Some(answer) = cached {
            return answer;
        }
        let holds = self.eval_with_stats(structure).0;
        self.lock_cache()
            .insert_if_epoch(structure, &self.goal_tuple, holds, observed_epoch);
        holds
    }

    /// Always evaluates (no cache) so the counters reflect a real engine
    /// run: the demand path when active, full saturation otherwise.
    fn eval_with_stats(&self, structure: &Structure) -> (bool, Option<EvalStats>) {
        let (holds, stats) = match self.eval_demand_with_stats(structure) {
            Some(pair) => pair,
            None => self.eval_full_with_stats(structure),
        };
        (holds, Some(stats))
    }

    fn try_eval(&self, structure: &Structure, gov: &Governor) -> Result<bool, Interrupted> {
        gov.check()?;
        let (cached, observed_epoch) = self.lock_cache().get_keyed(structure, &self.goal_tuple);
        if let Some(answer) = cached {
            return Ok(answer);
        }
        let holds = self.try_eval_uncached(structure, gov)?;
        self.lock_cache()
            .insert_if_epoch(structure, &self.goal_tuple, holds, observed_epoch);
        Ok(holds)
    }
}

/// A query defined by a closure (for oracles and ad-hoc baselines).
pub struct FnQuery<F> {
    name: String,
    f: F,
}

impl<F: Fn(&Structure) -> bool> FnQuery<F> {
    /// Wraps a closure.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
        }
    }
}

impl<F: Fn(&Structure) -> bool> BooleanQuery for FnQuery<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&self, structure: &Structure) -> bool {
        (self.f)(structure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_datalog::programs::transitive_closure;
    use kv_structures::generators::directed_path;

    #[test]
    fn program_query_at_tuple() {
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        assert!(q.eval(&directed_path(4)));
        assert!(!q.eval(&directed_path(3)));
        assert_eq!(q.name(), "0 reaches 3");
    }

    #[test]
    fn program_query_reports_stats() {
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        // The full-saturation baseline has pinned counters.
        let (holds, full) = q.eval_full_with_stats(&directed_path(4));
        assert!(holds);
        assert_eq!(full.tuples_interned, 6); // TC of a 4-path
        assert!(full.join_probes > 0);
        assert_eq!(full.stages, 3);
        // The default stats route takes the demand path: magic probes are
        // counted and no more tuples are derived than full saturation.
        assert!(q.demand_active());
        let (holds, stats) = q.eval_with_stats(&directed_path(4));
        assert!(holds);
        let stats = stats.expect("program queries report stats");
        assert!(stats.magic_probes > 0);
        assert!(stats.tuples_interned <= full.tuples_interned);
    }

    #[test]
    fn demand_and_full_agree_and_cache_memoizes() {
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        for n in 2..7 {
            let s = directed_path(n);
            let (full, _) = q.eval_full_with_stats(&s);
            let (demand, _) = q
                .eval_demand_with_stats(&s)
                .expect("demand route is active");
            assert_eq!(full, demand, "demand answer must match full on path({n})");
            assert_eq!(q.eval(&s), full);
            // Second eval of the same structure is served from the cache.
            assert_eq!(q.eval(&s), full);
        }
        let stats = q.cache_stats();
        assert_eq!(stats.entries, 5);
        assert_eq!(stats.misses, 5);
        assert!(stats.hits >= 5);
    }

    #[test]
    fn explicit_plan_controls_routing() {
        let full_plan = QueryPlan::full(2);
        let q = ProgramQuery::with_plan("full", transitive_closure(), vec![0, 3], full_plan);
        assert!(!q.demand_active());
        assert!(q.eval(&directed_path(4)));

        let bf = QueryPlan::auto(vec![true, false]);
        let q = ProgramQuery::with_plan("bf", transitive_closure(), vec![0, 3], bf);
        assert!(q.demand_active());
        assert_eq!(q.plan().to_string(), "bf/demand");
        assert!(q.eval(&directed_path(4)));
        assert!(!q.eval(&directed_path(3)));
    }

    #[test]
    fn sharded_query_agrees_on_every_route() {
        // with_shards must not change any answer: full saturation, the
        // demand path, and the incremental engine all route through the
        // sharded stage loop and land on the same tuples.
        for w in [1usize, 4] {
            let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3])
                .with_shards(Some(w));
            let s = directed_path(4);
            let (full, _) = q.eval_full_with_stats(&s);
            assert!(full, "W={w}");
            let (demand, _) = q.eval_demand_with_stats(&s).expect("demand active");
            assert_eq!(full, demand, "W={w}");
            let summary = q.enable_incremental(&s);
            assert_eq!(q.incremental_holds(), Some(true), "W={w}");
            if w == 1 {
                assert_eq!(summary.exchanged_tuples, 0, "W=1 exchanges nothing");
            }
            assert!(!q.with_shards(Some(w)).eval(&directed_path(3)), "W={w}");
        }
    }

    #[test]
    fn try_eval_honors_governor() {
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        let s = directed_path(4);
        assert_eq!(q.try_eval(&s, &Governor::unlimited()), Ok(true));
        let gov = Governor::unlimited();
        gov.cancel_token().cancel();
        assert_eq!(q.try_eval(&s, &gov), Err(Interrupted::Cancelled));
        // The default impl on FnQuery checks the governor up front.
        let f = FnQuery::new("nonempty", |s: &Structure| s.tuple_count() > 0);
        assert_eq!(f.try_eval(&s, &Governor::unlimited()), Ok(true));
        assert_eq!(f.try_eval(&s, &gov), Err(Interrupted::Cancelled));
    }

    #[test]
    fn fn_query_wraps_closures() {
        let q = FnQuery::new("nonempty", |s: &Structure| s.tuple_count() > 0);
        assert!(q.eval(&directed_path(3)));
        assert!(!q.eval(&directed_path(1)));
        // The default stats hook reports none.
        assert_eq!(q.eval_with_stats(&directed_path(3)), (true, None));
    }

    #[test]
    #[should_panic(expected = "tuple arity")]
    fn arity_mismatch_panics() {
        ProgramQuery::at_tuple("bad", transitive_closure(), vec![0]);
    }

    #[test]
    fn incremental_mode_maintains_the_answer() {
        use kv_structures::RelId;
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        assert!(!q.incremental_active());
        q.enable_incremental(&directed_path(4));
        assert!(q.incremental_active());
        assert_eq!(q.incremental_holds(), Some(true));
        // Cutting the middle edge breaks reachability; restoring it
        // restores the answer.
        let e = RelId(0);
        q.apply_batch(&[], &[(e, vec![1, 2])]);
        assert_eq!(q.incremental_holds(), Some(false));
        q.apply_batch(&[(e, vec![1, 2])], &[]);
        assert_eq!(q.incremental_holds(), Some(true));
    }

    #[test]
    fn batches_stale_out_cached_answers() {
        use kv_structures::RelId;
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        let s = directed_path(4);
        assert!(q.eval(&s)); // miss, computed, memoized
        assert!(q.eval(&s)); // hit
        let before = q.cache_stats();
        assert!(before.hits >= 1);

        q.enable_incremental(&s);
        // The engine's materialized EDB has the same content fingerprint as
        // `s`, and enable patched its answer in at the bumped epoch.
        assert!(q.eval(&s));
        assert_eq!(q.cache_stats().hits, before.hits + 1);

        // A mutation bumps the epoch: the old entry for `s` must not be
        // served, and the patched entry answers for the mutated store.
        q.apply_batch(&[], &[(RelId(0), vec![1, 2])]);
        let cut = {
            let mut g = kv_structures::Digraph::new(4);
            g.add_edge(0, 1);
            g.add_edge(2, 3);
            g.to_structure()
        };
        let misses = q.cache_stats().misses;
        assert!(!q.eval(&cut)); // served from the patched entry: a hit
        assert_eq!(q.cache_stats().misses, misses);
        // The pre-batch structure's answer was staled out and recomputes.
        assert!(q.eval(&s));
        assert_eq!(q.cache_stats().misses, misses + 1);
    }

    #[test]
    fn durable_mode_survives_reattach() {
        use kv_structures::RelId;
        let dir = std::env::temp_dir().join(format!("kv-query-durable-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let e = RelId(0);
        {
            let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
            let report = q.open_durable(&directed_path(4), &dir).expect("open fresh");
            assert!(!report.manifest_found);
            assert!(q.durable_active() && q.incremental_active());
            assert_eq!(q.incremental_holds(), Some(true));
            // Cut the middle edge; the answer flips and the batch is
            // WAL-logged before it applies.
            q.try_apply_batch_durable(&[], &[(e, vec![1, 2])], &Governor::unlimited())
                .expect("durable batch");
            assert_eq!(q.incremental_holds(), Some(false));
            assert!(q.flush_stats().expect("durable stats").wal_records >= 1);
            // Dropped with no shutdown hook — durability must not need one.
        }
        {
            // A second query on the same directory recovers the mutated
            // state; the template's facts are NOT re-asserted.
            let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
            let report = q.open_durable(&directed_path(4), &dir).expect("reopen");
            assert!(report.manifest_found);
            assert_eq!(report.recovered_epoch, 2);
            assert_eq!(q.recovery_report().expect("attached").recovered_epoch, 2);
            assert_eq!(q.incremental_holds(), Some(false));
            // Restore the edge durably, then force a checkpoint.
            q.try_apply_batch_durable(&[(e, vec![1, 2])], &[], &Governor::unlimited())
                .expect("durable batch");
            assert_eq!(q.incremental_holds(), Some(true));
            assert!(q.checkpoint_now().expect("checkpoint") > 0);
        }
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        let report = q.open_durable(&directed_path(4), &dir).expect("reopen 2");
        // The checkpoint covers everything: nothing left to replay.
        assert_eq!(report.replayed_batches, 0);
        assert!(report.checkpoint_epoch >= 3);
        assert_eq!(q.incremental_holds(), Some(true));
        // The answer cache was patched from recovered state.
        assert!(q.eval(&directed_path(4)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn racing_insert_is_rejected_after_batch_commit() {
        use kv_structures::RelId;
        // Regression for the epoch check-and-insert race: a reader that
        // started evaluating before a batch committed must not publish
        // its answer at the post-batch epoch. We reproduce the interleave
        // deterministically: capture the lookup epoch (the reader's
        // snapshot point), let a batch commit, then attempt the insert
        // exactly as `eval` would.
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        q.enable_incremental(&directed_path(4));
        // Reader side: miss + epoch capture on a structure nobody has
        // patched, then "evaluation" happens outside the lock.
        let s = directed_path(5);
        let (cached, observed_epoch) = q.lock_cache().get_keyed(&s, &[0, 3]);
        assert_eq!(cached, None);
        // The answer computed against the pre-batch store.
        let stale_answer = true;
        // Writer side: a batch commits mid-evaluation and bumps the epoch.
        q.apply_batch(&[], &[(RelId(0), vec![1, 2])]);
        // Reader side resumes: the racy insert must be rejected...
        let stored = q
            .lock_cache()
            .insert_if_epoch(&s, &[0, 3], stale_answer, observed_epoch);
        assert!(!stored, "insert raced a committed batch");
        // ...so a fresh eval recomputes rather than serving the answer
        // the interrupted reader computed for the pre-batch world.
        let misses = q.cache_stats().misses;
        assert!(q.eval(&s));
        assert_eq!(q.cache_stats().misses, misses + 1, "recomputed, not served");
    }

    #[test]
    fn uncached_eval_serves_any_goal_tuple() {
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        let s = directed_path(5);
        let gov = Governor::unlimited();
        // One compiled query answers every tuple of its binding pattern,
        // without touching the per-query cache.
        assert_eq!(q.try_eval_at_uncached(&s, &[0, 4], &gov), Ok(true));
        assert_eq!(q.try_eval_at_uncached(&s, &[4, 0], &gov), Ok(false));
        assert_eq!(q.try_eval_uncached(&s, &gov), Ok(true));
        assert_eq!(q.cache_stats().entries, 0, "cache stays untouched");
        // Governance still applies.
        let cancelled = Governor::unlimited();
        cancelled.cancel_token().cancel();
        assert_eq!(
            q.try_eval_uncached(&s, &cancelled),
            Err(Interrupted::Cancelled)
        );
    }

    #[test]
    fn governed_batches_resume_on_the_query() {
        use kv_datalog::Budget;
        use kv_structures::RelId;
        let q = ProgramQuery::at_tuple("0 reaches 5", transitive_closure(), vec![0, 5]);
        q.enable_incremental(&directed_path(6));
        let straight = {
            let p = ProgramQuery::at_tuple("straight", transitive_closure(), vec![0, 5]);
            p.enable_incremental(&directed_path(6));
            p.apply_batch(&[(RelId(0), vec![5, 0])], &[(RelId(0), vec![2, 3])])
        };
        let mut budget = 40u64;
        let mut res = q.try_apply_batch_governed(
            &[(RelId(0), vec![5, 0])],
            &[(RelId(0), vec![2, 3])],
            &Governor::with_budget(Budget::steps(budget)),
        );
        let mut resumes = 0;
        let summary = loop {
            match res {
                Ok(summary) => break summary,
                Err(_) => {
                    resumes += 1;
                    assert!(q.batch_pending());
                    assert_eq!(q.incremental_holds(), None);
                    budget *= 2;
                    res = q.resume_batch(&Governor::with_budget(Budget::steps(budget)));
                }
            }
        };
        assert!(resumes > 0, "tiny budget must interrupt");
        assert!(!q.batch_pending());
        assert_eq!(q.incremental_holds(), Some(false));
        assert_eq!(summary.eval_stats, straight.eval_stats);
        assert_eq!(summary.delta_tuples, straight.delta_tuples);
        assert_eq!(summary.deleted_tuples, straight.deleted_tuples);
    }
}
