//! Boolean queries on finite structures.
//!
//! The paper's objects of study are *queries* — isomorphism-invariant
//! boolean properties of finite structures over a fixed vocabulary. The
//! [`BooleanQuery`] trait is the common interface under which Datalog(≠)
//! programs, the flow/game solvers of the case study, and brute-force
//! oracles are compared by the experiments.

use kv_datalog::{CompiledProgram, EvalOptions, EvalStats, Program};
use kv_structures::{Governor, Interrupted, Structure};

/// A boolean query over structures of a fixed vocabulary.
pub trait BooleanQuery {
    /// A short display name.
    fn name(&self) -> &str;
    /// Evaluates the query.
    fn eval(&self, structure: &Structure) -> bool;
    /// Evaluates the query and, when the backend supports it, reports
    /// evaluation counters. The default forwards to [`eval`](Self::eval)
    /// with no stats.
    fn eval_with_stats(&self, structure: &Structure) -> (bool, Option<EvalStats>) {
        (self.eval(structure), None)
    }
    /// Governed evaluation: honors the governor's budget, deadline, and
    /// cancellation token, returning `Err(Interrupted)` instead of
    /// looping unbounded. The default checks the governor once up front
    /// and then runs [`eval`](Self::eval); backends with governed engines
    /// (e.g. [`ProgramQuery`]) override this with cooperative checks
    /// inside their hot loops.
    fn try_eval(&self, structure: &Structure, gov: &Governor) -> Result<bool, Interrupted> {
        gov.check()?;
        Ok(self.eval(structure))
    }
}

/// A Datalog(≠) program used as a boolean query: true iff the goal
/// relation contains the designated tuple (by default the empty tuple of a
/// nullary goal).
///
/// The program is compiled **once, at construction** — every `eval` call
/// reuses the same [`CompiledProgram`] (rule variants, index plan), so
/// running one query over a family of structures pays for compilation a
/// single time.
pub struct ProgramQuery {
    name: String,
    program: Program,
    compiled: CompiledProgram,
    goal_tuple: Vec<kv_structures::Element>,
}

impl ProgramQuery {
    /// Wraps a program with a nullary goal.
    pub fn nullary(name: impl Into<String>, program: Program) -> Self {
        assert_eq!(
            program.idb_arity(program.goal()),
            0,
            "nullary goal expected"
        );
        Self::build(name.into(), program, Vec::new())
    }

    /// Wraps a program, reading the goal relation at a fixed tuple.
    pub fn at_tuple(
        name: impl Into<String>,
        program: Program,
        goal_tuple: Vec<kv_structures::Element>,
    ) -> Self {
        assert_eq!(
            program.idb_arity(program.goal()),
            goal_tuple.len(),
            "tuple arity must match the goal"
        );
        Self::build(name.into(), program, goal_tuple)
    }

    fn build(name: String, program: Program, goal_tuple: Vec<kv_structures::Element>) -> Self {
        let compiled = CompiledProgram::compile(&program);
        Self {
            name,
            program,
            compiled,
            goal_tuple,
        }
    }

    /// The wrapped program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The compiled form shared by every evaluation.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }
}

impl BooleanQuery for ProgramQuery {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&self, structure: &Structure) -> bool {
        self.eval_with_stats(structure).0
    }

    fn eval_with_stats(&self, structure: &Structure) -> (bool, Option<EvalStats>) {
        // Infallible: default options configure no limits.
        #[allow(clippy::expect_used)]
        let result = self
            .compiled
            .try_run(structure, EvalOptions::default())
            .expect("no limits configured");
        let holds = result.idb[self.compiled.goal().0].contains(&self.goal_tuple);
        (holds, Some(result.eval_stats))
    }

    fn try_eval(&self, structure: &Structure, gov: &Governor) -> Result<bool, Interrupted> {
        let result = self
            .compiled
            .try_run_governed(structure, EvalOptions::default(), gov)
            .map_err(|e| e.reason)?;
        Ok(result.idb[self.compiled.goal().0].contains(&self.goal_tuple))
    }
}

/// A query defined by a closure (for oracles and ad-hoc baselines).
pub struct FnQuery<F> {
    name: String,
    f: F,
}

impl<F: Fn(&Structure) -> bool> FnQuery<F> {
    /// Wraps a closure.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
        }
    }
}

impl<F: Fn(&Structure) -> bool> BooleanQuery for FnQuery<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&self, structure: &Structure) -> bool {
        (self.f)(structure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_datalog::programs::transitive_closure;
    use kv_structures::generators::directed_path;

    #[test]
    fn program_query_at_tuple() {
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        assert!(q.eval(&directed_path(4)));
        assert!(!q.eval(&directed_path(3)));
        assert_eq!(q.name(), "0 reaches 3");
    }

    #[test]
    fn program_query_reports_stats() {
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        let (holds, stats) = q.eval_with_stats(&directed_path(4));
        assert!(holds);
        let stats = stats.expect("program queries report stats");
        assert_eq!(stats.tuples_interned, 6); // TC of a 4-path
        assert!(stats.join_probes > 0);
        assert_eq!(stats.stages, 3);
    }

    #[test]
    fn try_eval_honors_governor() {
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        let s = directed_path(4);
        assert_eq!(q.try_eval(&s, &Governor::unlimited()), Ok(true));
        let gov = Governor::unlimited();
        gov.cancel_token().cancel();
        assert_eq!(q.try_eval(&s, &gov), Err(Interrupted::Cancelled));
        // The default impl on FnQuery checks the governor up front.
        let f = FnQuery::new("nonempty", |s: &Structure| s.tuple_count() > 0);
        assert_eq!(f.try_eval(&s, &Governor::unlimited()), Ok(true));
        assert_eq!(f.try_eval(&s, &gov), Err(Interrupted::Cancelled));
    }

    #[test]
    fn fn_query_wraps_closures() {
        let q = FnQuery::new("nonempty", |s: &Structure| s.tuple_count() > 0);
        assert!(q.eval(&directed_path(3)));
        assert!(!q.eval(&directed_path(1)));
        // The default stats hook reports none.
        assert_eq!(q.eval_with_stats(&directed_path(3)), (true, None));
    }

    #[test]
    #[should_panic(expected = "tuple arity")]
    fn arity_mismatch_panics() {
        ProgramQuery::at_tuple("bad", transitive_closure(), vec![0]);
    }
}
