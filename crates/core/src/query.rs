//! Boolean queries on finite structures.
//!
//! The paper's objects of study are *queries* — isomorphism-invariant
//! boolean properties of finite structures over a fixed vocabulary. The
//! [`BooleanQuery`] trait is the common interface under which Datalog(≠)
//! programs, the flow/game solvers of the case study, and brute-force
//! oracles are compared by the experiments.

use kv_datalog::{Evaluator, Program};
use kv_structures::Structure;

/// A boolean query over structures of a fixed vocabulary.
pub trait BooleanQuery {
    /// A short display name.
    fn name(&self) -> &str;
    /// Evaluates the query.
    fn eval(&self, structure: &Structure) -> bool;
}

/// A Datalog(≠) program used as a boolean query: true iff the goal
/// relation contains the designated tuple (by default the empty tuple of a
/// nullary goal).
pub struct ProgramQuery {
    name: String,
    program: Program,
    goal_tuple: Vec<kv_structures::Element>,
}

impl ProgramQuery {
    /// Wraps a program with a nullary goal.
    pub fn nullary(name: impl Into<String>, program: Program) -> Self {
        assert_eq!(
            program.idb_arity(program.goal()),
            0,
            "nullary goal expected"
        );
        Self {
            name: name.into(),
            program,
            goal_tuple: Vec::new(),
        }
    }

    /// Wraps a program, reading the goal relation at a fixed tuple.
    pub fn at_tuple(
        name: impl Into<String>,
        program: Program,
        goal_tuple: Vec<kv_structures::Element>,
    ) -> Self {
        assert_eq!(
            program.idb_arity(program.goal()),
            goal_tuple.len(),
            "tuple arity must match the goal"
        );
        Self {
            name: name.into(),
            program,
            goal_tuple,
        }
    }

    /// The wrapped program.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

impl BooleanQuery for ProgramQuery {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&self, structure: &Structure) -> bool {
        Evaluator::new(&self.program).holds(structure, &self.goal_tuple)
    }
}

/// A query defined by a closure (for oracles and ad-hoc baselines).
pub struct FnQuery<F> {
    name: String,
    f: F,
}

impl<F: Fn(&Structure) -> bool> FnQuery<F> {
    /// Wraps a closure.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
        }
    }
}

impl<F: Fn(&Structure) -> bool> BooleanQuery for FnQuery<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&self, structure: &Structure) -> bool {
        (self.f)(structure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_datalog::programs::transitive_closure;
    use kv_structures::generators::directed_path;

    #[test]
    fn program_query_at_tuple() {
        let q = ProgramQuery::at_tuple("0 reaches 3", transitive_closure(), vec![0, 3]);
        assert!(q.eval(&directed_path(4)));
        assert!(!q.eval(&directed_path(3)));
        assert_eq!(q.name(), "0 reaches 3");
    }

    #[test]
    fn fn_query_wraps_closures() {
        let q = FnQuery::new("nonempty", |s: &Structure| s.tuple_count() > 0);
        assert!(q.eval(&directed_path(3)));
        assert!(!q.eval(&directed_path(1)));
    }

    #[test]
    #[should_panic(expected = "tuple arity")]
    fn arity_mismatch_panics() {
        ProgramQuery::at_tuple("bad", transitive_closure(), vec![0]);
    }
}
