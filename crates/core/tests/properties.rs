//! Randomized tests for the facade toolkit, seed-deterministic via the
//! in-tree [`SplitMix64`] generator.

use kv_core::homeo::PatternSpec;
use kv_core::pattern_based::PatternBasedQuery;
use kv_core::{classify_and_report, Expressibility};
use kv_structures::rng::SplitMix64;
use kv_structures::{Digraph, Vocabulary};
use std::sync::Arc;

fn random_case_digraph(max_n: usize, rng: &mut SplitMix64) -> Digraph {
    let n = rng.gen_range(3usize..max_n + 1);
    let mut g = Digraph::new(n);
    let edges = rng.gen_range(0usize..(n * n / 3).min(12) + 1);
    for _ in 0..edges {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        g.add_edge(u, v);
    }
    g
}

/// A random loop-free edge list on 4 nodes, deduplicated.
fn random_edges(max_len: usize, rng: &mut SplitMix64) -> Vec<(usize, usize)> {
    let len = rng.gen_range(0usize..max_len + 1);
    let mut e: Vec<(usize, usize)> = (0..len)
        .map(|_| (rng.gen_range(0usize..4), rng.gen_range(0usize..4)))
        .filter(|&(i, j)| i != j)
        .collect();
    e.sort_unstable();
    e.dedup();
    e
}

/// Proposition 5.4's sound half on the even-path query: embedding
/// acceptance implies game acceptance, for each k.
#[test]
fn game_procedure_dominates() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let q = PatternBasedQuery::even_simple_path();
        let mut gg = random_case_digraph(6, &mut rng);
        let n = gg.node_count() as u32;
        gg.set_distinguished(vec![0, n - 1]);
        let b = gg.to_structure_with(Arc::new(Vocabulary::graph_with_constants(2)));
        if q.eval_by_embedding(&b) {
            assert!(q.eval_by_games(&b, 1), "seed {seed}");
            assert!(q.eval_by_games(&b, 2), "seed {seed}");
        }
    }
}

/// classify_and_report is total on small loop-free patterns and the
/// payload matches the class.
#[test]
fn report_payload_matches_class() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(1000 + seed);
        let p = PatternSpec {
            node_count: 4,
            edges: random_edges(5, &mut rng),
        };
        let report = classify_and_report(&p);
        match report.verdict {
            Expressibility::ExpressibleEverywhere(prog) => {
                assert_eq!(prog.idb_arity(prog.goal()), 0, "seed {seed}");
            }
            Expressibility::InexpressibleGeneral {
                acyclic_program, ..
            } => {
                assert_eq!(
                    acyclic_program.idb_arity(acyclic_program.goal()),
                    0,
                    "seed {seed}"
                );
            }
            Expressibility::Degenerate => {
                assert!(p.edges.is_empty(), "seed {seed}");
            }
        }
    }
}
