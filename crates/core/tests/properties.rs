//! Property-based tests for the facade toolkit.

use kv_core::pattern_based::PatternBasedQuery;
use kv_core::{classify_and_report, Expressibility};
use kv_core::homeo::PatternSpec;
use kv_structures::{Digraph, Vocabulary};
use proptest::prelude::*;
use std::sync::Arc;

fn digraph_strategy(max_n: usize) -> impl Strategy<Value = Digraph> {
    (3usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(n * n / 3).min(12)).prop_map(
            move |edges| {
                let mut g = Digraph::new(n);
                for (u, v) in edges {
                    g.add_edge(u, v);
                }
                g
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Proposition 5.4's sound half on the even-path query: embedding
    /// acceptance implies game acceptance, for each k.
    #[test]
    fn game_procedure_dominates(g in digraph_strategy(6)) {
        let q = PatternBasedQuery::even_simple_path();
        let mut gg = g.clone();
        let n = gg.node_count() as u32;
        gg.set_distinguished(vec![0, n - 1]);
        let b = gg.to_structure_with(Arc::new(Vocabulary::graph_with_constants(2)));
        if q.eval_by_embedding(&b) {
            prop_assert!(q.eval_by_games(&b, 1));
            prop_assert!(q.eval_by_games(&b, 2));
        }
    }

    /// classify_and_report is total on small loop-free patterns and the
    /// payload matches the class.
    #[test]
    fn report_payload_matches_class(edges in proptest::collection::vec((0usize..4, 0usize..4), 0..6)) {
        let edges: Vec<(usize, usize)> = {
            let mut e: Vec<_> = edges.into_iter().filter(|&(i, j)| i != j).collect();
            e.sort_unstable();
            e.dedup();
            e
        };
        let p = PatternSpec { node_count: 4, edges };
        let report = classify_and_report(&p);
        match report.verdict {
            Expressibility::ExpressibleEverywhere(prog) => {
                prop_assert_eq!(prog.idb_arity(prog.goal()), 0);
            }
            Expressibility::InexpressibleGeneral { acyclic_program, .. } => {
                prop_assert_eq!(acyclic_program.idb_arity(acyclic_program.goal()), 0);
            }
            Expressibility::Degenerate => {
                prop_assert!(p.edges.is_empty());
            }
        }
    }
}
