//! Abstract syntax of Datalog(≠) rules.

use kv_structures::ConstId;
use kv_structures::RelId;
use std::fmt;

/// A rule-local variable, numbered `0, …` within its rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Index of an IDB predicate within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdbId(pub usize);

/// A term: a variable or a constant symbol of the vocabulary.
///
/// The paper's programs freely mention the distinguished constants of the
/// input (e.g. `y ≠ s1` in the program `D` of Theorem 6.2), so constants may
/// appear both in rule bodies and heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A rule-local variable.
    Var(VarId),
    /// A constant symbol, resolved against the input structure at
    /// evaluation time.
    Const(ConstId),
}

/// A predicate reference: extensional (interpreted by the input structure)
/// or intensional (computed by the program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pred {
    /// An EDB predicate — a relation symbol of the vocabulary.
    Edb(RelId),
    /// An IDB predicate of the program.
    Idb(IdbId),
}

/// A body literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Literal {
    /// An atomic formula `P(t1, …, tn)`.
    Atom(Pred, Vec<Term>),
    /// An equality `t1 = t2`.
    Eq(Term, Term),
    /// An inequality `t1 ≠ t2`. Forbidden in plain Datalog.
    Neq(Term, Term),
}

/// One rule `Head(args) :- body`.
///
/// `var_names` records the source-level names of the rule's variables
/// (index = [`VarId`]); generated programs synthesize names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The IDB predicate of the head.
    pub head: IdbId,
    /// The head argument terms.
    pub head_args: Vec<Term>,
    /// The body literals, in source order.
    pub body: Vec<Literal>,
    /// Display names for the rule's variables.
    pub var_names: Vec<String>,
}

impl Rule {
    /// The number of distinct variables in the rule.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Iterates over the atoms of the body (skipping (in)equalities).
    pub fn atoms(&self) -> impl Iterator<Item = (&Pred, &[Term])> {
        self.body.iter().filter_map(|l| match l {
            Literal::Atom(p, args) => Some((p, args.as_slice())),
            _ => None,
        })
    }

    /// Whether the rule is a plain Datalog rule (no `=`, no `≠`).
    pub fn is_pure_datalog(&self) -> bool {
        self.body.iter().all(|l| matches!(l, Literal::Atom(_, _)))
    }

    /// Whether the rule uses any inequality.
    pub fn uses_inequality(&self) -> bool {
        self.body.iter().any(|l| matches!(l, Literal::Neq(_, _)))
    }

    /// All variables occurring in body atoms (the "bound" variables; the
    /// rest range over the whole universe).
    pub fn atom_bound_vars(&self) -> Vec<VarId> {
        let mut out: Vec<VarId> = Vec::new();
        for (_, args) in self.atoms() {
            for t in args {
                if let Term::Var(v) = t {
                    if !out.contains(v) {
                        out.push(*v);
                    }
                }
            }
        }
        out
    }
}

/// Pretty-printing helpers shared by `Display` impls in [`crate::program`].
pub(crate) fn fmt_term(
    t: &Term,
    var_names: &[String],
    const_name: &dyn Fn(ConstId) -> String,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    match t {
        Term::Var(v) => write!(f, "{}", var_names[v.0]),
        Term::Const(c) => write!(f, "{}", const_name(*c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rule() -> Rule {
        // T(x, y, w) :- E(x, z), T(z, y, w), w != x.
        let (x, y, z, w) = (VarId(0), VarId(1), VarId(2), VarId(3));
        Rule {
            head: IdbId(0),
            head_args: vec![Term::Var(x), Term::Var(y), Term::Var(w)],
            body: vec![
                Literal::Atom(Pred::Edb(RelId(0)), vec![Term::Var(x), Term::Var(z)]),
                Literal::Atom(
                    Pred::Idb(IdbId(0)),
                    vec![Term::Var(z), Term::Var(y), Term::Var(w)],
                ),
                Literal::Neq(Term::Var(w), Term::Var(x)),
            ],
            var_names: vec!["x".into(), "y".into(), "z".into(), "w".into()],
        }
    }

    #[test]
    fn rule_classification() {
        let r = sample_rule();
        assert!(!r.is_pure_datalog());
        assert!(r.uses_inequality());
        assert_eq!(r.var_count(), 4);
    }

    #[test]
    fn atom_bound_vars_excludes_inequality_only() {
        let r = sample_rule();
        let bound = r.atom_bound_vars();
        assert!(bound.contains(&VarId(0)));
        assert!(bound.contains(&VarId(3))); // w occurs in the recursive atom
                                            // A rule where w occurs only in inequalities:
        let r2 = Rule {
            head: IdbId(0),
            head_args: vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
            body: vec![
                Literal::Atom(
                    Pred::Edb(RelId(0)),
                    vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
                ),
                Literal::Neq(Term::Var(VarId(2)), Term::Var(VarId(0))),
            ],
            var_names: vec!["x".into(), "y".into(), "w".into()],
        };
        assert!(!r2.atom_bound_vars().contains(&VarId(2)));
    }

    #[test]
    fn atoms_iterator_skips_constraints() {
        let r = sample_rule();
        assert_eq!(r.atoms().count(), 2);
    }
}
