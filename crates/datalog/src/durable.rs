//! Crash-recoverable incremental maintenance: a write-ahead log of
//! batches plus periodic checkpoint snapshots over
//! [`kv_structures::persist`].
//!
//! [`DurableEngine`] wraps an [`IncrementalEngine`] with a redo-logging
//! protocol whose single invariant is: **a batch is logged durably before
//! any of it is applied in memory**. Together with the engine's own
//! determinism (a batch is a pure function of the committed pre-state),
//! that makes recovery trivial to state and to test:
//!
//! - Crash mid-WAL-append → the record is torn, the loader truncates it,
//!   the batch never happened.
//! - Crash any time after the WAL append → replay applies the full batch
//!   deterministically, landing on the exact state — tuple ids, support
//!   counts, epoch marks, stage identity — a clean run would hold.
//!
//! Every `checkpoint_every` batches the engine state (EDB and IDB
//! [`kv_structures::MutableStore`]s, epoch, aggregate counters) is
//! snapshotted into a fresh *generation*: `ckpt-GGGG` is written first,
//! then the manifest atomically repoints to generation `G`, then a fresh
//! `wal-GGGG` log starts and stale generations are pruned. A crash
//! between any two of those steps recovers through whichever manifest is
//! current — both sides of the swap describe a complete, consistent
//! world.
//!
//! On-disk layout of a durable directory:
//!
//! ```text
//! MANIFEST                  root pointer: generation, checkpoint epoch,
//!                           world fingerprint (atomic tmp+rename swap)
//! ckpt-0002-000000.seg      generation 2's snapshot: a header record,
//!                           one record per store (EDB relations, then
//!                           IDB predicates), and a closing per-store
//!                           manifest record with tuple counts and
//!                           checksums
//! wal-0002-000000.seg       batches applied after that snapshot,
//! wal-0002-000001.seg       one framed record per batch, segments
//!                           rolled at a fixed size
//! ```
//!
//! Because every store (each EDB relation and IDB predicate — the unit
//! the sharded evaluator partitions by) has its own snapshot record,
//! recovery can account for exactly which stores the replayed WAL tail
//! touched: the relations named by the replayed batches plus the IDB
//! predicates reachable from them through the program's rules. The rest
//! are recovered verbatim from their individually checksummed records —
//! see [`RecoveryReport::stores_skipped`].
//!
//! The [`CrashPoint`] hooks let the kill-and-restart chaos suite
//! (`tests/recovery.rs`) abort the process deterministically *inside*
//! the commit protocol — mid-WAL-record, between WAL and apply, mid
//! checkpoint write, on either side of the manifest swap — which is how
//! the recovery invariant is exercised at every seam.

use crate::eval::EvalOptions;
use crate::incremental::{BatchInterrupted, BatchSummary, Fact, IncrementalEngine};
use crate::program::Program;
use kv_structures::govern::Governor;
use kv_structures::persist::{self, put_u32, put_u64, ByteReader, RecoveryError, SegmentedLog};
use kv_structures::store::EvalStats;
use kv_structures::{RelId, Structure, Vocabulary};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How a [`DurableEngine`] flushes. The defaults favor test and bench
/// throughput: process-crash durability is unconditional (records are
/// handed to the OS before the engine mutates), while `fsync` — needed
/// only for whole-machine crashes — is opt-in.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Snapshot the engine and start a new generation after this many
    /// committed batches (0 = only on explicit
    /// [`checkpoint`](DurableEngine::checkpoint) calls).
    pub checkpoint_every: u64,
    /// Roll WAL segment files at this size.
    pub segment_bytes: u64,
    /// `fsync` WAL appends, snapshots, and manifest swaps.
    pub fsync: bool,
    /// Deterministic crash injection for the recovery chaos suite: abort
    /// the process at the named protocol seam.
    pub crash: Option<CrashPoint>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self {
            checkpoint_every: 8,
            segment_bytes: 64 * 1024,
            fsync: false,
            crash: None,
        }
    }
}

/// A seeded kill point inside the durable commit protocol. The recovery
/// tests run the engine in a subprocess with one of these armed; the
/// process [`std::process::abort`]s at the seam, the parent restarts it,
/// and recovery must land on the clean-run state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// While appending the WAL record of the batch producing `epoch`:
    /// only `keep` bytes of the frame reach the file — a torn write.
    WalTorn {
        /// The batch (by the epoch it would produce) whose record tears.
        epoch: u64,
        /// Frame bytes that survive.
        keep: usize,
    },
    /// After the batch's WAL record is durable, before any in-memory
    /// apply: recovery must replay the full batch.
    AfterWal {
        /// The batch (by the epoch it would produce) to crash after.
        epoch: u64,
    },
    /// After the batch applied in memory, before any checkpoint runs:
    /// durable state is WAL-ahead of nothing — replay is a no-op beyond
    /// this batch.
    AfterApply {
        /// The batch (by the epoch it produced) to crash after.
        epoch: u64,
    },
    /// Mid-checkpoint: only `keep` bytes of the snapshot record reach
    /// the new generation's file; the manifest still names the old one.
    CheckpointTorn {
        /// Snapshot frame bytes that survive.
        keep: usize,
    },
    /// Checkpoint written, manifest not yet swapped: recovery uses the
    /// previous generation and replays its WAL.
    BeforeManifest,
    /// Manifest swapped, stale generations not yet pruned: recovery uses
    /// the new snapshot and ignores the orphans.
    AfterManifest,
}

impl CrashPoint {
    /// Parses the harness's crash spec: `wal-torn:EPOCH:KEEP`,
    /// `after-wal:EPOCH`, `after-apply:EPOCH`, `ckpt-torn:KEEP`,
    /// `before-manifest`, `after-manifest`.
    pub fn parse(spec: &str) -> Option<CrashPoint> {
        let mut parts = spec.split(':');
        let head = parts.next()?;
        let mut num = || parts.next()?.parse::<u64>().ok();
        match head {
            "wal-torn" => {
                let epoch = num()?;
                let keep = num()? as usize;
                Some(CrashPoint::WalTorn { epoch, keep })
            }
            "after-wal" => Some(CrashPoint::AfterWal { epoch: num()? }),
            "after-apply" => Some(CrashPoint::AfterApply { epoch: num()? }),
            "ckpt-torn" => Some(CrashPoint::CheckpointTorn {
                keep: num()? as usize,
            }),
            "before-manifest" => Some(CrashPoint::BeforeManifest),
            "after-manifest" => Some(CrashPoint::AfterManifest),
            _ => None,
        }
    }
}

/// What recovery found and did while opening a durable directory.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Whether a manifest existed (false = the directory is fresh).
    pub manifest_found: bool,
    /// Epoch covered by the checkpoint snapshot that seeded the engine.
    pub checkpoint_epoch: u64,
    /// WAL batches replayed on top of the snapshot.
    pub replayed_batches: u64,
    /// Whether a torn record was truncated from the WAL tail.
    pub torn_wal_truncated: bool,
    /// The engine epoch after recovery.
    pub recovered_epoch: u64,
    /// Per-store snapshot records the checkpoint contributed (one per EDB
    /// relation and per IDB predicate; 0 for a fresh directory).
    pub snapshot_stores: u64,
    /// Stores the replayed WAL tail touched: the EDB relations named by
    /// any replayed batch plus the IDB predicates transitively derivable
    /// from them through the program's rules. Only these stores' contents
    /// can differ from their snapshot records.
    pub stores_replayed: u64,
    /// Stores the WAL tail provably did not touch: recovered verbatim
    /// from their individually checksummed snapshot records, with no
    /// replay work applied to them.
    pub stores_skipped: u64,
}

/// Flush-side counters of a [`DurableEngine`] (the observability surface
/// the bench's flush-overhead column reads).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlushStats {
    /// WAL records appended by this handle.
    pub wal_records: u64,
    /// Framed WAL bytes appended by this handle.
    pub wal_bytes: u64,
    /// Checkpoints taken by this handle.
    pub checkpoints: u64,
    /// Snapshot payload bytes written by checkpoints.
    pub checkpoint_bytes: u64,
}

/// A governed durable batch failed: either the governor interrupted the
/// evaluation (resumable, nothing lost) or the storage layer failed.
#[derive(Debug)]
pub enum DurableBatchError {
    /// The governor stopped the batch; it is pending inside the engine
    /// and [`DurableEngine::resume_batch`] continues it. Its WAL record
    /// is already durable, so a crash while pending replays the whole
    /// batch instead.
    Interrupted(BatchInterrupted),
    /// Reading or writing durable state failed.
    Storage(RecoveryError),
}

impl fmt::Display for DurableBatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableBatchError::Interrupted(e) => e.fmt(f),
            DurableBatchError::Storage(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for DurableBatchError {}

impl From<RecoveryError> for DurableBatchError {
    fn from(e: RecoveryError) -> Self {
        DurableBatchError::Storage(e)
    }
}

fn ckpt_base(generation: u64) -> String {
    format!("ckpt-{generation:04}")
}

fn wal_base(generation: u64) -> String {
    format!("wal-{generation:04}")
}

/// A content fingerprint of the world a durable directory serves: the
/// program's rules, the vocabulary shape, the universe size, and the
/// constant interpretations. Recovery refuses (typed
/// [`RecoveryError::Mismatch`]) to load state written for a different
/// world instead of replaying nonsense into it.
pub fn world_fingerprint(program: &Program, template: &Structure) -> u64 {
    let vocab = program.vocabulary();
    let mut desc = Vec::new();
    put_u32(&mut desc, template.universe_size() as u32);
    put_u32(&mut desc, vocab.relation_count() as u32);
    for r in vocab.relations() {
        put_u32(&mut desc, vocab.arity(r) as u32);
    }
    put_u32(&mut desc, vocab.constant_count() as u32);
    for c in vocab.constants() {
        put_u32(&mut desc, template.constant(c));
    }
    put_u32(&mut desc, program.idb_count() as u32);
    for rule in program.rules() {
        desc.extend_from_slice(format!("{rule:?};").as_bytes());
    }
    persist::checksum64(&desc)
}

/// An [`IncrementalEngine`] whose batches survive the process: WAL-logged
/// before they apply, snapshotted every few batches, and replayed on
/// [`open`](DurableEngine::open) after a crash.
#[derive(Debug)]
pub struct DurableEngine {
    engine: IncrementalEngine,
    dir: PathBuf,
    opts: DurabilityOptions,
    wal: SegmentedLog,
    universe: u32,
    generation: u64,
    fingerprint: u64,
    batches_since_checkpoint: u64,
    /// Highest epoch with a durable WAL record; guards against double
    /// logging when an interrupted governed batch resumes.
    wal_logged_epoch: u64,
    report: RecoveryReport,
    stats: FlushStats,
}

impl DurableEngine {
    /// Opens (or initializes) a durable engine in `dir`.
    ///
    /// Fresh directory: writes a generation-0 manifest, starts an empty
    /// WAL, and returns an engine at epoch 0 — assert initial facts with
    /// the first [`apply_batch`](Self::apply_batch). Existing directory:
    /// validates the manifest fingerprint against `program`/`template`,
    /// loads the current generation's snapshot (if any), replays its WAL
    /// — truncating a torn tail record, erroring on corruption under
    /// committed data — and prunes files of stale generations.
    pub fn open(
        program: &Program,
        template: &Structure,
        options: EvalOptions,
        dir: &Path,
        durability: DurabilityOptions,
    ) -> Result<Self, RecoveryError> {
        std::fs::create_dir_all(dir).map_err(|e| RecoveryError::Io {
            path: dir.to_path_buf(),
            op: "create durable directory",
            source: e,
        })?;
        let fingerprint = world_fingerprint(program, template);
        let vocab = Arc::clone(program.vocabulary());
        let universe = template.universe_size() as u32;
        let mut report = RecoveryReport::default();

        let manifest = persist::read_manifest(dir)?;
        let (generation, checkpoint_epoch) = match &manifest {
            Some(m) => {
                if m.fingerprint != fingerprint {
                    return Err(RecoveryError::mismatch(
                        &dir.join(persist::MANIFEST_NAME),
                        format!(
                            "directory fingerprint {:#018x} does not match this \
                             program/structure ({fingerprint:#018x})",
                            m.fingerprint
                        ),
                    ));
                }
                report.manifest_found = true;
                (m.generation, m.checkpoint_epoch)
            }
            None => (0, 0),
        };
        report.checkpoint_epoch = checkpoint_epoch;

        // Engine seed: the generation's snapshot, or a fresh engine.
        let mut engine = if checkpoint_epoch > 0 {
            let base = ckpt_base(generation);
            let snap_path = persist::segment_path(dir, &base, 0);
            let loaded = SegmentedLog::load(dir, &base)?;
            if loaded.torn_tail || loaded.records.is_empty() {
                return Err(RecoveryError::corrupt_at(
                    &snap_path,
                    0,
                    format!(
                        "checkpoint snapshot is incomplete: {} record(s), torn: {}",
                        loaded.records.len(),
                        loaded.torn_tail
                    ),
                ));
            }
            let (engine, stores) = decode_snapshot_records(
                &loaded.records,
                &snap_path,
                program,
                template,
                options,
                fingerprint,
                checkpoint_epoch,
            )?;
            report.snapshot_stores = stores;
            engine
        } else {
            IncrementalEngine::new(program, template, options)
        };

        // Replay the WAL past the snapshot, recording which EDB
        // relations the tail touches so the report can say which stores'
        // snapshot records were final (`stores_skipped`).
        let mut touched_edb = vec![false; vocab.relation_count()];
        let wbase = wal_base(generation);
        let loaded = SegmentedLog::load(dir, &wbase)?;
        report.torn_wal_truncated = loaded.torn_tail;
        for (i, record) in loaded.records.iter().enumerate() {
            let path = persist::segment_path(dir, &wbase, 0);
            let (epoch, inserts, retracts) = decode_batch(record, &path, &vocab, universe)?;
            if epoch != engine.epoch() + 1 {
                return Err(RecoveryError::corrupt_at(
                    &path,
                    0,
                    format!(
                        "WAL record {i} carries epoch {epoch}, engine is at {} \
                         (gap or out-of-order log)",
                        engine.epoch()
                    ),
                ));
            }
            for (rel, _) in inserts.iter().chain(retracts.iter()) {
                touched_edb[rel.0] = true;
            }
            engine.apply_batch(&inserts, &retracts);
            report.replayed_batches += 1;
        }
        report.recovered_epoch = engine.epoch();
        let total_stores = (vocab.relation_count() + program.idb_count()) as u64;
        if report.replayed_batches > 0 {
            report.stores_replayed = touched_store_count(program, &touched_edb);
        }
        report.stores_skipped = total_stores - report.stores_replayed;

        // A fresh directory gets its root pointer immediately, so a crash
        // right after open still recovers through a manifest.
        if manifest.is_none() {
            persist::write_manifest(
                dir,
                &persist::Manifest {
                    generation,
                    checkpoint_epoch,
                    fingerprint,
                },
                durability.fsync,
            )?;
        }
        let wal = SegmentedLog::reopen(dir, &wbase, durability.segment_bytes)?;
        prune_stale_generations(dir, generation);
        let wal_logged_epoch = engine.epoch();
        Ok(DurableEngine {
            engine,
            dir: dir.to_path_buf(),
            opts: durability,
            wal,
            universe,
            generation,
            fingerprint,
            batches_since_checkpoint: report.replayed_batches,
            wal_logged_epoch,
            report,
            stats: FlushStats::default(),
        })
    }

    /// The wrapped engine (read-only: mutations must go through the
    /// durable batch API so they are logged).
    pub fn engine(&self) -> &IncrementalEngine {
        &self.engine
    }

    /// What recovery found and did when this handle opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.report
    }

    /// Flush-side counters for this handle.
    pub fn flush_stats(&self) -> FlushStats {
        self.stats
    }

    /// The batches committed so far (durably: every one of them has a
    /// WAL record or is covered by a snapshot).
    pub fn epoch(&self) -> u64 {
        self.engine.epoch()
    }

    /// Whether an interrupted governed batch is pending.
    pub fn has_pending(&self) -> bool {
        self.engine.has_pending()
    }

    fn crash(&self) -> ! {
        // The chaos suite's seeded kill: no unwinding, no destructors —
        // the closest in-process stand-in for SIGKILL that still lets
        // the *parent* test control the timing deterministically.
        std::process::abort()
    }

    /// Applies a batch durably (ungoverned). See
    /// [`try_apply_batch_governed`](Self::try_apply_batch_governed).
    pub fn apply_batch(
        &mut self,
        inserts: &[Fact],
        retracts: &[Fact],
    ) -> Result<BatchSummary, RecoveryError> {
        match self.try_apply_batch_governed(inserts, retracts, &Governor::unlimited()) {
            Ok(summary) => Ok(summary),
            Err(DurableBatchError::Storage(e)) => Err(e),
            Err(DurableBatchError::Interrupted(e)) => {
                unreachable!("unlimited governor interrupted a batch: {e}")
            }
        }
    }

    /// Governed durable batch: logs the batch to the WAL (flushing before
    /// anything mutates), applies it through the engine, and checkpoints
    /// when the cadence is due and the governor still has headroom — a
    /// due checkpoint under an exhausted governor is deferred to a later
    /// batch, never skipped forever. Snapshot bytes are charged to the
    /// governor like any other engine I/O.
    ///
    /// # Panics
    /// Panics on an arity or universe violation, or if a batch is
    /// already pending (resume it first) — same contract as
    /// [`IncrementalEngine::try_apply_batch_governed`].
    pub fn try_apply_batch_governed(
        &mut self,
        inserts: &[Fact],
        retracts: &[Fact],
        gov: &Governor,
    ) -> Result<BatchSummary, DurableBatchError> {
        assert!(
            !self.engine.has_pending(),
            "a durable batch is pending; resume it before applying another"
        );
        self.engine.check_facts(inserts);
        self.engine.check_facts(retracts);
        let epoch = self.engine.epoch() + 1;
        if self.wal_logged_epoch < epoch {
            let payload = encode_batch(epoch, inserts, retracts);
            if let Some(CrashPoint::WalTorn { epoch: e, keep }) = self.opts.crash {
                if e == epoch {
                    let _ = self.wal.append_torn(&payload, keep);
                    self.crash();
                }
            }
            self.wal.append(&payload)?;
            if self.opts.fsync {
                self.wal.sync()?;
            }
            self.stats.wal_records += 1;
            self.stats.wal_bytes = self.wal.appended_bytes();
            if let Some(CrashPoint::AfterWal { epoch: e }) = self.opts.crash {
                if e == epoch {
                    self.crash();
                }
            }
            self.wal_logged_epoch = epoch;
        }
        let summary = self
            .engine
            .try_apply_batch_governed(inserts, retracts, gov)
            .map_err(DurableBatchError::Interrupted)?;
        self.finish_batch(gov)?;
        Ok(summary)
    }

    /// Resumes a pending interrupted batch. Its WAL record was logged by
    /// the original attempt, so this only drives the in-memory engine —
    /// and checkpoints afterwards if the cadence came due.
    pub fn resume_batch(&mut self, gov: &Governor) -> Result<BatchSummary, DurableBatchError> {
        let summary = self
            .engine
            .resume_batch(gov)
            .map_err(DurableBatchError::Interrupted)?;
        self.finish_batch(gov)?;
        Ok(summary)
    }

    fn finish_batch(&mut self, gov: &Governor) -> Result<(), DurableBatchError> {
        if let Some(CrashPoint::AfterApply { epoch }) = self.opts.crash {
            if epoch == self.engine.epoch() {
                self.crash();
            }
        }
        self.batches_since_checkpoint += 1;
        if self.opts.checkpoint_every > 0
            && self.batches_since_checkpoint >= self.opts.checkpoint_every
            && gov.check().is_ok()
        {
            let bytes = self.checkpoint()?;
            // Charge the flush like any other engine I/O; the checkpoint
            // is already durable, so an interrupt here only tells the
            // *caller* the budget ran out — nothing needs undoing.
            let _ = gov.charge_bytes(bytes);
        }
        Ok(())
    }

    /// Takes a checkpoint now: snapshots the engine into a new
    /// generation, atomically repoints the manifest, starts a fresh WAL,
    /// and prunes stale generations. No-op while a batch is pending
    /// (snapshots only ever cover committed state). Returns the snapshot
    /// payload size in bytes.
    pub fn checkpoint(&mut self) -> Result<u64, RecoveryError> {
        if self.engine.has_pending() {
            return Ok(0);
        }
        let next_gen = self.generation + 1;
        let records = encode_snapshot_records(&self.engine, self.universe, self.fingerprint);
        let payload_bytes: u64 = records.iter().map(|r| r.len() as u64).sum();
        let base = ckpt_base(next_gen);
        // A crashed earlier attempt at this generation may have left
        // orphans; recovery keeps only the manifest's generation, so
        // they are dead weight we can clobber.
        SegmentedLog::remove_all(&self.dir, &base);
        SegmentedLog::remove_all(&self.dir, &wal_base(next_gen));
        let mut snap = SegmentedLog::create(&self.dir, &base, u64::MAX / 2)?;
        if let Some(CrashPoint::CheckpointTorn { keep }) = self.opts.crash {
            // Crash partway through the snapshot write: the header
            // record tears and none of the store records follow.
            let _ = snap.append_torn(&records[0], keep);
            self.crash();
        }
        for record in &records {
            snap.append(record)?;
        }
        if self.opts.fsync {
            snap.sync()?;
        }
        drop(snap);
        if matches!(self.opts.crash, Some(CrashPoint::BeforeManifest)) {
            self.crash();
        }
        persist::write_manifest(
            &self.dir,
            &persist::Manifest {
                generation: next_gen,
                checkpoint_epoch: self.engine.epoch(),
                fingerprint: self.fingerprint,
            },
            self.opts.fsync,
        )?;
        if matches!(self.opts.crash, Some(CrashPoint::AfterManifest)) {
            self.crash();
        }
        self.wal = SegmentedLog::create(&self.dir, &wal_base(next_gen), self.opts.segment_bytes)?;
        let old_gen = self.generation;
        self.generation = next_gen;
        self.batches_since_checkpoint = 0;
        self.stats.checkpoints += 1;
        self.stats.checkpoint_bytes += payload_bytes;
        prune_stale_generations(&self.dir, next_gen);
        let _ = old_gen;
        Ok(payload_bytes)
    }
}

/// Removes checkpoint/WAL files of every generation except `keep`
/// (best-effort: the manifest no longer references them, so a leftover
/// orphan is harmless and will be retried next time).
fn prune_stale_generations(dir: &Path, keep: u64) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    let keep_ckpt = ckpt_base(keep);
    let keep_wal = wal_base(keep);
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = (name.starts_with("ckpt-") && !name.starts_with(keep_ckpt.as_str()))
            || (name.starts_with("wal-") && !name.starts_with(keep_wal.as_str()));
        if stale && name.ends_with(".seg") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

// ---------------------------------------------------------------------
// Payload encodings.
// ---------------------------------------------------------------------

/// WAL record: `[epoch][n_inserts][facts][n_retracts][facts]`, each fact
/// `[rel][elements × arity(rel)]`.
fn encode_batch(epoch: u64, inserts: &[Fact], retracts: &[Fact]) -> Vec<u8> {
    let mut p = Vec::new();
    put_u64(&mut p, epoch);
    for list in [inserts, retracts] {
        put_u32(&mut p, list.len() as u32);
        for (rel, t) in list {
            put_u32(&mut p, rel.0 as u32);
            for &e in t {
                put_u32(&mut p, e);
            }
        }
    }
    p
}

fn decode_batch(
    payload: &[u8],
    path: &Path,
    vocab: &Vocabulary,
    universe: u32,
) -> Result<(u64, Vec<Fact>, Vec<Fact>), RecoveryError> {
    let fail = |d: String| RecoveryError::corrupt_at(path, 0, d);
    let mut r = ByteReader::new(payload);
    let epoch = r.get_u64("batch epoch").map_err(fail)?;
    let mut lists: [Vec<Fact>; 2] = [Vec::new(), Vec::new()];
    for list in &mut lists {
        let n = r.get_u32("fact count").map_err(fail)? as usize;
        if n > payload.len() {
            return Err(fail(format!("fact count {n} exceeds payload size")));
        }
        list.reserve(n);
        for _ in 0..n {
            let rel = r.get_u32("fact relation").map_err(fail)? as usize;
            if rel >= vocab.relation_count() {
                return Err(fail(format!(
                    "relation id {rel} out of range ({} relation(s))",
                    vocab.relation_count()
                )));
            }
            let rel = RelId(rel);
            let t = r
                .get_u32s(vocab.arity(rel), "fact elements")
                .map_err(fail)?;
            if t.iter().any(|&e| e >= universe) {
                return Err(fail(format!(
                    "fact element outside universe of size {universe}: {t:?}"
                )));
            }
            list.push((rel, t));
        }
    }
    if !r.is_exhausted() {
        return Err(fail("trailing bytes after batch record".to_string()));
    }
    let [inserts, retracts] = lists;
    Ok((epoch, inserts, retracts))
}

/// Snapshot encoding, one framed record per concern:
///
/// - header: `[universe][fingerprint][epoch][total_stats][edb_count][idb_count]`
/// - one record per store, EDB relations then IDB predicates in id
///   order: `[kind][index][mutable_store]` (kind 0 = EDB, 1 = IDB)
/// - per-store manifest: `[count]` then per store
///   `[kind][index][live_tuples][checksum64 of that store's record]`
///
/// The per-store records are the shard-granular recovery unit the
/// incremental WAL replays against; the closing manifest binds them
/// together so a substituted or reordered record is caught even though
/// each frame already carries its own checksum.
fn encode_snapshot_records(
    engine: &IncrementalEngine,
    universe: u32,
    fingerprint: u64,
) -> Vec<Vec<u8>> {
    let edb = engine.edb_stores();
    let idb = engine.idb_stores();
    let mut header = Vec::new();
    put_u32(&mut header, universe);
    put_u64(&mut header, fingerprint);
    put_u64(&mut header, engine.epoch());
    persist::encode_eval_stats(&mut header, &engine.total_stats());
    put_u32(&mut header, edb.len() as u32);
    put_u32(&mut header, idb.len() as u32);
    let mut records = vec![header];
    let mut manifest = Vec::new();
    put_u32(&mut manifest, (edb.len() + idb.len()) as u32);
    for (kind, stores) in [(0u32, edb), (1u32, idb)] {
        for (index, store) in stores.iter().enumerate() {
            let mut p = Vec::new();
            put_u32(&mut p, kind);
            put_u32(&mut p, index as u32);
            persist::encode_mutable_store(&mut p, store);
            put_u32(&mut manifest, kind);
            put_u32(&mut manifest, index as u32);
            put_u64(&mut manifest, store.live_len() as u64);
            put_u64(&mut manifest, persist::checksum64(&p));
            records.push(p);
        }
    }
    records.push(manifest);
    records
}

/// Decodes a multi-record snapshot (see [`encode_snapshot_records`]),
/// returning the restored engine and the number of per-store records
/// validated.
#[allow(clippy::too_many_arguments)]
fn decode_snapshot_records(
    records: &[Vec<u8>],
    path: &Path,
    program: &Program,
    template: &Structure,
    options: EvalOptions,
    fingerprint: u64,
    expect_epoch: u64,
) -> Result<(IncrementalEngine, u64), RecoveryError> {
    let fail = |d: String| RecoveryError::corrupt_at(path, 0, d);
    let mut r = ByteReader::new(&records[0]);
    let universe = r.get_u32("snapshot universe").map_err(fail)?;
    if universe as usize != template.universe_size() {
        return Err(RecoveryError::mismatch(
            path,
            format!(
                "snapshot universe {universe}, template has {}",
                template.universe_size()
            ),
        ));
    }
    let snap_fp = r.get_u64("snapshot fingerprint").map_err(fail)?;
    if snap_fp != fingerprint {
        return Err(RecoveryError::mismatch(
            path,
            format!("snapshot fingerprint {snap_fp:#018x}, expected {fingerprint:#018x}"),
        ));
    }
    let epoch = r.get_u64("snapshot epoch").map_err(fail)?;
    if epoch != expect_epoch {
        return Err(RecoveryError::mismatch(
            path,
            format!("snapshot covers epoch {epoch}, manifest says {expect_epoch}"),
        ));
    }
    let total_stats: EvalStats = persist::decode_eval_stats(&mut r, path)?;
    let n_edb = r.get_u32("EDB store count").map_err(fail)? as usize;
    let n_idb = r.get_u32("IDB store count").map_err(fail)? as usize;
    if !r.is_exhausted() {
        return Err(fail("trailing bytes after snapshot header".to_string()));
    }
    let n_stores = n_edb + n_idb;
    if n_stores > 10_000 {
        return Err(fail(format!("implausible store count {n_stores}")));
    }
    if records.len() != n_stores + 2 {
        return Err(fail(format!(
            "snapshot should hold {} records (header + {n_stores} stores + manifest), found {}",
            n_stores + 2,
            records.len()
        )));
    }
    // Per-store manifest: tuple counts and checksums, one entry per
    // store record in order.
    let manifest = &records[n_stores + 1];
    let mut m = ByteReader::new(manifest);
    let m_count = m.get_u32("manifest store count").map_err(fail)? as usize;
    if m_count != n_stores {
        return Err(fail(format!(
            "store manifest lists {m_count} store(s), header says {n_stores}"
        )));
    }
    let mut edb = Vec::with_capacity(n_edb);
    let mut idb = Vec::with_capacity(n_idb);
    for (slot, record) in records[1..=n_stores].iter().enumerate() {
        let (want_kind, want_index) = if slot < n_edb {
            (0u32, slot as u32)
        } else {
            (1u32, (slot - n_edb) as u32)
        };
        let m_kind = m.get_u32("manifest store kind").map_err(fail)?;
        let m_index = m.get_u32("manifest store index").map_err(fail)?;
        let m_tuples = m.get_u64("manifest store tuples").map_err(fail)?;
        let m_check = m.get_u64("manifest store checksum").map_err(fail)?;
        if (m_kind, m_index) != (want_kind, want_index) {
            return Err(fail(format!(
                "store manifest entry {slot} names (kind {m_kind}, index {m_index}), \
                 expected (kind {want_kind}, index {want_index})"
            )));
        }
        if persist::checksum64(record) != m_check {
            return Err(fail(format!(
                "store record {slot} (kind {m_kind}, index {m_index}) does not match \
                 its manifest checksum"
            )));
        }
        let mut sr = ByteReader::new(record);
        let r_kind = sr.get_u32("store record kind").map_err(fail)?;
        let r_index = sr.get_u32("store record index").map_err(fail)?;
        if (r_kind, r_index) != (want_kind, want_index) {
            return Err(fail(format!(
                "store record {slot} labels itself (kind {r_kind}, index {r_index}), \
                 expected (kind {want_kind}, index {want_index})"
            )));
        }
        let store = persist::decode_mutable_store(&mut sr, path)?;
        if !sr.is_exhausted() {
            return Err(fail(format!("trailing bytes after store record {slot}")));
        }
        if store.live_len() as u64 != m_tuples {
            return Err(fail(format!(
                "store record {slot} holds {} live tuple(s), manifest says {m_tuples}",
                store.live_len()
            )));
        }
        if slot < n_edb { &mut edb } else { &mut idb }.push(store);
    }
    if !m.is_exhausted() {
        return Err(fail("trailing bytes after store manifest".to_string()));
    }
    let engine =
        IncrementalEngine::restore(program, template, options, edb, idb, epoch, total_stats)
            .map_err(|d| RecoveryError::mismatch(path, d))?;
    Ok((engine, n_stores as u64))
}

/// How many stores a WAL tail touching `touched_edb` can have changed:
/// the touched EDB relations plus the IDB predicates transitively
/// derivable from them through the program's rules (a rule's head is
/// affected if any body atom is a touched relation or an affected
/// predicate; body-less fact rules are counted conservatively, since a
/// replayed seed batch re-fires them).
fn touched_store_count(program: &Program, touched_edb: &[bool]) -> u64 {
    use crate::ast::Pred;
    let mut touched_idb = vec![false; program.idb_count()];
    loop {
        let mut changed = false;
        for rule in program.rules() {
            if touched_idb[rule.head.0] {
                continue;
            }
            let mut affected = false;
            let mut has_atoms = false;
            for (pred, _) in rule.atoms() {
                has_atoms = true;
                affected |= match *pred {
                    Pred::Edb(rel) => touched_edb[rel.0],
                    Pred::Idb(i) => touched_idb[i.0],
                };
            }
            if affected || !has_atoms {
                touched_idb[rule.head.0] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let e = touched_edb.iter().filter(|&&t| t).count();
    let i = touched_idb.iter().filter(|&&t| t).count();
    (e + i) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{avoiding_path, transitive_closure};
    use kv_structures::generators::random_digraph;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let n = NONCE.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("kv-durable-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&d).expect("create temp dir");
        d
    }

    fn edge_batches(seed: u64, n: u32, count: usize) -> Vec<(Vec<Fact>, Vec<Fact>)> {
        use kv_structures::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut live: Vec<(u32, u32)> = Vec::new();
        let mut batches = Vec::with_capacity(count);
        for _ in 0..count {
            let mut inserts = Vec::new();
            let mut retracts = Vec::new();
            for _ in 0..4 {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if rng.gen_bool(0.3) && !live.is_empty() {
                    let i = rng.gen_range(0..live.len());
                    let (x, y) = live.swap_remove(i);
                    retracts.push((RelId(0), vec![x, y]));
                } else {
                    live.push((a, b));
                    inserts.push((RelId(0), vec![a, b]));
                }
            }
            batches.push((inserts, retracts));
        }
        batches
    }

    fn assert_same_state(a: &IncrementalEngine, b: &IncrementalEngine, label: &str) {
        assert_eq!(a.epoch(), b.epoch(), "{label}: epoch");
        let s_a = a.edb_structure();
        let s_b = b.edb_structure();
        for r in s_a.vocabulary().relations() {
            assert_eq!(
                s_a.relation(r).sorted(),
                s_b.relation(r).sorted(),
                "{label}: EDB relation {r:?}"
            );
        }
        for (i, (ma, mb)) in a.idb_stores().iter().zip(b.idb_stores()).enumerate() {
            assert_eq!(ma.live_len(), mb.live_len(), "{label}: IDB {i} live size");
            for t in ma.live_iter() {
                assert!(mb.contains_live(t), "{label}: IDB {i} missing {t:?}");
            }
        }
    }

    #[test]
    fn durable_engine_survives_reopen_at_every_batch_boundary() {
        let program = transitive_closure();
        let template = random_digraph(9, 0.2, 11).to_structure();
        let batches = edge_batches(42, 9, 10);
        for stop_after in [1usize, 3, 7, 10] {
            let dir = temp_dir("reopen");
            let opts = DurabilityOptions {
                checkpoint_every: 3,
                ..DurabilityOptions::default()
            };
            {
                let mut d = DurableEngine::open(
                    &program,
                    &template,
                    EvalOptions::default(),
                    &dir,
                    opts.clone(),
                )
                .expect("open fresh");
                assert!(!d.recovery().manifest_found);
                for (ins, ret) in &batches[..stop_after] {
                    d.apply_batch(ins, ret).expect("apply");
                }
                // Dropped without any shutdown hook: durability must not
                // depend on a clean close.
            }
            let recovered =
                DurableEngine::open(&program, &template, EvalOptions::default(), &dir, opts)
                    .expect("reopen");
            assert!(recovered.recovery().manifest_found);
            assert_eq!(recovered.epoch(), stop_after as u64);
            // Store accounting: transitive closure has one EDB relation
            // and one IDB predicate; any replayed batch touches the EDB
            // relation and (through the rules) the IDB predicate.
            let rep = recovered.recovery();
            assert_eq!(rep.stores_replayed + rep.stores_skipped, 2);
            if rep.checkpoint_epoch > 0 {
                assert_eq!(rep.snapshot_stores, 2, "one record per store");
            } else {
                assert_eq!(rep.snapshot_stores, 0);
            }
            if rep.replayed_batches > 0 {
                assert_eq!(rep.stores_replayed, 2);
            } else {
                assert_eq!(rep.stores_replayed, 0);
            }
            // Clean-run partner: the same batches through a volatile engine.
            let mut clean = IncrementalEngine::new(&program, &template, EvalOptions::default());
            for (ins, ret) in &batches[..stop_after] {
                clean.apply_batch(ins, ret);
            }
            assert_same_state(
                recovered.engine(),
                &clean,
                &format!("stop_after={stop_after}"),
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn checkpoints_prune_old_generations_and_replay_less() {
        let program = avoiding_path();
        let template = random_digraph(8, 0.25, 5).to_structure();
        let dir = temp_dir("prune");
        let opts = DurabilityOptions {
            checkpoint_every: 2,
            ..DurabilityOptions::default()
        };
        let mut d = DurableEngine::open(
            &program,
            &template,
            EvalOptions::default(),
            &dir,
            opts.clone(),
        )
        .expect("open");
        for (ins, ret) in edge_batches(7, 8, 9) {
            d.apply_batch(&ins, &ret).expect("apply");
        }
        assert!(d.flush_stats().checkpoints >= 4);
        drop(d);
        // Only the live generation's files remain.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("read dir")
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        let gens: std::collections::HashSet<&str> = names
            .iter()
            .filter(|n| n.ends_with(".seg"))
            .filter_map(|n| n.split('-').nth(1))
            .collect();
        assert_eq!(gens.len(), 1, "stale generations must be pruned: {names:?}");
        // Reopen replays only the post-checkpoint suffix.
        let d = DurableEngine::open(&program, &template, EvalOptions::default(), &dir, opts)
            .expect("reopen");
        assert_eq!(d.epoch(), 9);
        assert!(d.recovery().checkpoint_epoch >= 8);
        assert!(d.recovery().replayed_batches <= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_skips_stores_the_wal_tail_never_touched() {
        use crate::programs::path_systems;
        // Path systems: EDB relations R/3 (rel 0) and A/1 (rel 1), one
        // IDB predicate Acc. Seed both relations before the checkpoint,
        // then let the WAL tail touch only A — recovery must report R's
        // store as skipped (its snapshot record was final) and A + Acc
        // as replayed.
        let program = path_systems();
        let template = Structure::new(Arc::clone(program.vocabulary()), 6);
        let dir = temp_dir("skip");
        let opts = DurabilityOptions {
            checkpoint_every: 0,
            ..DurabilityOptions::default()
        };
        let mut d = DurableEngine::open(
            &program,
            &template,
            EvalOptions::default(),
            &dir,
            opts.clone(),
        )
        .expect("open");
        d.apply_batch(
            &[
                (RelId(0), vec![0, 1, 2]),
                (RelId(0), vec![3, 1, 2]),
                (RelId(1), vec![1]),
            ],
            &[],
        )
        .expect("seed batch");
        d.apply_batch(&[(RelId(1), vec![2])], &[]).expect("batch 2");
        d.checkpoint().expect("checkpoint at epoch 2");
        // Checkpoint covered epochs 1-2; these two form the WAL tail.
        d.apply_batch(&[(RelId(1), vec![4])], &[]).expect("batch 3");
        d.apply_batch(&[], &[(RelId(1), vec![4])]).expect("batch 4");
        drop(d);
        let recovered = DurableEngine::open(
            &program,
            &template,
            EvalOptions::default(),
            &dir,
            opts.clone(),
        )
        .expect("reopen");
        let rep = recovered.recovery();
        assert_eq!(rep.checkpoint_epoch, 2);
        assert_eq!(rep.replayed_batches, 2);
        assert_eq!(rep.snapshot_stores, 3, "R, A, Acc each get a record");
        assert_eq!(rep.stores_replayed, 2, "A and the Acc closure");
        assert_eq!(rep.stores_skipped, 1, "R untouched by the tail");
        // The accounting is a report, not a shortcut that may diverge:
        // the recovered state still equals a clean run.
        let mut clean = IncrementalEngine::new(&program, &template, EvalOptions::default());
        clean.apply_batch(
            &[
                (RelId(0), vec![0, 1, 2]),
                (RelId(0), vec![3, 1, 2]),
                (RelId(1), vec![1]),
            ],
            &[],
        );
        clean.apply_batch(&[(RelId(1), vec![2])], &[]);
        clean.apply_batch(&[(RelId(1), vec![4])], &[]);
        clean.apply_batch(&[], &[(RelId(1), vec![4])]);
        assert_same_state(recovered.engine(), &clean, "skip accounting");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_world_is_a_typed_mismatch() {
        let program = transitive_closure();
        let template = random_digraph(8, 0.25, 5).to_structure();
        let dir = temp_dir("mismatch");
        drop(
            DurableEngine::open(
                &program,
                &template,
                EvalOptions::default(),
                &dir,
                DurabilityOptions::default(),
            )
            .expect("open"),
        );
        // Different universe size → different world.
        let other = random_digraph(9, 0.25, 5).to_structure();
        let err = DurableEngine::open(
            &program,
            &other,
            EvalOptions::default(),
            &dir,
            DurabilityOptions::default(),
        )
        .expect_err("fingerprint mismatch");
        assert!(matches!(err, RecoveryError::Mismatch { .. }), "got {err}");
        // A different program over the same vocabulary mismatches too.
        let err = DurableEngine::open(
            &avoiding_path(),
            &template,
            EvalOptions::default(),
            &dir,
            DurabilityOptions::default(),
        )
        .expect_err("program mismatch");
        assert!(matches!(err, RecoveryError::Mismatch { .. }), "got {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn governed_interrupts_resume_durably() {
        use kv_structures::Budget;
        let program = transitive_closure();
        let template = random_digraph(10, 0.0, 1).to_structure();
        let dir = temp_dir("governed");
        let mut d = DurableEngine::open(
            &program,
            &template,
            EvalOptions::default(),
            &dir,
            DurabilityOptions::default(),
        )
        .expect("open");
        let chain: Vec<Fact> = (0..9).map(|i| (RelId(0), vec![i, i + 1])).collect();
        let mut budget = 20u64;
        let mut res =
            d.try_apply_batch_governed(&chain, &[], &Governor::with_budget(Budget::steps(budget)));
        let mut interrupts = 0;
        let summary = loop {
            match res {
                Ok(s) => break s,
                Err(DurableBatchError::Interrupted(_)) => {
                    interrupts += 1;
                    assert!(d.has_pending());
                    budget *= 2;
                    res = d.resume_batch(&Governor::with_budget(Budget::steps(budget)));
                }
                Err(DurableBatchError::Storage(e)) => panic!("storage error: {e}"),
            }
        };
        assert!(interrupts > 0, "tiny budget must interrupt");
        assert_eq!(summary.epoch, 1);
        // Exactly one WAL record despite the retries.
        assert_eq!(d.flush_stats().wal_records, 1);
        drop(d);
        let recovered = DurableEngine::open(
            &program,
            &template,
            EvalOptions::default(),
            &dir,
            DurabilityOptions::default(),
        )
        .expect("reopen");
        assert_eq!(recovered.epoch(), 1);
        let mut clean = IncrementalEngine::new(&program, &template, EvalOptions::default());
        clean.apply_batch(&chain, &[]);
        assert_same_state(recovered.engine(), &clean, "governed");
        std::fs::remove_dir_all(&dir).ok();
    }
}
