//! Bottom-up evaluation: naive stage iteration and semi-naive evaluation,
//! on the shared interned store.
//!
//! The paper defines the semantics of a program `π` on a structure `A` as
//! the least fixpoint of the monotone operator system `Θ_A`, reached by
//! iterating the stages `Θ¹ = Θ(∅)`, `Θ^{n+1} = Θ(Θ^n)` until they
//! stabilize (Section 2). [`Evaluator`] computes exactly these stages.
//!
//! *Naive* mode recomputes every rule against the full stage each round —
//! literally the paper's definition. *Semi-naive* mode rewrites each rule
//! into delta variants so that every derivation uses at least one tuple
//! discovered in the previous stage; both modes produce identical stages
//! (asserted by tests), semi-naive just avoids rediscovering old tuples.
//!
//! Storage is the [`kv_structures::store`] engine. Every IDB predicate
//! materializes into one append-only [`TupleStore`], so the three
//! relation views semi-naive evaluation needs are **id ranges** of that
//! single store — `old = [0, delta_lo)`, `delta = [delta_lo, prev_len)`,
//! `full = [0, prev_len)` — with no per-stage snapshot clones. EDB
//! relations are joined directly out of the structure's own stores
//! (zero-copy). Per-position [`PosIndex`]es are built once and *extended*
//! after each stage; range-restricted probes are `partition_point`
//! sub-slices of their sorted posting lists. Each atom's probe position is
//! chosen **statically** at rule-compile time.
//!
//! Programs are compiled **once** — [`Evaluator::new`] (or
//! [`CompiledProgram::compile`]) performs equality elimination, delta
//! rewriting, and index planning; `run` only joins. Because the stores are
//! immutable during a stage, independent rule variants evaluate **in
//! parallel** (driven by [`kv_structures::par`], honoring
//! `RAYON_NUM_THREADS`): workers read the shared stores and intern
//! candidate heads into private scratch arenas whose [`TupleId`]-dense
//! contents are re-interned into the shared stores at stage end; set-union
//! merging makes the result identical to sequential evaluation, stage by
//! stage.
//!
//! Evaluation reports [`EvalStats`] (tuples interned, duplicate
//! derivations, join probes, stages) and honors [`Limits`] budgets via
//! [`Evaluator::try_run`], returning a graceful [`LimitExceeded`] instead
//! of unbounded growth.
//!
//! Unbound variables — head or inequality variables that occur in no body
//! atom — range over the whole universe, matching the first-order reading
//! of the rule bodies as existential formulas over the structure.

use crate::ast::{IdbId, Literal, Pred, Rule, Term, VarId};
use crate::planner::{self, RunPlan, SccInfo};
use crate::program::Program;
use crate::sharded;
use crate::wcoj::{self, GenericPlan};
use kv_structures::govern::{Budget, Governor, Interrupted};
use kv_structures::par::{par_workers, thread_count};
use kv_structures::store::{
    gallop_intersect, tuple_hash, EvalStats, IdRange, LimitExceeded, Limits, PosIndex, StoreView,
    TupleBloom, TupleId, TupleStore,
};
use kv_structures::{Element, JoinLowering, PlannerMode, Relation, Structure, Vocabulary};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Options controlling evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Use semi-naive (delta) evaluation instead of naive recomputation.
    pub semi_naive: bool,
    /// Truncate after this many stages (`None` = run to fixpoint). This is
    /// a *graceful* cut — the result reports `converged: false`. For a
    /// hard budget that errors instead, use [`Limits::max_stages`].
    pub max_stages: Option<usize>,
    /// Evaluate independent rule variants in parallel within each stage.
    /// Stage results are identical either way (differential-tested); set
    /// `RAYON_NUM_THREADS=1` or turn this off for single-threaded runs.
    pub parallel: bool,
    /// Worker count override for parallel stages (`None` = derive from
    /// `RAYON_NUM_THREADS`/`KV_NUM_THREADS`/the CPU count). Lets one
    /// process measure thread scaling without re-exec'ing under different
    /// environment variables.
    pub threads: Option<usize>,
    /// How rule bodies are joined. [`PlannerMode::Textual`] keeps the
    /// written atom order and the generic probe loop (the engine's
    /// historical behaviour — the default here, so baseline counters stay
    /// byte-identical); [`PlannerMode::CostBased`] re-plans each body
    /// against the structure's [`kv_structures::CardStats`] at run start
    /// and selects specialized join kernels. Both derive the same tuple
    /// set at every stage (differential-tested).
    pub planner: PlannerMode,
    /// How cost-based plans lower rule bodies into join loops:
    /// [`JoinLowering::Auto`] picks the worst-case-optimal generic join
    /// for cyclic, blow-up-prone rules and the binary kernel pipeline for
    /// the rest; `Binary`/`Generic` force one lowering for every rule.
    /// Ignored in textual mode. Both lowerings derive the same tuple set
    /// at every stage (differential-tested).
    pub lowering: JoinLowering,
    /// Resource budgets; exceeding one makes [`Evaluator::try_run`] return
    /// [`LimitExceeded`].
    pub limits: Limits,
    /// Sharded execution: hash-partition each stage's delta across this
    /// many workers by tuple ownership (planner-chosen key positions) and
    /// exchange cross-owner derivations at the stage barrier. `None` (the
    /// default) keeps the rule-partitioned parallel stages. Stage *sets*
    /// are identical for every worker count (differential-tested for
    /// W ∈ {1, 2, 4, 8}); counters such as `join_probes` may differ
    /// because every worker walks the full rule list over its sub-delta.
    pub shards: Option<usize>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self {
            semi_naive: true,
            max_stages: None,
            parallel: true,
            threads: None,
            planner: PlannerMode::Textual,
            lowering: JoinLowering::default(),
            limits: Limits::default(),
            shards: None,
        }
    }
}

impl EvalOptions {
    /// The same options with the given [`PlannerMode`].
    pub fn with_planner(mut self, planner: PlannerMode) -> Self {
        self.planner = planner;
        self
    }

    /// The same options with the given [`JoinLowering`] (cost-based mode
    /// only; textual mode always runs the historical probe loop).
    pub fn with_lowering(mut self, lowering: JoinLowering) -> Self {
        self.lowering = lowering;
        self
    }

    /// The same options with an explicit worker-thread count (parallel
    /// runs only; `None` uses the engine-wide default).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// The same options with sharded (hash-partitioned, owner-computes)
    /// stage execution across `shards` workers; `None` disables sharding.
    /// See [`EvalOptions::shards`].
    pub fn with_shards(mut self, shards: Option<usize>) -> Self {
        self.shards = shards;
        self
    }
}

/// Per-stage statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Number of tuples first derived at this stage, per IDB predicate.
    pub new_tuples: Vec<usize>,
}

/// The result of evaluating a program on a structure.
///
/// Stage snapshots are free: because every IDB relation is an append-only
/// [`TupleStore`], stage `Θ^n` restricted to IDB `i` is the id-prefix
/// `[0, stage_marks[n-1][i])` of `idb[i]` — see [`stage_view`](Self::stage_view).
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Final IDB relations (the least fixpoint `π^∞`), per IDB predicate.
    pub idb: Vec<Relation>,
    /// Per-stage statistics. `stats[n]` describes stage `n + 1`.
    pub stats: Vec<StageStats>,
    /// Aggregate evaluation counters.
    pub eval_stats: EvalStats,
    /// `stage_marks[n][i]` is `|Θ^{n+1}|` restricted to IDB `i`: the store
    /// length of `idb[i]` after stage `n + 1` committed.
    pub stage_marks: Vec<Vec<u32>>,
    /// Whether the fixpoint was reached (false only if `max_stages` hit).
    pub converged: bool,
    /// Sharded-run statistics (worker loads, exchange traffic, key
    /// choices); `None` unless the run used [`EvalOptions::shards`].
    pub shard: Option<crate::sharded::ShardStats>,
}

impl EvalResult {
    /// Number of stages until the fixpoint (the `n₀` of Section 2).
    pub fn stage_count(&self) -> usize {
        self.stats.len()
    }

    /// The goal relation of `program`.
    pub fn goal_relation<'a>(&'a self, program: &Program) -> &'a Relation {
        &self.idb[program.goal().0]
    }

    /// Stage `Θ^stage` (1-based) restricted to IDB `idb`, as a zero-copy
    /// prefix view of the final store.
    ///
    /// # Panics
    /// Panics if `stage` is 0 or exceeds [`stage_count`](Self::stage_count).
    pub fn stage_view(&self, stage: usize, idb: usize) -> StoreView<'_> {
        self.idb[idb].store().view(self.stage_marks[stage - 1][idb])
    }

    /// Number of tuples in stage `Θ^stage` (1-based) of IDB `idb`.
    pub fn stage_len(&self, stage: usize, idb: usize) -> usize {
        self.stage_marks[stage - 1][idb] as usize
    }

    /// Whether another result has identical stages: same stage count and,
    /// for every stage and IDB, the same tuple *set* (id order may differ).
    pub fn same_stages(&self, other: &EvalResult) -> bool {
        if self.stage_count() != other.stage_count() || self.idb.len() != other.idb.len() {
            return false;
        }
        for n in 1..=self.stage_count() {
            for i in 0..self.idb.len() {
                let a = self.stage_view(n, i);
                let b = other.stage_view(n, i);
                if a.len() != b.len() || !a.iter().all(|t| b.contains(t)) {
                    return false;
                }
            }
        }
        true
    }
}

/// Resumable evaluation state captured at a *committed* stage boundary.
///
/// When a governed run is interrupted, partial per-stage work is
/// discarded and the checkpoint holds exactly the stages that committed:
/// the IDB stores, delta markers, per-stage statistics, and stage marks.
/// [`CompiledProgram::resume`] continues from here and — because stage
/// `n+1` is a pure function of the committed stage-`n` state — produces a
/// result identical, tuple id by tuple id, to an uninterrupted run.
#[derive(Debug, Clone)]
pub struct EvalCheckpoint {
    idb_stores: Vec<TupleStore>,
    delta_lo: Vec<u32>,
    stats: Vec<StageStats>,
    stage_marks: Vec<Vec<u32>>,
    eval_stats: EvalStats,
    stage: usize,
    /// SCCs of the predicate dependency graph that still had live deltas
    /// at the last committed stage boundary — the components the SCC
    /// scheduler would drive next. Diagnostic: resume recomputes liveness
    /// from `delta_lo`, so this carries no extra authority.
    active_sccs: Vec<u32>,
}

impl EvalCheckpoint {
    /// Number of stages committed before the interrupt.
    pub fn stage_count(&self) -> usize {
        self.stage
    }

    /// The SCC ids (stratum components) whose deltas were non-empty at the
    /// last committed stage boundary — where the schedule would resume.
    pub fn active_sccs(&self) -> &[u32] {
        &self.active_sccs
    }

    /// Total tuples interned across all IDB stores so far.
    pub fn tuples(&self) -> u64 {
        self.idb_stores.iter().map(|s| s.len() as u64).sum()
    }

    /// Evaluation counters for the committed prefix (monotone across
    /// successive checkpoints of one logical run).
    pub fn eval_stats(&self) -> EvalStats {
        self.eval_stats
    }

    /// Serializes the checkpoint for durable storage: store contents in
    /// id order (so [`from_bytes`](Self::from_bytes) re-interns into the
    /// exact same [`TupleId`] assignment), delta markers, per-stage
    /// statistics, stage marks, and counters. The payload is
    /// self-contained — framing and checksumming are the caller's job
    /// (see [`kv_structures::persist`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        use kv_structures::persist::{encode_eval_stats, put_u32, put_u64};
        let mut buf = Vec::new();
        put_u32(&mut buf, self.idb_stores.len() as u32);
        for store in &self.idb_stores {
            put_u32(&mut buf, store.arity() as u32);
            put_u32(&mut buf, store.len() as u32);
            for &e in store.range_slice(store.id_range()) {
                put_u32(&mut buf, e);
            }
        }
        for &lo in &self.delta_lo {
            put_u32(&mut buf, lo);
        }
        put_u32(&mut buf, self.stats.len() as u32);
        for st in &self.stats {
            put_u32(&mut buf, st.new_tuples.len() as u32);
            for &c in &st.new_tuples {
                put_u32(&mut buf, c as u32);
            }
        }
        put_u32(&mut buf, self.stage_marks.len() as u32);
        for row in &self.stage_marks {
            put_u32(&mut buf, row.len() as u32);
            for &m in row {
                put_u32(&mut buf, m);
            }
        }
        encode_eval_stats(&mut buf, &self.eval_stats);
        put_u64(&mut buf, self.stage as u64);
        put_u32(&mut buf, self.active_sccs.len() as u32);
        for &s in &self.active_sccs {
            put_u32(&mut buf, s);
        }
        buf
    }

    /// Rebuilds a checkpoint from [`to_bytes`](Self::to_bytes) output.
    /// Malformed bytes — truncation, duplicate tuples, inconsistent
    /// markers — decode to a typed [`RecoveryError`], never a panic.
    /// Resuming the rebuilt checkpoint produces a result identical,
    /// tuple id by tuple id, to resuming the original.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, kv_structures::RecoveryError> {
        use kv_structures::persist::{decode_eval_stats, ByteReader, RecoveryError};
        let path = std::path::Path::new("eval-checkpoint");
        let mut r = ByteReader::new(bytes);
        let fail = |d: String| RecoveryError::corrupt_at(path, 0, d);
        let n_idb = r.get_u32("idb store count").map_err(fail)? as usize;
        if n_idb > 10_000 {
            return Err(fail(format!("implausible idb count {n_idb}")));
        }
        let mut idb_stores = Vec::with_capacity(n_idb);
        for i in 0..n_idb {
            let arity = r.get_u32("store arity").map_err(fail)? as usize;
            let len = r.get_u32("store length").map_err(fail)? as usize;
            if arity > 64 || len > (u32::MAX as usize) / arity.max(1) {
                return Err(fail(format!(
                    "implausible store shape: arity {arity}, {len} tuple(s)"
                )));
            }
            let data = r.get_u32s(len * arity, "store data").map_err(fail)?;
            let mut store = TupleStore::with_capacity(arity, len);
            if arity == 0 {
                if len > 1 {
                    return Err(fail(format!("{len} distinct nullary tuples in IDB {i}")));
                }
                if len == 1 {
                    store.intern(&[]);
                }
            } else {
                for t in data.chunks_exact(arity) {
                    let (_, fresh) = store.intern(t);
                    if !fresh {
                        return Err(fail(format!("duplicate tuple {t:?} in IDB {i}")));
                    }
                }
            }
            idb_stores.push(store);
        }
        let delta_lo = r.get_u32s(n_idb, "delta markers").map_err(fail)?;
        for (lo, store) in delta_lo.iter().zip(&idb_stores) {
            if *lo as usize > store.len() {
                return Err(fail(format!(
                    "delta marker {lo} beyond store length {}",
                    store.len()
                )));
            }
        }
        let n_stats = r.get_u32("stage stat count").map_err(fail)? as usize;
        if n_stats > 1 << 24 {
            return Err(fail(format!("implausible stage count {n_stats}")));
        }
        let mut stats = Vec::with_capacity(n_stats);
        for _ in 0..n_stats {
            let k = r.get_u32("stage stat width").map_err(fail)? as usize;
            if k != n_idb {
                return Err(fail(format!("stage stat width {k}, expected {n_idb}")));
            }
            let counts = r.get_u32s(k, "stage new-tuple counts").map_err(fail)?;
            stats.push(StageStats {
                new_tuples: counts.into_iter().map(|c| c as usize).collect(),
            });
        }
        let n_marks = r.get_u32("stage mark count").map_err(fail)? as usize;
        if n_marks != n_stats {
            return Err(fail(format!(
                "{n_marks} mark row(s) for {n_stats} stage(s)"
            )));
        }
        let mut stage_marks = Vec::with_capacity(n_marks);
        for _ in 0..n_marks {
            let k = r.get_u32("stage mark width").map_err(fail)? as usize;
            if k != n_idb {
                return Err(fail(format!("stage mark width {k}, expected {n_idb}")));
            }
            stage_marks.push(r.get_u32s(k, "stage marks").map_err(fail)?);
        }
        let eval_stats = decode_eval_stats(&mut r, path)?;
        let stage = r.get_u64("stage counter").map_err(fail)? as usize;
        if stage != n_stats {
            return Err(fail(format!(
                "stage counter {stage} != {n_stats} committed stage(s)"
            )));
        }
        let n_active = r.get_u32("active scc count").map_err(fail)? as usize;
        if n_active > 1 << 24 {
            return Err(fail(format!("implausible active-SCC count {n_active}")));
        }
        let active_sccs = r.get_u32s(n_active, "active sccs").map_err(fail)?;
        if !r.is_exhausted() {
            return Err(fail("trailing bytes after checkpoint".to_string()));
        }
        Ok(EvalCheckpoint {
            idb_stores,
            delta_lo,
            stats,
            stage_marks,
            eval_stats,
            stage,
            active_sccs,
        })
    }

    /// The committed prefix as a (non-converged) [`EvalResult`] — partial
    /// progress for callers that inspect rather than resume. Clones the
    /// stores; the checkpoint stays resumable.
    pub fn partial_result(&self) -> EvalResult {
        EvalResult {
            idb: self
                .idb_stores
                .iter()
                .cloned()
                .map(Relation::from_store)
                .collect(),
            stats: self.stats.clone(),
            eval_stats: self.eval_stats,
            stage_marks: self.stage_marks.clone(),
            converged: false,
            shard: None,
        }
    }
}

/// A governed evaluation was interrupted: the reason plus a resumable
/// [`EvalCheckpoint`] holding all committed progress.
#[derive(Debug, Clone)]
pub struct EvalInterrupted {
    /// Why evaluation stopped.
    pub reason: Interrupted,
    /// Committed progress; pass to [`CompiledProgram::resume`].
    pub checkpoint: EvalCheckpoint,
}

impl fmt::Display for EvalInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} committed stage(s), {} tuple(s)",
            self.reason,
            self.checkpoint.stage_count(),
            self.checkpoint.tuples()
        )
    }
}

impl std::error::Error for EvalInterrupted {}

/// Access mode for an IDB atom inside a semi-naive rule variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IdbAccess {
    /// The relation as of the *previous* stage.
    Old,
    /// Only the tuples discovered in the previous stage.
    Delta,
    /// The full relation (old ∪ delta).
    Full,
}

/// The join strategy selected for one body atom, fixed before the join
/// loop runs. Which variables are bound when the join reaches an atom is
/// fully determined by the atom order, so the kernel is a static property
/// of the (possibly re-planned) rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JoinKernel {
    /// No argument is bound on entry: iterate the whole accessible range.
    Scan,
    /// One bound argument position is probed through a [`PosIndex`];
    /// remaining arguments are filtered per candidate.
    Probe {
        /// The indexed argument position.
        pos: usize,
    },
    /// Two bound argument positions: intersect the two sorted posting
    /// lists, visiting only ids that match both.
    MergedProbe {
        /// First indexed position.
        pos_a: usize,
        /// Second indexed position.
        pos_b: usize,
    },
    /// Every argument is bound on entry: the atom degenerates to a single
    /// interner lookup plus a range-containment test.
    Check,
}

impl JoinKernel {
    /// The index positions this kernel probes (what the index plan must
    /// provide).
    pub(crate) fn index_positions(&self) -> impl Iterator<Item = usize> {
        let pair: [Option<usize>; 2] = match *self {
            JoinKernel::Scan | JoinKernel::Check => [None, None],
            JoinKernel::Probe { pos } => [Some(pos), None],
            JoinKernel::MergedProbe { pos_a, pos_b } => [Some(pos_a), Some(pos_b)],
        };
        pair.into_iter().flatten()
    }
}

/// A body atom with its access mode and join kernel resolved.
#[derive(Debug, Clone)]
pub(crate) struct JoinAtom {
    pub(crate) pred: Pred,
    pub(crate) access: IdbAccess,
    pub(crate) args: Vec<Term>,
    /// The join strategy, decided at compile (or plan) time from which
    /// arguments are bound when the join reaches this atom.
    pub(crate) kernel: JoinKernel,
    /// Whether this atom is a magic (demand) predicate; its probes are
    /// attributed to [`EvalStats::magic_probes`] instead of
    /// [`EvalStats::join_probes`].
    pub(crate) is_magic: bool,
}

/// A rule pre-processed for joining: equalities eliminated by variable
/// unification, atoms ordered, constraints collected.
#[derive(Debug, Clone)]
pub(crate) struct CompiledRule {
    pub(crate) head: IdbId,
    pub(crate) head_args: Vec<Term>,
    pub(crate) atoms: Vec<JoinAtom>,
    /// Inequality constraints on canonical terms.
    pub(crate) neqs: Vec<(Term, Term)>,
    /// Equality constraints between constants (structure-dependent checks).
    pub(crate) const_eqs: Vec<(Term, Term)>,
    /// Number of canonical variables.
    pub(crate) var_count: usize,
    /// Canonical variables that occur in no atom and must be enumerated
    /// over the universe (because the head or an inequality needs them).
    pub(crate) free_vars: Vec<VarId>,
    /// ≠-constraints hoisted to their earliest fully-bound point:
    /// `neq_at[0]` holds indices into [`neqs`](Self::neqs) checkable at
    /// rule entry (both sides constant), `neq_at[j + 1]` those whose last
    /// variable is bound by atom `j`, and `neq_at[atoms.len() + 1 + i]`
    /// those completed by free variable `i`. Each constraint is checked
    /// exactly once per branch, at the same pruning point the old
    /// re-scan-everything loop first rejected it.
    pub(crate) neq_at: Vec<Vec<usize>>,
    /// Cost-based early exit: once the join has bound all head arguments
    /// (after this many atoms), a branch whose head tuple already exists
    /// can stop — the remaining atoms only re-verify a derivation that
    /// changes nothing. `None` disables the check (textual mode, or the
    /// head needs free variables).
    pub(crate) head_check_at: Option<usize>,
    /// When set, the rule body is executed by the worst-case-optimal
    /// generic join (`crate::wcoj`) instead of the binary kernel
    /// pipeline: the first atom seeds the join, the remaining variables
    /// are bound one at a time by intersecting sorted postings. Assigned
    /// only by the cost-based planner; both lowerings derive identical
    /// stages.
    pub(crate) generic: Option<GenericPlan>,
}

/// Union-find based equality elimination. Returns a substitution mapping
/// each original variable to a canonical [`Term`] plus leftover
/// constant-constant equality checks.
fn unify_rule(rule: &Rule) -> (Vec<Term>, Vec<(Term, Term)>) {
    let n = rule.var_count();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    // Constant attached to each class, if any; extra const-const checks.
    let mut class_const: Vec<Option<Term>> = vec![None; n];
    let mut const_eqs: Vec<(Term, Term)> = Vec::new();
    for lit in &rule.body {
        if let Literal::Eq(a, b) = lit {
            match (a, b) {
                (Term::Var(x), Term::Var(y)) => {
                    let (rx, ry) = (find(&mut parent, x.0), find(&mut parent, y.0));
                    if rx != ry {
                        parent[rx] = ry;
                        // Merge constant attachments.
                        match (class_const[rx].take(), class_const[ry]) {
                            (Some(c1), Some(c2)) => const_eqs.push((c1, c2)),
                            (Some(c1), None) => class_const[ry] = Some(c1),
                            _ => {}
                        }
                    }
                }
                (Term::Var(x), c @ Term::Const(_)) | (c @ Term::Const(_), Term::Var(x)) => {
                    let rx = find(&mut parent, x.0);
                    match class_const[rx] {
                        Some(existing) => const_eqs.push((existing, *c)),
                        None => class_const[rx] = Some(*c),
                    }
                }
                (c1 @ Term::Const(_), c2 @ Term::Const(_)) => const_eqs.push((*c1, *c2)),
            }
        }
    }
    // Build the substitution: class representative or attached constant.
    let subst: Vec<Term> = (0..n)
        .map(|x| {
            let r = find(&mut parent, x);
            class_const[r].unwrap_or(Term::Var(VarId(r)))
        })
        .collect();
    (subst, const_eqs)
}

fn apply_subst(t: &Term, subst: &[Term]) -> Term {
    match t {
        Term::Var(v) => subst[v.0],
        c => *c,
    }
}

/// Assigns the textual-mode kernel to every atom: probe the first argument
/// position that is a constant or a variable bound by an earlier atom, scan
/// otherwise. This reproduces the engine's historical static index choice
/// exactly, so textual-mode probe counters stay byte-identical.
pub(crate) fn assign_textual_kernels(atoms: &mut [JoinAtom]) {
    let mut bound: HashSet<VarId> = HashSet::new();
    for a in atoms {
        let first = a.args.iter().position(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        });
        a.kernel = match first {
            Some(pos) => JoinKernel::Probe { pos },
            None => JoinKernel::Scan,
        };
        for t in &a.args {
            if let Term::Var(v) = t {
                bound.insert(*v);
            }
        }
    }
}

/// Hoists each ≠-constraint to the earliest point of the join at which both
/// sides are bound (see [`CompiledRule::neq_at`]). A variable is first
/// bound by the first atom mentioning it (in the chosen order), or by its
/// slot in the free-variable odometer.
pub(crate) fn schedule_neqs(
    atoms: &[JoinAtom],
    free_vars: &[VarId],
    neqs: &[(Term, Term)],
) -> Vec<Vec<usize>> {
    let slots = atoms.len() + free_vars.len() + 1;
    let mut neq_at = vec![Vec::new(); slots];
    let slot_of = |t: &Term| -> usize {
        match t {
            Term::Const(_) => 0,
            Term::Var(v) => atoms
                .iter()
                .position(|a| a.args.contains(&Term::Var(*v)))
                .map(|j| j + 1)
                .or_else(|| {
                    free_vars
                        .iter()
                        .position(|f| f == v)
                        .map(|i| atoms.len() + 1 + i)
                })
                // A variable in no atom and no free slot can only pass
                // vacuously; park the check at the last slot.
                .unwrap_or(slots - 1),
        }
    };
    for (ni, (a, b)) in neqs.iter().enumerate() {
        neq_at[slot_of(a).max(slot_of(b))].push(ni);
    }
    neq_at
}

/// Where a semi-naive rule variant pins its delta atom: on the `d`-th IDB
/// occurrence (ordinary stage variants), on the `d`-th EDB occurrence
/// (the incremental engine's EDB-insertion variants, where the delta is
/// the batch of freshly asserted facts), or nowhere (naive rules).
#[derive(Debug, Clone, Copy)]
pub(crate) enum DeltaPin {
    /// No delta: every atom reads its full relation.
    None,
    /// Delta on the `d`-th IDB occurrence (EDB atoms stay full).
    Idb(usize),
    /// Delta on the `d`-th EDB occurrence (IDB atoms stay full). The
    /// occurrence partition — earlier EDB occurrences old, later ones
    /// full — enumerates each new derivation exactly once, which is what
    /// counting-based maintenance needs.
    Edb(usize),
}

pub(crate) fn compile_rule_pinned(rule: &Rule, pin: DeltaPin, magic: &[bool]) -> CompiledRule {
    let (subst, const_eqs) = unify_rule(rule);
    let head_args: Vec<Term> = rule
        .head_args
        .iter()
        .map(|t| apply_subst(t, &subst))
        .collect();
    let mut atoms = Vec::new();
    let mut neqs = Vec::new();
    let mut idb_occurrence = 0usize;
    let mut edb_occurrence = 0usize;
    let partition = |occ: usize, d: usize| match occ.cmp(&d) {
        std::cmp::Ordering::Less => IdbAccess::Old,
        std::cmp::Ordering::Equal => IdbAccess::Delta,
        std::cmp::Ordering::Greater => IdbAccess::Full,
    };
    for lit in &rule.body {
        match lit {
            Literal::Atom(pred, args) => {
                let access = match pred {
                    Pred::Idb(_) => {
                        let acc = match pin {
                            DeltaPin::Idb(d) => partition(idb_occurrence, d),
                            DeltaPin::None | DeltaPin::Edb(_) => IdbAccess::Full,
                        };
                        idb_occurrence += 1;
                        acc
                    }
                    Pred::Edb(_) => {
                        let acc = match pin {
                            DeltaPin::Edb(d) => partition(edb_occurrence, d),
                            DeltaPin::None | DeltaPin::Idb(_) => IdbAccess::Full,
                        };
                        edb_occurrence += 1;
                        acc
                    }
                };
                atoms.push(JoinAtom {
                    pred: *pred,
                    access,
                    args: args.iter().map(|t| apply_subst(t, &subst)).collect(),
                    kernel: JoinKernel::Scan,
                    is_magic: matches!(pred, Pred::Idb(i) if magic[i.0]),
                });
            }
            Literal::Neq(a, b) => {
                neqs.push((apply_subst(a, &subst), apply_subst(b, &subst)));
            }
            Literal::Eq(_, _) => {} // consumed by unification
        }
    }
    // Move the delta atom to the front: it seeds the join.
    if let Some(pos) = atoms.iter().position(|a| a.access == IdbAccess::Delta) {
        let delta = atoms.remove(pos);
        atoms.insert(0, delta);
    }
    // Static kernel selection for textual mode (which variables are bound
    // at each atom is fully determined by the atom order).
    assign_textual_kernels(&mut atoms);
    // Variables occurring in atoms.
    let mut in_atoms: HashSet<VarId> = HashSet::new();
    for a in &atoms {
        for t in &a.args {
            if let Term::Var(v) = t {
                in_atoms.insert(*v);
            }
        }
    }
    // Canonical variables needed by head or inequalities but absent from
    // every atom: enumerate them over the universe.
    let mut free_vars: Vec<VarId> = Vec::new();
    let need = |t: &Term, free: &mut Vec<VarId>| {
        if let Term::Var(v) = t {
            if !in_atoms.contains(v) && !free.contains(v) {
                free.push(*v);
            }
        }
    };
    for t in &head_args {
        need(t, &mut free_vars);
    }
    for (a, b) in &neqs {
        need(a, &mut free_vars);
        need(b, &mut free_vars);
    }
    let neq_at = schedule_neqs(&atoms, &free_vars, &neqs);
    CompiledRule {
        head: rule.head,
        head_args,
        atoms,
        neqs,
        const_eqs,
        var_count: rule.var_count(),
        free_vars,
        neq_at,
        head_check_at: None,
        generic: None,
    }
}

fn compile_rule(rule: &Rule, delta_at: Option<usize>, magic: &[bool]) -> CompiledRule {
    let pin = match delta_at {
        None => DeltaPin::None,
        Some(d) => DeltaPin::Idb(d),
    };
    compile_rule_pinned(rule, pin, magic)
}

/// Gathers the index plan — which positions of which relations the given
/// rules' kernels will ever probe — as sorted, deduplicated position lists.
pub(crate) fn index_plan<'r>(
    rules: impl Iterator<Item = &'r CompiledRule>,
    edb_count: usize,
    idb_count: usize,
) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let mut edb_pos: Vec<HashSet<usize>> = vec![HashSet::new(); edb_count];
    let mut idb_pos: Vec<HashSet<usize>> = vec![HashSet::new(); idb_count];
    for rule in rules {
        for (ai, atom) in rule.atoms.iter().enumerate() {
            // A generic-lowered rule refines every non-seed atom through
            // posting intersections at arbitrary argument positions, so it
            // needs all of them indexed; binary rules only need what their
            // statically chosen kernels probe.
            let positions: Vec<usize> = if rule.generic.is_some() && ai > 0 {
                (0..atom.args.len()).collect()
            } else {
                atom.kernel.index_positions().collect()
            };
            for pos in positions {
                match atom.pred {
                    Pred::Edb(r) => edb_pos[r.0].insert(pos),
                    Pred::Idb(i) => idb_pos[i.0].insert(pos),
                };
            }
        }
    }
    let sorted = |set: HashSet<usize>| {
        let mut v: Vec<usize> = set.into_iter().collect();
        v.sort_unstable();
        v
    };
    (
        edb_pos.into_iter().map(sorted).collect(),
        idb_pos.into_iter().map(sorted).collect(),
    )
}

/// A program compiled for evaluation: rule variants with static index
/// positions, plus the index plan (which positions of which relations any
/// variant will ever probe). Compiled **once** — by [`Evaluator::new`] or
/// directly — and reusable across arbitrarily many structures, which is
/// what `kv-core`'s `ProgramQuery` relies on.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    pub(crate) vocabulary: Arc<Vocabulary>,
    pub(crate) goal: IdbId,
    pub(crate) idb_arities: Vec<usize>,
    /// IDB display names, kept for `explain()` renderings.
    pub(crate) idb_names: Vec<String>,
    pub(crate) naive_rules: Vec<CompiledRule>,
    pub(crate) semi_variants: Vec<CompiledRule>,
    /// Index positions needed per EDB relation (sorted, deduplicated).
    pub(crate) edb_positions: Vec<Vec<usize>>,
    /// Index positions needed per IDB predicate. One index per position
    /// serves all three access modes (full / old / delta) via id ranges.
    pub(crate) idb_positions: Vec<Vec<usize>>,
    /// The predicate dependency graph's strongly connected components and
    /// their topological stratum order (see [`crate::planner`]).
    pub(crate) scc: SccInfo,
}

impl CompiledProgram {
    /// Compiles `program`: equality elimination, semi-naive delta
    /// variants, static probe positions, and the aggregate index plan.
    pub fn compile(program: &Program) -> Self {
        Self::compile_with_magic(program, &vec![false; program.idb_count()])
    }

    /// Like [`compile`](Self::compile), but with a per-IDB flag marking
    /// magic (demand) predicates — typically the
    /// [`crate::magic::MagicProgram::magic_flags`] of a magic-set rewrite.
    /// Probes against flagged predicates are counted in
    /// [`EvalStats::magic_probes`] rather than `join_probes`, keeping the
    /// demand path's bookkeeping overhead visible.
    ///
    /// # Panics
    /// Panics if `magic.len()` differs from the program's IDB count.
    pub fn compile_with_magic(program: &Program, magic: &[bool]) -> Self {
        assert_eq!(
            magic.len(),
            program.idb_count(),
            "one magic flag per IDB predicate"
        );
        let naive_rules: Vec<CompiledRule> = program
            .rules()
            .iter()
            .map(|r| compile_rule(r, None, magic))
            .collect();
        let mut semi_variants = Vec::new();
        for rule in program.rules() {
            let idb_atoms = rule
                .atoms()
                .filter(|(p, _)| matches!(p, Pred::Idb(_)))
                .count();
            for d in 0..idb_atoms {
                semi_variants.push(compile_rule(rule, Some(d), magic));
            }
        }
        let edb_count = program.vocabulary().relations().count();
        let idb_count = program.idb_count();
        let (edb_positions, idb_positions) = index_plan(
            naive_rules.iter().chain(&semi_variants),
            edb_count,
            idb_count,
        );
        CompiledProgram {
            vocabulary: Arc::clone(program.vocabulary()),
            goal: program.goal(),
            idb_arities: (0..idb_count)
                .map(|i| program.idb_arity(IdbId(i)))
                .collect(),
            idb_names: (0..idb_count)
                .map(|i| program.idb_name(IdbId(i)).to_string())
                .collect(),
            naive_rules,
            semi_variants,
            edb_positions,
            idb_positions,
            scc: SccInfo::of_program(program),
        }
    }

    /// The goal predicate.
    pub fn goal(&self) -> IdbId {
        self.goal
    }

    /// The SCC decomposition of the predicate dependency graph.
    pub fn scc_info(&self) -> &SccInfo {
        &self.scc
    }

    /// Number of strongly connected components among the IDB predicates.
    pub fn scc_count(&self) -> usize {
        self.scc.count()
    }

    /// Evaluates on `structure`, honoring the budgets in
    /// `options.limits`. Compatibility wrapper over
    /// [`try_run_governed`](Self::try_run_governed) with a governor built
    /// from `options.limits` (no deadline, no cancellation).
    ///
    /// # Panics
    /// Panics if the structure's vocabulary differs from the program's.
    pub fn try_run(
        &self,
        structure: &Structure,
        options: EvalOptions,
    ) -> Result<EvalResult, LimitExceeded> {
        let gov = Governor::with_budget(Budget::from(options.limits));
        self.try_run_governed(structure, options, &gov)
            .map_err(|e| match e.reason {
                Interrupted::Limit(l) => l,
                // The governor above has no deadline and a private,
                // never-cancelled token.
                other => unreachable!("ungoverned interrupt source fired: {other}"),
            })
    }

    /// Governed evaluation: honors the `gov`'s budget, deadline, and
    /// cancellation token, interrupting gracefully with a resumable
    /// [`EvalCheckpoint`] at the last committed stage. Parallel workers
    /// poll the governor cooperatively (amortized, worker-local batching),
    /// so cancellation and deadlines take effect mid-stage; the partial
    /// stage is discarded and recomputed on resume.
    ///
    /// # Panics
    /// Panics if the structure's vocabulary differs from the program's.
    pub fn try_run_governed(
        &self,
        structure: &Structure,
        options: EvalOptions,
        gov: &Governor,
    ) -> Result<EvalResult, EvalInterrupted> {
        let idb_count = self.idb_arities.len();
        let checkpoint = EvalCheckpoint {
            idb_stores: self
                .idb_arities
                .iter()
                .map(|&a| TupleStore::new(a))
                .collect(),
            delta_lo: vec![0u32; idb_count],
            stats: Vec::new(),
            stage_marks: Vec::new(),
            eval_stats: EvalStats::default(),
            stage: 0,
            active_sccs: Vec::new(),
        };
        self.run_from(structure, options, gov, checkpoint)
    }

    /// Evaluates on `structure` with `seeds` pre-interned into their IDB
    /// stores before stage 1 — the entry point of the demand path, where
    /// the magic goal predicate is seeded with the query's bound values
    /// (see [`crate::magic::MagicProgram::seed`]).
    ///
    /// Seeds behave as a committed "stage 0": stage 1 evaluates the naive
    /// rules over the full prefix (which contains the seeds), so the
    /// semi-naive invariant — every derivation whose premises predate a
    /// stage is found no later than that stage — holds unchanged, and
    /// interrupted seeded runs resume through the ordinary
    /// [`resume`](Self::resume). Seeds are not counted in
    /// [`EvalStats::tuples_interned`] (they are given, not derived).
    ///
    /// # Panics
    /// Panics on a vocabulary mismatch, an out-of-range seed predicate, or
    /// a seed arity mismatch.
    pub fn try_run_seeded(
        &self,
        structure: &Structure,
        options: EvalOptions,
        seeds: &[(IdbId, Vec<Element>)],
    ) -> Result<EvalResult, LimitExceeded> {
        let gov = Governor::with_budget(Budget::from(options.limits));
        self.try_run_governed_seeded(structure, options, &gov, seeds)
            .map_err(|e| match e.reason {
                Interrupted::Limit(l) => l,
                other => unreachable!("ungoverned interrupt source fired: {other}"),
            })
    }

    /// Governed variant of [`try_run_seeded`](Self::try_run_seeded); see
    /// [`try_run_governed`](Self::try_run_governed) for governance
    /// semantics.
    ///
    /// # Panics
    /// Panics on a vocabulary mismatch, an out-of-range seed predicate, or
    /// a seed arity mismatch.
    pub fn try_run_governed_seeded(
        &self,
        structure: &Structure,
        options: EvalOptions,
        gov: &Governor,
        seeds: &[(IdbId, Vec<Element>)],
    ) -> Result<EvalResult, EvalInterrupted> {
        let idb_count = self.idb_arities.len();
        let mut idb_stores: Vec<TupleStore> = self
            .idb_arities
            .iter()
            .map(|&a| TupleStore::new(a))
            .collect();
        for (idb, tuple) in seeds {
            assert!(idb.0 < idb_count, "seed predicate out of range");
            assert_eq!(
                tuple.len(),
                self.idb_arities[idb.0],
                "seed arity mismatch for IDB #{}",
                idb.0
            );
            idb_stores[idb.0].intern(tuple);
        }
        let checkpoint = EvalCheckpoint {
            idb_stores,
            delta_lo: vec![0u32; idb_count],
            stats: Vec::new(),
            stage_marks: Vec::new(),
            eval_stats: EvalStats::default(),
            stage: 0,
            active_sccs: Vec::new(),
        };
        self.run_from(structure, options, gov, checkpoint)
    }

    /// Resumes an interrupted governed evaluation from its checkpoint.
    ///
    /// `structure` and `options` must be the ones the original run used;
    /// the EDB and IDB indexes are rebuilt deterministically from the
    /// checkpointed stores, so the continued run derives exactly the
    /// stages an uninterrupted run would have. Budget counters belong to
    /// the governor, not the checkpoint — resuming with the exhausted
    /// governor re-trips immediately, so pass a fresh or relaxed one.
    ///
    /// # Panics
    /// Panics if the structure's vocabulary differs from the program's.
    pub fn resume(
        &self,
        structure: &Structure,
        options: EvalOptions,
        gov: &Governor,
        checkpoint: EvalCheckpoint,
    ) -> Result<EvalResult, EvalInterrupted> {
        self.run_from(structure, options, gov, checkpoint)
    }

    /// The governed evaluation core: runs from `cp` (fresh or resumed) to
    /// fixpoint, truncation, or interrupt.
    fn run_from(
        &self,
        structure: &Structure,
        options: EvalOptions,
        gov: &Governor,
        cp: EvalCheckpoint,
    ) -> Result<EvalResult, EvalInterrupted> {
        assert_eq!(
            structure.vocabulary(),
            &self.vocabulary,
            "structure/program vocabulary mismatch"
        );
        let idb_count = self.idb_arities.len();
        let universe = structure.universe_size();

        // Cost-based mode re-plans every rule body against this structure's
        // cardinality statistics; textual mode evaluates the compiled rules
        // as written. The plan is a pure function of (program, structure,
        // mode), so interrupted runs re-derive it identically on resume.
        let planned: Option<RunPlan> = match options.planner {
            PlannerMode::Textual => None,
            PlannerMode::CostBased => {
                Some(planner::plan_program(self, structure, options.lowering))
            }
        };
        let (naive_rules, semi_variants, edb_positions, idb_positions) = match &planned {
            None => (
                &self.naive_rules,
                &self.semi_variants,
                &self.edb_positions,
                &self.idb_positions,
            ),
            Some(p) => (
                &p.naive_rules,
                &p.semi_variants,
                &p.edb_positions,
                &p.idb_positions,
            ),
        };

        // EDB stores are the structure's own relation stores (zero-copy);
        // their indexes are built once, up front.
        let edb_stores: Vec<&TupleStore> = self
            .vocabulary
            .relations()
            .map(|r| structure.relation(r).store())
            .collect();
        let edb_idx: Vec<Vec<PosIndex>> = edb_stores
            .iter()
            .zip(edb_positions)
            .map(|(store, positions)| {
                positions
                    .iter()
                    .map(|&p| {
                        let mut ix = PosIndex::new(p);
                        ix.update(store);
                        ix
                    })
                    .collect()
            })
            .collect();

        // IDB state from the checkpoint (empty on a fresh run); indexes
        // are rebuilt over the committed prefix and then extended (not
        // rebuilt) after each further stage commits.
        let EvalCheckpoint {
            mut idb_stores,
            mut delta_lo,
            mut stats,
            mut stage_marks,
            mut eval_stats,
            mut stage,
            active_sccs: _,
        } = cp;
        let mut idb_idx: Vec<Vec<PosIndex>> = idb_positions
            .iter()
            .zip(&idb_stores)
            .map(|(positions, store)| {
                positions
                    .iter()
                    .map(|&p| {
                        let mut ix = PosIndex::new(p);
                        ix.update(store);
                        ix
                    })
                    .collect()
            })
            .collect();

        // Cost-based runs keep a Bloom pre-filter over each IDB's
        // committed tuples: a negative answer skips the interner lookup on
        // the hot early-exit and emit paths. Rebuilt deterministically from
        // the committed prefix, extended after each stage commit.
        let mut blooms: Option<Vec<TupleBloom>> = planned.as_ref().map(|_| {
            idb_stores
                .iter()
                .map(|store| {
                    let mut bloom = TupleBloom::with_capacity(store.len().max(64) * 2);
                    for t in store.iter() {
                        bloom.insert(tuple_hash(t));
                    }
                    bloom
                })
                .collect()
        });

        // Sharded execution state: shard keys are a pure function of the
        // compiled variants and the EDB statistics (resumed runs re-derive
        // them identically), and the per-worker delta sub-ranges are
        // recomputed from the committed checkpoint by scanning owners —
        // interrupts discard partial stages whole, so a checkpoint never
        // holds in-flight exchange tuples.
        let mut shard_state: Option<sharded::ShardState> = options.shards.map(|w| {
            let workers = w.max(1);
            let edb_stats: Vec<kv_structures::CardStats> =
                edb_stores.iter().map(|s| s.card_stats()).collect();
            let edb_arities: Vec<usize> = edb_stores.iter().map(|s| s.arity()).collect();
            let plan = sharded::choose_plan(
                semi_variants,
                &[],
                &self.idb_arities,
                &edb_arities,
                &edb_stats,
            );
            let idb_refs: Vec<&TupleStore> = idb_stores.iter().collect();
            let ranges = sharded::delta_ranges(&idb_refs, &delta_lo, &plan.idb_keys, workers);
            sharded::ShardState {
                workers,
                plan,
                ranges,
                owned: vec![0; workers],
                exchanged: 0,
            }
        });

        // Packages the committed state back up on interrupt.
        macro_rules! interrupt {
            ($reason:expr, $stores:expr, $delta:expr, $stats:expr, $marks:expr, $estats:expr, $stage:expr, $active:expr) => {{
                let mut eval_stats = $estats;
                eval_stats.stages = $stats.len() as u64;
                return Err(EvalInterrupted {
                    reason: $reason,
                    checkpoint: EvalCheckpoint {
                        idb_stores: $stores,
                        delta_lo: $delta,
                        stats: $stats,
                        stage_marks: $marks,
                        eval_stats,
                        stage: $stage,
                        active_sccs: $active,
                    },
                });
            }};
        }

        let mut converged = false;
        loop {
            // The SCC stratum schedule's live set at this boundary: the
            // components whose predicates still carry a non-empty delta
            // (or, entering stage 1, any committed tuples — seeds).
            let active_sccs: Vec<u32> = self.scc.active_components(&delta_lo, &idb_stores);
            if let Some(max) = options.max_stages {
                if stage >= max {
                    break;
                }
            }
            // Coarse boundary check (cancellation poll + deadline + all
            // budgets), then the stage budget for the stage about to run.
            if let Err(reason) = gov.check().and_then(|()| gov.charge_stage()) {
                interrupt!(
                    reason,
                    idb_stores,
                    delta_lo,
                    stats,
                    stage_marks,
                    eval_stats,
                    stage,
                    active_sccs
                );
            }
            stage += 1;
            let prev_len: Vec<u32> = idb_stores.iter().map(|s| s.len() as u32).collect();
            let rules_this_stage: &[CompiledRule] = if stage == 1 || !options.semi_naive {
                naive_rules
            } else {
                semi_variants
            };
            // Textual mode: keep only variants whose delta seed is
            // non-empty (the rest derive nothing this stage). Cost-based
            // mode sharpens this with the full range check: a rule with
            // *any* empty IDB source derives nothing either, so whole rule
            // groups of not-yet-populated (or already-converged) SCCs are
            // skipped before a single probe is issued — the stratum
            // schedule's work-avoidance, with stage semantics intact.
            let live_rules: Vec<&CompiledRule> = rules_this_stage
                .iter()
                .filter(|rule| match options.planner {
                    PlannerMode::Textual => match rule.atoms.first() {
                        Some(first) if first.access == IdbAccess::Delta => match first.pred {
                            Pred::Idb(i) => delta_lo[i.0] < prev_len[i.0],
                            Pred::Edb(_) => true,
                        },
                        _ => true,
                    },
                    PlannerMode::CostBased => rule.atoms.iter().all(|atom| match atom.pred {
                        Pred::Edb(_) => true,
                        Pred::Idb(i) => match atom.access {
                            IdbAccess::Delta => delta_lo[i.0] < prev_len[i.0],
                            IdbAccess::Old => delta_lo[i.0] > 0,
                            IdbAccess::Full => prev_len[i.0] > 0,
                        },
                    }),
                })
                .collect();

            // Evaluate independent variants in parallel. Workers read the
            // shared stores and intern candidate heads into private
            // scratch arenas; re-interning those at merge makes the stage
            // result identical to a sequential run (set union).
            let idb_refs: Vec<&TupleStore> = idb_stores.iter().collect();
            let mut new_count = vec![0usize; idb_count];
            if let Some(state) = shard_state.as_mut() {
                // Sharded stage: every worker runs the *full* live-rule
                // set over its owner slice of each delta window (stage one
                // and naive stages have no delta, so they partition rules
                // instead), then routes derivations by the owner of the
                // derived tuple. The per-worker derivation sets partition
                // the stage's derivations, and the stage barrier below is
                // the only synchronization point.
                let w_count = state.workers;
                let use_sub = options.semi_naive && stage > 1;
                let sub_ranges = &state.ranges;
                let keys = &state.plan.idb_keys;
                let mut results: Vec<(WorkerBuf, sharded::RoutedDelta)> =
                    par_workers(w_count, |w| {
                        let ctx = JoinCtx {
                            structure,
                            universe,
                            edb: &edb_stores,
                            edb_idx: &edb_idx,
                            idb: &idb_refs,
                            idb_idx: &idb_idx,
                            blooms: blooms.as_deref(),
                            prev_len: &prev_len,
                            delta_lo: &delta_lo,
                            edb_delta_lo: None,
                            idb_delta_sub: if use_sub { Some(&sub_ranges[w]) } else { None },
                            edb_delta_sub: None,
                            batched: planned.is_some(),
                            gov,
                        };
                        let mut buf = WorkerBuf::new(&self.idb_arities);
                        let (skip, step) = if use_sub { (0, 1) } else { (w, w_count) };
                        for rule in live_rules.iter().skip(skip).step_by(step) {
                            if let Err(reason) = evaluate_rule(rule, &ctx, &mut buf) {
                                buf.tripped = Some(reason);
                                break;
                            }
                        }
                        let routed = sharded::route_worker(&buf, keys, w_count);
                        (buf, routed)
                    });
                for (buf, _) in &mut results {
                    if buf.tripped.is_none() && buf.pending_steps > 0 {
                        buf.tripped = gov.step(buf.pending_steps).err();
                        buf.pending_steps = 0;
                    }
                }
                // A tripped worker aborts the stage whole: scratch arenas
                // *and* routed outboxes are discarded, so a checkpoint
                // never carries in-flight exchange tuples — the per-shard
                // frontier is exactly the committed delta, recomputed by
                // owner scan on resume.
                if let Some(reason) = results.iter().find_map(|(b, _)| b.tripped) {
                    stage -= 1;
                    interrupt!(
                        reason,
                        idb_stores,
                        delta_lo,
                        stats,
                        stage_marks,
                        eval_stats,
                        stage,
                        active_sccs
                    );
                }
                let mut routed = Vec::with_capacity(w_count);
                for (buf, r) in results {
                    eval_stats.join_probes += buf.probes;
                    eval_stats.magic_probes += buf.magic_probes;
                    eval_stats.block_probes += buf.block_probes;
                    eval_stats.gallop_steps += buf.gallop_steps;
                    eval_stats.wcoj_rules += buf.wcoj_rules;
                    eval_stats.duplicate_derivations += buf.dups;
                    routed.push(r);
                }
                // Owner-ordered merge through the delta exchange: the
                // committed delta is owner-contiguous, giving the next
                // stage its per-worker sub-ranges for free.
                let next = sharded::merge_set(
                    &mut idb_stores,
                    routed,
                    w_count,
                    &mut new_count,
                    &mut eval_stats.duplicate_derivations,
                    &mut state.exchanged,
                );
                state.commit_stage(next);
            } else {
                let ctx = JoinCtx {
                    structure,
                    universe,
                    edb: &edb_stores,
                    edb_idx: &edb_idx,
                    idb: &idb_refs,
                    idb_idx: &idb_idx,
                    blooms: blooms.as_deref(),
                    prev_len: &prev_len,
                    delta_lo: &delta_lo,
                    edb_delta_lo: None,
                    idb_delta_sub: None,
                    edb_delta_sub: None,
                    batched: planned.is_some(),
                    gov,
                };
                let workers = if options.parallel {
                    options
                        .threads
                        .unwrap_or_else(thread_count)
                        .min(live_rules.len())
                        .max(1)
                } else {
                    1
                };
                let mut buffers: Vec<WorkerBuf> = par_workers(workers, |w| {
                    let mut buf = WorkerBuf::new(&self.idb_arities);
                    for rule in live_rules.iter().skip(w).step_by(workers) {
                        if let Err(reason) = evaluate_rule(rule, &ctx, &mut buf) {
                            buf.tripped = Some(reason);
                            break;
                        }
                    }
                    buf
                });
                // Flush each worker's trailing step count; a flush that trips
                // the budget aborts the stage like an in-worker trip.
                for buf in &mut buffers {
                    if buf.tripped.is_none() && buf.pending_steps > 0 {
                        buf.tripped = gov.step(buf.pending_steps).err();
                        buf.pending_steps = 0;
                    }
                }
                // Any tripped worker aborts the whole stage: scratch arenas
                // and counters are discarded so the checkpoint holds exactly
                // the committed stages (stage `n+1` is recomputed on resume).
                if let Some(reason) = buffers.iter().find_map(|b| b.tripped) {
                    stage -= 1;
                    interrupt!(
                        reason,
                        idb_stores,
                        delta_lo,
                        stats,
                        stage_marks,
                        eval_stats,
                        stage,
                        active_sccs
                    );
                }

                // Merge: re-intern each worker's scratch arena into the shared
                // stores. A tuple scratch-derived by several workers is fresh
                // only once (set union).
                for buf in buffers {
                    eval_stats.join_probes += buf.probes;
                    eval_stats.magic_probes += buf.magic_probes;
                    eval_stats.block_probes += buf.block_probes;
                    eval_stats.gallop_steps += buf.gallop_steps;
                    eval_stats.wcoj_rules += buf.wcoj_rules;
                    eval_stats.duplicate_derivations += buf.dups;
                    for (i, scratch) in buf.scratch.into_iter().enumerate() {
                        for t in scratch.iter() {
                            if idb_stores[i].intern(t).1 {
                                new_count[i] += 1;
                            } else {
                                eval_stats.duplicate_derivations += 1;
                            }
                        }
                    }
                }
            }

            let any_new = new_count.iter().any(|&c| c > 0);
            if any_new {
                eval_stats.tuples_interned += new_count.iter().map(|&c| c as u64).sum::<u64>();
                stats.push(StageStats {
                    new_tuples: new_count.clone(),
                });
                stage_marks.push(idb_stores.iter().map(|s| s.len() as u32).collect());
                // Advance delta markers and extend the indexes over the
                // newly committed id range.
                delta_lo.copy_from_slice(&prev_len);
                for (store, ixs) in idb_stores.iter().zip(idb_idx.iter_mut()) {
                    for ix in ixs {
                        ix.update(store);
                    }
                }
                // Extend the Bloom pre-filters over the committed delta,
                // rebuilding any filter that grew past its useful load.
                if let Some(blooms) = blooms.as_mut() {
                    for (i, store) in idb_stores.iter().enumerate() {
                        if blooms[i].should_grow() {
                            let mut grown = TupleBloom::with_capacity(store.len() * 2);
                            for t in store.iter() {
                                grown.insert(tuple_hash(t));
                            }
                            blooms[i] = grown;
                        } else {
                            for id in delta_lo[i]..store.len() as u32 {
                                blooms[i].insert(tuple_hash(store.get(TupleId(id))));
                            }
                        }
                    }
                }
                // Tuple/byte budgets are charged after the stage commits,
                // so the checkpoint includes it and resume continues from
                // the next stage.
                let new_total: u64 = new_count.iter().map(|&c| c as u64).sum();
                let new_bytes: u64 = new_count
                    .iter()
                    .zip(&self.idb_arities)
                    .map(|(&c, &a)| c as u64 * a.max(1) as u64 * 4)
                    .sum();
                if let Err(reason) = gov
                    .charge_tuples(new_total)
                    .and_then(|()| gov.charge_bytes(new_bytes))
                {
                    let active = self.scc.active_components(&delta_lo, &idb_stores);
                    interrupt!(
                        reason,
                        idb_stores,
                        delta_lo,
                        stats,
                        stage_marks,
                        eval_stats,
                        stage,
                        active
                    );
                }
            } else {
                converged = true;
                break;
            }
        }
        eval_stats.stages = stats.len() as u64;

        Ok(EvalResult {
            idb: idb_stores.into_iter().map(Relation::from_store).collect(),
            stats,
            eval_stats,
            stage_marks,
            converged,
            shard: shard_state.map(|s| s.stats()),
        })
    }
}

/// The evaluator: a program compiled once ([`CompiledProgram`]), reused
/// across structures.
#[derive(Debug)]
pub struct Evaluator<'p> {
    program: &'p Program,
    compiled: CompiledProgram,
}

impl<'p> Evaluator<'p> {
    /// Creates an evaluator for `program`, compiling it once.
    pub fn new(program: &'p Program) -> Self {
        Self {
            program,
            compiled: CompiledProgram::compile(program),
        }
    }

    /// The compiled form (shareable without the program's lifetime).
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// Evaluates the program on `structure` with the given options.
    ///
    /// # Panics
    /// Panics if the structure's vocabulary differs from the program's, or
    /// if a [`Limits`] budget in `options` is exceeded — use
    /// [`try_run`](Self::try_run) to handle budgets gracefully.
    pub fn run(&self, structure: &Structure, options: EvalOptions) -> EvalResult {
        self.compiled
            .try_run(structure, options)
            .unwrap_or_else(|e| panic!("evaluation budget exceeded: {e}"))
    }

    /// Evaluates the program, returning `Err` if a budget in
    /// `options.limits` is exceeded.
    pub fn try_run(
        &self,
        structure: &Structure,
        options: EvalOptions,
    ) -> Result<EvalResult, LimitExceeded> {
        self.compiled.try_run(structure, options)
    }

    /// Governed evaluation honoring a [`Governor`]'s budget, deadline,
    /// and cancellation token; interrupts are graceful and resumable.
    /// See [`CompiledProgram::try_run_governed`].
    pub fn try_run_governed(
        &self,
        structure: &Structure,
        options: EvalOptions,
        gov: &Governor,
    ) -> Result<EvalResult, EvalInterrupted> {
        self.compiled.try_run_governed(structure, options, gov)
    }

    /// Resumes an interrupted governed evaluation. See
    /// [`CompiledProgram::resume`].
    pub fn resume(
        &self,
        structure: &Structure,
        options: EvalOptions,
        gov: &Governor,
        checkpoint: EvalCheckpoint,
    ) -> Result<EvalResult, EvalInterrupted> {
        self.compiled.resume(structure, options, gov, checkpoint)
    }

    /// Convenience: runs with default options and returns the goal
    /// relation (moved out of the result, not cloned).
    pub fn goal(&self, structure: &Structure) -> Relation {
        let mut r = self.run(structure, EvalOptions::default());
        std::mem::take(&mut r.idb[self.program.goal().0])
    }

    /// Convenience: does `tuple` belong to the goal relation? Checks the
    /// evaluation result in place.
    pub fn holds(&self, structure: &Structure, tuple: &[Element]) -> bool {
        self.run(structure, EvalOptions::default()).idb[self.program.goal().0].contains(tuple)
    }
}

/// The read-only per-stage join context shared by all workers. Everything
/// here is borrowed immutably; [`TupleStore`] and [`PosIndex`] have no
/// interior mutability, so the context is `Sync`.
pub(crate) struct JoinCtx<'a> {
    pub(crate) structure: &'a Structure,
    pub(crate) universe: usize,
    pub(crate) edb: &'a [&'a TupleStore],
    pub(crate) edb_idx: &'a [Vec<PosIndex>],
    pub(crate) idb: &'a [&'a TupleStore],
    pub(crate) idb_idx: &'a [Vec<PosIndex>],
    /// Bloom pre-filters over each IDB's committed tuples (cost-based runs
    /// only): a negative membership answer is definitive and skips the
    /// interner lookup.
    pub(crate) blooms: Option<&'a [TupleBloom]>,
    /// Store length of each IDB at stage start (`full` view bound).
    pub(crate) prev_len: &'a [u32],
    /// Store length of each IDB before the previous stage committed
    /// (`old`/`delta` boundary).
    pub(crate) delta_lo: &'a [u32],
    /// When set, EDB atoms get old/delta/full id windows too: tuples below
    /// this mark predate the current maintenance batch, tuples at or above
    /// it are the batch's insertions. `None` (every from-scratch run)
    /// keeps the historical behaviour — EDB atoms read their whole store
    /// regardless of access mode.
    pub(crate) edb_delta_lo: Option<&'a [u32]>,
    /// Sharded semi-naive stages: this worker's owner sub-range of each
    /// IDB delta window. Every variant pins exactly one delta atom, so
    /// narrowing its `Delta` window partitions the variant's derivations
    /// across workers without touching `Old`/`Full` reads.
    pub(crate) idb_delta_sub: Option<&'a [IdRange]>,
    /// Sharded incremental stage 0: this worker's owner sub-range of each
    /// EDB delta window (meaningful only with `edb_delta_lo` set).
    pub(crate) edb_delta_sub: Option<&'a [IdRange]>,
    /// Whether batched-kernel bookkeeping (probe memos, block counters) is
    /// active — cost-based runs only, so textual counters stay
    /// byte-identical to the historical engine.
    pub(crate) batched: bool,
    /// The shared governor; workers poll it cooperatively through
    /// worker-local batched counters ([`WorkerBuf::pending_steps`]).
    pub(crate) gov: &'a Governor,
}

impl<'a> JoinCtx<'a> {
    /// Resolves an atom to its backing store, available indexes, and id
    /// range.
    pub(crate) fn source(&self, atom: &JoinAtom) -> (&'a TupleStore, &'a [PosIndex], IdRange) {
        match atom.pred {
            Pred::Edb(r) => {
                let store = self.edb[r.0];
                let range = match self.edb_delta_lo {
                    None => store.id_range(),
                    // Incremental maintenance: the EDB is append-only
                    // within a batch, so the batch's insertions are the id
                    // suffix above the delta mark — the same three-window
                    // scheme the IDB stores use.
                    Some(lo) => match atom.access {
                        IdbAccess::Full => store.id_range(),
                        IdbAccess::Old => IdRange {
                            start: 0,
                            end: lo[r.0],
                        },
                        IdbAccess::Delta => match self.edb_delta_sub {
                            // Sharded stage 0: this worker's owner slice
                            // of the batch's insertions.
                            Some(sub) => sub[r.0],
                            None => IdRange {
                                start: lo[r.0],
                                end: store.len() as u32,
                            },
                        },
                    },
                };
                (store, &self.edb_idx[r.0], range)
            }
            Pred::Idb(i) => {
                let store = self.idb[i.0];
                let range = match atom.access {
                    IdbAccess::Full => IdRange {
                        start: 0,
                        end: self.prev_len[i.0],
                    },
                    IdbAccess::Old => IdRange {
                        start: 0,
                        end: self.delta_lo[i.0],
                    },
                    IdbAccess::Delta => match self.idb_delta_sub {
                        // Sharded semi-naive stage: this worker's owner
                        // slice of the delta window.
                        Some(sub) => sub[i.0],
                        None => IdRange {
                            start: self.delta_lo[i.0],
                            end: self.prev_len[i.0],
                        },
                    },
                };
                (store, &self.idb_idx[i.0], range)
            }
        }
    }

    /// Whether `tuple` is already committed in IDB `head`'s shared store,
    /// going through the Bloom pre-filter when one is maintained.
    fn committed(&self, head: usize, tuple: &[Element]) -> bool {
        if let Some(blooms) = self.blooms {
            if !blooms[head].maybe_contains(tuple_hash(tuple)) {
                return false;
            }
        }
        self.idb[head].lookup(tuple).is_some()
    }
}

/// Finds the prepared index on position `p`. The index plan in
/// [`CompiledProgram`] covers every statically chosen probe position, so
/// this always succeeds.
#[allow(clippy::expect_used)]
pub(crate) fn find_index(indexes: &[PosIndex], p: usize) -> &PosIndex {
    indexes
        .iter()
        .find(|ix| ix.pos() == p)
        .expect("index plan covers every statically chosen probe position")
}

/// Per-worker evaluation buffers: one scratch arena per IDB predicate plus
/// counters. Workers never exchange boxed tuples — scratch arenas are
/// re-interned into the shared stores at merge.
pub(crate) struct WorkerBuf {
    pub(crate) scratch: Vec<TupleStore>,
    /// Counting mode (incremental maintenance): per-scratch-tuple
    /// derivation counts, parallel to [`scratch`](Self::scratch). In this
    /// mode `emit` records *every* derivation — the committed-store
    /// shortcut is skipped, because a tuple already in the shared store
    /// must still receive this derivation's support.
    pub(crate) scratch_counts: Vec<Vec<u32>>,
    /// Whether counting mode is active.
    pub(crate) counting: bool,
    /// Batched-emission buffer: derived head tuples accumulate here (flat,
    /// arity-strided) and are interned in blocks of [`EMIT_BLOCK`],
    /// charging the governor once per block instead of never. Active in
    /// batched (cost-based) runs for rules whose join never consults the
    /// scratch arena mid-branch (no head-check early exit, or executed by
    /// the generic join, which has none) — deferring those interns cannot
    /// change any kernel decision, so answers and counters stay identical.
    pub(crate) emit_buf: Vec<Element>,
    pub(crate) head_buf: Vec<Element>,
    /// Reusable survivor block for batched flushes: tuples that pass the
    /// committed-store pre-filter, interned via
    /// [`TupleStore::extend_block`] in one shot.
    pub(crate) block_buf: Vec<Element>,
    /// Reusable tuple buffer for [`JoinKernel::Check`] lookups.
    pub(crate) check_buf: Vec<Element>,
    pub(crate) probes: u64,
    pub(crate) magic_probes: u64,
    /// Probes answered from a batched kernel's memo instead of a fresh
    /// index operation (cost-based mode only).
    pub(crate) block_probes: u64,
    /// Comparison steps taken by galloping sorted-intersection searches.
    pub(crate) gallop_steps: u64,
    /// Rule evaluations executed by the generic-join lowering.
    pub(crate) wcoj_rules: u64,
    pub(crate) dups: u64,
    /// Reusable id buffer for merged-probe intersections.
    pub(crate) merge_buf: Vec<u32>,
    /// Steps accumulated locally since the last governor flush.
    pub(crate) pending_steps: u64,
    /// Set when this worker observed an interrupt; the stage is aborted.
    pub(crate) tripped: Option<Interrupted>,
}

/// Worker-local steps between governor flushes: keeps the hot join loops
/// at one local increment per unit of work, with no shared-atomic
/// contention.
const WORKER_FLUSH_STRIDE: u64 = 64;

/// Tuples per block in batched scan kernels: one governor charge per block
/// keeps long scans interruptible without per-tuple accounting.
pub(crate) const SCAN_BLOCK: usize = 64;

/// Entry cap for each per-atom probe/check memo. Beyond this, batched
/// kernels fall through to direct index operations — the memo trades a
/// bounded amount of memory for probe coalescing, never unbounded growth.
const MEMO_CAP: usize = 1 << 14;

/// Tuples per batched-emission block: derived heads buffer up to this many
/// tuples before one governor charge covers the whole block's interning.
pub(crate) const EMIT_BLOCK: usize = 64;

impl WorkerBuf {
    pub(crate) fn new(idb_arities: &[usize]) -> Self {
        Self {
            scratch: idb_arities.iter().map(|&a| TupleStore::new(a)).collect(),
            scratch_counts: vec![Vec::new(); idb_arities.len()],
            counting: false,
            emit_buf: Vec::new(),
            head_buf: Vec::new(),
            block_buf: Vec::new(),
            check_buf: Vec::new(),
            probes: 0,
            magic_probes: 0,
            block_probes: 0,
            gallop_steps: 0,
            wcoj_rules: 0,
            dups: 0,
            merge_buf: Vec::new(),
            pending_steps: 0,
            tripped: None,
        }
    }

    /// A worker buffer in counting mode: every derivation is recorded with
    /// a per-tuple count (incremental maintenance's insertion pass).
    pub(crate) fn new_counting(idb_arities: &[usize]) -> Self {
        let mut buf = Self::new(idb_arities);
        buf.counting = true;
        buf
    }
}

/// Evaluates one compiled rule against the stage context, interning
/// derived head tuples into the worker's scratch arenas. Returns `Err` if
/// the governor interrupted the worker mid-join.
pub(crate) fn evaluate_rule(
    rule: &CompiledRule,
    ctx: &JoinCtx<'_>,
    buf: &mut WorkerBuf,
) -> Result<(), Interrupted> {
    // Structure-dependent constant equality guards.
    for (a, b) in &rule.const_eqs {
        let resolve = |t: &Term| match t {
            Term::Var(_) => None,
            Term::Const(c) => Some(ctx.structure.constant(*c)),
        };
        if resolve(a) != resolve(b) {
            return Ok(());
        }
    }
    // Batched (cost-based) runs keep per-atom probe memos: consecutive
    // branches that bind the same key reuse the previous index answer.
    let memo_len = if ctx.batched { rule.atoms.len() } else { 0 };
    let mut join = RuleJoin {
        rule,
        ctx,
        buf,
        binding: vec![None; rule.var_count],
        probe_memo: vec![HashMap::new(); memo_len],
        check_memo: vec![HashMap::new(); memo_len],
        merge_memo: vec![None; memo_len],
    };
    // Entry-slot ≠-checks: both sides already bound (constants).
    if !join.neqs_ok_at(0) {
        return Ok(());
    }
    if let Some(plan) = &rule.generic {
        join.buf.wcoj_rules += 1;
        wcoj::execute(&mut join, plan)?;
    } else {
        join.join(0)?;
    }
    // Drain the batched-emission buffer: the rule variant is done, so any
    // tail block (fewer than EMIT_BLOCK tuples) interns now.
    join.flush_emits()
}

/// The join recursion state for one rule: the binding under construction
/// plus borrowed context and output buffers.
pub(crate) struct RuleJoin<'a, 'b> {
    pub(crate) rule: &'a CompiledRule,
    pub(crate) ctx: &'a JoinCtx<'a>,
    pub(crate) buf: &'b mut WorkerBuf,
    pub(crate) binding: Vec<Option<Element>>,
    /// Per-atom memo of probe key → resolved posting slice. Within one
    /// stage the indexed prefix is frozen, so a repeated key resolves to
    /// the identical slice; hits count as [`EvalStats::block_probes`].
    probe_memo: Vec<HashMap<Element, &'a [u32]>>,
    /// Per-atom memo of fully-bound check tuple → verdict.
    check_memo: Vec<HashMap<Vec<Element>, bool>>,
    /// Per-atom memo of the last merged-probe key pair and its intersected
    /// id list.
    merge_memo: Vec<Option<(Element, Element, Vec<u32>)>>,
}

impl<'a, 'b> RuleJoin<'a, 'b> {
    pub(crate) fn term_value(&self, t: &Term) -> Option<Element> {
        match t {
            Term::Var(v) => self.binding[v.0],
            Term::Const(c) => Some(self.ctx.structure.constant(*c)),
        }
    }

    /// Charges one unit of join work, flushing the worker-local count to
    /// the shared governor every [`WORKER_FLUSH_STRIDE`] units.
    #[inline]
    pub(crate) fn charge(&mut self) -> Result<(), Interrupted> {
        self.buf.pending_steps += 1;
        if self.buf.pending_steps >= WORKER_FLUSH_STRIDE {
            let n = self.buf.pending_steps;
            self.buf.pending_steps = 0;
            self.ctx.gov.step(n)?;
        }
        Ok(())
    }

    /// Checks the ≠-constraints hoisted to `slot` (see
    /// [`CompiledRule::neq_at`]); a failing constraint kills the branch.
    /// Both sides are bound at their scheduled slot by construction.
    pub(crate) fn neqs_ok_at(&self, slot: usize) -> bool {
        for &ni in &self.rule.neq_at[slot] {
            let (a, b) = &self.rule.neqs[ni];
            if let (Some(x), Some(y)) = (self.term_value(a), self.term_value(b)) {
                if x == y {
                    return false;
                }
            }
        }
        true
    }

    /// Counts one kernel invocation against the right probe counter and
    /// charges the governor.
    #[inline]
    pub(crate) fn count_probe(&mut self, is_magic: bool) -> Result<(), Interrupted> {
        if is_magic {
            self.buf.magic_probes += 1;
        } else {
            self.buf.probes += 1;
        }
        self.charge()
    }

    /// Counts one memo-answered probe: the kernel reused the index answer
    /// from an identical key on an earlier branch of the same batch.
    #[inline]
    fn count_block(&mut self) -> Result<(), Interrupted> {
        self.buf.block_probes += 1;
        self.charge()
    }

    /// Whether the (fully bound) head tuple of the current branch has
    /// already been derived — committed in the shared store or interned in
    /// this worker's scratch arena. Only meaningful at
    /// [`CompiledRule::head_check_at`], where the planner guarantees every
    /// head argument is bound.
    fn head_already_derived(&mut self) -> bool {
        let rule = self.rule;
        let ctx = self.ctx;
        self.buf.head_buf.clear();
        for t in &rule.head_args {
            match self.term_value(t) {
                Some(v) => self.buf.head_buf.push(v),
                None => return false,
            }
        }
        let head = rule.head.0;
        self.buf.scratch[head].contains(&self.buf.head_buf)
            || ctx.committed(head, &self.buf.head_buf)
    }

    /// Recursion over atoms, then free-variable enumeration, then emit.
    fn join(&mut self, atom_pos: usize) -> Result<(), Interrupted> {
        let rule = self.rule;
        // Cost-based early exit: all head arguments are bound from here
        // on, so a branch whose head tuple is already derived can stop —
        // the remaining atoms would only re-verify a derivation that adds
        // nothing to the stage.
        if rule.head_check_at == Some(atom_pos) && self.head_already_derived() {
            return Ok(());
        }
        if atom_pos == rule.atoms.len() {
            return self.enumerate_free(0);
        }
        let ctx = self.ctx;
        let atom = &rule.atoms[atom_pos];
        let (store, indexes, range) = ctx.source(atom);
        // Arguments chosen by a probing kernel are constants or variables
        // bound by earlier atoms — always resolvable here.
        #[allow(clippy::expect_used)]
        let arg_value =
            |join: &Self, pos: usize| join.term_value(&atom.args[pos]).expect("statically bound");
        match atom.kernel {
            JoinKernel::Scan => {
                self.count_probe(atom.is_magic)?;
                let arity = atom.args.len();
                if arity == 0 {
                    for _ in range.iter() {
                        self.try_tuple(atom_pos, &[])?;
                    }
                } else {
                    // Batched columnar walk: the arity-strided arena hands
                    // out one contiguous slice per block, keeping the inner
                    // loop free of per-tuple id arithmetic and charging the
                    // governor once per block instead of never mid-scan.
                    let cols = store.range_slice(range);
                    let mut first = true;
                    for block in cols.chunks(SCAN_BLOCK * arity) {
                        if !first {
                            self.charge()?;
                        }
                        first = false;
                        for tuple in block.chunks_exact(arity) {
                            self.try_tuple(atom_pos, tuple)?;
                        }
                    }
                }
            }
            JoinKernel::Probe { pos } => {
                let e = arg_value(self, pos);
                let list: &'a [u32] = if self.ctx.batched {
                    if let Some(&hit) = self.probe_memo[atom_pos].get(&e) {
                        self.count_block()?;
                        hit
                    } else {
                        self.count_probe(atom.is_magic)?;
                        let l = find_index(indexes, pos).probe(e, range);
                        if self.probe_memo[atom_pos].len() < MEMO_CAP {
                            self.probe_memo[atom_pos].insert(e, l);
                        }
                        l
                    }
                } else {
                    self.count_probe(atom.is_magic)?;
                    find_index(indexes, pos).probe(e, range)
                };
                for &id in list {
                    self.try_tuple(atom_pos, store.get(TupleId(id)))?;
                }
            }
            JoinKernel::MergedProbe { pos_a, pos_b } => {
                let (ea, eb) = (arg_value(self, pos_a), arg_value(self, pos_b));
                let hit = self.ctx.batched
                    && matches!(&self.merge_memo[atom_pos],
                                Some((ka, kb, _)) if *ka == ea && *kb == eb);
                let ids: Vec<u32> = if hit {
                    self.count_block()?;
                    // Take the memoized list out so iterating it does not
                    // hold a borrow across `try_tuple`; restored below.
                    #[allow(clippy::expect_used)]
                    let (_, _, ids) = self.merge_memo[atom_pos].take().expect("memo hit");
                    ids
                } else {
                    self.count_probe(atom.is_magic)?;
                    let la = find_index(indexes, pos_a).probe(ea, range);
                    let lb = find_index(indexes, pos_b).probe(eb, range);
                    // Both posting lists are id-sorted: a galloping k-way
                    // intersection visits only ids matching both positions,
                    // skipping runs geometrically instead of one at a time.
                    let mut out = std::mem::take(&mut self.buf.merge_buf);
                    let mut steps = 0u64;
                    gallop_intersect(&[la, lb], &mut out, &mut steps);
                    self.buf.gallop_steps += steps;
                    out
                };
                let walk = |join: &mut Self| -> Result<(), Interrupted> {
                    for &id in &ids {
                        join.try_tuple(atom_pos, store.get(TupleId(id)))?;
                    }
                    Ok(())
                };
                let r = walk(self);
                if self.ctx.batched {
                    self.merge_memo[atom_pos] = Some((ea, eb, ids));
                } else {
                    self.buf.merge_buf = ids;
                }
                r?;
            }
            JoinKernel::Check => {
                // Every argument is bound: one interner lookup decides the
                // atom, with the range test restricting to the accessible
                // prefix (old/delta/full).
                self.buf.check_buf.clear();
                for pos in 0..atom.args.len() {
                    let e = arg_value(self, pos);
                    self.buf.check_buf.push(e);
                }
                let hit = if self.ctx.batched {
                    if let Some(&v) = self.check_memo[atom_pos].get(self.buf.check_buf.as_slice()) {
                        self.count_block()?;
                        v
                    } else {
                        self.count_probe(atom.is_magic)?;
                        let v = matches!(
                            store.lookup(&self.buf.check_buf),
                            Some(id) if range.contains(id)
                        );
                        if self.check_memo[atom_pos].len() < MEMO_CAP {
                            self.check_memo[atom_pos].insert(self.buf.check_buf.clone(), v);
                        }
                        v
                    }
                } else {
                    self.count_probe(atom.is_magic)?;
                    matches!(store.lookup(&self.buf.check_buf), Some(id) if range.contains(id))
                };
                if hit {
                    // No new bindings: recurse directly.
                    self.join(atom_pos + 1)?;
                }
            }
        }
        Ok(())
    }

    /// Per-candidate matching: extend the binding, apply the ≠-checks
    /// scheduled after this atom, recurse, restore.
    fn try_tuple(&mut self, atom_pos: usize, tuple: &[Element]) -> Result<(), Interrupted> {
        let atom = &self.rule.atoms[atom_pos];
        let mut newly_bound: Vec<VarId> = Vec::new();
        for (pos, t) in atom.args.iter().enumerate() {
            let ok = match t {
                Term::Const(c) => self.ctx.structure.constant(*c) == tuple[pos],
                Term::Var(v) => match self.binding[v.0] {
                    Some(e) => e == tuple[pos],
                    None => {
                        self.binding[v.0] = Some(tuple[pos]);
                        newly_bound.push(*v);
                        true
                    }
                },
            };
            if !ok {
                for v in newly_bound.drain(..) {
                    self.binding[v.0] = None;
                }
                return Ok(());
            }
        }
        let r = if self.neqs_ok_at(atom_pos + 1) {
            self.join(atom_pos + 1)
        } else {
            Ok(())
        };
        for v in newly_bound.drain(..) {
            self.binding[v.0] = None;
        }
        r
    }

    /// Enumerates universe values for variables bound by no atom, then
    /// emits the head tuple.
    pub(crate) fn enumerate_free(&mut self, free_pos: usize) -> Result<(), Interrupted> {
        let rule = self.rule;
        if free_pos == rule.free_vars.len() {
            return self.emit();
        }
        let v = rule.free_vars[free_pos];
        let slot = rule.atoms.len() + 1 + free_pos;
        for e in 0..self.ctx.universe as Element {
            self.charge()?;
            self.binding[v.0] = Some(e);
            if self.neqs_ok_at(slot) {
                self.enumerate_free(free_pos + 1)?;
            }
        }
        self.binding[v.0] = None;
        Ok(())
    }

    /// Whether batched emission is active for this rule: cost-based runs
    /// only, and only when the join never consults the scratch arena
    /// mid-branch (the head-check early exit does; the generic executor
    /// never runs it), so deferring interns changes no kernel decision.
    #[inline]
    fn emits_batched(&self) -> bool {
        self.ctx.batched && (self.rule.head_check_at.is_none() || self.rule.generic.is_some())
    }

    /// Emits the (fully bound) head tuple. Set mode: skip if already
    /// committed in the shared store, otherwise intern into the worker's
    /// scratch arena. Counting mode: record the derivation
    /// unconditionally, bumping the tuple's scratch count. Batched runs
    /// buffer tuples and intern one [`EMIT_BLOCK`] at a time.
    fn emit(&mut self) -> Result<(), Interrupted> {
        let rule = self.rule;
        let ctx = self.ctx;
        self.buf.head_buf.clear();
        for t in &rule.head_args {
            // Head variables are bound: emit runs after the last atom, and
            // unbound head variables are enumerated by the odometer.
            #[allow(clippy::expect_used)]
            let v = match t {
                Term::Var(v) => self.binding[v.0].expect("head variables fully bound"),
                Term::Const(c) => ctx.structure.constant(*c),
            };
            self.buf.head_buf.push(v);
        }
        let arity = self.buf.head_buf.len();
        if arity > 0 && self.emits_batched() {
            self.buf.emit_buf.extend_from_slice(&self.buf.head_buf);
            if self.buf.emit_buf.len() >= EMIT_BLOCK * arity {
                return self.flush_emits();
            }
            return Ok(());
        }
        self.intern_head(rule.head.0);
        Ok(())
    }

    /// Interns the tuple currently in `head_buf` into the scratch arena
    /// for predicate `head`, with set- or counting-mode bookkeeping.
    fn intern_head(&mut self, head: usize) {
        if self.buf.counting {
            let (id, fresh) = self.buf.scratch[head].intern(&self.buf.head_buf);
            let counts = &mut self.buf.scratch_counts[head];
            if fresh {
                counts.push(1);
            } else {
                counts[id.0 as usize] += 1;
            }
            return;
        }
        let fresh = !self.ctx.committed(head, &self.buf.head_buf)
            && self.buf.scratch[head].intern(&self.buf.head_buf).1;
        if !fresh {
            self.buf.dups += 1;
        }
    }

    /// Interns everything in the batched-emission buffer, charging the
    /// governor once for the block. Identical per-tuple bookkeeping to the
    /// immediate path — set mode pre-filters committed tuples one by one,
    /// then interns the survivors as a single
    /// [`TupleStore::extend_block`], so the scratch arena pays one
    /// capacity check per block instead of one per tuple.
    pub(crate) fn flush_emits(&mut self) -> Result<(), Interrupted> {
        if self.buf.emit_buf.is_empty() {
            return Ok(());
        }
        self.charge()?;
        let head = self.rule.head.0;
        // Nullary heads never buffer (see `emit`), so the arity is positive.
        let arity = self.rule.head_args.len();
        let pending = std::mem::take(&mut self.buf.emit_buf);
        if self.buf.counting {
            for tuple in pending.chunks_exact(arity) {
                let (id, fresh) = self.buf.scratch[head].intern(tuple);
                let counts = &mut self.buf.scratch_counts[head];
                if fresh {
                    counts.push(1);
                } else {
                    counts[id.0 as usize] += 1;
                }
            }
        } else {
            let mut block = std::mem::take(&mut self.buf.block_buf);
            block.clear();
            for tuple in pending.chunks_exact(arity) {
                if self.ctx.committed(head, tuple) {
                    self.buf.dups += 1;
                } else {
                    block.extend_from_slice(tuple);
                }
            }
            let survivors = block.len() / arity;
            let fresh = self.buf.scratch[head].extend_block(&block);
            self.buf.dups += (survivors - fresh) as u64;
            self.buf.block_buf = block;
        }
        self.buf.emit_buf = pending;
        self.buf.emit_buf.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use kv_structures::generators::{directed_cycle, directed_path, random_digraph};
    use kv_structures::Vocabulary;
    use std::sync::Arc;

    fn graph_vocab() -> Arc<Vocabulary> {
        Arc::new(Vocabulary::graph())
    }

    fn tc() -> Program {
        parse_program(
            "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y). ?- S.",
            graph_vocab(),
        )
        .unwrap()
    }

    #[test]
    fn tc_on_path() {
        let p = tc();
        let s = directed_path(4);
        let result = Evaluator::new(&p).goal(&s);
        // All pairs i < j.
        assert_eq!(result.len(), 6);
        assert!(result.contains(&[0u32, 3][..]));
        assert!(!result.contains(&[3u32, 0][..]));
    }

    #[test]
    fn tc_on_cycle_is_complete() {
        let p = tc();
        let s = directed_cycle(5);
        let result = Evaluator::new(&p).goal(&s);
        assert_eq!(result.len(), 25);
    }

    #[test]
    fn naive_and_semi_naive_agree_with_identical_stages() {
        let p = tc();
        for seed in 0..5 {
            let g = random_digraph(12, 0.15, seed);
            let s = g.to_structure();
            let naive = Evaluator::new(&p).run(
                &s,
                EvalOptions {
                    semi_naive: false,
                    ..EvalOptions::default()
                },
            );
            let semi = Evaluator::new(&p).run(&s, EvalOptions::default());
            assert_eq!(naive.idb, semi.idb, "fixpoints differ on seed {seed}");
            assert_eq!(naive.stats, semi.stats, "stage stats differ on seed {seed}");
            assert!(naive.same_stages(&semi), "stages differ on seed {seed}");
        }
    }

    #[test]
    fn stage_counts_match_paper_iteration() {
        // On a directed path with n nodes, stage k of TC adds the pairs at
        // distance exactly k: Θ¹ = E, Θ² adds distance-2 pairs, etc.
        let p = tc();
        let s = directed_path(6);
        let r = Evaluator::new(&p).run(&s, EvalOptions::default());
        assert_eq!(r.stage_count(), 5); // distances 1..=5
        assert_eq!(
            r.stats.iter().map(|s| s.new_tuples[0]).collect::<Vec<_>>(),
            vec![5, 4, 3, 2, 1]
        );
        assert!(r.converged);
        // Stage views are cumulative prefixes of the final store.
        assert_eq!(r.stage_len(1, 0), 5);
        assert_eq!(r.stage_len(5, 0), 15);
        assert!(r.stage_view(1, 0).iter().all(|t| t[1] == t[0] + 1));
    }

    #[test]
    fn avoiding_path_program_matches_bfs() {
        let src = "
            T(x, y, w) :- E(x, y), w != x, w != y.
            T(x, y, w) :- E(x, z), T(z, y, w), w != x.
            ?- T.
        ";
        let p = parse_program(src, graph_vocab()).unwrap();
        for seed in 0..5 {
            let g = random_digraph(8, 0.25, 50 + seed);
            let s = g.to_structure();
            let t = Evaluator::new(&p).goal(&s);
            for x in 0..8u32 {
                for y in 0..8u32 {
                    for w in 0..8u32 {
                        let expected = kv_graphalg::avoiding_path(&g, x, y, &[w]);
                        let got = t.contains(&[x, y, w][..]);
                        assert_eq!(
                            got,
                            expected,
                            "T({x},{y},{w}) mismatch on seed {}",
                            50 + seed
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unbound_head_variable_ranges_over_universe() {
        // P(x, w) :- E(x, x).   [w unconstrained]
        let p = parse_program("P(x, w) :- E(x, x). ?- P.", graph_vocab()).unwrap();
        let mut s = Structure::new(graph_vocab(), 4);
        s.insert(kv_structures::RelId(0), &[2, 2]);
        let result = Evaluator::new(&p).goal(&s);
        assert_eq!(result.len(), 4);
        for w in 0..4u32 {
            assert!(result.contains(&[2, w][..]));
        }
    }

    #[test]
    fn unbound_variable_with_inequality_excludes() {
        // The first rule of Example 2.1 on a single edge 0 -> 1 in a
        // 3-element universe: T(0, 1, w) for w not in {0, 1}.
        let p = parse_program(
            "T(x, y, w) :- E(x, y), w != x, w != y. ?- T.",
            graph_vocab(),
        )
        .unwrap();
        let mut s = Structure::new(graph_vocab(), 3);
        s.insert(kv_structures::RelId(0), &[0, 1]);
        let result = Evaluator::new(&p).goal(&s);
        assert_eq!(result.len(), 1);
        assert!(result.contains(&[0u32, 1, 2][..]));
    }

    #[test]
    fn equality_literal_unifies() {
        let p = parse_program("P(x, y) :- E(x, z), z = y. ?- P.", graph_vocab()).unwrap();
        let s = directed_path(3);
        let result = Evaluator::new(&p).goal(&s);
        assert_eq!(result.len(), 2);
        assert!(result.contains(&[0u32, 1][..]));
        assert!(result.contains(&[1u32, 2][..]));
    }

    #[test]
    fn constants_in_rules_resolve_per_structure() {
        let vocab = Arc::new(Vocabulary::graph_with_constants(1));
        let p = parse_program("R(x) :- E(s1, x). ?- R.", Arc::clone(&vocab)).unwrap();
        let mut s = Structure::new(Arc::clone(&vocab), 3);
        s.insert(kv_structures::RelId(0), &[0, 1]);
        s.insert(kv_structures::RelId(0), &[1, 2]);
        s.set_constant(kv_structures::ConstId(0), 1);
        let result = Evaluator::new(&p).goal(&s);
        assert_eq!(result.len(), 1);
        assert!(result.contains(&[2u32][..]));
    }

    #[test]
    fn fact_rule_with_constants() {
        let vocab = Arc::new(Vocabulary::graph_with_constants(2));
        let p = parse_program("D(s1, s2). ?- D.", Arc::clone(&vocab)).unwrap();
        let mut s = Structure::new(Arc::clone(&vocab), 5);
        s.set_constant(kv_structures::ConstId(0), 3);
        s.set_constant(kv_structures::ConstId(1), 4);
        let result = Evaluator::new(&p).goal(&s);
        assert_eq!(result.len(), 1);
        assert!(result.contains(&[3u32, 4][..]));
    }

    #[test]
    fn multiple_idbs_mutual_recursion() {
        // Even/odd path lengths from node 0 via mutual recursion.
        let src = "
            Odd(x, y) :- E(x, y).
            Odd(x, y) :- Even(x, z), E(z, y).
            Even(x, y) :- Odd(x, z), E(z, y).
            ?- Even.
        ";
        let p = parse_program(src, graph_vocab()).unwrap();
        let s = directed_path(5);
        let even = Evaluator::new(&p).goal(&s);
        // Even-length (>= 2) paths on a 5-node path: dist 2 and 4.
        let pairs: HashSet<(u32, u32)> = even.iter().map(|t| (t[0], t[1])).collect();
        assert_eq!(pairs, HashSet::from([(0, 2), (1, 3), (2, 4), (0, 4)]));
    }

    #[test]
    fn max_stages_truncates() {
        let p = tc();
        let s = directed_path(10);
        let r = Evaluator::new(&p).run(
            &s,
            EvalOptions {
                max_stages: Some(2),
                ..EvalOptions::default()
            },
        );
        assert!(!r.converged);
        assert_eq!(r.stage_count(), 2);
        // Stages 1..=2 derive distances 1..=2: 9 + 8 tuples.
        assert_eq!(r.idb[0].len(), 17);
    }

    #[test]
    fn empty_program_converges_immediately() {
        let p = parse_program("P(x) :- Qnever(x). ?- P.", graph_vocab()).unwrap();
        let s = directed_path(3);
        let r = Evaluator::new(&p).run(&s, EvalOptions::default());
        assert!(r.converged);
        assert!(r.idb.iter().all(|rel| rel.is_empty()));
    }

    #[test]
    fn tuple_limit_is_a_graceful_error() {
        let p = tc();
        let s = directed_cycle(8); // fixpoint has 64 tuples
        let ev = Evaluator::new(&p);
        let limited = EvalOptions {
            limits: Limits {
                max_tuples: Some(10),
                max_stages: None,
            },
            ..EvalOptions::default()
        };
        match ev.try_run(&s, limited) {
            Err(LimitExceeded::Tuples { limit: 10, reached }) => assert!(reached > 10),
            other => panic!("expected tuple limit error, got {other:?}"),
        }
        // A generous budget succeeds.
        let generous = EvalOptions {
            limits: Limits {
                max_tuples: Some(1000),
                max_stages: Some(100),
            },
            ..EvalOptions::default()
        };
        let r = ev.try_run(&s, generous).unwrap();
        assert!(r.converged);
        assert_eq!(r.idb[0].len(), 64);
    }

    #[test]
    fn stage_limit_is_a_graceful_error() {
        let p = tc();
        let s = directed_path(10);
        let opts = EvalOptions {
            limits: Limits {
                max_tuples: None,
                max_stages: Some(3),
            },
            ..EvalOptions::default()
        };
        match Evaluator::new(&p).try_run(&s, opts) {
            Err(LimitExceeded::Stages { limit: 3 }) => {}
            other => panic!("expected stage limit error, got {other:?}"),
        }
    }

    #[test]
    fn eval_stats_are_reported() {
        let p = tc();
        let s = directed_path(6);
        let r = Evaluator::new(&p).run(&s, EvalOptions::default());
        assert_eq!(r.eval_stats.tuples_interned, 15);
        assert_eq!(r.eval_stats.stages, 5);
        assert!(r.eval_stats.join_probes > 0);
        // Naive evaluation rederives earlier stages: duplicates pile up.
        let naive = Evaluator::new(&p).run(
            &s,
            EvalOptions {
                semi_naive: false,
                ..EvalOptions::default()
            },
        );
        assert_eq!(naive.eval_stats.tuples_interned, 15);
        assert!(naive.eval_stats.duplicate_derivations > r.eval_stats.duplicate_derivations);
    }

    #[test]
    fn governed_unlimited_matches_plain_run() {
        let p = tc();
        let s = directed_path(8);
        let ev = Evaluator::new(&p);
        let plain = ev.run(&s, EvalOptions::default());
        let gov = Governor::unlimited();
        let governed = ev
            .try_run_governed(&s, EvalOptions::default(), &gov)
            .unwrap();
        assert_eq!(plain.idb, governed.idb);
        assert_eq!(plain.stats, governed.stats);
        assert_eq!(plain.eval_stats, governed.eval_stats);
        assert!(plain.same_stages(&governed));
    }

    #[test]
    fn interrupted_run_resumes_to_identical_fixpoint() {
        let p = tc();
        let s = directed_path(10);
        let ev = Evaluator::new(&p);
        let opts = EvalOptions {
            parallel: false,
            ..EvalOptions::default()
        };
        let baseline = ev.run(&s, opts);
        // Trip the step budget at many different points; resuming the
        // checkpoint with a relaxed governor must reach the identical
        // fixpoint, stage by stage, with identical counters.
        for max_steps in [1, 5, 17, 60, 200, 1000] {
            let gov = kv_structures::govern::chaos::step_tripper(max_steps);
            let result = match ev.try_run_governed(&s, opts, &gov) {
                Ok(r) => r,
                Err(e) => {
                    let stats_at_interrupt = e.checkpoint.eval_stats();
                    let r = ev
                        .resume(&s, opts, &Governor::unlimited(), e.checkpoint)
                        .unwrap();
                    // Counters only grow across the interrupt boundary.
                    assert!(r.eval_stats.tuples_interned >= stats_at_interrupt.tuples_interned);
                    assert!(r.eval_stats.join_probes >= stats_at_interrupt.join_probes);
                    assert!(r.eval_stats.stages >= stats_at_interrupt.stages);
                    r
                }
            };
            assert_eq!(baseline.idb, result.idb, "steps={max_steps}");
            assert_eq!(baseline.stats, result.stats, "steps={max_steps}");
            assert!(baseline.same_stages(&result), "steps={max_steps}");
            assert_eq!(baseline.eval_stats, result.eval_stats, "steps={max_steps}");
        }
    }

    /// A checkpoint that round-trips through its durable byte encoding
    /// must resume to the identical fixpoint — stage by stage, counter
    /// by counter — as resuming the original in-memory checkpoint.
    #[test]
    fn serialized_checkpoint_resumes_identically() {
        let p = tc();
        let s = directed_path(10);
        let ev = Evaluator::new(&p);
        let opts = EvalOptions {
            parallel: false,
            ..EvalOptions::default()
        };
        let baseline = ev.run(&s, opts);
        for max_steps in [5, 60, 400] {
            let gov = kv_structures::govern::chaos::step_tripper(max_steps);
            let Err(e) = ev.try_run_governed(&s, opts, &gov) else {
                continue;
            };
            let bytes = e.checkpoint.to_bytes();
            let restored = EvalCheckpoint::from_bytes(&bytes).expect("round-trip");
            let result = ev
                .resume(&s, opts, &Governor::unlimited(), restored)
                .expect("resume restored checkpoint");
            assert_eq!(baseline.idb, result.idb, "steps={max_steps}");
            assert!(baseline.same_stages(&result), "steps={max_steps}");
            assert_eq!(baseline.eval_stats, result.eval_stats, "steps={max_steps}");
        }
    }

    /// Corrupted checkpoint bytes decode to typed errors, never panics:
    /// flip every byte, truncate at every length, append garbage.
    #[test]
    fn corrupted_checkpoint_bytes_never_panic() {
        let p = tc();
        let s = directed_path(8);
        let ev = Evaluator::new(&p);
        let opts = EvalOptions {
            parallel: false,
            ..EvalOptions::default()
        };
        let gov = kv_structures::govern::chaos::step_tripper(40);
        let e = ev.try_run_governed(&s, opts, &gov).unwrap_err();
        let bytes = e.checkpoint.to_bytes();
        assert!(EvalCheckpoint::from_bytes(&bytes).is_ok());
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = bytes.clone();
                bad[i] ^= flip;
                // Either a typed error or a checkpoint that decodes (a
                // benign flip, e.g. inside a counter) — never a panic.
                let _ = EvalCheckpoint::from_bytes(&bad);
            }
        }
        for len in 0..bytes.len() {
            assert!(
                EvalCheckpoint::from_bytes(&bytes[..len]).is_err(),
                "truncation at {len} must not decode"
            );
        }
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0xAB; 7]);
        assert!(
            EvalCheckpoint::from_bytes(&padded).is_err(),
            "trailing garbage must not decode"
        );
    }

    #[test]
    fn cancellation_interrupts_and_reports_partial_progress() {
        let p = tc();
        let s = directed_path(10);
        let ev = Evaluator::new(&p);
        let gov = Governor::unlimited();
        gov.cancel_token().cancel();
        let err = ev
            .try_run_governed(&s, EvalOptions::default(), &gov)
            .unwrap_err();
        assert_eq!(err.reason, Interrupted::Cancelled);
        assert_eq!(err.checkpoint.stage_count(), 0);
        let partial = err.checkpoint.partial_result();
        assert!(!partial.converged);
    }

    #[test]
    fn parallel_and_sequential_are_stage_identical() {
        let p = tc();
        for seed in 0..3 {
            let g = random_digraph(10, 0.2, 70 + seed);
            let s = g.to_structure();
            let par = Evaluator::new(&p).run(&s, EvalOptions::default());
            let seq = Evaluator::new(&p).run(
                &s,
                EvalOptions {
                    parallel: false,
                    ..EvalOptions::default()
                },
            );
            assert_eq!(par.idb, seq.idb);
            assert_eq!(par.stats, seq.stats);
            assert!(par.same_stages(&seq));
        }
    }
}
