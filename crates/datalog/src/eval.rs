//! Bottom-up evaluation: naive stage iteration and semi-naive evaluation.
//!
//! The paper defines the semantics of a program `π` on a structure `A` as
//! the least fixpoint of the monotone operator system `Θ_A`, reached by
//! iterating the stages `Θ¹ = Θ(∅)`, `Θ^{n+1} = Θ(Θ^n)` until they
//! stabilize (Section 2). [`Evaluator`] computes exactly these stages.
//!
//! *Naive* mode recomputes every rule against the full stage each round —
//! literally the paper's definition. *Semi-naive* mode rewrites each rule
//! into delta variants so that every derivation uses at least one tuple
//! discovered in the previous stage; both modes produce identical stages
//! (asserted by tests), semi-naive just avoids rediscovering old tuples.
//!
//! The join machinery is allocation-lean: each atom's index position is
//! chosen **statically** at rule-compile time (the set of bound variables
//! at each join level is determined by the atom order, not the data), every
//! index any rule variant will probe is built **once per stage** up front,
//! and the join recursion then walks borrowed tuple-id slices — no
//! candidate vectors are cloned. Because the per-stage stores are immutable
//! during joining, independent rule variants evaluate **in parallel**
//! (driven by [`kv_structures::par`], honoring `RAYON_NUM_THREADS`) into
//! per-worker delta buffers merged at stage end; set-union merging makes
//! the result identical to sequential evaluation, stage by stage.
//!
//! Unbound variables — head or inequality variables that occur in no body
//! atom — range over the whole universe, matching the first-order reading
//! of the rule bodies as existential formulas over the structure.

use crate::ast::{IdbId, Literal, Pred, Rule, Term, VarId};
use crate::program::Program;
use kv_structures::par::{par_workers, thread_count};
use kv_structures::{Element, Structure, Tuple};
use std::collections::{HashMap, HashSet};

/// Options controlling evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Use semi-naive (delta) evaluation instead of naive recomputation.
    pub semi_naive: bool,
    /// Record a snapshot of every stage (needed by the Theorem 3.6
    /// stage-formula experiments; costs memory).
    pub record_stages: bool,
    /// Abort after this many stages (`None` = run to fixpoint).
    pub max_stages: Option<usize>,
    /// Evaluate independent rule variants in parallel within each stage.
    /// Stage results are identical either way (differential-tested); set
    /// `RAYON_NUM_THREADS=1` or turn this off for single-threaded runs.
    pub parallel: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self {
            semi_naive: true,
            record_stages: false,
            max_stages: None,
            parallel: true,
        }
    }
}

/// Per-stage statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    /// Number of tuples first derived at this stage, per IDB predicate.
    pub new_tuples: Vec<usize>,
}

/// The result of evaluating a program on a structure.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Final IDB relations (the least fixpoint `π^∞`), per IDB predicate.
    pub idb: Vec<HashSet<Tuple>>,
    /// Per-stage statistics. `stats[n]` describes stage `n + 1`.
    pub stats: Vec<StageStats>,
    /// If requested, `stages[n][i]` is `Θ^{n+1}` restricted to IDB `i`
    /// (cumulative snapshot after stage `n + 1`).
    pub stages: Vec<Vec<HashSet<Tuple>>>,
    /// Whether the fixpoint was reached (false only if `max_stages` hit).
    pub converged: bool,
}

impl EvalResult {
    /// Number of stages until the fixpoint (the `n₀` of Section 2).
    pub fn stage_count(&self) -> usize {
        self.stats.len()
    }

    /// The goal relation of `program`.
    pub fn goal_relation<'a>(&'a self, program: &Program) -> &'a HashSet<Tuple> {
        &self.idb[program.goal().0]
    }
}

/// Access mode for an IDB atom inside a semi-naive rule variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IdbAccess {
    /// The relation as of the *previous* stage.
    Old,
    /// Only the tuples discovered in the previous stage.
    Delta,
    /// The full relation (old ∪ delta).
    Full,
}

/// A body atom with its access mode resolved.
#[derive(Debug, Clone)]
struct JoinAtom {
    pred: Pred,
    access: IdbAccess,
    args: Vec<Term>,
    /// The position to probe an index on, decided at compile time: the
    /// first argument that is a constant or a variable bound by an earlier
    /// atom. `None` means a full scan (no argument is bound on entry).
    index_pos: Option<usize>,
}

/// A rule pre-processed for joining: equalities eliminated by variable
/// unification, atoms ordered, constraints collected.
#[derive(Debug, Clone)]
struct CompiledRule {
    head: IdbId,
    head_args: Vec<Term>,
    atoms: Vec<JoinAtom>,
    /// Inequality constraints on canonical terms.
    neqs: Vec<(Term, Term)>,
    /// Equality constraints between constants (structure-dependent checks).
    const_eqs: Vec<(Term, Term)>,
    /// Number of canonical variables.
    var_count: usize,
    /// Canonical variables that occur in no atom and must be enumerated
    /// over the universe (because the head or an inequality needs them).
    free_vars: Vec<VarId>,
}

/// Union-find based equality elimination. Returns a substitution mapping
/// each original variable to a canonical [`Term`] plus leftover
/// constant-constant equality checks.
fn unify_rule(rule: &Rule) -> (Vec<Term>, Vec<(Term, Term)>) {
    let n = rule.var_count();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    // Constant attached to each class, if any; extra const-const checks.
    let mut class_const: Vec<Option<Term>> = vec![None; n];
    let mut const_eqs: Vec<(Term, Term)> = Vec::new();
    for lit in &rule.body {
        if let Literal::Eq(a, b) = lit {
            match (a, b) {
                (Term::Var(x), Term::Var(y)) => {
                    let (rx, ry) = (find(&mut parent, x.0), find(&mut parent, y.0));
                    if rx != ry {
                        parent[rx] = ry;
                        // Merge constant attachments.
                        match (class_const[rx].take(), class_const[ry]) {
                            (Some(c1), Some(c2)) => const_eqs.push((c1, c2)),
                            (Some(c1), None) => class_const[ry] = Some(c1),
                            _ => {}
                        }
                    }
                }
                (Term::Var(x), c @ Term::Const(_)) | (c @ Term::Const(_), Term::Var(x)) => {
                    let rx = find(&mut parent, x.0);
                    match class_const[rx] {
                        Some(existing) => const_eqs.push((existing, *c)),
                        None => class_const[rx] = Some(*c),
                    }
                }
                (c1 @ Term::Const(_), c2 @ Term::Const(_)) => const_eqs.push((*c1, *c2)),
            }
        }
    }
    // Build the substitution: class representative or attached constant.
    let subst: Vec<Term> = (0..n)
        .map(|x| {
            let r = find(&mut parent, x);
            class_const[r].unwrap_or(Term::Var(VarId(r)))
        })
        .collect();
    (subst, const_eqs)
}

fn apply_subst(t: &Term, subst: &[Term]) -> Term {
    match t {
        Term::Var(v) => subst[v.0],
        c => *c,
    }
}

fn compile_rule(rule: &Rule, delta_at: Option<usize>) -> CompiledRule {
    let (subst, const_eqs) = unify_rule(rule);
    let head_args: Vec<Term> = rule.head_args.iter().map(|t| apply_subst(t, &subst)).collect();
    let mut atoms = Vec::new();
    let mut neqs = Vec::new();
    let mut idb_occurrence = 0usize;
    for lit in &rule.body {
        match lit {
            Literal::Atom(pred, args) => {
                let access = match pred {
                    Pred::Idb(_) => {
                        let acc = match delta_at {
                            None => IdbAccess::Full,
                            Some(d) if idb_occurrence < d => IdbAccess::Old,
                            Some(d) if idb_occurrence == d => IdbAccess::Delta,
                            Some(_) => IdbAccess::Full,
                        };
                        idb_occurrence += 1;
                        acc
                    }
                    Pred::Edb(_) => IdbAccess::Full,
                };
                atoms.push(JoinAtom {
                    pred: *pred,
                    access,
                    args: args.iter().map(|t| apply_subst(t, &subst)).collect(),
                    index_pos: None,
                });
            }
            Literal::Neq(a, b) => {
                neqs.push((apply_subst(a, &subst), apply_subst(b, &subst)));
            }
            Literal::Eq(_, _) => {} // consumed by unification
        }
    }
    // Move the delta atom to the front: it seeds the join.
    if let Some(pos) = atoms.iter().position(|a| a.access == IdbAccess::Delta) {
        let delta = atoms.remove(pos);
        atoms.insert(0, delta);
    }
    // Static index selection: which variables are bound when the join
    // reaches each atom is fully determined by the atom order, so the
    // probe position can be picked here instead of per candidate tuple.
    let mut bound: HashSet<VarId> = HashSet::new();
    for a in &mut atoms {
        a.index_pos = a.args.iter().position(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        });
        for t in &a.args {
            if let Term::Var(v) = t {
                bound.insert(*v);
            }
        }
    }
    // Variables occurring in atoms.
    let mut in_atoms: HashSet<VarId> = HashSet::new();
    for a in &atoms {
        for t in &a.args {
            if let Term::Var(v) = t {
                in_atoms.insert(*v);
            }
        }
    }
    // Canonical variables needed by head or inequalities but absent from
    // every atom: enumerate them over the universe.
    let mut free_vars: Vec<VarId> = Vec::new();
    let need = |t: &Term, free: &mut Vec<VarId>| {
        if let Term::Var(v) = t {
            if !in_atoms.contains(v) && !free.contains(v) {
                free.push(*v);
            }
        }
    };
    for t in &head_args {
        need(t, &mut free_vars);
    }
    for (a, b) in &neqs {
        need(a, &mut free_vars);
        need(b, &mut free_vars);
    }
    CompiledRule {
        head: rule.head,
        head_args,
        atoms,
        neqs,
        const_eqs,
        var_count: rule.var_count(),
        free_vars,
    }
}

/// A tuple store with single-column indexes, all built up front (the set
/// of positions any rule variant probes is known statically), so the join
/// recursion only ever reads it — which is what lets rule variants share
/// the per-stage stores across worker threads.
#[derive(Debug, Default, Clone)]
struct Indexed {
    tuples: Vec<Tuple>,
    /// `indexes[pos]` maps an element to the tuple indices with that
    /// element at position `pos`.
    indexes: HashMap<usize, HashMap<Element, Vec<usize>>>,
}

impl Indexed {
    fn from_iter<'a>(it: impl Iterator<Item = &'a Tuple>) -> Self {
        Self {
            tuples: it.cloned().collect(),
            indexes: HashMap::new(),
        }
    }

    fn build_index(&mut self, pos: usize) {
        self.indexes.entry(pos).or_insert_with(|| {
            let mut m: HashMap<Element, Vec<usize>> = HashMap::new();
            for (i, t) in self.tuples.iter().enumerate() {
                m.entry(t[pos]).or_default().push(i);
            }
            m
        });
    }

    /// Tuple ids with `e` at position `pos`. The index must exist.
    fn probe(&self, pos: usize, e: Element) -> &[usize] {
        self.indexes[&pos].get(&e).map_or(&[], |v| v.as_slice())
    }
}

/// The index positions each relation store needs, aggregated over a set of
/// compiled rules — computed once, applied to every per-stage snapshot.
#[derive(Debug, Default)]
struct IndexPlan {
    edb: Vec<HashSet<usize>>,
    full: Vec<HashSet<usize>>,
    old: Vec<HashSet<usize>>,
    delta: Vec<HashSet<usize>>,
}

impl IndexPlan {
    fn build(rules: &[&[CompiledRule]], edb_count: usize, idb_count: usize) -> Self {
        let mut plan = Self {
            edb: vec![HashSet::new(); edb_count],
            full: vec![HashSet::new(); idb_count],
            old: vec![HashSet::new(); idb_count],
            delta: vec![HashSet::new(); idb_count],
        };
        for rule in rules.iter().copied().flatten() {
            for atom in &rule.atoms {
                if let Some(pos) = atom.index_pos {
                    match (atom.pred, atom.access) {
                        (Pred::Edb(r), _) => plan.edb[r.0].insert(pos),
                        (Pred::Idb(i), IdbAccess::Full) => plan.full[i.0].insert(pos),
                        (Pred::Idb(i), IdbAccess::Old) => plan.old[i.0].insert(pos),
                        (Pred::Idb(i), IdbAccess::Delta) => plan.delta[i.0].insert(pos),
                    };
                }
            }
        }
        plan
    }

    fn apply(stores: &mut [Indexed], needed: &[HashSet<usize>]) {
        for (store, positions) in stores.iter_mut().zip(needed) {
            for &pos in positions {
                store.build_index(pos);
            }
        }
    }
}

/// The evaluator. Holds the program and exposes [`run`](Self::run).
#[derive(Debug)]
pub struct Evaluator<'p> {
    program: &'p Program,
}

impl<'p> Evaluator<'p> {
    /// Creates an evaluator for `program`.
    pub fn new(program: &'p Program) -> Self {
        Self { program }
    }

    /// Evaluates the program on `structure` with the given options.
    ///
    /// # Panics
    /// Panics if the structure's vocabulary differs from the program's.
    pub fn run(&self, structure: &Structure, options: EvalOptions) -> EvalResult {
        assert_eq!(
            structure.vocabulary(),
            self.program.vocabulary(),
            "structure/program vocabulary mismatch"
        );
        let idb_count = self.program.idb_count();
        let universe = structure.universe_size();

        // Compile rule variants.
        // Stage 1 always evaluates the rules against empty IDBs (naive).
        let naive_rules: Vec<CompiledRule> = self
            .program
            .rules()
            .iter()
            .map(|r| compile_rule(r, None))
            .collect();
        let semi_variants: Vec<CompiledRule> = if options.semi_naive {
            let mut v = Vec::new();
            for rule in self.program.rules() {
                let idb_atoms = rule
                    .atoms()
                    .filter(|(p, _)| matches!(p, Pred::Idb(_)))
                    .count();
                for d in 0..idb_atoms {
                    v.push(compile_rule(rule, Some(d)));
                }
            }
            v
        } else {
            Vec::new()
        };

        // EDB stores: built and indexed once, up front — the probe
        // positions are known statically from the compiled rules.
        let mut edb: Vec<Indexed> = structure
            .vocabulary()
            .relations()
            .map(|r| Indexed::from_iter(structure.relation(r).iter()))
            .collect();
        let plan = IndexPlan::build(&[&naive_rules, &semi_variants], edb.len(), idb_count);
        IndexPlan::apply(&mut edb, &plan.edb);

        // IDB state.
        let mut full: Vec<HashSet<Tuple>> = vec![HashSet::new(); idb_count];
        let mut delta: Vec<HashSet<Tuple>> = vec![HashSet::new(); idb_count];
        let mut stats: Vec<StageStats> = Vec::new();
        let mut stages: Vec<Vec<HashSet<Tuple>>> = Vec::new();

        let mut converged = false;
        let mut stage = 0usize;
        loop {
            if let Some(max) = options.max_stages {
                if stage >= max {
                    break;
                }
            }
            stage += 1;
            // Per-stage snapshots, fully indexed before any rule runs, so
            // the join phase reads them immutably (and across threads).
            let mut full_idx: Vec<Indexed> =
                full.iter().map(|s| Indexed::from_iter(s.iter())).collect();
            IndexPlan::apply(&mut full_idx, &plan.full);
            let mut old_idx: Vec<Indexed> = if options.semi_naive && stage > 1 {
                full.iter()
                    .zip(&delta)
                    .map(|(f, d)| Indexed::from_iter(f.iter().filter(|t| !d.contains(*t))))
                    .collect()
            } else {
                Vec::new()
            };
            IndexPlan::apply(&mut old_idx, &plan.old);
            let mut delta_idx: Vec<Indexed> =
                delta.iter().map(|s| Indexed::from_iter(s.iter())).collect();
            IndexPlan::apply(&mut delta_idx, &plan.delta);

            let rules_this_stage: &[CompiledRule] = if stage == 1 || !options.semi_naive {
                &naive_rules
            } else {
                &semi_variants
            };
            // Rule variants whose delta seed is non-empty (the rest derive
            // nothing this stage).
            let live_rules: Vec<&CompiledRule> = rules_this_stage
                .iter()
                .filter(|rule| match rule.atoms.first() {
                    Some(first) if first.access == IdbAccess::Delta => match first.pred {
                        Pred::Idb(i) => !delta[i.0].is_empty(),
                        Pred::Edb(_) => true,
                    },
                    _ => true,
                })
                .collect();

            // Evaluate independent variants in parallel, each worker into
            // a private delta buffer; set-union merging afterwards makes
            // the stage result identical to a sequential run.
            let workers = if options.parallel {
                thread_count().min(live_rules.len()).max(1)
            } else {
                1
            };
            let buffers: Vec<Vec<HashSet<Tuple>>> = par_workers(workers, |w| {
                let mut local: Vec<HashSet<Tuple>> = vec![HashSet::new(); idb_count];
                for rule in live_rules.iter().skip(w).step_by(workers) {
                    evaluate_rule(
                        rule, structure, universe, &edb, &full_idx, &old_idx, &delta_idx,
                        &full, &mut local,
                    );
                }
                local
            });
            let mut next_delta: Vec<HashSet<Tuple>> = vec![HashSet::new(); idb_count];
            for local in buffers {
                for (dst, src) in next_delta.iter_mut().zip(local) {
                    if dst.is_empty() {
                        *dst = src;
                    } else {
                        dst.extend(src);
                    }
                }
            }

            // In naive mode the rules recompute everything; keep only the
            // genuinely new tuples as the delta.
            let mut new_count = vec![0usize; idb_count];
            for i in 0..idb_count {
                next_delta[i].retain(|t| !full[i].contains(t));
                new_count[i] = next_delta[i].len();
                for t in &next_delta[i] {
                    full[i].insert(t.clone());
                }
            }
            let any_new = new_count.iter().any(|&c| c > 0);
            if any_new {
                stats.push(StageStats {
                    new_tuples: new_count,
                });
                if options.record_stages {
                    stages.push(full.clone());
                }
                delta = next_delta;
            } else {
                converged = true;
                break;
            }
        }

        EvalResult {
            idb: full,
            stats,
            stages,
            converged,
        }
    }

    /// Convenience: runs with default options and returns the goal
    /// relation (moved out of the result, not cloned).
    pub fn goal(&self, structure: &Structure) -> HashSet<Tuple> {
        let mut r = self.run(structure, EvalOptions::default());
        std::mem::take(&mut r.idb[self.program.goal().0])
    }

    /// Convenience: does `tuple` belong to the goal relation? Checks the
    /// evaluation result in place.
    pub fn holds(&self, structure: &Structure, tuple: &[Element]) -> bool {
        self.run(structure, EvalOptions::default()).idb[self.program.goal().0].contains(tuple)
    }
}

/// Evaluates one compiled rule, inserting derived head tuples into
/// `next_delta`. The tuple stores are read-only: indexes were built before
/// the stage started, and candidates are walked as borrowed id slices.
#[allow(clippy::too_many_arguments)]
fn evaluate_rule(
    rule: &CompiledRule,
    structure: &Structure,
    universe: usize,
    edb: &[Indexed],
    full_idx: &[Indexed],
    old_idx: &[Indexed],
    delta_idx: &[Indexed],
    full: &[HashSet<Tuple>],
    next_delta: &mut [HashSet<Tuple>],
) {
    // Structure-dependent constant equality guards.
    let resolve = |t: &Term, binding: &[Option<Element>]| -> Option<Element> {
        match t {
            Term::Var(v) => binding[v.0],
            Term::Const(c) => Some(structure.constant(*c)),
        }
    };
    let empty_binding = vec![None; rule.var_count];
    for (a, b) in &rule.const_eqs {
        if resolve(a, &empty_binding) != resolve(b, &empty_binding) {
            return;
        }
    }

    let mut binding: Vec<Option<Element>> = vec![None; rule.var_count];

    // Recursion over atoms, then free-variable enumeration, then emit.
    #[allow(clippy::too_many_arguments)]
    fn join(
        rule: &CompiledRule,
        atom_pos: usize,
        binding: &mut Vec<Option<Element>>,
        structure: &Structure,
        universe: usize,
        edb: &[Indexed],
        full_idx: &[Indexed],
        old_idx: &[Indexed],
        delta_idx: &[Indexed],
        full: &[HashSet<Tuple>],
        next_delta: &mut [HashSet<Tuple>],
    ) {
        // Inequality pruning: any fully bound neq that fails kills branch.
        for (a, b) in &rule.neqs {
            let va = match a {
                Term::Var(v) => binding[v.0],
                Term::Const(c) => Some(structure.constant(*c)),
            };
            let vb = match b {
                Term::Var(v) => binding[v.0],
                Term::Const(c) => Some(structure.constant(*c)),
            };
            if let (Some(x), Some(y)) = (va, vb) {
                if x == y {
                    return;
                }
            }
        }
        if atom_pos == rule.atoms.len() {
            // Enumerate free variables, then emit the head tuple.
            fn enumerate(
                rule: &CompiledRule,
                free_pos: usize,
                binding: &mut Vec<Option<Element>>,
                structure: &Structure,
                universe: usize,
                full: &[HashSet<Tuple>],
                next_delta: &mut [HashSet<Tuple>],
            ) {
                for (a, b) in &rule.neqs {
                    let va = match a {
                        Term::Var(v) => binding[v.0],
                        Term::Const(c) => Some(structure.constant(*c)),
                    };
                    let vb = match b {
                        Term::Var(v) => binding[v.0],
                        Term::Const(c) => Some(structure.constant(*c)),
                    };
                    if let (Some(x), Some(y)) = (va, vb) {
                        if x == y {
                            return;
                        }
                    }
                }
                if free_pos == rule.free_vars.len() {
                    let head: Option<Vec<Element>> = rule
                        .head_args
                        .iter()
                        .map(|t| match t {
                            Term::Var(v) => binding[v.0],
                            Term::Const(c) => Some(structure.constant(*c)),
                        })
                        .collect();
                    let head = head.expect("head variables fully bound");
                    let boxed = head.into_boxed_slice();
                    if !full[rule.head.0].contains(&boxed) {
                        next_delta[rule.head.0].insert(boxed);
                    }
                    return;
                }
                let v = rule.free_vars[free_pos];
                for e in 0..universe as Element {
                    binding[v.0] = Some(e);
                    enumerate(rule, free_pos + 1, binding, structure, universe, full, next_delta);
                }
                binding[v.0] = None;
            }
            enumerate(rule, 0, binding, structure, universe, full, next_delta);
            return;
        }

        let atom = &rule.atoms[atom_pos];
        let store: &Indexed = match (atom.pred, atom.access) {
            (Pred::Edb(r), _) => &edb[r.0],
            (Pred::Idb(i), IdbAccess::Full) => &full_idx[i.0],
            (Pred::Idb(i), IdbAccess::Old) => &old_idx[i.0],
            (Pred::Idb(i), IdbAccess::Delta) => &delta_idx[i.0],
        };

        // Per-candidate matching: extend the binding, recurse, restore.
        #[allow(clippy::too_many_arguments)]
        fn try_tuple(
            rule: &CompiledRule,
            atom_pos: usize,
            tuple: &Tuple,
            binding: &mut Vec<Option<Element>>,
            structure: &Structure,
            universe: usize,
            edb: &[Indexed],
            full_idx: &[Indexed],
            old_idx: &[Indexed],
            delta_idx: &[Indexed],
            full: &[HashSet<Tuple>],
            next_delta: &mut [HashSet<Tuple>],
        ) {
            let atom = &rule.atoms[atom_pos];
            let mut newly_bound: Vec<VarId> = Vec::new();
            for (pos, t) in atom.args.iter().enumerate() {
                let ok = match t {
                    Term::Const(c) => structure.constant(*c) == tuple[pos],
                    Term::Var(v) => match binding[v.0] {
                        Some(e) => e == tuple[pos],
                        None => {
                            binding[v.0] = Some(tuple[pos]);
                            newly_bound.push(*v);
                            true
                        }
                    },
                };
                if !ok {
                    for v in newly_bound.drain(..) {
                        binding[v.0] = None;
                    }
                    return;
                }
            }
            join(
                rule,
                atom_pos + 1,
                binding,
                structure,
                universe,
                edb,
                full_idx,
                old_idx,
                delta_idx,
                full,
                next_delta,
            );
            for v in newly_bound.drain(..) {
                binding[v.0] = None;
            }
        }

        match atom.index_pos {
            Some(pos) => {
                // The indexed argument is a constant or a variable bound
                // by an earlier atom — always resolvable here.
                let e = match &atom.args[pos] {
                    Term::Var(v) => binding[v.0].expect("statically bound"),
                    Term::Const(c) => structure.constant(*c),
                };
                for &i in store.probe(pos, e) {
                    try_tuple(
                        rule,
                        atom_pos,
                        &store.tuples[i],
                        binding,
                        structure,
                        universe,
                        edb,
                        full_idx,
                        old_idx,
                        delta_idx,
                        full,
                        next_delta,
                    );
                }
            }
            None => {
                for tuple in &store.tuples {
                    try_tuple(
                        rule,
                        atom_pos,
                        tuple,
                        binding,
                        structure,
                        universe,
                        edb,
                        full_idx,
                        old_idx,
                        delta_idx,
                        full,
                        next_delta,
                    );
                }
            }
        }
    }

    join(
        rule,
        0,
        &mut binding,
        structure,
        universe,
        edb,
        full_idx,
        old_idx,
        delta_idx,
        full,
        next_delta,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use kv_structures::generators::{directed_cycle, directed_path, random_digraph};
    use kv_structures::Vocabulary;
    use std::sync::Arc;

    fn graph_vocab() -> Arc<Vocabulary> {
        Arc::new(Vocabulary::graph())
    }

    fn tc() -> Program {
        parse_program(
            "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y). ?- S.",
            graph_vocab(),
        )
        .unwrap()
    }

    #[test]
    fn tc_on_path() {
        let p = tc();
        let s = directed_path(4);
        let result = Evaluator::new(&p).goal(&s);
        // All pairs i < j.
        assert_eq!(result.len(), 6);
        assert!(result.contains(&[0u32, 3][..]));
        assert!(!result.contains(&[3u32, 0][..]));
    }

    #[test]
    fn tc_on_cycle_is_complete() {
        let p = tc();
        let s = directed_cycle(5);
        let result = Evaluator::new(&p).goal(&s);
        assert_eq!(result.len(), 25);
    }

    #[test]
    fn naive_and_semi_naive_agree_with_identical_stages() {
        let p = tc();
        for seed in 0..5 {
            let g = random_digraph(12, 0.15, seed);
            let s = g.to_structure();
            let naive = Evaluator::new(&p).run(
                &s,
                EvalOptions {
                    semi_naive: false,
                    record_stages: true,
                    max_stages: None,
                    parallel: true,
                },
            );
            let semi = Evaluator::new(&p).run(
                &s,
                EvalOptions {
                    semi_naive: true,
                    record_stages: true,
                    max_stages: None,
                    parallel: true,
                },
            );
            assert_eq!(naive.idb, semi.idb, "fixpoints differ on seed {seed}");
            assert_eq!(naive.stats, semi.stats, "stage stats differ on seed {seed}");
            assert_eq!(naive.stages, semi.stages, "stages differ on seed {seed}");
        }
    }

    #[test]
    fn stage_counts_match_paper_iteration() {
        // On a directed path with n nodes, stage k of TC adds the pairs at
        // distance exactly k: Θ¹ = E, Θ² adds distance-2 pairs, etc.
        let p = tc();
        let s = directed_path(6);
        let r = Evaluator::new(&p).run(
            &s,
            EvalOptions {
                semi_naive: true,
                record_stages: true,
                max_stages: None,
                parallel: true,
            },
        );
        assert_eq!(r.stage_count(), 5); // distances 1..=5
        assert_eq!(
            r.stats.iter().map(|s| s.new_tuples[0]).collect::<Vec<_>>(),
            vec![5, 4, 3, 2, 1]
        );
        assert!(r.converged);
    }

    #[test]
    fn avoiding_path_program_matches_bfs() {
        let src = "
            T(x, y, w) :- E(x, y), w != x, w != y.
            T(x, y, w) :- E(x, z), T(z, y, w), w != x.
            ?- T.
        ";
        let p = parse_program(src, graph_vocab()).unwrap();
        for seed in 0..5 {
            let g = random_digraph(8, 0.25, 50 + seed);
            let s = g.to_structure();
            let t = Evaluator::new(&p).goal(&s);
            for x in 0..8u32 {
                for y in 0..8u32 {
                    for w in 0..8u32 {
                        let expected = kv_graphalg::avoiding_path(&g, x, y, &[w]);
                        let got = t.contains(&[x, y, w][..]);
                        assert_eq!(
                            got, expected,
                            "T({x},{y},{w}) mismatch on seed {}",
                            50 + seed
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unbound_head_variable_ranges_over_universe() {
        // P(x, w) :- E(x, x).   [w unconstrained]
        let p = parse_program("P(x, w) :- E(x, x). ?- P.", graph_vocab()).unwrap();
        let mut s = Structure::new(graph_vocab(), 4);
        s.insert(kv_structures::RelId(0), &[2, 2]);
        let result = Evaluator::new(&p).goal(&s);
        assert_eq!(result.len(), 4);
        for w in 0..4u32 {
            assert!(result.contains(&[2, w][..]));
        }
    }

    #[test]
    fn unbound_variable_with_inequality_excludes() {
        // The first rule of Example 2.1 on a single edge 0 -> 1 in a
        // 3-element universe: T(0, 1, w) for w not in {0, 1}.
        let p = parse_program(
            "T(x, y, w) :- E(x, y), w != x, w != y. ?- T.",
            graph_vocab(),
        )
        .unwrap();
        let mut s = Structure::new(graph_vocab(), 3);
        s.insert(kv_structures::RelId(0), &[0, 1]);
        let result = Evaluator::new(&p).goal(&s);
        assert_eq!(result.len(), 1);
        assert!(result.contains(&[0u32, 1, 2][..]));
    }

    #[test]
    fn equality_literal_unifies() {
        let p = parse_program("P(x, y) :- E(x, z), z = y. ?- P.", graph_vocab()).unwrap();
        let s = directed_path(3);
        let result = Evaluator::new(&p).goal(&s);
        assert_eq!(result.len(), 2);
        assert!(result.contains(&[0u32, 1][..]));
        assert!(result.contains(&[1u32, 2][..]));
    }

    #[test]
    fn constants_in_rules_resolve_per_structure() {
        let vocab = Arc::new(Vocabulary::graph_with_constants(1));
        let p = parse_program("R(x) :- E(s1, x). ?- R.", Arc::clone(&vocab)).unwrap();
        let mut s = Structure::new(Arc::clone(&vocab), 3);
        s.insert(kv_structures::RelId(0), &[0, 1]);
        s.insert(kv_structures::RelId(0), &[1, 2]);
        s.set_constant(kv_structures::ConstId(0), 1);
        let result = Evaluator::new(&p).goal(&s);
        assert_eq!(result.len(), 1);
        assert!(result.contains(&[2u32][..]));
    }

    #[test]
    fn fact_rule_with_constants() {
        let vocab = Arc::new(Vocabulary::graph_with_constants(2));
        let p = parse_program("D(s1, s2). ?- D.", Arc::clone(&vocab)).unwrap();
        let mut s = Structure::new(Arc::clone(&vocab), 5);
        s.set_constant(kv_structures::ConstId(0), 3);
        s.set_constant(kv_structures::ConstId(1), 4);
        let result = Evaluator::new(&p).goal(&s);
        assert_eq!(result.len(), 1);
        assert!(result.contains(&[3u32, 4][..]));
    }

    #[test]
    fn multiple_idbs_mutual_recursion() {
        // Even/odd path lengths from node 0 via mutual recursion.
        let src = "
            Odd(x, y) :- E(x, y).
            Odd(x, y) :- Even(x, z), E(z, y).
            Even(x, y) :- Odd(x, z), E(z, y).
            ?- Even.
        ";
        let p = parse_program(src, graph_vocab()).unwrap();
        let s = directed_path(5);
        let even = Evaluator::new(&p).goal(&s);
        // Even-length (>= 2) paths on a 5-node path: dist 2 and 4.
        let pairs: HashSet<(u32, u32)> = even.iter().map(|t| (t[0], t[1])).collect();
        assert_eq!(
            pairs,
            HashSet::from([(0, 2), (1, 3), (2, 4), (0, 4)])
        );
    }

    #[test]
    fn max_stages_truncates() {
        let p = tc();
        let s = directed_path(10);
        let r = Evaluator::new(&p).run(
            &s,
            EvalOptions {
                semi_naive: true,
                record_stages: false,
                max_stages: Some(2),
                parallel: true,
            },
        );
        assert!(!r.converged);
        assert_eq!(r.stage_count(), 2);
        // Stages 1..=2 derive distances 1..=2: 9 + 8 tuples.
        assert_eq!(r.idb[0].len(), 17);
    }

    #[test]
    fn empty_program_converges_immediately() {
        let p = parse_program("P(x) :- Qnever(x). ?- P.", graph_vocab()).unwrap();
        let s = directed_path(3);
        let r = Evaluator::new(&p).run(&s, EvalOptions::default());
        assert!(r.converged);
        assert!(r.idb.iter().all(|rel| rel.is_empty()));
    }
}
