//! Incremental view maintenance: the delta-first engine.
//!
//! [`IncrementalEngine`] keeps a Datalog(≠) program's least fixpoint live
//! while the EDB mutates in batches of insertions and retractions, instead
//! of re-running [`crate::eval::Evaluator`] from scratch after every
//! change. The paper's stage semantics (Theorem 3.6) is defined over a
//! fixed structure; this module preserves it exactly — the maintenance
//! pass runs the same global stage loop over the same three id-window
//! relation views (`old`/`delta`/`full`), merely generalized so the EDB
//! stores get delta windows too.
//!
//! # Batch anatomy
//!
//! Each [`apply_batch`](IncrementalEngine::apply_batch) runs two phases:
//!
//! 1. **Deletion** (read-only plan, all-or-nothing commit). Retractions
//!    that drop an EDB tuple's assertion count to zero delete it; lost
//!    IDB derivations are then found by a single-shot occurrence
//!    partition per rule — the pinned occurrence ranges over the deleted
//!    tuples, earlier occurrences over survivors, later occurrences over
//!    the pre-state — so each lost derivation is enumerated exactly once.
//!    Non-recursive predicates subtract the lost count from their
//!    per-tuple support (maintained exactly by the insertion pass) and die
//!    at zero; predicates in recursive SCCs fall back to DRed:
//!    over-delete the affected closure, then re-derive survivors from
//!    untouched facts until stable. The commit kills the dead tuples and
//!    **compacts** every store that holds one — after compaction no dead
//!    tuple exists, so the insertion pass (and every range-based join
//!    kernel) sees contiguous live id ranges, unchanged.
//! 2. **Insertion** (stage-by-stage commit, like a from-scratch run).
//!    Fresh EDB tuples append above the batch's delta mark. Stage one
//!    runs the *EDB-delta* rule variants — the `d`-th EDB occurrence
//!    pinned to the insertion window, earlier EDB occurrences old, later
//!    ones full, IDB atoms full — and subsequent stages run the ordinary
//!    semi-naive IDB-delta variants. Workers run in counting mode: every
//!    derivation is recorded (no committed-store shortcut, no head-check
//!    early exit), so per-tuple support counts stay exact for the
//!    counting deletion path.
//!
//! On the *initial* batch this degenerates to exactly the from-scratch
//! stage sequence — stage one of the batch enumerates precisely the
//! naive stage-1 derivations, and later stages are the ordinary
//! semi-naive variants — which is why stage identity survives (the
//! differential tests assert it).
//!
//! # Governance
//!
//! [`try_apply_batch_governed`](IncrementalEngine::try_apply_batch_governed)
//! honors a [`Governor`] exactly like governed evaluation: the deletion
//! phase commits nothing if interrupted, the insertion phase keeps its
//! committed stages, and [`resume_batch`](IncrementalEngine::resume_batch)
//! continues to a result — counters included — identical to an
//! uninterrupted run.

use crate::ast::{IdbId, Pred, Term, VarId};
use crate::eval::{
    compile_rule_pinned, evaluate_rule, index_plan, CompiledProgram, CompiledRule, DeltaPin,
    EvalOptions, IdbAccess, JoinCtx, WorkerBuf,
};
use crate::planner::plan_rules_with_stats;
use crate::program::Program;
use crate::sharded;
use kv_structures::govern::{Governor, Interrupted};
use kv_structures::par::{par_workers, thread_count};
use kv_structures::store::{CardStats, EvalStats, PosIndex, TupleId, TupleStore};
use kv_structures::{Element, InsertOutcome, MutableStore, PlannerMode, RelId, Structure};
use std::cell::OnceCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// One asserted or retracted EDB fact: a relation and a tuple.
pub type Fact = (RelId, Vec<Element>);

/// What one maintenance batch did, mirroring [`crate::eval::EvalResult`]'s
/// counters for the incremental path.
#[derive(Debug, Clone)]
pub struct BatchSummary {
    /// The engine epoch after this batch committed (1 for the first).
    pub epoch: u64,
    /// Distinct EDB tuples that became live (fresh assertions).
    pub edb_inserted: u64,
    /// Distinct EDB tuples whose assertion count reached zero.
    pub edb_retracted: u64,
    /// New IDB tuples derived by the insertion pass (the IDB delta).
    pub delta_tuples: u64,
    /// IDB tuples deleted net of re-derivation.
    pub deleted_tuples: u64,
    /// IDB tuples over-deleted by DRed and then re-derived from survivors.
    pub rederived_tuples: u64,
    /// IDB tuples the DRed pass over-deleted before re-derivation.
    pub overdeleted_tuples: u64,
    /// Insertion-pass stages that derived at least one new tuple. On the
    /// initial batch this matches the from-scratch stage sequence
    /// tuple-for-tuple (Theorem 3.6 stage identity).
    pub stage_new: Vec<Vec<usize>>,
    /// Tuples that crossed a shard boundary during the insertion pass
    /// (zero unless [`EvalOptions::shards`] is set, and always zero at
    /// `W = 1` — everything is local then).
    pub exchanged_tuples: u64,
    /// Matching insert/retract pairs of the same tuple cancelled before
    /// planning (plus retracts of facts that were not live, dropped as
    /// no-ops). Coalescing is a pure optimization: the maintained
    /// fixpoint and EDB support counts are identical either way.
    pub coalesced_pairs: u64,
    /// Aggregate counters for the whole batch (both phases).
    pub eval_stats: EvalStats,
}

impl BatchSummary {
    /// Number of insertion stages that derived something.
    pub fn stage_count(&self) -> usize {
        self.stage_new.len()
    }
}

/// A governed batch was interrupted; the engine holds the pending batch
/// and [`IncrementalEngine::resume_batch`] continues it.
#[derive(Debug)]
pub struct BatchInterrupted {
    /// Why the governor stopped the batch.
    pub reason: Interrupted,
}

impl fmt::Display for BatchInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "maintenance batch interrupted: {}", self.reason)
    }
}

impl std::error::Error for BatchInterrupted {}

/// Committed progress of a partially applied batch (insertion phase).
#[derive(Debug, Clone)]
struct InsertionState {
    /// EDB store length per relation before this batch's appends.
    edb_delta_lo: Vec<u32>,
    /// IDB delta marker per predicate (store length before the previous
    /// committed stage).
    delta_lo: Vec<u32>,
    /// Committed insertion stages (0 = the EDB-delta stage is still due).
    stage: usize,
    /// Per-stage new-tuple counts (stages that derived something).
    stage_new: Vec<Vec<usize>>,
    /// Counters committed so far (deletion phase + committed stages).
    stats: EvalStats,
    edb_inserted: u64,
    edb_retracted: u64,
    deleted_tuples: u64,
    rederived_tuples: u64,
    overdeleted_tuples: u64,
    /// Shard-key assignment when the engine runs sharded (`None`
    /// otherwise). Chosen once per batch from the committed post-deletion
    /// EDB — a pure function of frozen state, so resumed batches re-use
    /// the identical keys and the owner-sorted insert appends stay valid.
    shard: Option<crate::sharded::ShardPlan>,
    /// Tuples that crossed a shard boundary in committed stages.
    exchanged: u64,
}

/// Where a pending batch stands.
#[derive(Debug, Clone)]
enum Phase {
    /// Nothing committed yet; the deletion plan is recomputed on resume.
    Deletion,
    /// Deletion committed and inserts appended; stages commit one by one.
    /// Boxed: the state is ~264 bytes against the dataless `Deletion`.
    Insertion(Box<InsertionState>),
}

#[derive(Debug, Clone)]
struct PendingBatch {
    inserts: Vec<Fact>,
    retracts: Vec<Fact>,
    /// Insert/retract pairs (and no-op retracts) dropped by coalescing
    /// before the lists above were frozen.
    coalesced: u64,
    phase: Phase,
}

/// The read-only deletion plan: computed against the pre-state, committed
/// atomically (or discarded whole on interrupt).
struct DeletionPlan {
    /// Per relation: ids whose assertion count reaches zero, sorted.
    edb_dying: Vec<Vec<u32>>,
    /// Per IDB predicate: net-deleted ids (counting deaths plus DRed's
    /// overdeleted-minus-rederived).
    idb_deleted: Vec<DenseSet>,
    /// Per counting (non-recursive) IDB predicate: lost derivation counts
    /// for tuples that survive with reduced support.
    support_sub: Vec<HashMap<u32, u32>>,
    overdeleted: u64,
    rederived: u64,
    stats: EvalStats,
}

/// A live, mutating instance of a program's least fixpoint.
#[derive(Debug)]
pub struct IncrementalEngine {
    compiled: CompiledProgram,
    options: EvalOptions,
    /// Universe and constant interpretations; relations stay empty (the
    /// live EDB is in [`edb`](Self::edb)).
    template: Structure,
    edb: Vec<MutableStore>,
    idb: Vec<MutableStore>,
    /// EDB-delta rule variants: one per rule per EDB occurrence.
    edb_variants: Vec<CompiledRule>,
    /// Rules with no body atoms; they fire once, on the first batch.
    fact_rules: Vec<CompiledRule>,
    /// Naive-rule indices grouped by head predicate (deletion joins).
    rules_by_head: Vec<Vec<usize>>,
    epoch: u64,
    pending: Option<PendingBatch>,
    total_stats: EvalStats,
}

impl IncrementalEngine {
    /// Creates an engine for `program` over `template`'s universe and
    /// constants. The template's relation contents are ignored — the
    /// engine starts from the empty EDB; assert initial facts with the
    /// first [`apply_batch`](Self::apply_batch) (or use
    /// [`from_structure`](Self::from_structure)).
    ///
    /// # Panics
    /// Panics if the template's vocabulary differs from the program's.
    pub fn new(program: &Program, template: &Structure, options: EvalOptions) -> Self {
        assert_eq!(
            template.vocabulary(),
            program.vocabulary(),
            "template/program vocabulary mismatch"
        );
        let vocab = Arc::clone(program.vocabulary());
        let mut empty = Structure::new(Arc::clone(&vocab), template.universe_size());
        for c in vocab.constants() {
            empty.set_constant(c, template.constant(c));
        }
        let compiled = CompiledProgram::compile(program);
        let magic = vec![false; program.idb_count()];
        let mut edb_variants = Vec::new();
        for rule in program.rules() {
            let edb_atoms = rule
                .atoms()
                .filter(|(p, _)| matches!(p, Pred::Edb(_)))
                .count();
            for e in 0..edb_atoms {
                edb_variants.push(compile_rule_pinned(rule, DeltaPin::Edb(e), &magic));
            }
        }
        let fact_rules: Vec<CompiledRule> = compiled
            .naive_rules
            .iter()
            .filter(|r| r.atoms.is_empty())
            .cloned()
            .collect();
        let mut rules_by_head = vec![Vec::new(); program.idb_count()];
        for (ri, rule) in compiled.naive_rules.iter().enumerate() {
            rules_by_head[rule.head.0].push(ri);
        }
        let edb: Vec<MutableStore> = vocab
            .relations()
            .map(|r| MutableStore::new(vocab.arity(r)))
            .collect();
        let idb: Vec<MutableStore> = compiled
            .idb_arities
            .iter()
            .map(|&a| MutableStore::new(a))
            .collect();
        IncrementalEngine {
            compiled,
            options,
            template: empty,
            edb,
            idb,
            edb_variants,
            fact_rules,
            rules_by_head,
            epoch: 0,
            pending: None,
            total_stats: EvalStats::default(),
        }
    }

    /// Creates an engine and applies `structure`'s facts as the initial
    /// batch, reaching the same fixpoint a from-scratch run would.
    pub fn from_structure(
        program: &Program,
        structure: &Structure,
        options: EvalOptions,
    ) -> (Self, BatchSummary) {
        let mut engine = Self::new(program, structure, options);
        let mut inserts: Vec<Fact> = Vec::new();
        for r in structure.vocabulary().relations() {
            for t in structure.relation(r).iter() {
                inserts.push((r, t.to_vec()));
            }
        }
        let summary = engine.apply_batch(&inserts, &[]);
        (engine, summary)
    }

    /// Reassembles an engine from recovered durable state: the compiled
    /// program machinery is rebuilt from `program` (it is a pure function
    /// of the rules), while the EDB/IDB stores, epoch counter, and
    /// aggregate counters come from the snapshot. Validation is
    /// structural (store counts and arities); semantic integrity — the
    /// IDB being the program's fixpoint of the EDB — is the snapshot
    /// writer's invariant, upheld because snapshots are only taken
    /// between committed batches.
    pub(crate) fn restore(
        program: &Program,
        template: &Structure,
        options: EvalOptions,
        edb: Vec<MutableStore>,
        idb: Vec<MutableStore>,
        epoch: u64,
        total_stats: EvalStats,
    ) -> Result<Self, String> {
        let mut engine = Self::new(program, template, options);
        if edb.len() != engine.edb.len() || idb.len() != engine.idb.len() {
            return Err(format!(
                "snapshot has {}/{} EDB/IDB store(s), program needs {}/{}",
                edb.len(),
                idb.len(),
                engine.edb.len(),
                engine.idb.len()
            ));
        }
        for (got, want) in edb.iter().zip(&engine.edb) {
            if got.arity() != want.arity() {
                return Err(format!(
                    "EDB store arity {} where the vocabulary says {}",
                    got.arity(),
                    want.arity()
                ));
            }
        }
        for (got, want) in idb.iter().zip(&engine.idb) {
            if got.arity() != want.arity() {
                return Err(format!(
                    "IDB store arity {} where the program says {}",
                    got.arity(),
                    want.arity()
                ));
            }
        }
        let universe = template.universe_size() as Element;
        for store in edb.iter().chain(&idb) {
            for t in store.store().iter() {
                if t.iter().any(|&e| e >= universe) {
                    return Err(format!(
                        "snapshot tuple {t:?} outside universe of size {universe}"
                    ));
                }
            }
        }
        engine.edb = edb;
        engine.idb = idb;
        engine.epoch = epoch;
        engine.total_stats = total_stats;
        Ok(engine)
    }

    /// The live EDB stores, indexed by [`RelId`] (durable snapshots).
    pub(crate) fn edb_stores(&self) -> &[MutableStore] {
        &self.edb
    }

    /// The live IDB stores, indexed by [`IdbId`] (durable snapshots).
    pub(crate) fn idb_stores(&self) -> &[MutableStore] {
        &self.idb
    }

    /// The batches committed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The evaluation options maintenance runs under.
    pub fn options(&self) -> EvalOptions {
        self.options
    }

    /// The goal predicate.
    pub fn goal(&self) -> IdbId {
        self.compiled.goal()
    }

    /// Whether an interrupted batch is waiting for
    /// [`resume_batch`](Self::resume_batch).
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Aggregate counters across all committed batches.
    pub fn total_stats(&self) -> EvalStats {
        self.total_stats
    }

    /// The live store of EDB relation `r`.
    pub fn edb_store(&self, r: RelId) -> &MutableStore {
        &self.edb[r.0]
    }

    /// The live store of IDB predicate `i`.
    pub fn idb_store(&self, i: IdbId) -> &MutableStore {
        &self.idb[i.0]
    }

    /// Whether `tuple` is in the maintained goal relation.
    pub fn goal_contains(&self, tuple: &[Element]) -> bool {
        self.idb[self.compiled.goal().0].contains_live(tuple)
    }

    /// Materializes the current live EDB as a [`Structure`] (the input a
    /// from-scratch evaluation of the same state would receive).
    pub fn edb_structure(&self) -> Structure {
        let mut s = self.template.clone();
        for r in self.template.vocabulary().relations() {
            for t in self.edb[r.0].live_iter() {
                s.insert(r, t);
            }
        }
        s
    }

    /// Applies a batch of EDB retractions and insertions (retractions
    /// first), maintaining the fixpoint. Ungoverned: runs to completion.
    ///
    /// Assertions are multiset-counted: inserting a fact twice requires
    /// retracting it twice before it (and its consequences) disappear.
    /// Retracting an absent fact is a no-op.
    ///
    /// # Panics
    /// Panics on an arity or universe violation, or if an interrupted
    /// governed batch is pending (resume it first).
    pub fn apply_batch(&mut self, inserts: &[Fact], retracts: &[Fact]) -> BatchSummary {
        let gov = Governor::unlimited();
        match self.try_apply_batch_governed(inserts, retracts, &gov) {
            Ok(summary) => summary,
            Err(e) => unreachable!("unlimited governor interrupted a batch: {e}"),
        }
    }

    /// Governed batch application: honors `gov`'s budget, deadline, and
    /// cancellation. The deletion phase is all-or-nothing; the insertion
    /// phase commits stage by stage. On `Err` the engine holds the
    /// pending batch and [`resume_batch`](Self::resume_batch) continues
    /// it — producing, counters included, exactly the uninterrupted
    /// result.
    ///
    /// # Panics
    /// Panics on an arity or universe violation, or if a batch is already
    /// pending.
    pub fn try_apply_batch_governed(
        &mut self,
        inserts: &[Fact],
        retracts: &[Fact],
        gov: &Governor,
    ) -> Result<BatchSummary, BatchInterrupted> {
        assert!(
            self.pending.is_none(),
            "a maintenance batch is pending; resume it before applying another"
        );
        self.validate(inserts);
        self.validate(retracts);
        let (mut inserts, mut retracts, coalesced) = self.coalesce(inserts, retracts);
        Self::canonicalize(&mut inserts, &mut retracts);
        self.pending = Some(PendingBatch {
            inserts,
            retracts,
            coalesced,
            phase: Phase::Deletion,
        });
        self.drive(gov)
    }

    /// Resumes the pending interrupted batch under a fresh governor.
    ///
    /// # Panics
    /// Panics if no batch is pending.
    pub fn resume_batch(&mut self, gov: &Governor) -> Result<BatchSummary, BatchInterrupted> {
        assert!(self.pending.is_some(), "no pending maintenance batch");
        self.drive(gov)
    }

    /// Validates facts with the same panics `apply_batch` would raise,
    /// so the durable layer can reject a malformed batch *before*
    /// logging it to the write-ahead log.
    pub(crate) fn check_facts(&self, facts: &[Fact]) {
        self.validate(facts);
    }

    fn validate(&self, facts: &[Fact]) {
        let vocab = self.template.vocabulary();
        let universe = self.template.universe_size() as Element;
        for (r, t) in facts {
            assert_eq!(t.len(), vocab.arity(*r), "fact arity mismatch");
            assert!(
                t.iter().all(|&e| e < universe),
                "fact element outside the universe"
            );
        }
    }

    /// Cancels matching insert/retract pairs of the same fact before any
    /// planning, so a write-heavy stream that churns the same tuples pays
    /// for its *net* effect only. The cancellation rule is exact under
    /// the engine's retract-then-insert multiset semantics: with `i`
    /// inserts and `r` retracts of a fact whose pre-batch live support is
    /// `s`, the batch's net effect on its support is `-min(r, s) + i` —
    /// so retracts beyond `s` are no-ops and can be dropped (`r' =
    /// min(r, s)`), and `c = min(i, r')` insert/retract pairs cancel,
    /// leaving `i - c` inserts and `r' - c` retracts with the same final
    /// support in every case. Same final EDB multiset ⇒ same fixpoint
    /// (maintenance is differential-tested against from-scratch runs on
    /// the final EDB). A tuple that would die and revive within one
    /// batch is indistinguishable from one that never died, because
    /// batches are atomic.
    ///
    /// Returns the surviving lists in original order plus the number of
    /// dropped operations.
    fn coalesce(&self, inserts: &[Fact], retracts: &[Fact]) -> (Vec<Fact>, Vec<Fact>, u64) {
        if retracts.is_empty() {
            return (inserts.to_vec(), retracts.to_vec(), 0);
        }
        // Per-fact counts. Facts are keyed by (relation, tuple); batches
        // are small relative to the EDB, so a transient hash map is fine.
        let mut counts: HashMap<(RelId, &[Element]), (u32, u32)> = HashMap::new();
        for (rel, t) in inserts {
            counts.entry((*rel, t)).or_default().0 += 1;
        }
        for (rel, t) in retracts {
            counts.entry((*rel, t)).or_default().1 += 1;
        }
        // Per fact: keep i - c inserts and r' - c retracts.
        let mut keep: HashMap<(RelId, &[Element]), (u32, u32)> =
            HashMap::with_capacity(counts.len());
        let mut coalesced = 0u64;
        for (&(rel, t), &(i, r)) in &counts {
            let live = match self.edb[rel.0].lookup(t) {
                Some(id) => self.edb[rel.0].support(id),
                None => 0,
            };
            let r_eff = r.min(live);
            let c = i.min(r_eff);
            // One unit per cancelled insert/retract pair, one per
            // phantom retract (a retract beyond the live support).
            coalesced += (c + (r - r_eff)) as u64;
            keep.insert((rel, t), (i - c, r_eff - c));
        }
        // Walk each list in order, spending the fact's keep-quota on its
        // earliest occurrences (which occurrences survive is arbitrary —
        // the batch is a multiset — but a deterministic choice keeps
        // resumed batches byte-identical).
        fn take<'f>(
            keep: &mut HashMap<(RelId, &'f [Element]), (u32, u32)>,
            rel: RelId,
            t: &'f [Element],
            retract: bool,
        ) -> bool {
            match keep.get_mut(&(rel, t)) {
                Some(quotas) => {
                    let q = if retract {
                        &mut quotas.1
                    } else {
                        &mut quotas.0
                    };
                    if *q > 0 {
                        *q -= 1;
                        true
                    } else {
                        false
                    }
                }
                None => false,
            }
        }
        let kept_inserts: Vec<Fact> = inserts
            .iter()
            .filter(|(rel, t)| take(&mut keep, *rel, t, false))
            .cloned()
            .collect();
        let kept_retracts: Vec<Fact> = retracts
            .iter()
            .filter(|(rel, t)| take(&mut keep, *rel, t, true))
            .cloned()
            .collect();
        // Every cancelled pair and every phantom drops exactly one
        // retract, so the unit count must equal the dropped retracts.
        debug_assert_eq!(coalesced, (retracts.len() - kept_retracts.len()) as u64);
        (kept_inserts, kept_retracts, coalesced)
    }

    /// Canonicalizes a coalesced batch for write-heavy streams: each list
    /// is stable-sorted by predicate, so every predicate's retracts land
    /// contiguously ahead of the engine's single retract-then-insert pass
    /// and its DRed overdeletion runs once per batch over one contiguous
    /// dying-id range per relation instead of revisiting interleaved
    /// groups. A batch is a multiset — reordering within it cannot change
    /// the committed EDB, so `reordered ≡ unreordered` holds by the same
    /// argument as coalescing (pinned in `tests/incremental.rs`). The
    /// stable sort keeps arrival order within a predicate, which keeps
    /// resumed batches and WAL replays byte-identical.
    fn canonicalize(inserts: &mut [Fact], retracts: &mut [Fact]) {
        retracts.sort_by_key(|(rel, _)| rel.0);
        inserts.sort_by_key(|(rel, _)| rel.0);
    }

    /// Runs the pending batch to completion or interrupt.
    #[allow(clippy::expect_used)]
    fn drive(&mut self, gov: &Governor) -> Result<BatchSummary, BatchInterrupted> {
        let mut batch = self.pending.take().expect("drive requires a pending batch");
        if matches!(batch.phase, Phase::Deletion) {
            let plan = match self.plan_deletions(&batch.retracts, gov) {
                Ok(plan) => plan,
                Err(reason) => {
                    self.pending = Some(batch);
                    return Err(BatchInterrupted { reason });
                }
            };
            let state = self.commit_deletions(plan, &batch.inserts, &batch.retracts);
            batch.phase = Phase::Insertion(Box::new(state));
        }
        let Phase::Insertion(ref mut state) = batch.phase else {
            unreachable!("deletion phase handled above")
        };
        if let Err(reason) = self.insertion_pass(gov, state) {
            self.pending = Some(batch);
            return Err(BatchInterrupted { reason });
        }
        let state = state.clone();
        for m in self.edb.iter_mut().chain(self.idb.iter_mut()) {
            m.commit_epoch();
        }
        self.epoch += 1;
        let mut eval_stats = state.stats;
        eval_stats.stages = state.stage_new.len() as u64;
        self.total_stats.merge(&eval_stats);
        Ok(BatchSummary {
            epoch: self.epoch,
            edb_inserted: state.edb_inserted,
            edb_retracted: state.edb_retracted,
            delta_tuples: state
                .stage_new
                .iter()
                .flat_map(|s| s.iter())
                .map(|&c| c as u64)
                .sum(),
            deleted_tuples: state.deleted_tuples,
            rederived_tuples: state.rederived_tuples,
            overdeleted_tuples: state.overdeleted_tuples,
            stage_new: state.stage_new,
            exchanged_tuples: state.exchanged,
            coalesced_pairs: batch.coalesced,
            eval_stats,
        })
    }

    /// Applies the deletion plan, compacts stores that hold dead tuples,
    /// and appends the batch's insertions above the EDB delta marks.
    fn commit_deletions(
        &mut self,
        plan: DeletionPlan,
        inserts: &[Fact],
        retracts: &[Fact],
    ) -> InsertionState {
        let edb_retracted: u64 = plan.edb_dying.iter().map(|d| d.len() as u64).sum();
        let deleted_tuples: u64 = plan.idb_deleted.iter().map(|d| d.len() as u64).sum();
        for (r, dying) in plan.edb_dying.iter().enumerate() {
            for &id in dying {
                self.edb[r].kill(TupleId(id));
            }
        }
        // Surviving multiset assertions just lose count; replaying the
        // retract list after the kills leaves exactly the planned state.
        for (r, t) in retracts {
            let store = &mut self.edb[r.0];
            if let Some(id) = store.lookup(t) {
                if store.is_live(id) {
                    store.remove_support(id, 1);
                }
            }
        }
        for (i, dead) in plan.idb_deleted.iter().enumerate() {
            for id in dead.iter_sorted() {
                self.idb[i].kill(TupleId(id));
            }
            for (&id, &c) in &plan.support_sub[i] {
                if !dead.contains(id) {
                    self.idb[i].remove_support(TupleId(id), c);
                }
            }
        }
        for m in self.edb.iter_mut().chain(self.idb.iter_mut()) {
            if m.live_len() < m.len() {
                // Drop the dead tuples in place: the insertion pass (and
                // every range-windowed join) then sees only live,
                // contiguous ids, and the commit costs O(deleted) instead
                // of a full O(live) store rebuild.
                m.compact_in_place();
            }
        }
        let edb_delta_lo: Vec<u32> = self.edb.iter().map(|m| m.len() as u32).collect();
        // Shard keys are chosen against the committed post-deletion EDB —
        // frozen state for the rest of the batch, so an interrupted batch
        // re-derives the identical assignment on resume.
        let workers = self.options.shards.map(|w| w.max(1));
        let shard = workers.map(|_| {
            let stats: Vec<CardStats> = self.edb.iter().map(|m| m.store().card_stats()).collect();
            let edb_arities: Vec<usize> = self.edb.iter().map(|m| m.store().arity()).collect();
            crate::sharded::choose_plan(
                &self.compiled.semi_variants,
                &self.edb_variants,
                &self.compiled.idb_arities,
                &edb_arities,
                &stats,
            )
        });
        // Route the batch to its owning shards: appending each relation's
        // inserts in owner order makes the EDB delta owner-contiguous, so
        // stage 0 of the insertion pass hands every worker a contiguous
        // sub-range instead of falling back to worker 0.
        let mut order: Vec<usize> = (0..inserts.len()).collect();
        if let (Some(w), Some(plan)) = (workers, shard.as_ref()) {
            order.sort_by_key(|&i| {
                let (r, t) = &inserts[i];
                kv_structures::shard_of(t, plan.edb_keys[r.0], w)
            });
        }
        let mut edb_inserted = 0u64;
        for &i in &order {
            let (r, t) = &inserts[i];
            match self.edb[r.0].insert(t) {
                InsertOutcome::Fresh(_) => edb_inserted += 1,
                InsertOutcome::Bumped(_) => {}
                InsertOutcome::Revived(_) => {
                    debug_assert!(false, "no dead tuples survive compaction");
                }
            }
        }
        InsertionState {
            edb_delta_lo,
            delta_lo: self.idb.iter().map(|m| m.len() as u32).collect(),
            stage: 0,
            stage_new: Vec::new(),
            stats: plan.stats,
            edb_inserted,
            edb_retracted,
            deleted_tuples,
            rederived_tuples: plan.rederived,
            overdeleted_tuples: plan.overdeleted,
            shard,
            exchanged: 0,
        }
    }

    /// The insertion pass: the same global stage loop as
    /// [`CompiledProgram::try_run_governed`], with the EDB-delta variants
    /// at stage one and counting-mode workers throughout.
    fn insertion_pass(
        &mut self,
        gov: &Governor,
        st: &mut InsertionState,
    ) -> Result<(), Interrupted> {
        let Self {
            ref template,
            ref edb,
            ref mut idb,
            ref compiled,
            ref edb_variants,
            ref fact_rules,
            options,
            epoch,
            ..
        } = *self;
        let idb_count = compiled.idb_arities.len();
        let edb_count = edb.len();
        let universe = template.universe_size();
        let textual = matches!(options.planner, PlannerMode::Textual);
        // Retraction-only batches arrive here with every delta window
        // empty, and every rule variant pins at least one delta atom —
        // nothing can fire, now or at any later stage. Skip the planning
        // and index builds (both O(world)); the stage loop below then runs
        // its single zero-derivation stage and exits with identical
        // counters and governor charges.
        let any_delta = epoch == 0
            || edb
                .iter()
                .zip(&st.edb_delta_lo)
                .any(|(m, &lo)| (m.len() as u32) > lo)
            || idb
                .iter()
                .zip(&st.delta_lo)
                .any(|(m, &lo)| (m.len() as u32) > lo);
        // The plan is a pure function of the committed post-deletion EDB
        // (frozen for the whole pass), so interrupted batches re-derive it
        // identically on resume.
        let (mut edb_rules, mut semi_rules) = if !any_delta {
            (Vec::new(), Vec::new())
        } else if textual {
            (edb_variants.clone(), compiled.semi_variants.clone())
        } else {
            let stats: Vec<CardStats> = edb.iter().map(|m| m.store().card_stats()).collect();
            (
                plan_rules_with_stats(edb_variants, &stats, universe, options.lowering),
                plan_rules_with_stats(&compiled.semi_variants, &stats, universe, options.lowering),
            )
        };
        // Counting mode must visit every derivation: the head-check early
        // exit (which skips re-derivations of existing tuples) is off.
        for rule in edb_rules.iter_mut().chain(semi_rules.iter_mut()) {
            rule.head_check_at = None;
        }
        let (edb_positions, idb_positions) =
            index_plan(edb_rules.iter().chain(&semi_rules), edb_count, idb_count);
        let edb_stores: Vec<&TupleStore> = edb.iter().map(|m| m.store()).collect();
        let edb_idx: Vec<Vec<PosIndex>> = edb_stores
            .iter()
            .zip(&edb_positions)
            .map(|(store, positions)| {
                positions
                    .iter()
                    .map(|&p| {
                        let mut ix = PosIndex::new(p);
                        ix.update(store);
                        ix
                    })
                    .collect()
            })
            .collect();
        let mut idb_idx: Vec<Vec<PosIndex>> = idb_positions
            .iter()
            .zip(idb.iter())
            .map(|(positions, m)| {
                positions
                    .iter()
                    .map(|&p| {
                        let mut ix = PosIndex::new(p);
                        ix.update(m.store());
                        ix
                    })
                    .collect()
            })
            .collect();
        loop {
            gov.check().and_then(|()| gov.charge_stage())?;
            let prev_len: Vec<u32> = idb.iter().map(|m| m.len() as u32).collect();
            let live_rules: Vec<&CompiledRule> = if st.stage == 0 {
                let mut live: Vec<&CompiledRule> = edb_rules
                    .iter()
                    .filter(|r| live_rule(r, edb, &st.edb_delta_lo, &prev_len, &st.delta_lo))
                    .collect();
                if epoch == 0 {
                    live.extend(fact_rules.iter());
                }
                live
            } else {
                semi_rules
                    .iter()
                    .filter(|r| live_rule(r, edb, &st.edb_delta_lo, &prev_len, &st.delta_lo))
                    .collect()
            };
            let mut new_count = vec![0usize; idb_count];
            let shard_w = options.shards.map(|w| w.max(1));
            if let (Some(w_count), Some(splan)) = (shard_w, st.shard.as_ref()) {
                // Sharded stage: every worker runs every live delta-pinned
                // variant over its own owner sub-ranges of the delta
                // windows (IDB deltas from the previous committed stage,
                // the EDB delta from the owner-sorted batch appends), so
                // each derivation is produced — and its support counted —
                // by exactly one worker. Fact rules have no delta window
                // to narrow and are partitioned round-robin instead.
                let idb_refs: Vec<&TupleStore> = idb.iter().map(|m| m.store()).collect();
                let idb_ranges =
                    sharded::delta_ranges(&idb_refs, &st.delta_lo, &splan.idb_keys, w_count);
                let edb_ranges =
                    sharded::delta_ranges(&edb_stores, &st.edb_delta_lo, &splan.edb_keys, w_count);
                let mut results: Vec<(WorkerBuf, sharded::RoutedDelta)> =
                    par_workers(w_count, |w| {
                        let ctx = JoinCtx {
                            structure: template,
                            universe,
                            edb: &edb_stores,
                            edb_idx: &edb_idx,
                            idb: &idb_refs,
                            idb_idx: &idb_idx,
                            blooms: None,
                            prev_len: &prev_len,
                            delta_lo: &st.delta_lo,
                            edb_delta_lo: Some(&st.edb_delta_lo),
                            idb_delta_sub: Some(&idb_ranges[w]),
                            edb_delta_sub: Some(&edb_ranges[w]),
                            batched: !textual,
                            gov,
                        };
                        let mut buf = WorkerBuf::new_counting(&compiled.idb_arities);
                        for (ri, rule) in live_rules.iter().enumerate() {
                            if rule.atoms.is_empty() && ri % w_count != w {
                                continue;
                            }
                            if let Err(reason) = evaluate_rule(rule, &ctx, &mut buf) {
                                buf.tripped = Some(reason);
                                break;
                            }
                        }
                        // Routing runs inside the worker, before the stage
                        // barrier; the scratch arena already deduplicated
                        // this worker's derivations into per-tuple counts.
                        let routed = sharded::route_worker(&buf, &splan.idb_keys, w_count);
                        (buf, routed)
                    });
                for (buf, _) in &mut results {
                    if buf.tripped.is_none() && buf.pending_steps > 0 {
                        buf.tripped = gov.step(buf.pending_steps).err();
                        buf.pending_steps = 0;
                    }
                }
                if let Some(reason) = results.iter().find_map(|(b, _)| b.tripped) {
                    return Err(reason);
                }
                let mut routed = Vec::with_capacity(w_count);
                for (buf, r) in results {
                    st.stats.join_probes += buf.probes;
                    st.stats.magic_probes += buf.magic_probes;
                    st.stats.block_probes += buf.block_probes;
                    st.stats.gallop_steps += buf.gallop_steps;
                    st.stats.wcoj_rules += buf.wcoj_rules;
                    st.stats.duplicate_derivations += buf.dups;
                    routed.push(r);
                }
                // Owner-ordered merge: the committed delta comes out
                // owner-contiguous, so the next stage's `delta_ranges`
                // scan recovers each worker's sub-range for free.
                let mut dups = 0u64;
                sharded::merge_counting(
                    idb,
                    routed,
                    w_count,
                    &mut new_count,
                    &mut dups,
                    &mut st.exchanged,
                );
                st.stats.duplicate_derivations += dups;
            } else {
                let idb_refs: Vec<&TupleStore> = idb.iter().map(|m| m.store()).collect();
                let ctx = JoinCtx {
                    structure: template,
                    universe,
                    edb: &edb_stores,
                    edb_idx: &edb_idx,
                    idb: &idb_refs,
                    idb_idx: &idb_idx,
                    blooms: None,
                    prev_len: &prev_len,
                    delta_lo: &st.delta_lo,
                    edb_delta_lo: Some(&st.edb_delta_lo),
                    idb_delta_sub: None,
                    edb_delta_sub: None,
                    batched: !textual,
                    gov,
                };
                let workers = if options.parallel {
                    options
                        .threads
                        .unwrap_or_else(thread_count)
                        .min(live_rules.len())
                        .max(1)
                } else {
                    1
                };
                let mut buffers: Vec<WorkerBuf> = par_workers(workers, |w| {
                    let mut buf = WorkerBuf::new_counting(&compiled.idb_arities);
                    for rule in live_rules.iter().skip(w).step_by(workers) {
                        if let Err(reason) = evaluate_rule(rule, &ctx, &mut buf) {
                            buf.tripped = Some(reason);
                            break;
                        }
                    }
                    buf
                });
                for buf in &mut buffers {
                    if buf.tripped.is_none() && buf.pending_steps > 0 {
                        buf.tripped = gov.step(buf.pending_steps).err();
                        buf.pending_steps = 0;
                    }
                }
                // A tripped worker aborts the stage whole: scratch arenas
                // and counters are discarded, the committed state is
                // untouched, and resume recomputes the stage.
                if let Some(reason) = buffers.iter().find_map(|b| b.tripped) {
                    return Err(reason);
                }
                // Merge with counting: a tuple derived by several workers
                // is fresh once; every recorded derivation lands in its
                // support count.
                for buf in buffers {
                    st.stats.join_probes += buf.probes;
                    st.stats.magic_probes += buf.magic_probes;
                    st.stats.block_probes += buf.block_probes;
                    st.stats.gallop_steps += buf.gallop_steps;
                    st.stats.wcoj_rules += buf.wcoj_rules;
                    st.stats.duplicate_derivations += buf.dups;
                    for (i, (scratch, counts)) in
                        buf.scratch.into_iter().zip(buf.scratch_counts).enumerate()
                    {
                        for (tid, t) in scratch.iter().enumerate() {
                            let c = counts[tid];
                            match idb[i].insert_with_support(t, c) {
                                InsertOutcome::Fresh(_) => {
                                    new_count[i] += 1;
                                    st.stats.duplicate_derivations += (c - 1) as u64;
                                }
                                InsertOutcome::Bumped(_) => {
                                    st.stats.duplicate_derivations += c as u64;
                                }
                                InsertOutcome::Revived(_) => {
                                    debug_assert!(false, "no dead tuples during insertion");
                                }
                            }
                        }
                    }
                }
            }
            st.stage += 1;
            let any_new = new_count.iter().any(|&c| c > 0);
            if !any_new {
                return Ok(());
            }
            let new_total: u64 = new_count.iter().map(|&c| c as u64).sum();
            let new_bytes: u64 = new_count
                .iter()
                .zip(&compiled.idb_arities)
                .map(|(&c, &a)| c as u64 * a.max(1) as u64 * 4)
                .sum();
            st.stats.tuples_interned += new_total;
            st.stage_new.push(new_count);
            st.delta_lo.copy_from_slice(&prev_len);
            for (m, ixs) in idb.iter().zip(idb_idx.iter_mut()) {
                for ix in ixs {
                    ix.update(m.store());
                }
            }
            // Budgets charge after the stage commits, so the pending
            // state includes it and resume continues from the next stage.
            gov.charge_tuples(new_total)
                .and_then(|()| gov.charge_bytes(new_bytes))?;
        }
    }
}

/// Liveness filter for one atom during deletion joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DelFilter {
    /// The pre-state: everything live before the batch (deleted included).
    Pre,
    /// The post-state: pre-state tuples not marked deleted.
    Survivor,
}

/// A counting-sort position index over one pre-state store: `probe(e)` is
/// the slice of tuple ids carrying `e` at the indexed position, in
/// increasing id order. Elements are universe indices, so two linear
/// passes build it with no hashing — several times cheaper than a
/// [`PosIndex`] build, which matters because deletion plans index lazily
/// per batch and throw the result away.
struct DenseIdx {
    /// Bucket `e` is `ids[offsets[e] as usize..offsets[e + 1] as usize]`.
    offsets: Vec<u32>,
    ids: Vec<u32>,
}

impl DenseIdx {
    fn build(store: &TupleStore, pos: usize, universe: usize) -> Self {
        let n = store.len();
        let mut offsets = vec![0u32; universe + 2];
        for id in 0..n as u32 {
            offsets[store.get(TupleId(id))[pos] as usize + 2] += 1;
        }
        for e in 2..offsets.len() {
            offsets[e] += offsets[e - 1];
        }
        let mut ids = vec![0u32; n];
        for id in 0..n as u32 {
            let cursor = &mut offsets[store.get(TupleId(id))[pos] as usize + 1];
            ids[*cursor as usize] = id;
            *cursor += 1;
        }
        offsets.pop();
        DenseIdx { offsets, ids }
    }

    fn probe(&self, e: Element) -> &[u32] {
        match self.offsets.get(e as usize..e as usize + 2) {
            Some(&[lo, hi]) => &self.ids[lo as usize..hi as usize],
            _ => &[],
        }
    }
}

/// Immutable world the deletion joins read: the pre-state stores plus
/// position indexes built lazily on first probe. The deletion plan is
/// single-threaded, and most positions are never probed — the fully-bound
/// fast path in [`del_join`] answers bound atoms with hash lookups — so
/// eager all-position builds would cost O(world) per batch for nothing.
struct DelWorld<'a> {
    template: &'a Structure,
    universe: usize,
    edb: &'a [MutableStore],
    idb: &'a [MutableStore],
    edb_idx: Vec<Vec<OnceCell<DenseIdx>>>,
    idb_idx: Vec<Vec<OnceCell<DenseIdx>>>,
}

impl<'a> DelWorld<'a> {
    fn new(template: &'a Structure, edb: &'a [MutableStore], idb: &'a [MutableStore]) -> Self {
        let cells = |store: &TupleStore| -> Vec<OnceCell<DenseIdx>> {
            (0..store.arity()).map(|_| OnceCell::new()).collect()
        };
        DelWorld {
            template,
            universe: template.universe_size(),
            edb,
            idb,
            edb_idx: edb.iter().map(|m| cells(m.store())).collect(),
            idb_idx: idb.iter().map(|m| cells(m.store())).collect(),
        }
    }

    fn store(&self, pred: Pred) -> &TupleStore {
        match pred {
            Pred::Edb(r) => self.edb[r.0].store(),
            Pred::Idb(i) => self.idb[i.0].store(),
        }
    }

    fn index(&self, pred: Pred, pos: usize) -> &DenseIdx {
        let (cell, store) = match pred {
            Pred::Edb(r) => (&self.edb_idx[r.0][pos], self.edb[r.0].store()),
            Pred::Idb(i) => (&self.idb_idx[i.0][pos], self.idb[i.0].store()),
        };
        cell.get_or_init(|| DenseIdx::build(store, pos, self.universe))
    }
}

/// A set of tuple ids over one pre-state store, as a dense bitmap. The
/// deletion joins test membership once per fetched candidate, so this is
/// the hottest structure in the whole deletion plan — a word-indexed bit
/// test beats hashing by an order of magnitude and ids are bounded by the
/// (compacted, contiguous) store length.
#[derive(Clone)]
struct DenseSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseSet {
    fn for_ids(n: usize) -> Self {
        DenseSet {
            words: vec![0; n.div_ceil(64)],
            len: 0,
        }
    }

    fn contains(&self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id % 64);
        self.words.get(w).is_some_and(|word| word >> b & 1 == 1)
    }

    fn insert(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id % 64);
        let fresh = self.words[w] >> b & 1 == 0;
        self.words[w] |= 1 << b;
        self.len += fresh as usize;
        fresh
    }

    fn remove(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id % 64);
        let was = self.words[w] >> b & 1 == 1;
        self.words[w] &= !(1 << b);
        self.len -= was as usize;
        was
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn len(&self) -> usize {
        self.len
    }

    /// All members in increasing id order.
    fn iter_sorted(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word >> b & 1 == 1)
                .map(move |b| (w * 64 + b) as u32)
        })
    }
}

/// The mutating deleted-tuple sets the plan accumulates. Strata are
/// processed in topological order, so by the time a predicate's rules are
/// joined every upstream set is final.
struct DelSets {
    edb_dying: Vec<DenseSet>,
    idb_deleted: Vec<DenseSet>,
}

impl DelSets {
    fn deleted(&self, pred: Pred, id: u32) -> bool {
        match pred {
            Pred::Edb(r) => self.edb_dying[r.0].contains(id),
            Pred::Idb(i) => self.idb_deleted[i.0].contains(id),
        }
    }

    /// The pinned-occurrence candidate list for `pred`, sorted, or `None`
    /// when nothing of that predicate is deleted.
    fn deleted_sorted(&self, pred: Pred) -> Option<Vec<u32>> {
        let set = match pred {
            Pred::Edb(r) => &self.edb_dying[r.0],
            Pred::Idb(i) => &self.idb_deleted[i.0],
        };
        if set.is_empty() {
            return None;
        }
        Some(set.iter_sorted().collect())
    }
}

/// Governor accounting for the deletion pass: worker-local step batching,
/// one probe counted per candidate-source fetch.
struct DelMeter<'a> {
    gov: &'a Governor,
    pending: u64,
    probes: u64,
}

impl<'a> DelMeter<'a> {
    fn charge(&mut self) -> Result<(), Interrupted> {
        self.pending += 1;
        if self.pending >= 64 {
            let n = self.pending;
            self.pending = 0;
            self.gov.step(n)?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), Interrupted> {
        if self.pending > 0 {
            let n = self.pending;
            self.pending = 0;
            self.gov.step(n)?;
        }
        Ok(())
    }
}

fn pre_live(world: &DelWorld<'_>, pred: Pred, id: u32) -> bool {
    match pred {
        // The deletion plan runs before any mutation, so "live now" is
        // the pre-state; EDB tuples marked dying are still live here.
        Pred::Edb(r) => world.edb[r.0].is_live(TupleId(id)),
        Pred::Idb(_) => true,
    }
}

fn filter_ok(world: &DelWorld<'_>, sets: &DelSets, pred: Pred, id: u32, f: DelFilter) -> bool {
    match f {
        DelFilter::Pre => pre_live(world, pred, id),
        DelFilter::Survivor => pre_live(world, pred, id) && !sets.deleted(pred, id),
    }
}

fn resolve(world: &DelWorld<'_>, binding: &[Option<Element>], t: &Term) -> Option<Element> {
    match t {
        Term::Var(v) => binding[v.0],
        Term::Const(c) => Some(world.template.constant(*c)),
    }
}

fn const_eqs_ok(world: &DelWorld<'_>, rule: &CompiledRule) -> bool {
    rule.const_eqs.iter().all(|(a, b)| {
        let val = |t: &Term| match t {
            Term::Var(_) => None,
            Term::Const(c) => Some(world.template.constant(*c)),
        };
        val(a) == val(b)
    })
}

/// Recursive deletion join: binds atoms in `order` (the pinned deleted
/// occurrence first, seeded by `seed`), then enumerates unbound free
/// variables, checks all ≠-constraints, and emits each satisfying head.
/// `emit` returning `true` stops the whole join (existence queries).
///
/// Candidate selection is dynamic — the first resolvable argument position
/// probes its all-position index, otherwise the atom scans — because
/// deleted sets are not id ranges and the static kernels don't apply.
#[allow(clippy::too_many_arguments)]
fn del_join(
    world: &DelWorld<'_>,
    sets: &DelSets,
    m: &mut DelMeter<'_>,
    rule: &CompiledRule,
    order: &[usize],
    filters: &[DelFilter],
    seed: Option<&[u32]>,
    binding: &mut Vec<Option<Element>>,
    depth: usize,
    emit: &mut dyn FnMut(&[Element]) -> bool,
) -> Result<bool, Interrupted> {
    if depth == order.len() {
        return del_free(world, m, rule, 0, binding, emit);
    }
    let ai = order[depth];
    let atom = &rule.atoms[ai];
    let store = world.store(atom.pred);
    m.probes += 1;
    let seed_ids = if depth == 0 { seed } else { None };
    if seed_ids.is_none() {
        // Fully-bound fast path: every argument resolves, so the atom is
        // an existence test — one hash lookup instead of a probe+scan.
        // Dominant in `derivable`, where the head binds all join vars.
        let mut full: Vec<Element> = Vec::with_capacity(atom.args.len());
        if atom
            .args
            .iter()
            .all(|t| resolve(world, binding, t).map(|e| full.push(e)).is_some())
        {
            m.charge()?;
            if let Some(id) = store.lookup(&full) {
                if filter_ok(world, sets, atom.pred, id.0, filters[ai]) {
                    return del_join(
                        world,
                        sets,
                        m,
                        rule,
                        order,
                        filters,
                        seed,
                        binding,
                        depth + 1,
                        emit,
                    );
                }
            }
            return Ok(false);
        }
    }
    let probe = if seed_ids.is_none() {
        atom.args
            .iter()
            .enumerate()
            .find_map(|(p, t)| resolve(world, binding, t).map(|e| (p, e)))
    } else {
        None
    };
    let scan_buf: Vec<u32>;
    let ids: &[u32] = match (seed_ids, probe) {
        (Some(s), _) => s,
        (None, Some((p, e))) => world.index(atom.pred, p).probe(e),
        (None, None) => {
            scan_buf = (0..store.len() as u32).collect();
            &scan_buf
        }
    };
    let mut newly: Vec<VarId> = Vec::new();
    for &id in ids {
        m.charge()?;
        if !filter_ok(world, sets, atom.pred, id, filters[ai]) {
            continue;
        }
        let tuple = store.get(TupleId(id));
        let mut ok = true;
        for (pos, t) in atom.args.iter().enumerate() {
            match t {
                Term::Const(c) => {
                    if world.template.constant(*c) != tuple[pos] {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match binding[v.0] {
                    Some(e) => {
                        if e != tuple[pos] {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        binding[v.0] = Some(tuple[pos]);
                        newly.push(*v);
                    }
                },
            }
        }
        let stop = if ok {
            del_join(
                world,
                sets,
                m,
                rule,
                order,
                filters,
                seed,
                binding,
                depth + 1,
                emit,
            )?
        } else {
            false
        };
        for v in newly.drain(..) {
            binding[v.0] = None;
        }
        if stop {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Enumerates still-unbound free variables (head-bound re-derivation
/// checks arrive with some already fixed), then checks every
/// ≠-constraint and emits the head tuple.
fn del_free(
    world: &DelWorld<'_>,
    m: &mut DelMeter<'_>,
    rule: &CompiledRule,
    fi: usize,
    binding: &mut Vec<Option<Element>>,
    emit: &mut dyn FnMut(&[Element]) -> bool,
) -> Result<bool, Interrupted> {
    if fi == rule.free_vars.len() {
        for (a, b) in &rule.neqs {
            if let (Some(x), Some(y)) = (resolve(world, binding, a), resolve(world, binding, b)) {
                if x == y {
                    return Ok(false);
                }
            }
        }
        let mut head: Vec<Element> = Vec::with_capacity(rule.head_args.len());
        for t in &rule.head_args {
            match resolve(world, binding, t) {
                Some(e) => head.push(e),
                None => {
                    debug_assert!(false, "head variables bound after free enumeration");
                    return Ok(false);
                }
            }
        }
        return Ok(emit(&head));
    }
    let v = rule.free_vars[fi];
    if binding[v.0].is_some() {
        return del_free(world, m, rule, fi + 1, binding, emit);
    }
    for e in 0..world.universe as Element {
        m.charge()?;
        binding[v.0] = Some(e);
        let stop = del_free(world, m, rule, fi + 1, binding, emit)?;
        if stop {
            binding[v.0] = None;
            return Ok(true);
        }
    }
    binding[v.0] = None;
    Ok(false)
}

/// Collects, for one rule and one pinned deleted occurrence `o`, every
/// lost derivation's head id: occurrence `o` ranges over the deleted
/// tuples, earlier occurrences over survivors, later ones over the
/// pre-state — the single-shot partition that enumerates each lost
/// derivation exactly once across all `o`.
#[allow(clippy::too_many_arguments)]
fn lost_heads(
    world: &DelWorld<'_>,
    sets: &DelSets,
    m: &mut DelMeter<'_>,
    rule: &CompiledRule,
    o: usize,
    seed: &[u32],
    out: &mut Vec<u32>,
) -> Result<(), Interrupted> {
    if !const_eqs_ok(world, rule) {
        return Ok(());
    }
    let n = rule.atoms.len();
    let mut order: Vec<usize> = vec![o];
    order.extend((0..n).filter(|&j| j != o));
    let filters: Vec<DelFilter> = (0..n)
        .map(|j| {
            if j < o {
                DelFilter::Survivor
            } else {
                DelFilter::Pre
            }
        })
        .collect();
    let head_store = world.idb[rule.head.0].store();
    let mut binding = vec![None; rule.var_count];
    del_join(
        world,
        sets,
        m,
        rule,
        &order,
        &filters,
        Some(seed),
        &mut binding,
        0,
        &mut |head| {
            match head_store.lookup(head) {
                Some(id) => out.push(id.0),
                // A lost derivation's head was derivable pre-batch, so it
                // is interned; anything else signals count drift.
                None => debug_assert!(false, "lost derivation of an unknown head tuple"),
            }
            false
        },
    )?;
    Ok(())
}

/// Whether `tuple` of predicate `head` is derivable from survivors only
/// (the DRed re-derivation test): head-bound existence join over every
/// rule for `head`.
fn derivable(
    world: &DelWorld<'_>,
    sets: &DelSets,
    m: &mut DelMeter<'_>,
    rules: &[&CompiledRule],
    tuple: &[Element],
) -> Result<bool, Interrupted> {
    'rules: for rule in rules {
        if !const_eqs_ok(world, rule) {
            continue;
        }
        let mut binding = vec![None; rule.var_count];
        for (k, t) in rule.head_args.iter().enumerate() {
            match t {
                Term::Const(c) => {
                    if world.template.constant(*c) != tuple[k] {
                        continue 'rules;
                    }
                }
                Term::Var(v) => match binding[v.0] {
                    Some(e) => {
                        if e != tuple[k] {
                            continue 'rules;
                        }
                    }
                    None => binding[v.0] = Some(tuple[k]),
                },
            }
        }
        let n = rule.atoms.len();
        let order: Vec<usize> = (0..n).collect();
        let filters = vec![DelFilter::Survivor; n];
        let mut found = false;
        del_join(
            world,
            sets,
            m,
            rule,
            &order,
            &filters,
            None,
            &mut binding,
            0,
            &mut |_| {
                found = true;
                true
            },
        )?;
        if found {
            return Ok(true);
        }
    }
    Ok(false)
}

impl IncrementalEngine {
    /// Computes the deletion plan against the pre-state without mutating
    /// anything: EDB deaths from the retract list, then per SCC in
    /// topological stratum order either exact counting (non-recursive) or
    /// DRed overdelete/re-derive (recursive).
    fn plan_deletions(
        &self,
        retracts: &[Fact],
        gov: &Governor,
    ) -> Result<DeletionPlan, Interrupted> {
        let idb_count = self.compiled.idb_arities.len();
        let mut plan = DeletionPlan {
            edb_dying: vec![Vec::new(); self.edb.len()],
            idb_deleted: (0..idb_count)
                .map(|i| DenseSet::for_ids(self.idb[i].len()))
                .collect(),
            support_sub: vec![HashMap::new(); idb_count],
            overdeleted: 0,
            rederived: 0,
            stats: EvalStats::default(),
        };
        // Multiset simulation of the retract list: a tuple dies when the
        // batch retracts at least its current assertion count.
        let mut pending: Vec<HashMap<u32, u32>> = vec![HashMap::new(); self.edb.len()];
        for (r, t) in retracts {
            if let Some(id) = self.edb[r.0].lookup(t) {
                if self.edb[r.0].is_live(id) {
                    *pending[r.0].entry(id.0).or_insert(0) += 1;
                }
            }
        }
        let mut any_dying = false;
        for (r, counts) in pending.into_iter().enumerate() {
            let mut dying: Vec<u32> = counts
                .into_iter()
                .filter(|&(id, c)| self.edb[r].support(TupleId(id)) <= c)
                .map(|(id, _)| id)
                .collect();
            dying.sort_unstable();
            any_dying |= !dying.is_empty();
            plan.edb_dying[r] = dying;
        }
        if !any_dying {
            // Nothing becomes false: skip index builds and joins entirely
            // (the common insert-only batch).
            return Ok(plan);
        }
        gov.check()?;
        let world = DelWorld::new(&self.template, &self.edb, &self.idb);
        let mut sets = DelSets {
            edb_dying: plan
                .edb_dying
                .iter()
                .zip(&self.edb)
                .map(|(v, m)| {
                    let mut set = DenseSet::for_ids(m.len());
                    for &id in v {
                        set.insert(id);
                    }
                    set
                })
                .collect(),
            idb_deleted: (0..idb_count)
                .map(|i| DenseSet::for_ids(self.idb[i].len()))
                .collect(),
        };
        let mut meter = DelMeter {
            gov,
            pending: 0,
            probes: 0,
        };
        let scc = self.compiled.scc_info();
        for c in 0..scc.count() {
            if scc.is_recursive(c) {
                self.dred_component(&world, &mut sets, &mut meter, c, &mut plan)?;
            } else {
                for &p in scc.members(c) {
                    self.count_deletions(&world, &mut sets, &mut meter, p, &mut plan)?;
                }
            }
        }
        meter.flush()?;
        plan.idb_deleted = sets.idb_deleted;
        plan.stats.join_probes = meter.probes;
        Ok(plan)
    }

    /// Exact counting deletion for a non-recursive predicate: accumulate
    /// lost derivation counts over all rules and pinned occurrences, kill
    /// tuples whose support reaches zero.
    fn count_deletions(
        &self,
        world: &DelWorld<'_>,
        sets: &mut DelSets,
        meter: &mut DelMeter<'_>,
        p: usize,
        plan: &mut DeletionPlan,
    ) -> Result<(), Interrupted> {
        let mut lost: HashMap<u32, u32> = HashMap::new();
        let mut heads: Vec<u32> = Vec::new();
        for &ri in &self.rules_by_head[p] {
            let rule = &self.compiled.naive_rules[ri];
            for o in 0..rule.atoms.len() {
                let Some(seed) = sets.deleted_sorted(rule.atoms[o].pred) else {
                    continue;
                };
                heads.clear();
                lost_heads(world, sets, meter, rule, o, &seed, &mut heads)?;
                for &id in &heads {
                    *lost.entry(id).or_insert(0) += 1;
                }
            }
        }
        for (&id, &c) in &lost {
            if self.idb[p].support(TupleId(id)) <= c {
                sets.idb_deleted[p].insert(id);
            }
        }
        plan.support_sub[p] = lost;
        Ok(())
    }

    /// DRed for one recursive SCC: seed the overdeletion from external
    /// deletions, propagate through member occurrences to a fixpoint,
    /// then re-derive overdeleted tuples from survivors until stable.
    fn dred_component(
        &self,
        world: &DelWorld<'_>,
        sets: &mut DelSets,
        meter: &mut DelMeter<'_>,
        c: usize,
        plan: &mut DeletionPlan,
    ) -> Result<(), Interrupted> {
        let scc = self.compiled.scc_info();
        let members: Vec<usize> = scc.members(c).to_vec();
        let member_set: HashSet<usize> = members.iter().copied().collect();
        let mut rules: Vec<usize> = Vec::new();
        for &p in &members {
            rules.extend(self.rules_by_head[p].iter().copied());
        }
        rules.sort_unstable();
        let mut heads: Vec<u32> = Vec::new();
        // Overdelete seed: derivations with at least one externally
        // deleted premise (EDB deaths or finalized earlier strata).
        let mut frontier: HashMap<usize, Vec<u32>> = HashMap::new();
        for &ri in &rules {
            let rule = &self.compiled.naive_rules[ri];
            let head = rule.head.0;
            for (o, atom) in rule.atoms.iter().enumerate() {
                if matches!(atom.pred, Pred::Idb(i) if member_set.contains(&i.0)) {
                    continue;
                }
                let Some(seed) = sets.deleted_sorted(atom.pred) else {
                    continue;
                };
                heads.clear();
                lost_dred(world, sets, meter, rule, o, &seed, &mut heads)?;
                collect_fresh(&mut frontier, &sets.idb_deleted[head], head, &heads);
            }
        }
        let mut overdeleted: Vec<(usize, u32)> = Vec::new();
        while !frontier.is_empty() {
            // Commit this round's overdeletions before propagating.
            let mut round: Vec<(usize, Vec<u32>)> = frontier.drain().collect();
            round.sort_unstable_by_key(|(p, _)| *p);
            for (p, ids) in &round {
                for &id in ids {
                    sets.idb_deleted[*p].insert(id);
                    overdeleted.push((*p, id));
                }
            }
            let mut next: HashMap<usize, Vec<u32>> = HashMap::new();
            for &ri in &rules {
                let rule = &self.compiled.naive_rules[ri];
                let head = rule.head.0;
                for (o, atom) in rule.atoms.iter().enumerate() {
                    let Pred::Idb(i) = atom.pred else { continue };
                    let Some((_, seed)) = round.iter().find(|(p, _)| *p == i.0) else {
                        continue;
                    };
                    if seed.is_empty() {
                        continue;
                    }
                    heads.clear();
                    lost_dred(world, sets, meter, rule, o, seed, &mut heads)?;
                    collect_fresh(&mut next, &sets.idb_deleted[head], head, &heads);
                }
            }
            frontier = next;
        }
        overdeleted.sort_unstable();
        overdeleted.dedup();
        plan.overdeleted += overdeleted.len() as u64;
        // Re-derive: an overdeleted tuple with a surviving derivation
        // comes back, possibly re-enabling others. One head-bound
        // existence pass over the overdeleted set seeds a frontier; after
        // that only delta joins pinned on freshly rederived tuples run, so
        // tuples no rederivation can reach are never rechecked (the naive
        // alternative — rescanning every overdeleted tuple per round —
        // costs rounds × overdeleted and dominates TC-style cascades).
        let rules_of: Vec<Vec<&CompiledRule>> = (0..self.compiled.idb_arities.len())
            .map(|p| {
                self.rules_by_head[p]
                    .iter()
                    .map(|&ri| &self.compiled.naive_rules[ri])
                    .collect()
            })
            .collect();
        let mut frontier: HashMap<usize, Vec<u32>> = HashMap::new();
        for &(p, id) in &overdeleted {
            let tuple = world.idb[p].store().get(TupleId(id)).to_vec();
            // Rederived tuples count as survivors immediately (the
            // iteration order is fixed, so this stays deterministic and
            // only accelerates convergence).
            if derivable(world, sets, meter, &rules_of[p], &tuple)? {
                sets.idb_deleted[p].remove(id);
                plan.rederived += 1;
                frontier.entry(p).or_default().push(id);
            }
        }
        while !frontier.is_empty() {
            let mut round: Vec<(usize, Vec<u32>)> = frontier.drain().collect();
            round.sort_unstable_by_key(|(p, _)| *p);
            for (_, ids) in round.iter_mut() {
                ids.sort_unstable();
            }
            let mut next: HashMap<usize, Vec<u32>> = HashMap::new();
            for &ri in &rules {
                let rule = &self.compiled.naive_rules[ri];
                let head = rule.head.0;
                for (o, atom) in rule.atoms.iter().enumerate() {
                    let Pred::Idb(i) = atom.pred else { continue };
                    let Some((_, seed)) = round.iter().find(|(p, _)| *p == i.0) else {
                        continue;
                    };
                    heads.clear();
                    rederive_heads(world, sets, meter, rule, o, seed, &mut heads)?;
                    for &id in &heads {
                        if sets.idb_deleted[head].remove(id) {
                            plan.rederived += 1;
                            next.entry(head).or_default().push(id);
                        }
                    }
                }
            }
            frontier = next;
        }
        Ok(())
    }
}

/// Rederivation propagation join: the pinned occurrence ranges over
/// freshly rederived tuples, every other occurrence over survivors. Any
/// head it derives is derivable from the post-deletion state.
#[allow(clippy::too_many_arguments)]
fn rederive_heads(
    world: &DelWorld<'_>,
    sets: &DelSets,
    m: &mut DelMeter<'_>,
    rule: &CompiledRule,
    o: usize,
    seed: &[u32],
    out: &mut Vec<u32>,
) -> Result<(), Interrupted> {
    if !const_eqs_ok(world, rule) {
        return Ok(());
    }
    let n = rule.atoms.len();
    let mut order: Vec<usize> = vec![o];
    order.extend((0..n).filter(|&j| j != o));
    let filters = vec![DelFilter::Survivor; n];
    let head_store = world.idb[rule.head.0].store();
    let mut binding = vec![None; rule.var_count];
    del_join(
        world,
        sets,
        m,
        rule,
        &order,
        &filters,
        Some(seed),
        &mut binding,
        0,
        &mut |head| {
            // Deletion shrinks the fixpoint, so every tuple derivable from
            // survivors was derivable pre-batch and is interned; a miss
            // would only mean the head was never derived — skip it.
            if let Some(id) = head_store.lookup(head) {
                out.push(id.0);
            }
            false
        },
    )?;
    Ok(())
}

/// Overdeletion join: like [`lost_heads`] but every non-pinned occurrence
/// reads the pre-state (the over-approximation DRed wants — duplicates
/// across pinned occurrences are fine, re-derivation repairs excess).
#[allow(clippy::too_many_arguments)]
fn lost_dred(
    world: &DelWorld<'_>,
    sets: &DelSets,
    m: &mut DelMeter<'_>,
    rule: &CompiledRule,
    o: usize,
    seed: &[u32],
    out: &mut Vec<u32>,
) -> Result<(), Interrupted> {
    if !const_eqs_ok(world, rule) {
        return Ok(());
    }
    let n = rule.atoms.len();
    let mut order: Vec<usize> = vec![o];
    order.extend((0..n).filter(|&j| j != o));
    let filters = vec![DelFilter::Pre; n];
    let head_store = world.idb[rule.head.0].store();
    let mut binding = vec![None; rule.var_count];
    del_join(
        world,
        sets,
        m,
        rule,
        &order,
        &filters,
        Some(seed),
        &mut binding,
        0,
        &mut |head| {
            if let Some(id) = head_store.lookup(head) {
                out.push(id.0);
            }
            false
        },
    )?;
    Ok(())
}

/// Adds head ids not already marked deleted to `frontier[head]`, sorted
/// and deduplicated (deterministic round order).
fn collect_fresh(
    frontier: &mut HashMap<usize, Vec<u32>>,
    deleted: &DenseSet,
    head: usize,
    heads: &[u32],
) {
    let mut fresh: Vec<u32> = heads
        .iter()
        .copied()
        .filter(|&id| !deleted.contains(id))
        .collect();
    if fresh.is_empty() {
        return;
    }
    fresh.sort_unstable();
    fresh.dedup();
    let entry = frontier.entry(head).or_default();
    entry.extend(fresh);
    entry.sort_unstable();
    entry.dedup();
}

/// Whether a rule variant can derive anything this stage: every atom's
/// window must be non-empty (see the from-scratch loop's sharpened
/// cost-based filter; sound in counting mode because a filtered variant
/// derives nothing and therefore contributes no support).
fn live_rule(
    rule: &CompiledRule,
    edb: &[MutableStore],
    edb_delta_lo: &[u32],
    prev_len: &[u32],
    delta_lo: &[u32],
) -> bool {
    rule.atoms.iter().all(|atom| match atom.pred {
        Pred::Edb(r) => {
            let len = edb[r.0].len() as u32;
            match atom.access {
                IdbAccess::Delta => edb_delta_lo[r.0] < len,
                IdbAccess::Old => edb_delta_lo[r.0] > 0,
                IdbAccess::Full => len > 0,
            }
        }
        Pred::Idb(i) => match atom.access {
            IdbAccess::Delta => delta_lo[i.0] < prev_len[i.0],
            IdbAccess::Old => delta_lo[i.0] > 0,
            IdbAccess::Full => prev_len[i.0] > 0,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::programs;
    use kv_structures::generators::{directed_path, random_digraph};
    use kv_structures::govern::Budget;
    use kv_structures::JoinLowering;

    /// The engine's live IDB sets must equal a from-scratch run over the
    /// engine's own materialized EDB.
    fn assert_matches_scratch(engine: &IncrementalEngine, program: &Program) {
        let scratch = Evaluator::new(program).run(&engine.edb_structure(), engine.options());
        for i in 0..program.idb_count() {
            let live: HashSet<Vec<Element>> = engine
                .idb_store(IdbId(i))
                .live_iter()
                .map(|t| t.to_vec())
                .collect();
            let expect: HashSet<Vec<Element>> = scratch.idb[i].iter().map(|t| t.to_vec()).collect();
            assert_eq!(live, expect, "IDB {} diverged", program.idb_name(IdbId(i)));
        }
    }

    #[test]
    fn initial_batch_matches_scratch_with_stage_identity() {
        let program = programs::transitive_closure();
        let s = directed_path(6);
        let (engine, summary) =
            IncrementalEngine::from_structure(&program, &s, EvalOptions::default());
        assert_matches_scratch(&engine, &program);
        let scratch = Evaluator::new(&program).run(&s, EvalOptions::default());
        let scratch_stages: Vec<Vec<usize>> = scratch
            .stats
            .iter()
            .map(|st| st.new_tuples.clone())
            .collect();
        assert_eq!(summary.stage_new, scratch_stages, "stage identity");
        assert_eq!(summary.delta_tuples, 15);
        assert_eq!(summary.deleted_tuples, 0);
    }

    #[test]
    fn insertions_extend_the_closure() {
        let program = programs::transitive_closure();
        let template = Structure::new(Arc::new(kv_structures::Vocabulary::graph()), 6);
        let mut engine = IncrementalEngine::new(&program, &template, EvalOptions::default());
        let e = RelId(0);
        engine.apply_batch(&[(e, vec![0, 1]), (e, vec![1, 2])], &[]);
        assert_matches_scratch(&engine, &program);
        assert!(engine.goal_contains(&[0, 2]));
        let summary = engine.apply_batch(&[(e, vec![2, 3])], &[]);
        assert!(engine.goal_contains(&[0, 3]));
        assert_eq!(summary.delta_tuples, 3); // (2,3), (1,3), (0,3)
        assert_matches_scratch(&engine, &program);
    }

    #[test]
    fn retraction_uses_dred_on_the_recursive_goal() {
        let program = programs::transitive_closure();
        let g = random_digraph(12, 0.25, 7);
        let s = g.to_structure();
        let (mut engine, _) =
            IncrementalEngine::from_structure(&program, &s, EvalOptions::default());
        let e = RelId(0);
        // Retract a third of the edges, then re-insert one of them.
        let edges: Vec<Vec<Element>> = g.edges().map(|(u, v)| vec![u, v]).collect();
        let retracts: Vec<Fact> = edges.iter().step_by(3).map(|t| (e, t.clone())).collect();
        let summary = engine.apply_batch(&[], &retracts);
        assert!(summary.edb_retracted > 0);
        assert_matches_scratch(&engine, &program);
        engine.apply_batch(&[(e, edges[0].clone())], &[]);
        assert_matches_scratch(&engine, &program);
    }

    #[test]
    fn multiset_assertions_need_matching_retractions() {
        let program = programs::transitive_closure();
        let template = Structure::new(Arc::new(kv_structures::Vocabulary::graph()), 4);
        let mut engine = IncrementalEngine::new(&program, &template, EvalOptions::default());
        let e = RelId(0);
        engine.apply_batch(&[(e, vec![0, 1]), (e, vec![0, 1])], &[]);
        let summary = engine.apply_batch(&[], &[(e, vec![0, 1])]);
        // One assertion remains: nothing becomes false.
        assert_eq!(summary.edb_retracted, 0);
        assert!(engine.goal_contains(&[0, 1]));
        let summary = engine.apply_batch(&[], &[(e, vec![0, 1])]);
        assert_eq!(summary.edb_retracted, 1);
        assert!(!engine.goal_contains(&[0, 1]));
        assert_matches_scratch(&engine, &program);
    }

    #[test]
    fn mixed_batches_match_scratch_across_lowerings() {
        let program = programs::transitive_closure();
        let e = RelId(0);
        for options in [
            EvalOptions::default(),
            EvalOptions::default().with_planner(PlannerMode::CostBased),
            EvalOptions::default()
                .with_planner(PlannerMode::CostBased)
                .with_lowering(JoinLowering::Generic),
        ] {
            let g = random_digraph(10, 0.3, 11);
            let s = g.to_structure();
            let (mut engine, _) = IncrementalEngine::from_structure(&program, &s, options);
            let edges: Vec<Vec<Element>> = g.edges().map(|(u, v)| vec![u, v]).collect();
            // Retract some edges and insert fresh ones in the same batch.
            let retracts: Vec<Fact> = edges.iter().take(4).map(|t| (e, t.clone())).collect();
            let inserts: Vec<Fact> = vec![(e, vec![9, 0]), (e, edges[0].clone())];
            engine.apply_batch(&inserts, &retracts);
            assert_matches_scratch(&engine, &program);
        }
    }

    #[test]
    fn inequality_program_maintains_under_mutation() {
        let program = programs::q_prime();
        let g = random_digraph(8, 0.3, 3);
        let s = g.to_structure();
        let (mut engine, _) =
            IncrementalEngine::from_structure(&program, &s, EvalOptions::default());
        let e = RelId(0);
        let edges: Vec<Vec<Element>> = g.edges().map(|(u, v)| vec![u, v]).collect();
        engine.apply_batch(&[(e, vec![7, 0])], &[(e, edges[1].clone())]);
        assert_matches_scratch(&engine, &program);
    }

    #[test]
    fn interrupted_batches_resume_counter_exact() {
        let program = programs::transitive_closure();
        let g = random_digraph(10, 0.3, 5);
        let s = g.to_structure();
        let e = RelId(0);
        let edges: Vec<Vec<Element>> = g.edges().map(|(u, v)| vec![u, v]).collect();
        let options = EvalOptions::default().with_threads(Some(1));
        let run = |budget: Option<u64>| -> (IncrementalEngine, BatchSummary, u32) {
            let (mut engine, _) = IncrementalEngine::from_structure(&program, &s, options);
            let retracts: Vec<Fact> = edges.iter().take(3).map(|t| (e, t.clone())).collect();
            let inserts: Vec<Fact> = vec![(e, vec![9, 1]), (e, vec![8, 0])];
            let mut resumes = 0u32;
            let summary = match budget {
                None => engine.apply_batch(&inserts, &retracts),
                Some(steps) => {
                    // The deletion phase is all-or-nothing, so resuming with
                    // a budget it can never fit in would livelock; double the
                    // budget on each resume to guarantee progress.
                    let mut budget = steps;
                    let mut gov = Governor::with_budget(Budget::steps(budget));
                    let mut res = engine.try_apply_batch_governed(&inserts, &retracts, &gov);
                    loop {
                        match res {
                            Ok(summary) => break summary,
                            Err(_) => {
                                resumes += 1;
                                assert!(engine.has_pending());
                                budget = budget.saturating_mul(2);
                                gov = Governor::with_budget(Budget::steps(budget));
                                res = engine.resume_batch(&gov);
                            }
                        }
                    }
                }
            };
            (engine, summary, resumes)
        };
        let (straight_engine, straight, _) = run(None);
        for steps in [50u64, 200, 1000] {
            let (engine, summary, resumes) = run(Some(steps));
            if steps == 50 {
                assert!(resumes > 0, "tiny budget must interrupt at least once");
            }
            assert_eq!(summary.eval_stats, straight.eval_stats, "steps={steps}");
            assert_eq!(summary.delta_tuples, straight.delta_tuples);
            assert_eq!(summary.deleted_tuples, straight.deleted_tuples);
            assert_eq!(summary.rederived_tuples, straight.rederived_tuples);
            assert_matches_scratch(&engine, &program);
            for i in 0..program.idb_count() {
                assert!(engine
                    .idb_store(IdbId(i))
                    .store()
                    .set_eq(straight_engine.idb_store(IdbId(i)).store()));
            }
        }
    }

    #[test]
    fn fact_rules_fire_once_and_survive_mutation() {
        let program = programs::two_disjoint_paths_paper_rules();
        let vocab = Arc::new(programs::two_pairs_vocabulary());
        let mut s = Structure::new(Arc::clone(&vocab), 5);
        for c in vocab.constants() {
            s.set_constant(c, 0);
        }
        let e = RelId(0);
        s.insert(e, &[0, 1]);
        s.insert(e, &[1, 2]);
        let (mut engine, _) =
            IncrementalEngine::from_structure(&program, &s, EvalOptions::default());
        assert_matches_scratch(&engine, &program);
        engine.apply_batch(&[(e, vec![2, 3])], &[(e, vec![0, 1])]);
        assert_matches_scratch(&engine, &program);
    }

    #[test]
    fn support_counts_track_exact_derivations() {
        // Diamond: 0->1->3 and 0->2->3 give S(0,3) two derivations via the
        // recursive rule; S is recursive so deletion uses DRed, but the
        // counts are still recorded — check them for plausibility on a
        // non-recursive projection program instead.
        let program = crate::parser::parse_program(
            "P(x) :- E(x, y).\n?- P.",
            Arc::new(kv_structures::Vocabulary::graph()),
        )
        .unwrap();
        let template = Structure::new(Arc::new(kv_structures::Vocabulary::graph()), 4);
        let mut engine = IncrementalEngine::new(&program, &template, EvalOptions::default());
        let e = RelId(0);
        engine.apply_batch(&[(e, vec![0, 1]), (e, vec![0, 2])], &[]);
        let p = engine.idb_store(IdbId(0));
        let id = p.lookup(&[0]).unwrap();
        assert_eq!(p.support(id), 2, "P(0) has two derivations");
        // Removing one edge decrements support; P(0) survives.
        engine.apply_batch(&[], &[(e, vec![0, 1])]);
        let p = engine.idb_store(IdbId(0));
        assert_eq!(p.support(p.lookup(&[0]).unwrap()), 1);
        assert!(engine.goal_contains(&[0]));
        engine.apply_batch(&[], &[(e, vec![0, 2])]);
        assert!(!engine.goal_contains(&[0]));
        assert_matches_scratch(&engine, &program);
    }

    #[test]
    fn deletion_only_batches_are_cheap() {
        let program = programs::transitive_closure();
        let s = directed_path(5);
        let (mut engine, _) =
            IncrementalEngine::from_structure(&program, &s, EvalOptions::default());
        let before = engine.total_stats();
        let summary = engine.apply_batch(&[], &[(RelId(0), vec![3, 4])]);
        assert_eq!(summary.delta_tuples, 0);
        assert_eq!(summary.deleted_tuples, 4); // (3,4),(2,4),(1,4),(0,4)
        assert_matches_scratch(&engine, &program);
        let after = engine.total_stats();
        assert!(after.join_probes - before.join_probes < 200);
    }

    /// Coalescing differential: a churny combined batch must land on the
    /// same EDB support counts and IDB fixpoint as applying the same
    /// inserts and retracts *uncoalesced* — as two separate batches,
    /// which never enter the pair-cancellation path.
    #[test]
    fn coalesced_batches_match_uncoalesced_split() {
        let program = programs::transitive_closure();
        let e = RelId(0);
        let g = random_digraph(9, 0.3, 23);
        let s = g.to_structure();
        let edges: Vec<Vec<Element>> = g.edges().map(|(u, v)| vec![u, v]).collect();
        // A churny batch: retract the first four edges, re-insert two of
        // them, double-insert a fresh edge and retract it once, and
        // retract a fact that is not live at all.
        let inserts: Vec<Fact> = vec![
            (e, edges[0].clone()),
            (e, edges[1].clone()),
            (e, vec![8, 0]),
            (e, vec![8, 0]),
        ];
        let retracts: Vec<Fact> = edges
            .iter()
            .take(4)
            .map(|t| (e, t.clone()))
            .chain([(e, vec![8, 0]), (e, vec![7, 7])])
            .collect();

        let (mut combined, _) =
            IncrementalEngine::from_structure(&program, &s, EvalOptions::default());
        let summary = combined.apply_batch(&inserts, &retracts);
        assert!(summary.coalesced_pairs > 0, "churn must cancel pairs");

        let (mut split, _) =
            IncrementalEngine::from_structure(&program, &s, EvalOptions::default());
        split.apply_batch(&[], &retracts);
        split.apply_batch(&inserts, &[]);

        // Identical live EDB with identical multiset support counts.
        for (mc, ms) in combined.edb_stores().iter().zip(split.edb_stores()) {
            assert_eq!(mc.live_len(), ms.live_len());
            for t in mc.live_iter() {
                let sup_c = mc.support(mc.lookup(t).expect("live tuple"));
                let sup_s = ms.support(ms.lookup(t).expect("coalesced-only tuple"));
                assert_eq!(sup_c, sup_s, "support of {t:?} diverged");
            }
        }
        // Identical IDB fixpoint, and both match scratch.
        for i in 0..program.idb_count() {
            let a: HashSet<Vec<Element>> = combined
                .idb_store(IdbId(i))
                .live_iter()
                .map(|t| t.to_vec())
                .collect();
            let b: HashSet<Vec<Element>> = split
                .idb_store(IdbId(i))
                .live_iter()
                .map(|t| t.to_vec())
                .collect();
            assert_eq!(a, b, "IDB {i} diverged");
        }
        assert_matches_scratch(&combined, &program);
    }

    /// A batch whose inserts and retracts fully cancel must not touch
    /// the IDB at all: no deletions planned, no delta derived.
    #[test]
    fn fully_cancelling_batch_is_a_no_op() {
        let program = programs::transitive_closure();
        let s = directed_path(6);
        let (mut engine, _) =
            IncrementalEngine::from_structure(&program, &s, EvalOptions::default());
        let e = RelId(0);
        let before = engine.total_stats();
        let summary = engine.apply_batch(
            &[(e, vec![2, 3]), (e, vec![4, 5])],
            &[(e, vec![2, 3]), (e, vec![4, 5])],
        );
        assert_eq!(summary.coalesced_pairs, 2);
        assert_eq!(summary.edb_inserted, 0);
        assert_eq!(summary.edb_retracted, 0);
        assert_eq!(summary.delta_tuples, 0);
        assert_eq!(summary.deleted_tuples, 0);
        let after = engine.total_stats();
        assert_eq!(
            after.join_probes, before.join_probes,
            "a cancelled batch must not plan any joins"
        );
        assert_matches_scratch(&engine, &program);
    }

    /// Retracts of facts that are not live are dropped by the `r' =
    /// min(r, s)` rule; the insert in the same batch must still land.
    #[test]
    fn phantom_retracts_are_dropped_not_paired() {
        let program = programs::transitive_closure();
        let template = Structure::new(Arc::new(kv_structures::Vocabulary::graph()), 4);
        let mut engine = IncrementalEngine::new(&program, &template, EvalOptions::default());
        let e = RelId(0);
        // (0,1) is not live: its retract is a no-op, NOT a cancellation
        // of the insert — support must end at 1, not 0.
        let summary = engine.apply_batch(&[(e, vec![0, 1])], &[(e, vec![0, 1])]);
        assert_eq!(summary.coalesced_pairs, 1, "the phantom retract is dropped");
        assert_eq!(summary.edb_inserted, 1);
        assert!(engine.goal_contains(&[0, 1]));
        assert_matches_scratch(&engine, &program);
    }
}
