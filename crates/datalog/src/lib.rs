//! Datalog(≠): the query language of the paper (Section 2).
//!
//! A Datalog(≠) program is a finite set of rules
//!
//! ```text
//! t0 :- t1, t2, …, tl.
//! ```
//!
//! whose head is an atomic formula over an IDB predicate and whose body
//! literals are atomic formulas (over EDB or IDB predicates), equalities
//! `x = y`, or inequalities `x != y`. Negated atoms are not allowed. Plain
//! Datalog is the fragment without `=`/`≠`.
//!
//! Semantics ([`eval`]) are the least fixpoint of the monotone operator
//! `Θ_A` induced by the rules, computed bottom-up either naively (the
//! paper's stage iteration `Θ¹ ⊆ Θ² ⊆ …`) or by semi-naive evaluation;
//! both produce identical stages, which the `kv-logic` crate consumes for
//! the Theorem 3.6 stage-formula translation.
//!
//! An important paper-faithful detail: rules need not be range-restricted.
//! A head variable that occurs in no body atom (such as `w` in the first
//! rule of Example 2.1's program) ranges over the **entire universe** of the
//! input structure, filtered by the rule's (in)equalities.
//!
//! Goal-directed queries (one distinguished tuple rather than the whole
//! goal relation) can skip most of that fixpoint: the [`magic`] module
//! rewrites a program for a binding pattern so that semi-naive evaluation,
//! seeded with the query's bound values
//! ([`CompiledProgram::try_run_seeded`]), derives only goal-relevant
//! tuples.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
// Interrupt errors deliberately carry the resumable checkpoint inline; they
// are cold-path values, so the large `Err` variants are intentional.
#![allow(clippy::result_large_err)]

pub mod ast;
pub mod durable;
pub mod eval;
pub mod incremental;
pub mod magic;
pub mod monotone;
pub mod parser;
pub mod planner;
pub mod program;
pub mod programs;
pub mod sharded;
pub(crate) mod wcoj;

pub use ast::{IdbId, Literal, Pred, Rule, Term, VarId};
pub use durable::{
    CrashPoint, DurabilityOptions, DurableBatchError, DurableEngine, FlushStats, RecoveryReport,
};
pub use eval::{
    CompiledProgram, EvalCheckpoint, EvalInterrupted, EvalOptions, EvalResult, Evaluator,
    StageStats,
};
pub use incremental::{BatchInterrupted, BatchSummary, Fact, IncrementalEngine};
pub use kv_structures::RecoveryError;
pub use kv_structures::{
    Budget, CancelToken, Deadline, EvalStats, Governor, Interrupted, JoinLowering, LimitExceeded,
    Limits, PlannerMode,
};
pub use magic::{BindingPattern, MagicProgram};
pub use parser::{parse_program, parse_program_strict, ParseError};
pub use planner::SccInfo;
pub use program::{Program, ProgramError};
pub use sharded::ShardStats;
