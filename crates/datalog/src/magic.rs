//! Magic-set rewriting for Datalog(≠): demand-driven evaluation.
//!
//! The paper's queries are goal-directed — the FHW queries of Section 6 ask
//! whether one distinguished tuple `(s, t)` is in the goal relation — yet
//! bottom-up evaluation saturates the entire IDB. The classic remedy is the
//! *magic-set* transformation: adorn every IDB predicate with a binding
//! pattern recording which argument positions arrive bound from the query,
//! and guard every rule with a *magic* predicate that enumerates exactly the
//! bindings the query can demand. Semi-naive evaluation of the rewritten
//! program then derives only goal-relevant tuples.
//!
//! # Sideways information passing with `=` and `≠`
//!
//! Binding propagates through a rule body left to right. We maintain a
//! union-find over the rule's variables in which a class is *bound* when it
//! contains a constant or a variable already known to be bound:
//!
//! - head variables at bound positions of the head adornment start bound;
//! - an atom (EDB or IDB) binds all of its argument variables once it has
//!   been evaluated — an IDB atom's *own* adornment is computed from the
//!   state just before it;
//! - `x = y` merges the two classes (bound if either side is);
//! - `x ≠ y` binds nothing — it is a filter, never a generator.
//!
//! Variables that end up in no atom and unbound (the engine enumerates
//! these over the whole universe) are simply *free* positions of the
//! adornments they reach; the rewrite stays correct because adorned rules
//! are the original rules plus one extra magic guard, so the engine's
//! enumeration semantics are untouched.
//!
//! # Shape of the rewrite
//!
//! For every reachable adorned predicate `p^α` the rewritten program has
//! an IDB `p_α` (same arity as `p`) and a magic IDB `M_p_α` whose arity is
//! the number of bound positions of `α`. Each source rule
//! `p(t̄) :- L₁, …, Lₙ` contributes
//!
//! - the *adorned rule* `p_α(t̄) :- M_p_α(t̄|α), L₁', …, Lₙ'`, where `t̄|α`
//!   projects the head arguments to the bound positions and `Lᵢ'` replaces
//!   IDB atoms by their adorned versions;
//! - for the `i`-th body literal, when it is an IDB atom `q(ū)` with
//!   derived adornment `β`, the *magic rule*
//!   `M_q_β(ū|β) :- M_p_α(t̄|α), L₁', …, Lᵢ₋₁'`.
//!
//! At evaluation time the magic goal predicate is *seeded* with the query's
//! bound values (see [`MagicProgram::seed`] and
//! [`crate::CompiledProgram::try_run_seeded`]); no other facts are assumed.
//! The classical soundness/completeness argument (answers of the rewritten
//! program restricted to the query's bound values coincide with the answers
//! of the original program) goes through verbatim for Datalog(≠): `≠` and
//! `=` literals are carried into the adorned rules and magic-rule prefixes
//! unchanged and are satisfied by the same variable assignments, and magic
//! predicates only ever *restrict* rule applicability, never enable a new
//! derivation. See DESIGN.md §6 for the full argument.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{IdbId, Literal, Pred, Rule, Term, VarId};
use crate::eval::CompiledProgram;
use crate::program::{Program, ProgramError};
use kv_structures::Element;

/// A bound/free binding pattern ("adornment") for a goal predicate.
///
/// Rendered in the classical notation: `"bf"` means first position bound,
/// second free.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BindingPattern(Vec<bool>);

impl BindingPattern {
    /// A pattern from per-position bound flags.
    pub fn new(bound: Vec<bool>) -> Self {
        Self(bound)
    }

    /// All positions bound (the shape of an `(s, t)`-style boolean query).
    pub fn all_bound(arity: usize) -> Self {
        Self(vec![true; arity])
    }

    /// All positions free (full saturation).
    pub fn all_free(arity: usize) -> Self {
        Self(vec![false; arity])
    }

    /// Parses the classical `"bf"` notation. Returns `None` on any
    /// character other than `b`/`f`.
    pub fn parse(s: &str) -> Option<Self> {
        s.chars()
            .map(|c| match c {
                'b' => Some(true),
                'f' => Some(false),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()
            .map(Self)
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the pattern has no positions (nullary goal).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether position `i` is bound.
    pub fn is_bound(&self, i: usize) -> bool {
        self.0[i]
    }

    /// Number of bound positions.
    pub fn bound_count(&self) -> usize {
        self.0.iter().filter(|&&b| b).count()
    }

    /// Indices of the bound positions, ascending.
    pub fn bound_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
    }

    /// The per-position flags.
    pub fn as_flags(&self) -> &[bool] {
        &self.0
    }
}

impl fmt::Display for BindingPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.0 {
            f.write_str(if b { "b" } else { "f" })?;
        }
        Ok(())
    }
}

/// Union-find over a rule's variables tracking which classes are bound.
struct Boundness {
    parent: Vec<usize>,
    bound: Vec<bool>,
}

impl Boundness {
    fn new(vars: usize) -> Self {
        Self {
            parent: (0..vars).collect(),
            bound: vec![false; vars],
        }
    }

    fn find(&mut self, mut v: usize) -> usize {
        while self.parent[v] != v {
            self.parent[v] = self.parent[self.parent[v]];
            v = self.parent[v];
        }
        v
    }

    fn term_bound(&mut self, t: &Term) -> bool {
        match t {
            Term::Const(_) => true,
            Term::Var(VarId(v)) => {
                let r = self.find(*v);
                self.bound[r]
            }
        }
    }

    fn bind_term(&mut self, t: &Term) {
        if let Term::Var(VarId(v)) = t {
            let r = self.find(*v);
            self.bound[r] = true;
        }
    }

    /// `x = y`: merge classes; the merged class is bound if either side
    /// was (or either side is a constant).
    fn equate(&mut self, a: &Term, b: &Term) {
        match (a, b) {
            (Term::Var(VarId(x)), Term::Var(VarId(y))) => {
                let (rx, ry) = (self.find(*x), self.find(*y));
                if rx != ry {
                    let joint = self.bound[rx] || self.bound[ry];
                    self.parent[rx] = ry;
                    self.bound[ry] = joint;
                }
            }
            (Term::Var(_), Term::Const(_)) => self.bind_term(a),
            (Term::Const(_), Term::Var(_)) => self.bind_term(b),
            (Term::Const(_), Term::Const(_)) => {}
        }
    }
}

/// A magic-set rewritten program, ready to compile and run against seeds.
#[derive(Debug, Clone)]
pub struct MagicProgram {
    program: Program,
    pattern: BindingPattern,
    /// Per-IDB flag of the rewritten program: `true` for magic predicates.
    magic_flags: Vec<bool>,
    /// The magic predicate guarding the adorned goal — the one to seed.
    magic_goal: IdbId,
}

impl MagicProgram {
    /// Rewrites `source` for a query on its goal predicate with the given
    /// binding pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len()` differs from the goal arity.
    pub fn rewrite(source: &Program, pattern: &BindingPattern) -> Result<Self, ProgramError> {
        let goal_arity = source.idb_arity(source.goal());
        assert_eq!(
            pattern.len(),
            goal_arity,
            "binding pattern arity {} != goal arity {goal_arity}",
            pattern.len()
        );

        let mut rewriter = Rewriter::new(source);
        rewriter.discover(source.goal(), pattern.as_flags().to_vec());
        // Worklist: process each adorned predicate once, in discovery
        // order; processing may discover further adornments.
        let mut next = 0;
        while next < rewriter.pairs.len() {
            rewriter.process(next);
            next += 1;
        }

        let Rewriter {
            idbs, rules, flags, ..
        } = rewriter;
        let program = Program::new(source.vocabulary().clone(), idbs, rules, IdbId(0))?;
        Ok(Self {
            program,
            pattern: pattern.clone(),
            magic_flags: flags,
            magic_goal: IdbId(1),
        })
    }

    /// The rewritten program. Its goal is the adorned goal predicate.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The binding pattern this rewrite was specialized for.
    pub fn pattern(&self) -> &BindingPattern {
        &self.pattern
    }

    /// The adorned goal predicate (same arity as the source goal).
    pub fn goal(&self) -> IdbId {
        self.program.goal()
    }

    /// The magic predicate to seed with the query's bound values.
    pub fn magic_goal(&self) -> IdbId {
        self.magic_goal
    }

    /// Per-IDB magic flags of the rewritten program.
    pub fn magic_flags(&self) -> &[bool] {
        &self.magic_flags
    }

    /// Projects a full query tuple to the seed fact for
    /// [`MagicProgram::magic_goal`]: the values at bound positions.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the goal arity.
    pub fn seed(&self, query: &[Element]) -> Vec<Element> {
        assert_eq!(query.len(), self.pattern.len(), "query arity mismatch");
        self.pattern.bound_positions().map(|i| query[i]).collect()
    }

    /// Compiles the rewritten program with magic predicates marked, so the
    /// evaluator attributes their probes to
    /// [`kv_structures::EvalStats::magic_probes`].
    pub fn compile(&self) -> CompiledProgram {
        CompiledProgram::compile_with_magic(&self.program, &self.magic_flags)
    }
}

/// Working state of one rewrite.
struct Rewriter<'p> {
    source: &'p Program,
    /// Discovered (source idb, adornment) pairs in discovery order. Pair
    /// `i` owns IDBs `2i` (adorned) and `2i + 1` (magic).
    pairs: Vec<(IdbId, Vec<bool>)>,
    pair_index: HashMap<(IdbId, Vec<bool>), usize>,
    idbs: Vec<(String, usize)>,
    flags: Vec<bool>,
    rules: Vec<Rule>,
}

impl<'p> Rewriter<'p> {
    fn new(source: &'p Program) -> Self {
        Self {
            source,
            pairs: Vec::new(),
            pair_index: HashMap::new(),
            idbs: Vec::new(),
            flags: Vec::new(),
            rules: Vec::new(),
        }
    }

    /// Interns an adorned predicate, allocating its adorned + magic IDBs
    /// on first sight, and returns its pair index.
    fn discover(&mut self, idb: IdbId, adornment: Vec<bool>) -> usize {
        if let Some(&i) = self.pair_index.get(&(idb, adornment.clone())) {
            return i;
        }
        let i = self.pairs.len();
        self.pair_index.insert((idb, adornment.clone()), i);

        let pat: String = adornment
            .iter()
            .map(|&b| if b { 'b' } else { 'f' })
            .collect();
        let base = self.source.idb_name(idb);
        let arity = self.source.idb_arity(idb);
        let adorned_name = self.uniquify(format!("{base}_{pat}"));
        self.idbs.push((adorned_name, arity));
        self.flags.push(false);
        let magic_name = self.uniquify(format!("M_{base}_{pat}"));
        let magic_arity = adornment.iter().filter(|&&b| b).count();
        self.idbs.push((magic_name, magic_arity));
        self.flags.push(true);

        self.pairs.push((idb, adornment));
        i
    }

    /// Defends generated names against clashes with EDB relation names (a
    /// source IDB could legitimately be called `M_S_bb`).
    fn uniquify(&self, mut name: String) -> String {
        while self.source.vocabulary().relation_by_name(&name).is_some()
            || self.idbs.iter().any(|(n, _)| *n == name)
        {
            name.push('_');
        }
        name
    }

    fn adorned_id(i: usize) -> IdbId {
        IdbId(2 * i)
    }

    fn magic_id(i: usize) -> IdbId {
        IdbId(2 * i + 1)
    }

    /// Generates the adorned rule and the magic rules for every source
    /// rule whose head is pair `i`'s predicate.
    fn process(&mut self, i: usize) {
        let (head, adornment) = self.pairs[i].clone();
        for ri in 0..self.source.rules().len() {
            if self.source.rules()[ri].head == head {
                self.rewrite_rule(i, &adornment, ri);
            }
        }
    }

    fn rewrite_rule(&mut self, pair: usize, adornment: &[bool], ri: usize) {
        let rule = self.source.rules()[ri].clone();
        let magic_head_args: Vec<Term> = adornment
            .iter()
            .zip(&rule.head_args)
            .filter(|&(&b, _)| b)
            .map(|(_, &t)| t)
            .collect();
        let guard = Literal::Atom(Pred::Idb(Self::magic_id(pair)), magic_head_args);

        // Left-to-right boundness pass: derive each IDB occurrence's
        // adornment and build the adorned body as we go.
        let mut bind = Boundness::new(rule.var_count());
        for (pos, t) in rule.head_args.iter().enumerate() {
            if adornment[pos] {
                bind.bind_term(t);
            }
        }
        let mut adorned_body: Vec<Literal> = vec![guard.clone()];
        for lit in &rule.body {
            match lit {
                Literal::Atom(Pred::Idb(q), args) => {
                    let beta: Vec<bool> = args.iter().map(|t| bind.term_bound(t)).collect();
                    let sub = self.discover(*q, beta.clone());
                    // Magic rule: demand on q's bound values, justified by
                    // the guard plus the (adorned) prefix evaluated so far.
                    let magic_args: Vec<Term> = beta
                        .iter()
                        .zip(args)
                        .filter(|&(&b, _)| b)
                        .map(|(_, &t)| t)
                        .collect();
                    self.rules.push(Rule {
                        head: Self::magic_id(sub),
                        head_args: magic_args,
                        body: adorned_body.clone(),
                        var_names: rule.var_names.clone(),
                    });
                    adorned_body.push(Literal::Atom(
                        Pred::Idb(Self::adorned_id(sub)),
                        args.clone(),
                    ));
                    for t in args {
                        bind.bind_term(t);
                    }
                }
                Literal::Atom(p @ Pred::Edb(_), args) => {
                    adorned_body.push(Literal::Atom(*p, args.clone()));
                    for t in args {
                        bind.bind_term(t);
                    }
                }
                Literal::Eq(a, b) => {
                    bind.equate(a, b);
                    adorned_body.push(lit.clone());
                }
                Literal::Neq(_, _) => adorned_body.push(lit.clone()),
            }
        }
        self.rules.push(Rule {
            head: Self::adorned_id(pair),
            head_args: rule.head_args,
            body: adorned_body,
            var_names: rule.var_names,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{EvalOptions, Evaluator};
    use crate::programs;
    use kv_structures::generators::{directed_path, random_digraph};
    use kv_structures::Structure;

    /// Runs the rewritten program seeded with `query`'s bound values and
    /// asserts selection equality: tuples of the full-saturation goal that
    /// agree with `query` on bound positions == such tuples of the adorned
    /// goal.
    fn assert_demand_matches_full(
        program: &crate::Program,
        s: &Structure,
        pattern: &BindingPattern,
        query: &[kv_structures::Element],
    ) {
        let full = Evaluator::new(program).run(s, EvalOptions::default());
        let full_goal = &full.idb[program.goal().0];
        let magic = MagicProgram::rewrite(program, pattern).unwrap();
        let compiled = magic.compile();
        let seeds = vec![(magic.magic_goal(), magic.seed(query))];
        let demand = compiled
            .try_run_seeded(s, EvalOptions::default(), &seeds)
            .unwrap();
        let demand_goal = &demand.idb[magic.goal().0];
        let matches =
            |t: &[kv_structures::Element]| pattern.bound_positions().all(|i| t[i] == query[i]);
        for t in full_goal.iter().filter(|t| matches(t)) {
            assert!(
                demand_goal.contains(t),
                "demand missed {t:?} (pattern {pattern}, query {query:?})"
            );
        }
        for t in demand_goal.iter().filter(|t| matches(t)) {
            assert!(
                full_goal.contains(t),
                "demand over-derived {t:?} (pattern {pattern}, query {query:?})"
            );
        }
    }

    #[test]
    fn tc_bb_demand_equals_full_on_paths_and_digraphs() {
        let tc = programs::transitive_closure();
        let bb = BindingPattern::all_bound(2);
        let s = directed_path(7);
        for (a, b) in [(0u32, 6u32), (6, 0), (2, 5), (3, 3)] {
            assert_demand_matches_full(&tc, &s, &bb, &[a, b]);
        }
        let g = random_digraph(10, 0.2, 11).to_structure();
        for (a, b) in [(0u32, 9u32), (4, 2), (7, 7)] {
            assert_demand_matches_full(&tc, &g, &bb, &[a, b]);
        }
    }

    #[test]
    fn tc_partial_patterns_demand_equals_full() {
        let tc = programs::transitive_closure();
        let s = random_digraph(9, 0.22, 13).to_structure();
        for pat in ["bf", "fb", "ff"] {
            let pattern = BindingPattern::parse(pat).unwrap();
            assert_demand_matches_full(&tc, &s, &pattern, &[2, 6]);
        }
    }

    #[test]
    fn avoiding_path_bbb_demand_equals_full() {
        let ap = programs::avoiding_path();
        let s = random_digraph(8, 0.25, 17).to_structure();
        let bbb = BindingPattern::all_bound(3);
        for q in [[0u32, 5, 3], [1, 7, 0], [2, 2, 4]] {
            assert_demand_matches_full(&ap, &s, &bbb, &q);
        }
    }

    #[test]
    fn demand_derives_fewer_tuples_on_bounded_tc_query() {
        let tc = programs::transitive_closure();
        let s = directed_path(20);
        let full = Evaluator::new(&tc).run(&s, EvalOptions::default());
        let full_tuples: usize = full.idb.iter().map(|r| r.len()).sum();
        let magic = MagicProgram::rewrite(&tc, &BindingPattern::all_bound(2)).unwrap();
        let compiled = magic.compile();
        let seeds = vec![(magic.magic_goal(), magic.seed(&[17, 19]))];
        let demand = compiled
            .try_run_seeded(&s, EvalOptions::default(), &seeds)
            .unwrap();
        let demand_tuples: usize = demand.idb.iter().map(|r| r.len()).sum();
        assert!(demand.idb[magic.goal().0].contains(&[17u32, 19][..]));
        assert!(
            demand_tuples * 2 <= full_tuples,
            "demand {demand_tuples} vs full {full_tuples}"
        );
        // Magic guard probes are attributed separately and do not leak
        // into join_probes.
        assert!(demand.eval_stats.magic_probes > 0);
        assert_eq!(full.eval_stats.magic_probes, 0);
    }

    #[test]
    fn seeded_run_composes_with_parallel_and_sequential() {
        let tc = programs::transitive_closure();
        let s = random_digraph(12, 0.18, 29).to_structure();
        let magic = MagicProgram::rewrite(&tc, &BindingPattern::all_bound(2)).unwrap();
        let compiled = magic.compile();
        let seeds = vec![(magic.magic_goal(), magic.seed(&[0, 11]))];
        let par = compiled
            .try_run_seeded(&s, EvalOptions::default(), &seeds)
            .unwrap();
        let seq = compiled
            .try_run_seeded(
                &s,
                EvalOptions {
                    parallel: false,
                    ..EvalOptions::default()
                },
                &seeds,
            )
            .unwrap();
        assert_eq!(par.idb, seq.idb);
        assert_eq!(par.eval_stats, seq.eval_stats);
        assert!(par.same_stages(&seq));
    }

    #[test]
    fn seeded_run_composes_with_cost_based_planner() {
        use kv_structures::PlannerMode;
        // The planner reorders atoms of the *adorned* program (magic
        // rewriting first, planning second); every stage must still match
        // the textual order, for every binding pattern of the goal.
        let tc = programs::transitive_closure();
        let s = random_digraph(12, 0.18, 29).to_structure();
        for pattern in ["bb", "bf", "fb", "ff"] {
            let pattern = BindingPattern::parse(pattern).unwrap();
            let magic = MagicProgram::rewrite(&tc, &pattern).unwrap();
            let compiled = magic.compile();
            let seeds = vec![(magic.magic_goal(), magic.seed(&[0, 11]))];
            let textual = compiled
                .try_run_seeded(&s, EvalOptions::default(), &seeds)
                .unwrap();
            let planned = compiled
                .try_run_seeded(
                    &s,
                    EvalOptions::default().with_planner(PlannerMode::CostBased),
                    &seeds,
                )
                .unwrap();
            assert_eq!(textual.idb, planned.idb, "pattern {pattern}");
            assert!(textual.same_stages(&planned), "pattern {pattern}");
            assert!(
                planned.eval_stats.join_probes <= textual.eval_stats.join_probes,
                "pattern {pattern}: planned probes must not regress"
            );
        }
    }

    #[test]
    fn binding_pattern_basics() {
        let p = BindingPattern::parse("bfb").unwrap();
        assert_eq!(p.len(), 3);
        assert!(p.is_bound(0) && !p.is_bound(1) && p.is_bound(2));
        assert_eq!(p.bound_count(), 2);
        assert_eq!(p.bound_positions().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(p.to_string(), "bfb");
        assert!(BindingPattern::parse("bx").is_none());
        assert_eq!(BindingPattern::all_bound(2).to_string(), "bb");
        assert_eq!(BindingPattern::all_free(2).to_string(), "ff");
    }

    #[test]
    fn transitive_closure_bb_rewrite_shape() {
        let tc = programs::transitive_closure();
        let magic = MagicProgram::rewrite(&tc, &BindingPattern::all_bound(2)).unwrap();
        let p = magic.program();
        // One reachable adornment S^bb: S_bb + M_S_bb.
        assert_eq!(p.idb_count(), 2);
        assert_eq!(p.idb_name(magic.goal()), "S_bb");
        assert_eq!(p.idb_name(magic.magic_goal()), "M_S_bb");
        assert_eq!(p.idb_arity(magic.magic_goal()), 2);
        assert_eq!(magic.magic_flags(), &[false, true]);
        // TC has two rules; the recursive one has one IDB occurrence, so:
        // 2 adorned rules + 1 magic rule.
        assert_eq!(p.rules().len(), 3);
        assert_eq!(magic.seed(&[4, 7]), vec![4, 7]);
    }

    #[test]
    fn transitive_closure_bf_magic_is_unary() {
        let tc = programs::transitive_closure();
        let magic = MagicProgram::rewrite(&tc, &BindingPattern::parse("bf").unwrap()).unwrap();
        let p = magic.program();
        assert_eq!(p.idb_arity(magic.magic_goal()), 1);
        assert_eq!(magic.seed(&[4, 7]), vec![4]);
    }

    #[test]
    fn all_free_pattern_gives_nullary_magic() {
        let tc = programs::transitive_closure();
        let magic = MagicProgram::rewrite(&tc, &BindingPattern::all_free(2)).unwrap();
        assert_eq!(magic.program().idb_arity(magic.magic_goal()), 0);
        assert_eq!(magic.seed(&[4, 7]), Vec::<Element>::new());
    }

    #[test]
    fn avoiding_path_keeps_inequalities() {
        let ap = programs::avoiding_path();
        let magic = MagicProgram::rewrite(&ap, &BindingPattern::all_bound(3)).unwrap();
        // Inequality literals must survive into the rewritten rules.
        assert!(magic.program().rules().iter().any(Rule::uses_inequality));
        // Every rule is guarded by a magic atom in first body position.
        for rule in magic.program().rules() {
            let first = rule.body.first().expect("non-empty body");
            match first {
                Literal::Atom(Pred::Idb(id), _) => {
                    assert!(magic.magic_flags()[id.0], "first literal must be magic")
                }
                other => panic!("expected magic guard, got {other:?}"),
            }
        }
    }

    #[test]
    fn q_prime_discovers_nested_adornments() {
        let qp = programs::q_prime();
        let magic = MagicProgram::rewrite(&qp, &BindingPattern::all_bound(3)).unwrap();
        // Qp's rules call T, so at least Qp^bbb and one T adornment exist.
        assert!(magic.program().idb_count() >= 4);
        let names: Vec<&str> = (0..magic.program().idb_count())
            .map(|i| magic.program().idb_name(IdbId(i)))
            .collect();
        assert!(names.contains(&"Qp_bbb"));
        assert!(names.iter().any(|n| n.starts_with("T_")));
    }

    #[test]
    #[should_panic(expected = "binding pattern arity")]
    fn pattern_arity_mismatch_panics() {
        let tc = programs::transitive_closure();
        let _ = MagicProgram::rewrite(&tc, &BindingPattern::all_bound(3));
    }
}
