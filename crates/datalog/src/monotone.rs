//! Empirical monotonicity checks (Section 1 / Section 2 discussion).
//!
//! Datalog(≠) programs compute *monotone* queries: preserved when tuples or
//! fresh elements are added. Datalog programs compute *strongly monotone*
//! queries: additionally preserved when elements of the universe are
//! identified (collapsed). These checkers verify the containments on
//! concrete structure pairs and hunt for counterexamples; experiment E2
//! uses them to separate the two notions on Example 2.1's query.

use crate::eval::Evaluator;
use crate::program::Program;
use kv_structures::{quotient, Element, Structure, Tuple};

/// Verifies that `small`'s relations are contained in `big`'s (tuplewise)
/// and `small`'s universe is an initial segment of `big`'s, i.e. `big`
/// extends `small` in the sense of monotonicity.
pub fn is_extension(small: &Structure, big: &Structure) -> bool {
    if small.vocabulary() != big.vocabulary() {
        return false;
    }
    if small.universe_size() > big.universe_size() {
        return false;
    }
    if small.constant_values() != big.constant_values() {
        return false;
    }
    small
        .vocabulary()
        .relations()
        .all(|r| small.relation(r).iter().all(|t| big.contains(r, t)))
}

/// Checks monotonicity on one extension pair: every goal tuple of `small`
/// must be a goal tuple of `big`. Returns the first violating tuple.
///
/// # Panics
/// Panics if `big` does not extend `small`.
pub fn extension_preserved(
    program: &Program,
    small: &Structure,
    big: &Structure,
) -> Result<(), Tuple> {
    assert!(is_extension(small, big), "big must extend small");
    let goal_small = Evaluator::new(program).goal(small);
    let goal_big = Evaluator::new(program).goal(big);
    for t in goal_small.iter() {
        if !goal_big.contains(t) {
            return Err(Tuple::from(t));
        }
    }
    Ok(())
}

/// Checks strong monotonicity under identification: for every goal tuple
/// `a` of `s`, the classwise image of `a` must be a goal tuple of the
/// quotient `s / class_of`. Returns the first violating (original) tuple.
pub fn identification_preserved(
    program: &Program,
    s: &Structure,
    class_of: &[Element],
) -> Result<(), Tuple> {
    let q = quotient(s, class_of);
    let goal_s = Evaluator::new(program).goal(s);
    let goal_q = Evaluator::new(program).goal(&q);
    for t in goal_s.iter() {
        let image: Vec<Element> = t.iter().map(|&e| class_of[e as usize]).collect();
        if !goal_q.contains(image.as_slice()) {
            return Err(Tuple::from(t));
        }
    }
    Ok(())
}

/// Exhaustively searches all ways of identifying exactly one pair of
/// elements of `s` for a strong-monotonicity violation. Returns
/// `Some((merged_a, merged_b, witness_tuple))` for the first violation.
pub fn find_identification_counterexample(
    program: &Program,
    s: &Structure,
) -> Option<(Element, Element, Tuple)> {
    let n = s.universe_size();
    for a in 0..n as Element {
        for b in (a + 1)..n as Element {
            // Merge b into a; renumber to keep classes contiguous.
            let class_of: Vec<Element> = (0..n as Element)
                .map(|e| {
                    if e == b {
                        a
                    } else if e > b {
                        e - 1
                    } else {
                        e
                    }
                })
                .collect();
            if let Err(t) = identification_preserved(program, s, &class_of) {
                return Some((a, b, t));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{avoiding_path, transitive_closure};
    use kv_structures::generators::{directed_path, random_digraph};
    use kv_structures::RelId;

    #[test]
    fn tc_is_monotone_under_extension() {
        let p = transitive_closure();
        for seed in 0..5 {
            let g = random_digraph(8, 0.2, seed);
            let small = g.to_structure();
            let mut big = small.clone();
            big.grow(2);
            big.insert(RelId(0), &[0, 8]);
            big.insert(RelId(0), &[8, 9]);
            assert!(extension_preserved(&p, &small, &big).is_ok());
        }
    }

    #[test]
    fn avoiding_path_is_monotone_under_extension() {
        let p = avoiding_path();
        let g = random_digraph(7, 0.25, 3);
        let small = g.to_structure();
        let mut big = small.clone();
        big.grow(1);
        big.insert(RelId(0), &[2, 7]);
        big.insert(RelId(0), &[7, 4]);
        assert!(extension_preserved(&p, &small, &big).is_ok());
    }

    #[test]
    fn tc_is_strongly_monotone() {
        // Pure Datalog: preserved under any identification.
        let p = transitive_closure();
        for seed in 0..5 {
            let g = random_digraph(6, 0.3, 10 + seed);
            let s = g.to_structure();
            assert!(find_identification_counterexample(&p, &s).is_none());
        }
    }

    #[test]
    fn avoiding_path_is_not_strongly_monotone() {
        // Example 2.1's query fails identification: take the path
        // 0 -> 1 -> 2 plus an isolated node 3. T(0, 2, 3) holds. Merging
        // 3 with 1 puts the forbidden node on the only path.
        let p = avoiding_path();
        let mut s = directed_path(3);
        s.grow(1);
        let (a, b, witness) =
            find_identification_counterexample(&p, &s).expect("violation must exist");
        // The specific merge (1, 3) must be among the violations found on
        // some search order; check the returned one is genuine.
        let n = s.universe_size();
        let class_of: Vec<Element> = (0..n as Element)
            .map(|e| {
                if e == b {
                    a
                } else if e > b {
                    e - 1
                } else {
                    e
                }
            })
            .collect();
        assert!(identification_preserved(&p, &s, &class_of).is_err());
        assert_eq!(witness.len(), 3);
    }

    #[test]
    fn is_extension_rejects_constant_changes() {
        let s = directed_path(3);
        let mut bigger = s.clone();
        bigger.grow(1);
        assert!(is_extension(&s, &bigger));
        assert!(!is_extension(&bigger, &s));
    }
}
