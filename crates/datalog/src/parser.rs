//! A small text syntax for Datalog(≠) programs.
//!
//! ```text
//! // Example 2.1: is there a w-avoiding path from x to y?
//! T(x, y, w) :- E(x, y), w != x, w != y.
//! T(x, y, w) :- E(x, z), T(z, y, w), w != x.
//! ?- T.
//! ```
//!
//! Conventions:
//! - `:-` or `<-` separates head from body; every rule ends with `.`;
//! - an identifier in term position denotes a **constant** iff the
//!   vocabulary declares a constant of that name, otherwise a rule-local
//!   variable;
//! - a predicate name denotes an **EDB** relation iff the vocabulary
//!   declares it, otherwise an IDB predicate (auto-declared at first use,
//!   with the arity of that first use);
//! - `?- P.` selects the goal predicate (defaults to the first IDB);
//! - `//` starts a line comment.
//!
//! Parsing is total: malformed input yields a structured [`ParseError`]
//! carrying the 1-based line and column of the offending token — never a
//! panic. Arity mismatches (against both earlier IDB uses and the EDB
//! vocabulary) are reported at parse time with their position instead of
//! surfacing later as positionless [`ProgramError`]s. The default parse is
//! *permissive* about head variables that occur in no positive body atom
//! (they range over the whole universe, as the evaluator defines);
//! [`parse_program_strict`] rejects them with a positioned error.

use crate::ast::{IdbId, Literal, Pred, Rule, Term, VarId};
use crate::program::{Program, ProgramError};
use kv_structures::Vocabulary;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors produced while parsing program text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Lexical, syntactic, or positioned semantic error.
    Syntax {
        /// 1-based line number (0 for whole-input errors).
        line: usize,
        /// 1-based column number (0 for whole-line errors).
        col: usize,
        /// Description.
        message: String,
    },
    /// The parsed program failed semantic validation.
    Invalid(ProgramError),
}

impl ParseError {
    fn at(line: usize, col: usize, message: impl Into<String>) -> Self {
        Self::Syntax {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Syntax { line, col, message } => match (line, col) {
                (0, _) => write!(f, "{message}"),
                (l, 0) => write!(f, "line {l}: {message}"),
                (l, c) => write!(f, "line {l}, col {c}: {message}"),
            },
            Self::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ProgramError> for ParseError {
    fn from(e: ProgramError) -> Self {
        Self::Invalid(e)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Arrow, // ":-" or "<-"
    Eq,    // "="
    Neq,   // "!="
    Goal,  // "?-"
}

/// A token with its 1-based (line, col) start position.
type Spanned = (Tok, usize, usize);

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push((Tok::LParen, line, col));
                col += 1;
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, line, col));
                col += 1;
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, line, col));
                col += 1;
                i += 1;
            }
            '.' => {
                toks.push((Tok::Dot, line, col));
                col += 1;
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, line, col));
                col += 1;
                i += 1;
            }
            ':' if bytes.get(i + 1) == Some(&'-') => {
                toks.push((Tok::Arrow, line, col));
                col += 2;
                i += 2;
            }
            '<' if bytes.get(i + 1) == Some(&'-') => {
                toks.push((Tok::Arrow, line, col));
                col += 2;
                i += 2;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                toks.push((Tok::Neq, line, col));
                col += 2;
                i += 2;
            }
            '?' if bytes.get(i + 1) == Some(&'-') => {
                toks.push((Tok::Goal, line, col));
                col += 2;
                i += 2;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                let start_col = col;
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '\'')
                {
                    i += 1;
                    col += 1;
                }
                toks.push((
                    Tok::Ident(bytes[start..i].iter().collect()),
                    line,
                    start_col,
                ));
            }
            other => {
                return Err(ParseError::at(
                    line,
                    col,
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<Spanned>,
    pos: usize,
    vocab: &'a Vocabulary,
    idbs: Vec<(String, usize)>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    /// (line, col) of the current token, or of the last token at EOF.
    fn pos_of(&self) -> (usize, usize) {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or((0, 0), |&(_, l, c)| (l, c))
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.pos_of();
        ParseError::at(line, col, message)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.next();
                Ok(())
            }
            other => {
                let msg = format!("expected {what}, found {other:?}");
                Err(self.err(msg))
            }
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(_)) => match self.next() {
                Some(Tok::Ident(s)) => Ok(s),
                _ => unreachable!("peeked an identifier"),
            },
            other => {
                let msg = format!("expected identifier, found {other:?}");
                Err(self.err(msg))
            }
        }
    }

    /// Resolves a predicate name, auto-declaring IDBs. Arity is checked at
    /// parse time against both the vocabulary (EDB) and earlier uses (IDB).
    fn pred(
        &mut self,
        name: &str,
        arity: usize,
        line: usize,
        col: usize,
    ) -> Result<Pred, ParseError> {
        if let Some(r) = self.vocab.relation_by_name(name) {
            let declared = self.vocab.arity(r);
            if declared != arity {
                return Err(ParseError::at(
                    line,
                    col,
                    format!("EDB relation {name} used with arity {arity}, declared {declared}"),
                ));
            }
            return Ok(Pred::Edb(r));
        }
        if let Some(i) = self.idbs.iter().position(|(n, _)| n == name) {
            if self.idbs[i].1 != arity {
                return Err(ParseError::at(
                    line,
                    col,
                    format!(
                        "predicate {name} used with arity {arity}, previously {}",
                        self.idbs[i].1
                    ),
                ));
            }
            return Ok(Pred::Idb(IdbId(i)));
        }
        self.idbs.push((name.to_string(), arity));
        Ok(Pred::Idb(IdbId(self.idbs.len() - 1)))
    }

    fn term(
        &mut self,
        vars: &mut Vec<String>,
        var_ids: &mut HashMap<String, VarId>,
    ) -> Result<Term, ParseError> {
        let name = self.ident()?;
        if let Some(c) = self.vocab.constant_by_name(&name) {
            return Ok(Term::Const(c));
        }
        let id = *var_ids.entry(name.clone()).or_insert_with(|| {
            vars.push(name.clone());
            VarId(vars.len() - 1)
        });
        Ok(Term::Var(id))
    }

    fn term_list(
        &mut self,
        vars: &mut Vec<String>,
        var_ids: &mut HashMap<String, VarId>,
    ) -> Result<Vec<Term>, ParseError> {
        self.expect(&Tok::LParen, "'('")?;
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            self.next();
            return Ok(args);
        }
        loop {
            args.push(self.term(vars, var_ids)?);
            match self.peek() {
                Some(Tok::Comma) => {
                    self.next();
                }
                Some(Tok::RParen) => {
                    self.next();
                    break;
                }
                other => {
                    let msg = format!("expected ',' or ')', found {other:?}");
                    return Err(self.err(msg));
                }
            }
        }
        Ok(args)
    }
}

/// Parses a program from text against the given EDB vocabulary.
///
/// Head variables that occur in no positive body atom are accepted and
/// range over the whole universe (the evaluator's semantics); use
/// [`parse_program_strict`] to reject them.
///
/// ```
/// use kv_datalog::{parse_program, Evaluator};
/// use kv_structures::{generators::directed_path, Vocabulary};
/// use std::sync::Arc;
///
/// let program = parse_program(
///     "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y). ?- S.",
///     Arc::new(Vocabulary::graph()),
/// )?;
/// let tc = Evaluator::new(&program).goal(&directed_path(4));
/// assert!(tc.contains(&[0u32, 3][..])); // 0 reaches 3
/// # Ok::<(), kv_datalog::ParseError>(())
/// ```
pub fn parse_program(src: &str, vocabulary: Arc<Vocabulary>) -> Result<Program, ParseError> {
    parse_program_impl(src, vocabulary, false)
}

/// Like [`parse_program`], but rejects rules whose head mentions a
/// variable that occurs in no positive body atom, reporting the rule's
/// position. Safe-range Datalog texts parse identically under both modes.
///
/// ```
/// use kv_datalog::parser::parse_program_strict;
/// use kv_structures::Vocabulary;
/// use std::sync::Arc;
///
/// let err = parse_program_strict("P(x, w) :- E(x, x).", Arc::new(Vocabulary::graph()))
///     .unwrap_err();
/// assert!(err.to_string().contains("unbound head variable"));
/// ```
pub fn parse_program_strict(src: &str, vocabulary: Arc<Vocabulary>) -> Result<Program, ParseError> {
    parse_program_impl(src, vocabulary, true)
}

fn parse_program_impl(
    src: &str,
    vocabulary: Arc<Vocabulary>,
    strict: bool,
) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let vocab_ref = Arc::clone(&vocabulary);
    let mut p = Parser {
        toks,
        pos: 0,
        vocab: &vocab_ref,
        idbs: Vec::new(),
    };
    let mut rules: Vec<Rule> = Vec::new();
    let mut goal_name: Option<String> = None;
    while p.peek().is_some() {
        if p.peek() == Some(&Tok::Goal) {
            p.next();
            let name = p.ident()?;
            p.expect(&Tok::Dot, "'.'")?;
            goal_name = Some(name);
            continue;
        }
        // Head.
        let mut vars: Vec<String> = Vec::new();
        let mut var_ids: HashMap<String, VarId> = HashMap::new();
        let (head_line, head_col) = p.pos_of();
        let head_name = p.ident()?;
        let head_args = p.term_list(&mut vars, &mut var_ids)?;
        let head = match p.pred(&head_name, head_args.len(), head_line, head_col)? {
            Pred::Idb(i) => i,
            Pred::Edb(_) => {
                return Err(ParseError::at(
                    head_line,
                    head_col,
                    format!("rule head {head_name} is an EDB relation"),
                ))
            }
        };
        // Body (optional).
        let mut body = Vec::new();
        match p.next() {
            Some(Tok::Dot) => {}
            Some(Tok::Arrow) => loop {
                // A literal: either ident(...) or term (= | !=) term.
                let (lit_line, lit_col) = p.pos_of();
                let first = p.term(&mut vars, &mut var_ids)?;
                match p.peek() {
                    Some(Tok::LParen) => {
                        // `first` was actually a predicate name: undo the
                        // variable registration if it created one.
                        let name = match first {
                            Term::Var(v) => {
                                let name = vars[v.0].clone();
                                // Only remove if it was freshly created and
                                // is the last one (no other use yet).
                                if v.0 == vars.len() - 1
                                    && !body_mentions(&body, v)
                                    && !head_args.contains(&Term::Var(v))
                                {
                                    vars.pop();
                                    var_ids.remove(&name);
                                }
                                name
                            }
                            Term::Const(_) => return Err(p.err("constant used as predicate name")),
                        };
                        let args = p.term_list(&mut vars, &mut var_ids)?;
                        let pred = p.pred(&name, args.len(), lit_line, lit_col)?;
                        body.push(Literal::Atom(pred, args));
                    }
                    Some(Tok::Eq) => {
                        p.next();
                        let second = p.term(&mut vars, &mut var_ids)?;
                        body.push(Literal::Eq(first, second));
                    }
                    Some(Tok::Neq) => {
                        p.next();
                        let second = p.term(&mut vars, &mut var_ids)?;
                        body.push(Literal::Neq(first, second));
                    }
                    other => {
                        let msg = format!("expected '(', '=' or '!=', found {other:?}");
                        return Err(p.err(msg));
                    }
                }
                match p.peek() {
                    Some(Tok::Comma) => {
                        p.next();
                        continue;
                    }
                    Some(Tok::Dot) => {
                        p.next();
                        break;
                    }
                    other => {
                        let msg = format!("expected ',' or '.', found {other:?}");
                        return Err(p.err(msg));
                    }
                }
            },
            other => {
                return Err(ParseError::at(
                    head_line,
                    head_col,
                    format!("expected ':-' or '.', found {other:?}"),
                ))
            }
        }
        if strict {
            check_head_range(&head_name, &head_args, &body, &vars, head_line, head_col)?;
        }
        rules.push(Rule {
            head,
            head_args,
            body,
            var_names: vars,
        });
    }
    let goal = match goal_name {
        Some(name) => IdbId(p.idbs.iter().position(|(n, _)| *n == name).ok_or_else(|| {
            ParseError::at(
                0,
                0,
                format!("goal predicate {name} is not an IDB of the program"),
            )
        })?),
        None => IdbId(0),
    };
    Ok(Program::new(vocabulary, p.idbs, rules, goal)?)
}

/// Strict-mode range check: every head variable must occur in a positive
/// body atom (equalities and inequalities do not bind).
fn check_head_range(
    head_name: &str,
    head_args: &[Term],
    body: &[Literal],
    vars: &[String],
    line: usize,
    col: usize,
) -> Result<(), ParseError> {
    for t in head_args {
        let Term::Var(v) = t else { continue };
        let bound = body.iter().any(|l| match l {
            Literal::Atom(_, args) => args.contains(&Term::Var(*v)),
            Literal::Eq(..) | Literal::Neq(..) => false,
        });
        if !bound {
            return Err(ParseError::at(
                line,
                col,
                format!(
                    "unbound head variable {} in rule for {head_name} \
                     (strict mode: every head variable must occur in a positive body atom)",
                    vars[v.0]
                ),
            ));
        }
    }
    Ok(())
}

fn body_mentions(body: &[Literal], v: VarId) -> bool {
    body.iter().any(|l| match l {
        Literal::Atom(_, args) => args.contains(&Term::Var(v)),
        Literal::Eq(a, b) | Literal::Neq(a, b) => *a == Term::Var(v) || *b == Term::Var(v),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_vocab() -> Arc<Vocabulary> {
        Arc::new(Vocabulary::graph())
    }

    #[test]
    fn parses_transitive_closure() {
        let src = "
            // Example 2.2
            S(x, y) :- E(x, y).
            S(x, y) :- E(x, z), S(z, y).
            ?- S.
        ";
        let p = parse_program(src, graph_vocab()).unwrap();
        assert_eq!(p.idb_count(), 1);
        assert!(p.is_pure_datalog());
        assert_eq!(p.rules().len(), 2);
        assert_eq!(p.goal(), IdbId(0));
    }

    #[test]
    fn parses_avoiding_path_with_inequalities() {
        let src = "
            T(x, y, w) :- E(x, y), w != x, w != y.
            T(x, y, w) :- E(x, z), T(z, y, w), w != x.
        ";
        let p = parse_program(src, graph_vocab()).unwrap();
        assert!(!p.is_pure_datalog());
        assert_eq!(p.idb_arity(IdbId(0)), 3);
        assert_eq!(p.max_rule_vars(), 4);
    }

    #[test]
    fn parses_constants_from_vocabulary() {
        let vocab = Arc::new(Vocabulary::graph_with_constants(2));
        let src = "
            P(x) :- E(s1, x), x != s2.
            ?- P.
        ";
        let p = parse_program(src, vocab).unwrap();
        let rule = &p.rules()[0];
        // The only variable is x; s1 and s2 are constants.
        assert_eq!(rule.var_names, vec!["x".to_string()]);
    }

    #[test]
    fn parses_fact_rules_with_empty_body() {
        let vocab = Arc::new(Vocabulary::graph_with_constants(2));
        let src = "D(s1, s2).";
        let p = parse_program(src, vocab).unwrap();
        assert!(p.rules()[0].body.is_empty());
    }

    #[test]
    fn parses_explicit_equality() {
        let src = "P(x, y) :- E(x, z), z = y.";
        let p = parse_program(src, graph_vocab()).unwrap();
        assert!(matches!(p.rules()[0].body[1], Literal::Eq(_, _)));
    }

    #[test]
    fn goal_directive_selects_idb() {
        let src = "
            A(x) :- E(x, x).
            B(x) :- A(x).
            ?- B.
        ";
        let p = parse_program(src, graph_vocab()).unwrap();
        assert_eq!(p.idb_name(p.goal()), "B");
    }

    #[test]
    fn rejects_edb_head() {
        let src = "E(x, y) :- E(y, x).";
        let err = parse_program(src, graph_vocab()).unwrap_err();
        assert!(matches!(err, ParseError::Syntax { .. }));
    }

    #[test]
    fn rejects_arity_flip_flop() {
        let src = "
            P(x) :- E(x, x).
            Q(x) :- P(x, x).
        ";
        let err = parse_program(src, graph_vocab()).unwrap_err();
        match err {
            ParseError::Syntax { line, col, message } => {
                assert_eq!(line, 3, "error should point at the offending atom");
                assert!(col > 0);
                assert!(message.contains("arity 2, previously 1"), "{message}");
            }
            other => panic!("expected positioned syntax error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_edb_arity_mismatch_at_parse_time() {
        // E is binary in the graph vocabulary; using it unary must fail
        // at the use site, not as a positionless program error.
        let src = "P(x) :- E(x).";
        let err = parse_program(src, graph_vocab()).unwrap_err();
        match err {
            ParseError::Syntax { line, col, message } => {
                assert_eq!(line, 1);
                assert_eq!(col, 9);
                assert!(message.contains("arity 1, declared 2"), "{message}");
            }
            other => panic!("expected positioned syntax error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_goal() {
        let src = "P(x) :- E(x, x). ?- Z.";
        assert!(parse_program(src, graph_vocab()).is_err());
    }

    #[test]
    fn arrow_variants_accepted() {
        let src = "P(x) <- E(x, x).";
        assert!(parse_program(src, graph_vocab()).is_ok());
    }

    #[test]
    fn errors_carry_line_and_column() {
        // The stray '=' sits on line 2 at column 18.
        let src = "P(x) :- E(x, x).\nQ(y) :- E(y, y), = .";
        let err = parse_program(src, graph_vocab()).unwrap_err();
        match err {
            ParseError::Syntax { line, col, .. } => {
                assert_eq!(line, 2);
                assert_eq!(col, 18);
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
        assert!(err.to_string().starts_with("line 2, col 18:"));
    }

    #[test]
    fn lex_error_position_is_exact() {
        let src = "P(x) :- E(x, x).\n  @";
        let err = parse_program(src, graph_vocab()).unwrap_err();
        assert_eq!(
            err,
            ParseError::at(2, 3, "unexpected character '@'".to_string())
        );
    }

    #[test]
    fn malformed_rules_never_panic() {
        // A grab-bag of malformed inputs: every one must produce an error,
        // never a panic.
        let bad = [
            "P(",
            "P(x",
            "P(x,",
            "P(x))",
            ":- E(x, y).",
            "P(x) :-",
            "P(x) :- .",
            "P(x) :- E(x, y),",
            "P(x) :- E(x, y) Q(y).",
            "?-",
            "?- .",
            "P(x) :- s1(x, y).",
            "P(x) := E(x, y).",
            "P(x) :- x != .",
            "P(x) :- E(x, y). ?- P. ?-",
        ];
        let vocab = Arc::new(Vocabulary::graph_with_constants(1));
        for src in bad {
            let res = parse_program(src, Arc::clone(&vocab));
            assert!(res.is_err(), "expected error for {src:?}");
        }
    }

    #[test]
    fn strict_mode_rejects_unbound_head_variable() {
        let src = "P(x, w) :- E(x, x).";
        let err = parse_program_strict(src, graph_vocab()).unwrap_err();
        match err {
            ParseError::Syntax { line, col, message } => {
                assert_eq!((line, col), (1, 1));
                assert!(message.contains("unbound head variable w"), "{message}");
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
        // The permissive default accepts the same text (the variable
        // ranges over the universe).
        assert!(parse_program(src, graph_vocab()).is_ok());
    }

    #[test]
    fn strict_mode_ignores_inequality_bindings() {
        // w appears in the body, but only in an inequality — still unbound.
        let src = "P(x, w) :- E(x, x), w != x.";
        assert!(parse_program_strict(src, graph_vocab()).is_err());
        // Bound through a positive atom: fine in both modes.
        let ok = "P(x, w) :- E(x, w).";
        assert!(parse_program_strict(ok, graph_vocab()).is_ok());
    }

    #[test]
    fn strict_mode_accepts_safe_range_programs_identically() {
        let src = "
            T(x, y, w) :- E(x, y), T(y, x, w), w != x.
            T(x, y, w) :- E(x, y), E(w, w).
            ?- T.
        ";
        let p1 = parse_program(src, graph_vocab()).unwrap();
        let p2 = parse_program_strict(src, graph_vocab()).unwrap();
        assert_eq!(p1.rules(), p2.rules());
        assert_eq!(p1.goal(), p2.goal());
    }

    #[test]
    fn display_reparses_to_same_program() {
        let vocab = Arc::new(Vocabulary::graph_with_constants(2));
        let src = "
            T(x, y, w) :- E(x, y), w != x, w != y.
            T(x, y, w) :- E(x, z), T(z, y, w), w != x.
            Q(x) :- T(s1, x, s2).
            ?- Q.
        ";
        let p1 = parse_program(src, Arc::clone(&vocab)).unwrap();
        let p2 = parse_program(&p1.to_string(), vocab).unwrap();
        assert_eq!(p1.rules(), p2.rules());
        assert_eq!(p1.goal(), p2.goal());
    }
}
