//! Cost-based query compilation: the predicate dependency graph, its
//! strongly connected components, and per-rule join planning.
//!
//! The textual evaluator joins every rule body in the order the rule was
//! written. This module supplies the [`kv_structures::PlannerMode::CostBased`]
//! alternative, in three parts:
//!
//! - **SCC stratum schedule.** [`SccInfo`] computes the IDB dependency
//!   graph (head depends on body predicates), its SCCs (iterative Tarjan),
//!   and a topological stratum order. Within the engine's global stage
//!   loop — which must be kept *exactly* as the paper defines it, because
//!   the Theorem 3.6 experiments compare Datalog stages against `L^k`
//!   stage formulas tuple set by tuple set — the schedule manifests as
//!   work-avoidance: a rule with any provably-empty IDB source is skipped
//!   before a single probe is issued, so not-yet-populated downstream
//!   strata and already-converged upstream strata cost nothing, and deltas
//!   only drive the variants of the components that consume them.
//! - **Cardinality-driven join ordering.** [`plan_program`] re-plans every
//!   compiled rule against one concrete structure: atoms are ordered
//!   greedily by estimated selectivity (bound-position coverage ×
//!   [`CardStats`] estimates), with the semi-naive delta atom pinned
//!   first and ≠-constraints re-hoisted to their earliest fully-bound
//!   point. Atom order within a body is semantics-free — the set of
//!   satisfying assignments of a conjunction does not depend on the order
//!   its conjuncts are enumerated — so every stage derives the same tuple
//!   set as the textual order (property-tested via `same_stages`).
//! - **Kernel selection.** Each planned atom gets the cheapest applicable
//!   [`JoinKernel`]: a single interner lookup when every argument is
//!   bound, a merged two-position posting intersection, a one-position
//!   index probe, or the full-scan fallback. Rules whose head is fully
//!   bound before the last atom also get an early-exit point
//!   ([`CompiledRule::head_check_at`]): once the head tuple is known to
//!   exist, the remaining atoms would only re-verify a derivation that
//!   adds nothing.
//!
//! Plans are pure functions of `(program, structure, mode)`, so governed
//! interrupt/resume re-derives them deterministically, and
//! [`CompiledProgram::explain`]/[`CompiledProgram::explain_for`] render
//! them for golden tests and review diffs.

use crate::ast::{Pred, Term};
use crate::eval::{
    index_plan, schedule_neqs, CompiledProgram, CompiledRule, IdbAccess, JoinAtom, JoinKernel,
};
use crate::program::Program;
use crate::wcoj;
use kv_structures::store::{CardStats, TupleStore};
use kv_structures::{JoinLowering, Structure};
use std::collections::HashSet;
use std::fmt::Write as _;

/// How much larger than the final estimate the largest predicted binary
/// intermediate must be before [`JoinLowering::Auto`] switches a cyclic
/// rule to the generic join.
const BLOWUP_FACTOR: f64 = 1.5;

/// The strongly connected components of a program's IDB dependency graph,
/// in topological stratum order.
///
/// There is an edge `p → q` when some rule for `p` mentions `q` in its
/// body ("`p` depends on `q`"). Components are numbered in dependency
/// order: every predicate a component depends on lives in a component
/// with a smaller or equal stratum number, so evaluating strata in order
/// `0, 1, …` is a valid schedule.
#[derive(Debug, Clone)]
pub struct SccInfo {
    /// Stratum (component) id of each IDB predicate.
    scc_of: Vec<usize>,
    /// Member predicates of each component, in stratum order.
    members: Vec<Vec<usize>>,
    /// Whether each component is recursive (size > 1, or a self-loop).
    recursive: Vec<bool>,
}

impl SccInfo {
    /// Computes the SCC decomposition of `program`'s IDB dependency graph
    /// with an iterative Tarjan pass.
    pub fn of_program(program: &Program) -> Self {
        let n = program.idb_count();
        // Dependency adjacency: head -> body IDB predicates (deduplicated).
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for rule in program.rules() {
            for (pred, _) in rule.atoms() {
                if let Pred::Idb(q) = pred {
                    if !deps[rule.head.0].contains(&q.0) {
                        deps[rule.head.0].push(q.0);
                    }
                }
            }
        }
        // Iterative Tarjan. Because edges point at dependencies, a
        // component is emitted only after every component it depends on,
        // so emission order *is* the stratum order.
        const UNVISITED: usize = usize::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut scc_of = vec![0usize; n];
        // Explicit DFS frames: (node, next child position).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            frames.push((root, 0));
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(&mut (v, ref mut child)) = frames.last_mut() {
                if *child < deps[v].len() {
                    let w = deps[v][*child];
                    *child += 1;
                    if index[w] == UNVISITED {
                        frames.push((w, 0));
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut component = Vec::new();
                        loop {
                            #[allow(clippy::expect_used)]
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        component.sort_unstable();
                        for &w in &component {
                            scc_of[w] = members.len();
                        }
                        members.push(component);
                    }
                }
            }
        }
        let recursive: Vec<bool> = members
            .iter()
            .map(|component| component.len() > 1 || component.iter().any(|&p| deps[p].contains(&p)))
            .collect();
        SccInfo {
            scc_of,
            members,
            recursive,
        }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// The stratum (component) id of IDB predicate `idb`.
    pub fn component_of(&self, idb: usize) -> usize {
        self.scc_of[idb]
    }

    /// The member predicates of component `scc`, sorted.
    pub fn members(&self, scc: usize) -> &[usize] {
        &self.members[scc]
    }

    /// Whether component `scc` is recursive (its predicates feed back into
    /// themselves, so deltas circulate within it across stages).
    pub fn is_recursive(&self, scc: usize) -> bool {
        self.recursive[scc]
    }

    /// The components whose predicates carry tuples not yet consumed as a
    /// delta — the live set of the stratum schedule at a stage boundary
    /// (recorded into checkpoints by governed runs).
    pub(crate) fn active_components(&self, delta_lo: &[u32], stores: &[TupleStore]) -> Vec<u32> {
        let mut active: Vec<u32> = delta_lo
            .iter()
            .zip(stores)
            .enumerate()
            .filter(|(_, (&lo, store))| (lo as usize) < store.len())
            .map(|(i, _)| self.scc_of[i] as u32)
            .collect();
        active.sort_unstable();
        active.dedup();
        active
    }
}

/// A program re-planned for one concrete structure: cost-ordered rule
/// bodies with kernels assigned, plus the index plan they need.
#[derive(Debug, Clone)]
pub(crate) struct RunPlan {
    pub(crate) naive_rules: Vec<CompiledRule>,
    pub(crate) semi_variants: Vec<CompiledRule>,
    pub(crate) edb_positions: Vec<Vec<usize>>,
    pub(crate) idb_positions: Vec<Vec<usize>>,
}

/// Per-structure planning context: EDB cardinality snapshots plus the
/// fallback estimates used for IDB sources (whose final cardinality is
/// unknowable before the fixpoint is computed).
struct PlanCtx {
    edb_stats: Vec<CardStats>,
    /// Default cardinality estimate for an IDB source: the largest EDB
    /// relation (derived relations are usually at least that dense), but
    /// no smaller than the universe.
    idb_len_est: f64,
    /// Universe size, for fully-bound EDB check selectivities.
    universe: f64,
}

impl PlanCtx {
    fn new(compiled: &CompiledProgram, structure: &Structure) -> Self {
        let edb_stats: Vec<CardStats> = compiled
            .vocabulary
            .relations()
            .map(|r| structure.relation(r).store().card_stats())
            .collect();
        Self::from_stats(edb_stats, structure.universe_size())
    }

    /// Builds a planning context from raw cardinality snapshots — the
    /// incremental engine's entry point, whose EDB lives in
    /// [`kv_structures::MutableStore`]s rather than a [`Structure`].
    fn from_stats(edb_stats: Vec<CardStats>, universe_size: usize) -> Self {
        let idb_len_est = edb_stats
            .iter()
            .map(|s| s.len)
            .max()
            .unwrap_or(0)
            .max(universe_size.max(1)) as f64;
        PlanCtx {
            edb_stats,
            idb_len_est,
            universe: universe_size.max(1) as f64,
        }
    }

    /// Positions of `atom` whose argument is a constant or an
    /// already-bound variable.
    fn bound_positions(atom: &JoinAtom, bound: &HashSet<usize>) -> Vec<usize> {
        atom.args
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(&v.0),
            })
            .map(|(p, _)| p)
            .collect()
    }

    /// Estimated number of candidate tuples the join must visit for
    /// `atom` given the currently bound variables. Fully bound atoms are
    /// membership checks and cost (effectively) nothing. EDB estimates
    /// come from real [`CardStats`]; IDB relations do not exist yet at
    /// plan time, so the planner deliberately does **not** credit their
    /// bound positions — a partially bound IDB atom is assumed full-cost
    /// (mis-crediting fuzzy IDB selectivity against precise EDB stats is
    /// exactly how a reorder regresses). Magic predicates are the
    /// exception: they hold seeded demand sets, which are small by
    /// construction, so they keep their textual role as early guards.
    fn estimate(&self, atom: &JoinAtom, bound: &HashSet<usize>) -> f64 {
        let b = Self::bound_positions(atom, bound);
        if b.len() == atom.args.len() {
            return 0.0;
        }
        match atom.pred {
            Pred::Edb(r) => self.edb_stats[r.0].estimate_matches(&b),
            Pred::Idb(_) if atom.is_magic => 1.0,
            Pred::Idb(_) => self.idb_len_est,
        }
    }

    /// The two most selective bound positions for a merged probe: highest
    /// distinct-value counts first (EDB); positional order for IDB
    /// sources, whose per-position distribution is unknown at plan time.
    fn merge_pair(&self, atom: &JoinAtom, b: &[usize]) -> (usize, usize) {
        let mut ranked: Vec<usize> = b.to_vec();
        if let Pred::Edb(r) = atom.pred {
            let stats = &self.edb_stats[r.0];
            ranked.sort_by_key(|&p| {
                (
                    std::cmp::Reverse(stats.distinct.get(p).copied().unwrap_or(0)),
                    p,
                )
            });
        }
        let (pos_a, pos_b) = (ranked[0], ranked[1]);
        (pos_a.min(pos_b), pos_a.max(pos_b))
    }
}

/// Re-plans one compiled rule: greedy selectivity ordering (delta atom
/// pinned first), cost-based kernels, re-hoisted ≠-constraints, and the
/// head early-exit point.
fn plan_rule(rule: &CompiledRule, ctx: &PlanCtx) -> CompiledRule {
    let mut out = rule.clone();
    let mut remaining: Vec<JoinAtom> = std::mem::take(&mut out.atoms);
    let mut ordered: Vec<JoinAtom> = Vec::with_capacity(remaining.len());
    let mut bound: HashSet<usize> = HashSet::new();
    let bind = |atom: &JoinAtom, bound: &mut HashSet<usize>| {
        for t in &atom.args {
            if let Term::Var(v) = t {
                bound.insert(v.0);
            }
        }
    };
    // The delta atom seeds the join: every derivation this variant is
    // responsible for uses a delta tuple, so it stays pinned first.
    if remaining
        .first()
        .is_some_and(|a| a.access == IdbAccess::Delta)
    {
        let delta = remaining.remove(0);
        bind(&delta, &mut bound);
        ordered.push(delta);
    }
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .enumerate()
            .min_by(|(i, a), (j, b)| {
                ctx.estimate(a, &bound)
                    .total_cmp(&ctx.estimate(b, &bound))
                    .then(i.cmp(j))
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let atom = remaining.remove(best);
        bind(&atom, &mut bound);
        ordered.push(atom);
    }
    // Kernel assignment over the final order.
    let mut bound_vars: HashSet<usize> = HashSet::new();
    for atom in &mut ordered {
        let b = PlanCtx::bound_positions(atom, &bound_vars);
        atom.kernel = if b.len() == atom.args.len() {
            JoinKernel::Check
        } else if b.is_empty() {
            JoinKernel::Scan
        } else if b.len() == 1 {
            JoinKernel::Probe { pos: b[0] }
        } else {
            let (pos_a, pos_b) = ctx.merge_pair(atom, &b);
            JoinKernel::MergedProbe { pos_a, pos_b }
        };
        for t in &atom.args {
            if let Term::Var(v) = t {
                bound_vars.insert(v.0);
            }
        }
    }
    out.atoms = ordered;
    out.neq_at = schedule_neqs(&out.atoms, &out.free_vars, &out.neqs);
    out.head_check_at = head_check_point(&out);
    out
}

/// GYO ear removal on the rule-body hypergraph (variables as vertices,
/// atoms as hyperedges): an edge is an *ear* when the vertices it shares
/// with the rest of the hypergraph all lie inside one single other edge
/// (or it shares nothing). Repeatedly removing ears empties an acyclic
/// hypergraph; a non-empty residue means the body is cyclic — the regime
/// where every binary join order can blow up past the AGM output bound.
fn body_is_cyclic(rule: &CompiledRule) -> bool {
    let mut edges: Vec<HashSet<usize>> = rule
        .atoms
        .iter()
        .map(|a| {
            a.args
                .iter()
                .filter_map(|t| match t {
                    Term::Var(v) => Some(v.0),
                    Term::Const(_) => None,
                })
                .collect()
        })
        .collect();
    edges.retain(|e: &HashSet<usize>| !e.is_empty());
    while edges.len() > 1 {
        let mut ear = None;
        for i in 0..edges.len() {
            let shared: HashSet<usize> = edges[i]
                .iter()
                .copied()
                .filter(|v| {
                    edges
                        .iter()
                        .enumerate()
                        .any(|(j, e)| j != i && e.contains(v))
                })
                .collect();
            let witnessed = shared.is_empty()
                || edges
                    .iter()
                    .enumerate()
                    .any(|(j, e)| j != i && shared.is_subset(e));
            if witnessed {
                ear = Some(i);
                break;
            }
        }
        match ear {
            Some(i) => {
                edges.swap_remove(i);
            }
            None => return true,
        }
    }
    false
}

/// Ratio of the largest predicted intermediate to the final estimate when
/// the planned binary order runs left to right. Each partially-bound atom
/// multiplies the running estimate by its expected match count; a fully
/// bound **EDB** atom filters by its observed density (`len / |A|^arity`),
/// while fully bound IDB atoms get no credit — their selectivity is
/// unknowable at plan time (the same philosophy as
/// [`PlanCtx::estimate`]), and crediting it would flip acyclic-in-spirit
/// recursive rules to the generic lowering on guesswork.
fn blowup_ratio(rule: &CompiledRule, ctx: &PlanCtx) -> f64 {
    let mut bound: HashSet<usize> = HashSet::new();
    let mut running = 1.0f64;
    let mut max_intermediate = 0.0f64;
    for (i, atom) in rule.atoms.iter().enumerate() {
        let b = PlanCtx::bound_positions(atom, &bound);
        let mult = if b.len() == atom.args.len() {
            match atom.pred {
                Pred::Edb(r) => {
                    let cells = ctx.universe.powi(atom.args.len() as i32).max(1.0);
                    (ctx.edb_stats[r.0].len as f64 / cells).min(1.0)
                }
                Pred::Idb(_) => 1.0,
            }
        } else {
            ctx.estimate(atom, &bound).max(1e-6)
        };
        running *= mult;
        if i + 1 < rule.atoms.len() {
            max_intermediate = max_intermediate.max(running);
        }
        for t in &atom.args {
            if let Term::Var(v) = t {
                bound.insert(v.0);
            }
        }
    }
    max_intermediate / running.max(1e-6)
}

/// Decides the join lowering for one planned rule and attaches the
/// generic plan when chosen. `Binary` never lowers generically; `Generic`
/// forces it for every multi-atom body; `Auto` requires a cyclic body
/// hypergraph *and* a predicted intermediate blow-up beyond
/// [`BLOWUP_FACTOR`] — the regime where variable-at-a-time intersection
/// provably beats every binary order.
fn choose_lowering(rule: &mut CompiledRule, ctx: &PlanCtx, lowering: JoinLowering) {
    let generic = match lowering {
        JoinLowering::Binary => false,
        JoinLowering::Generic => rule.atoms.len() >= 2,
        JoinLowering::Auto => {
            rule.atoms.len() >= 2 && body_is_cyclic(rule) && blowup_ratio(rule, ctx) > BLOWUP_FACTOR
        }
    };
    if generic {
        rule.generic = wcoj::build_generic_plan(rule);
    }
}

/// The earliest atom index at which every head argument is bound, if the
/// head needs no free-variable enumeration. From that point on, a branch
/// whose head tuple already exists can stop early. Points at or past the
/// last atom are dropped: `emit` already deduplicates, so a check that
/// skips no atoms is pure overhead.
fn head_check_point(rule: &CompiledRule) -> Option<usize> {
    if !rule.free_vars.is_empty() {
        return None;
    }
    let mut point = 0usize;
    for t in &rule.head_args {
        if let Term::Var(v) = t {
            match rule
                .atoms
                .iter()
                .position(|a| a.args.contains(&Term::Var(*v)))
            {
                Some(j) => point = point.max(j + 1),
                None => return None,
            }
        }
    }
    if point < rule.atoms.len() {
        Some(point)
    } else {
        None
    }
}

/// Plans `compiled` against one concrete structure: every rule body is
/// cost-ordered and kernel-assigned, each rule's join lowering (binary
/// kernels vs. worst-case-optimal generic join) is chosen, and the index
/// plan is recomputed from the chosen kernels. Pure in
/// `(program, structure, lowering)` — governed resume re-derives the
/// identical plan.
pub(crate) fn plan_program(
    compiled: &CompiledProgram,
    structure: &Structure,
    lowering: JoinLowering,
) -> RunPlan {
    let ctx = PlanCtx::new(compiled, structure);
    let lower = |r: &CompiledRule| {
        let mut planned = plan_rule(r, &ctx);
        choose_lowering(&mut planned, &ctx, lowering);
        planned
    };
    let naive_rules: Vec<CompiledRule> = compiled.naive_rules.iter().map(lower).collect();
    let semi_variants: Vec<CompiledRule> = compiled.semi_variants.iter().map(lower).collect();
    let (edb_positions, idb_positions) = index_plan(
        naive_rules.iter().chain(&semi_variants),
        compiled.edb_positions.len(),
        compiled.idb_arities.len(),
    );
    RunPlan {
        naive_rules,
        semi_variants,
        edb_positions,
        idb_positions,
    }
}

/// Cost-plans an arbitrary rule set against raw EDB cardinality
/// snapshots: the incremental engine's planning entry point, used for its
/// EDB-delta variants (and re-used for the ordinary variants) against the
/// live [`kv_structures::MutableStore`] state. Pure in its inputs, so an
/// interrupted maintenance run re-derives the identical plan on resume.
pub(crate) fn plan_rules_with_stats(
    rules: &[CompiledRule],
    edb_stats: &[CardStats],
    universe_size: usize,
    lowering: JoinLowering,
) -> Vec<CompiledRule> {
    let ctx = PlanCtx::from_stats(edb_stats.to_vec(), universe_size);
    rules
        .iter()
        .map(|r| {
            let mut planned = plan_rule(r, &ctx);
            choose_lowering(&mut planned, &ctx, lowering);
            planned
        })
        .collect()
}

impl CompiledProgram {
    /// Renders an atom's predicate with its semi-naive access decoration
    /// (`Δ` / `old·`), without the kernel suffix.
    fn pred_label(&self, atom: &JoinAtom) -> String {
        let name = match atom.pred {
            Pred::Edb(r) => self.vocabulary.relation_name(r).to_string(),
            Pred::Idb(i) => self.idb_names[i.0].clone(),
        };
        let access = match atom.access {
            IdbAccess::Delta => "Δ",
            IdbAccess::Old => "old·",
            IdbAccess::Full => "",
        };
        format!("{access}{name}")
    }

    fn atom_label(&self, atom: &JoinAtom) -> String {
        let kernel = match atom.kernel {
            JoinKernel::Scan => "scan".to_string(),
            JoinKernel::Probe { pos } => format!("probe@{pos}"),
            JoinKernel::MergedProbe { pos_a, pos_b } => format!("merge@{pos_a},{pos_b}"),
            JoinKernel::Check => "check".to_string(),
        };
        format!("{}:{kernel}", self.pred_label(atom))
    }

    /// Renders a generic-join plan: the variable binding order, and for
    /// each variable the posting-list iterators (atom@positions) whose
    /// intersection drives the step.
    fn wcoj_label(&self, rule: &CompiledRule, plan: &crate::wcoj::GenericPlan) -> String {
        let steps: Vec<String> = plan
            .steps
            .iter()
            .map(|st| {
                let iters: Vec<String> = st
                    .occurrences
                    .iter()
                    .map(|(ai, positions)| {
                        let pos: Vec<String> = positions.iter().map(ToString::to_string).collect();
                        format!("{}@{}", self.pred_label(&rule.atoms[*ai]), pos.join(","))
                    })
                    .collect();
                format!("v{}←∩({})", st.var, iters.join(" "))
            })
            .collect();
        format!("wcoj[{}]", steps.join("; "))
    }

    fn render_rules(&self, out: &mut String, title: &str, prefix: &str, rules: &[CompiledRule]) {
        let _ = writeln!(out, "{title}:");
        for (i, rule) in rules.iter().enumerate() {
            let atoms = if rule.generic.is_some() {
                // Generic lowering: atom 0 seeds the join, every other
                // atom is a trie of sorted postings; the per-atom binary
                // kernels are not executed.
                rule.atoms
                    .iter()
                    .enumerate()
                    .map(|(j, a)| {
                        let role = if j == 0 { "seed" } else { "trie" };
                        format!("{}:{role}", self.pred_label(a))
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            } else {
                rule.atoms
                    .iter()
                    .map(|a| self.atom_label(a))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let body = if atoms.is_empty() { "⊤" } else { &atoms };
            let _ = write!(
                out,
                "  {prefix}{i}: {} ← {body}",
                self.idb_names[rule.head.0]
            );
            if !rule.neqs.is_empty() {
                let slots: Vec<String> = rule
                    .neq_at
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.is_empty())
                    .map(|(slot, s)| format!("{slot}×{}", s.len()))
                    .collect();
                let _ = write!(out, " | ≠@[{}]", slots.join(" "));
            }
            if let Some(plan) = &rule.generic {
                // The generic executor verifies atoms by intersection, so
                // the binary head early-exit point is not rendered.
                let _ = write!(out, " | {}", self.wcoj_label(rule, plan));
            } else if let Some(k) = rule.head_check_at {
                let _ = write!(out, " | head-check@{k}");
            }
            let _ = writeln!(out);
        }
    }

    fn render_strata(&self, out: &mut String) {
        let _ = writeln!(
            out,
            "strata ({} SCCs, topological order):",
            self.scc.count()
        );
        for scc in 0..self.scc.count() {
            let names: Vec<&str> = self
                .scc
                .members(scc)
                .iter()
                .map(|&p| self.idb_names[p].as_str())
                .collect();
            let _ = writeln!(
                out,
                "  s{scc}: {}{}",
                names.join(", "),
                if self.scc.is_recursive(scc) {
                    " (recursive)"
                } else {
                    ""
                }
            );
        }
    }

    /// Renders the compiled (textual-mode) plan: goal, stratum schedule,
    /// and every rule/variant with its kernels and hoisted ≠-slots.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "plan mode: textual");
        let _ = writeln!(
            out,
            "goal: {} | {} IDB(s), {} rule(s), {} semi-naive variant(s)",
            self.idb_names[self.goal.0],
            self.idb_names.len(),
            self.naive_rules.len(),
            self.semi_variants.len()
        );
        self.render_strata(&mut out);
        self.render_rules(&mut out, "naive rules", "n", &self.naive_rules);
        self.render_rules(&mut out, "semi-naive variants", "v", &self.semi_variants);
        out
    }

    /// Renders the cost-based plan chosen for `structure` under the
    /// default [`JoinLowering::Auto`] selection. See
    /// [`explain_for_lowered`](Self::explain_for_lowered).
    pub fn explain_for(&self, structure: &Structure) -> String {
        self.explain_for_lowered(structure, JoinLowering::Auto)
    }

    /// Renders the cost-based plan chosen for `structure` under the given
    /// join lowering: the EDB cardinality snapshot the planner saw, and
    /// every rule in its planned atom order with selected kernels,
    /// hoisted ≠-slots, head early-exit points, and — for generically
    /// lowered rules — the variable binding order with its per-variable
    /// posting-list iterators.
    pub fn explain_for_lowered(&self, structure: &Structure, lowering: JoinLowering) -> String {
        let plan = plan_program(self, structure, lowering);
        let ctx = PlanCtx::new(self, structure);
        let mut out = String::new();
        let _ = writeln!(out, "plan mode: cost-based");
        let _ = writeln!(out, "lowering: {lowering}");
        let _ = writeln!(out, "structure: |A| = {}", structure.universe_size());
        for (r, stats) in self.vocabulary.relations().zip(&ctx.edb_stats) {
            let _ = writeln!(
                out,
                "edb {}: {} tuple(s), distinct {:?}",
                self.vocabulary.relation_name(r),
                stats.len,
                stats.distinct
            );
        }
        let _ = writeln!(
            out,
            "goal: {} | {} IDB(s), {} rule(s), {} semi-naive variant(s)",
            self.idb_names[self.goal.0],
            self.idb_names.len(),
            plan.naive_rules.len(),
            plan.semi_variants.len()
        );
        self.render_strata(&mut out);
        self.render_rules(&mut out, "naive rules", "n", &plan.naive_rules);
        self.render_rules(&mut out, "semi-naive variants", "v", &plan.semi_variants);
        out
    }

    /// Renders the shard plan a sharded run over `structure` would choose
    /// at the given worker count: one `shard[pred←pos, local|exchange]`
    /// line per predicate, where `pos` is the hash-partitioning key
    /// position and the verdict says whether every semi-naive variant
    /// producing that predicate keeps its derivations on the delta seed's
    /// owner (`local`) or some variant must cross the inter-worker
    /// exchange at the stage barrier (`exchange`).
    pub fn explain_sharded(&self, structure: &Structure, shards: usize) -> String {
        let ctx = PlanCtx::new(self, structure);
        let edb_arities: Vec<usize> = self
            .vocabulary
            .relations()
            .map(|r| self.vocabulary.arity(r))
            .collect();
        let plan = crate::sharded::choose_plan(
            &self.semi_variants,
            &[],
            &self.idb_arities,
            &edb_arities,
            &ctx.edb_stats,
        );
        let mut out = String::new();
        let _ = writeln!(out, "shard plan: W = {}", shards.max(1));
        for (p, name) in self.idb_names.iter().enumerate() {
            let producing: Vec<usize> = (0..self.semi_variants.len())
                .filter(|&v| self.semi_variants[v].head.0 == p)
                .collect();
            let verdict = if producing.iter().all(|&v| plan.local[v]) {
                "local"
            } else {
                "exchange"
            };
            let _ = writeln!(out, "  shard[{name}←{}, {verdict}]", plan.idb_keys[p].pos);
        }
        for (r, key) in self.vocabulary.relations().zip(&plan.edb_keys) {
            let _ = writeln!(
                out,
                "  shard[{}←{}, edb]",
                self.vocabulary.relation_name(r),
                key.pos
            );
        }
        let local = plan.local.iter().filter(|&&l| l).count();
        let _ = writeln!(
            out,
            "  variants: {local} local, {} exchange",
            plan.local.len() - local
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use kv_structures::generators::directed_path;

    #[test]
    fn explain_sharded_renders_keys_and_locality() {
        let compiled = CompiledProgram::compile(&programs::transitive_closure());
        let rendered = compiled.explain_sharded(&directed_path(6), 4);
        assert!(rendered.starts_with("shard plan: W = 4\n"), "{rendered}");
        // S(x,z) :- E(x,y), S(y,z) keeps the delta seed's second column in
        // its head, so keying S on position 1 makes the variant local.
        assert!(rendered.contains("shard[S←1, local]"), "{rendered}");
        assert!(rendered.contains("shard[E←1, edb]"), "{rendered}");
        assert!(
            rendered.contains("variants: 1 local, 0 exchange"),
            "{rendered}"
        );
    }

    #[test]
    fn tc_has_one_recursive_scc() {
        let p = programs::transitive_closure();
        let scc = SccInfo::of_program(&p);
        assert_eq!(scc.count(), 1);
        assert!(scc.is_recursive(0));
        assert_eq!(scc.members(0), &[0]);
    }

    #[test]
    fn mutual_recursion_is_one_component() {
        use crate::parser::parse_program;
        use kv_structures::Vocabulary;
        use std::sync::Arc;
        let src = "
            Odd(x, y) :- E(x, y).
            Odd(x, y) :- Even(x, z), E(z, y).
            Even(x, y) :- Odd(x, z), E(z, y).
            Tail(x, y) :- Even(x, y).
            ?- Tail.
        ";
        let p = parse_program(src, Arc::new(Vocabulary::graph())).unwrap();
        let scc = SccInfo::of_program(&p);
        assert_eq!(scc.count(), 2);
        // Odd/Even form one recursive component; Tail depends on it, so it
        // sits in a strictly later stratum.
        let odd_even = scc.component_of(0);
        assert_eq!(odd_even, scc.component_of(1));
        assert!(scc.is_recursive(odd_even));
        let tail = scc.component_of(2);
        assert_ne!(odd_even, tail);
        assert!(!scc.is_recursive(tail));
        assert!(odd_even < tail, "dependency must precede dependent");
    }

    #[test]
    fn q_kl_strata_order_q1_before_q2() {
        let p = programs::q_kl(2, 1);
        let scc = SccInfo::of_program(&p);
        // Q1 and Q2 are each self-recursive, so they form two singleton
        // recursive components; Q2 depends on Q1, so Q1's stratum comes
        // first.
        let (s1, s2) = (scc.component_of(0), scc.component_of(1));
        assert_ne!(s1, s2);
        assert!(s1 < s2, "Q1's stratum must precede Q2's");
        assert!(scc.is_recursive(s1));
        assert!(scc.is_recursive(s2));
    }

    #[test]
    fn planned_rules_start_with_delta_and_cover_all_atoms() {
        let p = programs::q_kl(2, 1);
        let compiled = CompiledProgram::compile(&p);
        let s = kv_structures::generators::random_digraph(10, 0.2, 11).to_structure();
        let plan = plan_program(&compiled, &s, JoinLowering::Auto);
        assert_eq!(plan.naive_rules.len(), compiled.naive_rules.len());
        assert_eq!(plan.semi_variants.len(), compiled.semi_variants.len());
        for (planned, textual) in plan.semi_variants.iter().zip(&compiled.semi_variants) {
            assert_eq!(planned.atoms.len(), textual.atoms.len());
            // The delta atom stays pinned first.
            if textual
                .atoms
                .first()
                .is_some_and(|a| a.access == IdbAccess::Delta)
            {
                assert_eq!(
                    planned.atoms[0].access,
                    IdbAccess::Delta,
                    "delta atom must stay pinned"
                );
            }
            // Same multiset of (pred, access) pairs — reordering only.
            let mut a: Vec<_> = planned.atoms.iter().map(|x| (x.pred, x.access)).collect();
            let mut b: Vec<_> = textual.atoms.iter().map(|x| (x.pred, x.access)).collect();
            a.sort_by_key(|(p, _)| format!("{p:?}"));
            b.sort_by_key(|(p, _)| format!("{p:?}"));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn explain_golden_for_transitive_closure() {
        let p = programs::transitive_closure();
        let compiled = CompiledProgram::compile(&p);
        let textual = compiled.explain();
        let expected_textual = "\
plan mode: textual
goal: S | 1 IDB(s), 2 rule(s), 1 semi-naive variant(s)
strata (1 SCCs, topological order):
  s0: S (recursive)
naive rules:
  n0: S ← E:scan
  n1: S ← E:scan, S:probe@0
semi-naive variants:
  v0: S ← ΔS:scan, E:probe@1
";
        assert_eq!(textual, expected_textual);

        let planned = compiled.explain_for(&directed_path(6));
        let expected_planned = "\
plan mode: cost-based
lowering: auto
structure: |A| = 6
edb E: 5 tuple(s), distinct [5, 5]
goal: S | 1 IDB(s), 2 rule(s), 1 semi-naive variant(s)
strata (1 SCCs, topological order):
  s0: S (recursive)
naive rules:
  n0: S ← E:scan
  n1: S ← E:scan, S:probe@0
semi-naive variants:
  v0: S ← ΔS:scan, E:probe@1
";
        assert_eq!(planned, expected_planned);
    }

    #[test]
    fn explain_golden_for_triangles_generic_join() {
        use kv_structures::generators::random_digraph;
        let p = programs::triangles();
        let compiled = CompiledProgram::compile(&p);
        let s = random_digraph(12, 0.25, 1).to_structure();
        // Auto flips the cyclic triangle body to the generic lowering: the
        // first E atom seeds (x, y), one variable step binds z by
        // intersecting the postings E@1 (of E(y, z)) and E@0 (of E(z, x)).
        let rendered = compiled.explain_for(&s);
        let expected = "\
plan mode: cost-based
lowering: auto
structure: |A| = 12
edb E: 32 tuple(s), distinct [11, 11]
goal: Tri | 1 IDB(s), 1 rule(s), 0 semi-naive variant(s)
strata (1 SCCs, topological order):
  s0: Tri
naive rules:
  n0: Tri ← E:seed, E:trie, E:trie | wcoj[v2←∩(E@1 E@0)]
semi-naive variants:
";
        assert_eq!(rendered, expected);
        // Forcing generic yields the same plan; forcing binary renders
        // ordinary kernels and no wcoj section.
        assert_eq!(
            compiled.explain_for_lowered(&s, JoinLowering::Generic),
            expected.replace("lowering: auto", "lowering: generic")
        );
        let binary = compiled.explain_for_lowered(&s, JoinLowering::Binary);
        assert!(!binary.contains("wcoj"), "{binary}");
        assert!(binary.contains("E:scan"), "{binary}");
    }

    #[test]
    fn auto_keeps_acyclic_and_recursive_bodies_binary() {
        // TC and Q_{2,1} bodies are GYO-acyclic or blow-up-free: Auto must
        // not flip them, so the planned bench numbers stay binary-kernel.
        for p in [programs::transitive_closure(), programs::q_kl(2, 1)] {
            let compiled = CompiledProgram::compile(&p);
            let rendered = compiled.explain_for(&directed_path(6));
            assert!(!rendered.contains("wcoj"), "{rendered}");
        }
    }

    #[test]
    fn explain_renders_neq_hoists_and_checks() {
        // Q_{2,1}'s recursive Q2 rule binds its whole head after the
        // delta and edge atoms, leaving the inner Q1 probe skippable.
        let p = programs::q_kl(2, 1);
        let compiled = CompiledProgram::compile(&p);
        let rendered = compiled.explain_for(&directed_path(5));
        assert!(rendered.contains("≠@["), "{rendered}");
        assert!(rendered.contains("head-check@"), "{rendered}");
    }
}
