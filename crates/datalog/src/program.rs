//! Programs: rule collections with an IDB signature and a goal predicate.

use crate::ast::{IdbId, Literal, Pred, Rule, Term};
use kv_structures::Vocabulary;
use std::fmt;
use std::sync::Arc;

/// A validated Datalog(≠) program over a fixed EDB vocabulary.
#[derive(Debug, Clone)]
pub struct Program {
    vocabulary: Arc<Vocabulary>,
    idbs: Vec<(String, usize)>,
    rules: Vec<Rule>,
    goal: IdbId,
}

/// Validation errors for programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// An IDB name collides with an EDB relation name.
    IdbShadowsEdb(String),
    /// Two IDB predicates share a name.
    DuplicateIdb(String),
    /// A rule refers to an IDB that does not exist.
    UnknownIdb(usize),
    /// An atom's argument count disagrees with its predicate's arity.
    ArityMismatch {
        /// Offending rule index.
        rule: usize,
        /// Predicate name.
        pred: String,
        /// Expected arity.
        expected: usize,
        /// Actual argument count.
        got: usize,
    },
    /// A rule mentions a variable id with no registered name.
    UnknownVariable {
        /// Offending rule index.
        rule: usize,
        /// Variable index.
        var: usize,
    },
    /// The goal predicate index is out of range.
    BadGoal(usize),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IdbShadowsEdb(n) => write!(f, "IDB predicate {n:?} shadows an EDB relation"),
            Self::DuplicateIdb(n) => write!(f, "duplicate IDB predicate {n:?}"),
            Self::UnknownIdb(i) => write!(f, "rule refers to unknown IDB #{i}"),
            Self::ArityMismatch {
                rule,
                pred,
                expected,
                got,
            } => write!(
                f,
                "rule #{rule}: predicate {pred} expects {expected} arguments, got {got}"
            ),
            Self::UnknownVariable { rule, var } => {
                write!(f, "rule #{rule}: variable #{var} has no name entry")
            }
            Self::BadGoal(i) => write!(f, "goal IDB #{i} out of range"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Builds and validates a program.
    pub fn new(
        vocabulary: Arc<Vocabulary>,
        idbs: Vec<(String, usize)>,
        rules: Vec<Rule>,
        goal: IdbId,
    ) -> Result<Self, ProgramError> {
        for (i, (name, _)) in idbs.iter().enumerate() {
            if vocabulary.relation_by_name(name).is_some() {
                return Err(ProgramError::IdbShadowsEdb(name.clone()));
            }
            if idbs[..i].iter().any(|(n, _)| n == name) {
                return Err(ProgramError::DuplicateIdb(name.clone()));
            }
        }
        if goal.0 >= idbs.len() {
            return Err(ProgramError::BadGoal(goal.0));
        }
        let p = Self {
            vocabulary,
            idbs,
            rules,
            goal,
        };
        for (ri, rule) in p.rules.iter().enumerate() {
            p.validate_rule(ri, rule)?;
        }
        Ok(p)
    }

    fn validate_rule(&self, ri: usize, rule: &Rule) -> Result<(), ProgramError> {
        let check_term = |t: &Term| -> Result<(), ProgramError> {
            match t {
                Term::Var(v) => {
                    if v.0 >= rule.var_names.len() {
                        return Err(ProgramError::UnknownVariable { rule: ri, var: v.0 });
                    }
                }
                Term::Const(c) => {
                    assert!(
                        c.0 < self.vocabulary.constant_count(),
                        "constant id out of vocabulary range"
                    );
                }
            }
            Ok(())
        };
        if rule.head.0 >= self.idbs.len() {
            return Err(ProgramError::UnknownIdb(rule.head.0));
        }
        let head_arity = self.idbs[rule.head.0].1;
        if rule.head_args.len() != head_arity {
            return Err(ProgramError::ArityMismatch {
                rule: ri,
                pred: self.idbs[rule.head.0].0.clone(),
                expected: head_arity,
                got: rule.head_args.len(),
            });
        }
        for t in &rule.head_args {
            check_term(t)?;
        }
        for lit in &rule.body {
            match lit {
                Literal::Atom(pred, args) => {
                    let (name, arity) = match pred {
                        Pred::Edb(r) => (
                            self.vocabulary.relation_name(*r).to_string(),
                            self.vocabulary.arity(*r),
                        ),
                        Pred::Idb(i) => {
                            if i.0 >= self.idbs.len() {
                                return Err(ProgramError::UnknownIdb(i.0));
                            }
                            (self.idbs[i.0].0.clone(), self.idbs[i.0].1)
                        }
                    };
                    if args.len() != arity {
                        return Err(ProgramError::ArityMismatch {
                            rule: ri,
                            pred: name,
                            expected: arity,
                            got: args.len(),
                        });
                    }
                    for t in args {
                        check_term(t)?;
                    }
                }
                Literal::Eq(a, b) | Literal::Neq(a, b) => {
                    check_term(a)?;
                    check_term(b)?;
                }
            }
        }
        Ok(())
    }

    /// The EDB vocabulary.
    pub fn vocabulary(&self) -> &Arc<Vocabulary> {
        &self.vocabulary
    }

    /// Number of IDB predicates.
    pub fn idb_count(&self) -> usize {
        self.idbs.len()
    }

    /// Name of IDB `i`.
    pub fn idb_name(&self, i: IdbId) -> &str {
        &self.idbs[i.0].0
    }

    /// Arity of IDB `i`.
    pub fn idb_arity(&self, i: IdbId) -> usize {
        self.idbs[i.0].1
    }

    /// Looks up an IDB by name.
    pub fn idb_by_name(&self, name: &str) -> Option<IdbId> {
        self.idbs.iter().position(|(n, _)| n == name).map(IdbId)
    }

    /// The rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The goal predicate.
    pub fn goal(&self) -> IdbId {
        self.goal
    }

    /// Whether this is a plain Datalog program (no equalities or
    /// inequalities in any rule body).
    pub fn is_pure_datalog(&self) -> bool {
        self.rules.iter().all(Rule::is_pure_datalog)
    }

    /// The maximum number of distinct variables in any rule (the `l` of
    /// Theorem 3.6's variable accounting).
    pub fn max_rule_vars(&self) -> usize {
        self.rules.iter().map(Rule::var_count).max().unwrap_or(0)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            let const_name =
                |c: kv_structures::ConstId| self.vocabulary.constant_name(c).to_string();
            let write_term = |t: &Term, f: &mut fmt::Formatter<'_>| -> fmt::Result {
                crate::ast::fmt_term(t, &rule.var_names, &const_name, f)
            };
            write!(f, "{}(", self.idbs[rule.head.0].0)?;
            for (i, t) in rule.head_args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_term(t, f)?;
            }
            write!(f, ")")?;
            if !rule.body.is_empty() {
                write!(f, " :- ")?;
                for (i, lit) in rule.body.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match lit {
                        Literal::Atom(pred, args) => {
                            let name = match pred {
                                Pred::Edb(r) => self.vocabulary.relation_name(*r),
                                Pred::Idb(i) => &self.idbs[i.0].0,
                            };
                            write!(f, "{name}(")?;
                            for (j, t) in args.iter().enumerate() {
                                if j > 0 {
                                    write!(f, ", ")?;
                                }
                                write_term(t, f)?;
                            }
                            write!(f, ")")?;
                        }
                        Literal::Eq(a, b) => {
                            write_term(a, f)?;
                            write!(f, " = ")?;
                            write_term(b, f)?;
                        }
                        Literal::Neq(a, b) => {
                            write_term(a, f)?;
                            write!(f, " != ")?;
                            write_term(b, f)?;
                        }
                    }
                }
            }
            writeln!(f, ".")?;
        }
        writeln!(f, "?- {}.", self.idbs[self.goal.0].0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::VarId;
    use kv_structures::RelId;

    fn tc_program() -> Program {
        let vocab = Arc::new(Vocabulary::graph());
        let (x, y, z) = (VarId(0), VarId(1), VarId(2));
        let rules = vec![
            Rule {
                head: IdbId(0),
                head_args: vec![Term::Var(x), Term::Var(y)],
                body: vec![Literal::Atom(
                    Pred::Edb(RelId(0)),
                    vec![Term::Var(x), Term::Var(y)],
                )],
                var_names: vec!["x".into(), "y".into()],
            },
            Rule {
                head: IdbId(0),
                head_args: vec![Term::Var(x), Term::Var(y)],
                body: vec![
                    Literal::Atom(Pred::Edb(RelId(0)), vec![Term::Var(x), Term::Var(z)]),
                    Literal::Atom(Pred::Idb(IdbId(0)), vec![Term::Var(z), Term::Var(y)]),
                ],
                var_names: vec!["x".into(), "y".into(), "z".into()],
            },
        ];
        Program::new(vocab, vec![("S".into(), 2)], rules, IdbId(0)).unwrap()
    }

    #[test]
    fn builds_and_classifies() {
        let p = tc_program();
        assert!(p.is_pure_datalog());
        assert_eq!(p.idb_count(), 1);
        assert_eq!(p.idb_arity(IdbId(0)), 2);
        assert_eq!(p.max_rule_vars(), 3);
        assert_eq!(p.idb_by_name("S"), Some(IdbId(0)));
    }

    #[test]
    fn display_roundtrip_text() {
        let p = tc_program();
        let text = p.to_string();
        assert!(text.contains("S(x, y) :- E(x, y)."));
        assert!(text.contains("S(x, y) :- E(x, z), S(z, y)."));
        assert!(text.contains("?- S."));
    }

    #[test]
    fn rejects_idb_shadowing_edb() {
        let vocab = Arc::new(Vocabulary::graph());
        let err = Program::new(vocab, vec![("E".into(), 2)], vec![], IdbId(0)).unwrap_err();
        assert_eq!(err, ProgramError::IdbShadowsEdb("E".into()));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let vocab = Arc::new(Vocabulary::graph());
        let bad = Rule {
            head: IdbId(0),
            head_args: vec![Term::Var(VarId(0))],
            body: vec![Literal::Atom(
                Pred::Edb(RelId(0)),
                vec![Term::Var(VarId(0))], // E is binary
            )],
            var_names: vec!["x".into()],
        };
        let err = Program::new(vocab, vec![("P".into(), 1)], vec![bad], IdbId(0)).unwrap_err();
        assert!(matches!(err, ProgramError::ArityMismatch { .. }));
    }

    #[test]
    fn rejects_bad_goal() {
        let vocab = Arc::new(Vocabulary::graph());
        let err = Program::new(vocab, vec![("P".into(), 1)], vec![], IdbId(3)).unwrap_err();
        assert_eq!(err, ProgramError::BadGoal(3));
    }

    #[test]
    fn rejects_unknown_variable() {
        let vocab = Arc::new(Vocabulary::graph());
        let bad = Rule {
            head: IdbId(0),
            head_args: vec![Term::Var(VarId(5))],
            body: vec![],
            var_names: vec!["x".into()],
        };
        let err = Program::new(vocab, vec![("P".into(), 1)], vec![bad], IdbId(0)).unwrap_err();
        assert!(matches!(err, ProgramError::UnknownVariable { .. }));
    }
}
