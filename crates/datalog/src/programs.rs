//! The paper's program library.
//!
//! - [`transitive_closure`]: Example 2.2;
//! - [`triangles`]: the directed-triangle query, the canonical cyclic body
//!   exercising the worst-case-optimal join lowering;
//! - [`avoiding_path`]: Example 2.1's `T(x, y, w)`;
//! - [`q_prime`]: the warm-up query `Q'(s, s1, s2)` of Theorem 6.1;
//! - [`q_kl`]: the general program family `Q_{k,l}` of Theorem 6.1 —
//!   `k` node-disjoint simple paths from `s` to `s1, …, sk`, all avoiding
//!   the forbidden nodes `t1, …, tl`;
//! - [`two_disjoint_paths_acyclic`]: the program `D` of Theorem 6.2 for the
//!   two node-disjoint paths query on acyclic inputs.
//!
//! The `Q_{k,l}` construction follows the paper's induction exactly: the
//! program for `Q_{k,l}` contains one IDB `Q_j` (arity `1 + k + l` for
//! every `j`) per level `j = 1, …, k`, where level `j` carries
//! `l + (k - j)` forbidden-node arguments.

// Every program in this module is fixed (or generated) text that parses
// by construction; the `expect`s are compile-time-style assertions.
#![allow(clippy::expect_used)]

use crate::parser::parse_program;
use crate::program::Program;
use kv_structures::Vocabulary;
use std::fmt::Write as _;
use std::sync::Arc;

/// Example 2.2: transitive closure, a pure Datalog program.
///
/// ```text
/// S(x, y) :- E(x, y).
/// S(x, y) :- E(x, z), S(z, y).
/// ```
pub fn transitive_closure() -> Program {
    parse_program(
        "S(x, y) :- E(x, y).\nS(x, y) :- E(x, z), S(z, y).\n?- S.",
        Arc::new(Vocabulary::graph()),
    )
    .expect("static program parses")
}

/// The directed-triangle query: the canonical cyclic conjunctive body on
/// which every binary join order is asymptotically worse than the AGM
/// output bound, so the cost-based planner's worst-case-optimal generic
/// lowering should engage under [`kv_structures::JoinLowering::Auto`].
///
/// ```text
/// Tri(x, y, z) :- E(x, y), E(y, z), E(z, x).
/// ```
pub fn triangles() -> Program {
    parse_program(
        "Tri(x, y, z) :- E(x, y), E(y, z), E(z, x).\n?- Tri.",
        Arc::new(Vocabulary::graph()),
    )
    .expect("static program parses")
}

/// Example 2.1: `T(x, y, w)` — "is there a (nonempty) `w`-avoiding path
/// from `x` to `y`?". The inequalities make this Datalog(≠) but not
/// Datalog.
pub fn avoiding_path() -> Program {
    parse_program(
        "T(x, y, w) :- E(x, y), w != x, w != y.\n\
         T(x, y, w) :- E(x, z), T(z, y, w), w != x.\n\
         ?- T.",
        Arc::new(Vocabulary::graph()),
    )
    .expect("static program parses")
}

/// Theorem 6.1's warm-up: `Q'(s, s1, s2)` — "is there a path
/// `w1 = s, …, wm = s2` such that every `wi` (`i ≥ 2`) admits a
/// `wi`-avoiding path from `s` to `s1`?", which by Menger's theorem holds
/// iff there are node-disjoint simple paths from `s` to `s1` and to `s2`.
///
/// The paper treats `T` as an EDB for presentation; here the program simply
/// contains the `T` rules alongside the `Q'` rules.
pub fn q_prime() -> Program {
    parse_program(
        "T(x, y, w) :- E(x, y), w != x, w != y.\n\
         T(x, y, w) :- E(x, z), T(z, y, w), w != x.\n\
         Qp(s, s1, s2) :- E(s, s2), T(s, s1, s2).\n\
         Qp(s, s1, s2) :- Qp(s, s1, w), E(w, s2), T(s, s1, s2).\n\
         ?- Qp.",
        Arc::new(Vocabulary::graph()),
    )
    .expect("static program parses")
}

/// The program family of Theorem 6.1: `Q_{k,l}(s, s1, …, sk, t1, …, tl)`
/// holds iff there are `k` pairwise node-disjoint (sharing only `s`)
/// nonempty simple paths from `s` to `s1, …, sk`, each avoiding all of
/// `t1, …, tl`.
///
/// The goal predicate is `Qk`, of arity `1 + k + l`.
///
/// ```
/// use kv_datalog::{programs::q_kl, Evaluator};
/// use kv_structures::Digraph;
///
/// // 0 -> 1 -> 2 and 0 -> 3 -> 4: a disjoint 2-fan from 0 to {2, 4}.
/// let mut g = Digraph::new(5);
/// for (u, v) in [(0, 1), (1, 2), (0, 3), (3, 4)] {
///     g.add_edge(u, v);
/// }
/// let rel = Evaluator::new(&q_kl(2, 0)).goal(&g.to_structure());
/// assert!(rel.contains(&[0u32, 2, 4][..]));
/// assert!(!rel.contains(&[0u32, 1, 2][..])); // 2's path needs node 1
/// ```
///
/// # Panics
/// Panics if `k == 0`.
pub fn q_kl(k: usize, l: usize) -> Program {
    let mut src = q_kl_source(k, l, "Q", false);
    let _ = writeln!(src, "?- Q{k}.");
    parse_program(&src, Arc::new(Vocabulary::graph())).expect("generated Q_kl parses")
}

/// The rule text of the `Q_{k,l}` family with a custom IDB name prefix
/// (level `j` is named `<prefix><j>`), without a goal directive — the
/// building block used by `kv-homeo` to assemble class-`C` programs that
/// need several instantiations side by side. With `reversed` set, every
/// edge atom `E(a, b)` is emitted as `E(b, a)`, yielding the fan *into*
/// the source (the class-`C` in-orientation).
pub fn q_kl_source(k: usize, l: usize, prefix: &str, reversed: bool) -> String {
    let e = |a: &str, b: &str| -> String {
        if reversed {
            format!("E({b}, {a})")
        } else {
            format!("E({a}, {b})")
        }
    };
    assert!(k >= 1, "Q_{{k,l}} needs k >= 1");
    let mut src = String::new();
    // Level j has j targets and m = l + (k - j) forbidden nodes.
    for j in 1..=k {
        let m = l + (k - j);
        let targets: Vec<String> = (1..=j).map(|i| format!("s{i}")).collect();
        let avoids: Vec<String> = (1..=m).map(|i| format!("t{i}")).collect();
        let head_args = |ts: &[String], avs: &[String]| -> String {
            let mut v = vec!["s".to_string()];
            v.extend(ts.iter().cloned());
            v.extend(avs.iter().cloned());
            v.join(", ")
        };
        if j == 1 {
            // Base: Q1(s, s1, t…) — a t-avoiding nonempty path from s to s1.
            let args = head_args(&targets, &avoids);
            let mut base = format!("{prefix}1({args}) :- {}", e("s", "s1"));
            for t in &avoids {
                let _ = write!(base, ", s != {t}, s1 != {t}");
            }
            let _ = writeln!(src, "{base}.");
            // Recursive: extend the path by one edge.
            let mut mid = vec!["s".to_string(), "w".to_string()];
            mid.extend(avoids.iter().cloned());
            let mut rec = format!(
                "{prefix}1({args}) :- {prefix}1({}), {}",
                mid.join(", "),
                e("w", "s1")
            );
            for t in &avoids {
                let _ = write!(rec, ", s1 != {t}");
            }
            let _ = writeln!(src, "{rec}.");
        } else {
            // Q_j(s, s1…sj, t…) per the paper's induction. The inner
            // Q_{j-1} atom receives the current path node as an extra
            // forbidden node (position t1 of level j-1's avoid list).
            let args = head_args(&targets, &avoids);
            // Inner atom args: s, s1..s_{j-1}, <avoid := sj or w>, t…
            let inner = |extra: &str| -> String {
                let mut v = vec!["s".to_string()];
                v.extend(targets[..j - 1].iter().cloned());
                v.push(extra.to_string());
                v.extend(avoids.iter().cloned());
                format!("{}{}({})", prefix, j - 1, v.join(", "))
            };
            // Endpoint guards: the new target must avoid the forbidden
            // nodes (the walk's earlier nodes are guarded inductively by
            // occupying this same position in the recursive atom).
            let mut guards = String::new();
            for t in &avoids {
                let _ = write!(guards, ", s{j} != {t}");
            }
            // Base rule: the path to sj is the single edge s -> sj.
            let _ = writeln!(
                src,
                "{prefix}{j}({args}) :- {}{guards}, {}.",
                e("s", &format!("s{j}")),
                inner(&format!("s{j}"))
            );
            // Recursive rule: extend the path to sj through w.
            let mut walk = vec!["s".to_string()];
            walk.extend(targets[..j - 1].iter().cloned());
            walk.push("w".to_string());
            walk.extend(avoids.iter().cloned());
            let _ = writeln!(
                src,
                "{prefix}{j}({args}) :- {prefix}{j}({}), {}{guards}, {}.",
                walk.join(", "),
                e("w", &format!("s{j}")),
                inner(&format!("s{j}")),
            );
        }
    }
    src
}

/// The **path systems** query of Cook (the paper's Section 1 reference for
/// Datalog capturing PTIME-complete problems): over the vocabulary
/// `{R/3, A/1}` — `R(x, y, z)` says "`x` is derivable from `y` and `z`",
/// `A(x)` says "`x` is an axiom" — the accessible atoms are the least set
/// containing the axioms and closed under the rules:
///
/// ```text
/// Acc(x) :- A(x).
/// Acc(x) :- R(x, y, z), Acc(y), Acc(z).
/// ```
///
/// A pure Datalog program with a nonlinear rule (two recursive atoms).
pub fn path_systems() -> Program {
    let mut v = Vocabulary::new();
    v.add_relation("R", 3);
    v.add_relation("A", 1);
    parse_program(
        "Acc(x) :- A(x).\nAcc(x) :- R(x, y, z), Acc(y), Acc(z).\n?- Acc.",
        Arc::new(v),
    )
    .expect("static program parses")
}

/// The vocabulary of the Theorem 6.2 programs: `{E/2}` with constants
/// `s1, t1, s2, t2` (in that order).
pub fn two_pairs_vocabulary() -> Vocabulary {
    let mut v = Vocabulary::graph();
    v.add_constant("s1");
    v.add_constant("t1");
    v.add_constant("s2");
    v.add_constant("t2");
    v
}

/// Theorem 6.2's program `D` for the **two node-disjoint paths** query on
/// acyclic inputs: does `G` contain node-disjoint simple paths from `s1` to
/// `t1` and from `s2` to `t2` (all four distinguished nodes distinct)?
///
/// `D(x, y)` computes the value of the paper's **two-player** pebble game:
/// the position with pebble 1 on `x` and pebble 2 on `y` is winning for
/// Player II iff, *whichever pebble Player I points at*, Player II has a
/// move to a winning position. That "for both pebbles … exists a move" is
/// an AND of two ORs — expressible in Datalog(≠) because a rule body may
/// contain **two** recursive `D` atoms (the AND) while the rule set
/// provides the alternatives (the ORs): four rules cover the
/// {advance p1 / retire p1} × {advance p2 / retire p2} combinations, with
/// `W1`/`W2` handling the endgames where one pebble is already removed.
///
/// Note: the extended abstract prints a 3-rule program whose rules each
/// contain a *single* recursive atom; that version computes the
/// *cooperative* (single-player, undisciplined) game, which
/// overapproximates — see [`two_disjoint_paths_paper_rules`] and the
/// 5-node counterexample exercised in `kv-homeo`'s tests. The AND-OR
/// program here matches the two-player game the paper's proof actually
/// analyzes.
pub fn two_disjoint_paths_acyclic() -> Program {
    parse_program(
        "W1(x) :- E(x, t1).\n\
         W1(x) :- E(x, xp), xp != s1, xp != s2, xp != t1, xp != t2, W1(xp).\n\
         W2(y) :- E(y, t2).\n\
         W2(y) :- E(y, yp), yp != s1, yp != s2, yp != t1, yp != t2, W2(yp).\n\
         D(x, y) :- E(x, t1), W2(y), E(y, t2), W1(x).\n\
         D(x, y) :- E(x, t1), W2(y), E(y, yp), yp != s1, yp != s2, yp != t1, yp != t2, yp != x, D(x, yp).\n\
         D(x, y) :- E(x, xp), xp != s1, xp != s2, xp != t1, xp != t2, xp != y, D(xp, y), E(y, t2), W1(x).\n\
         D(x, y) :- E(x, xp), xp != s1, xp != s2, xp != t1, xp != t2, xp != y, D(xp, y), E(y, yp), yp != s1, yp != s2, yp != t1, yp != t2, yp != x, D(x, yp).\n\
         Result() :- D(s1, s2).\n\
         ?- Result.",
        Arc::new(two_pairs_vocabulary()),
    )
    .expect("static program parses")
}

/// The 3-rule program printed in the extended abstract (reconstructed from
/// the scan). Each rule advances one pebble and carries a *single*
/// recursive atom, so the least fixpoint is plain reachability in the
/// *cooperative* game: `D(x, y)` holds iff **some interleaving** of pebble
/// moves reaches `(t1, t2)`. That is weaker than the two-player value —
/// a pebble may traverse a node the other pebble merely *used to* occupy.
/// Kept for the reproduction record; see experiment E13.
pub fn two_disjoint_paths_paper_rules() -> Program {
    parse_program(
        "D(t1, t2).\n\
         D(x, y) :- E(y, yp), D(x, yp), yp != x, yp != s1, yp != s2, yp != t1.\n\
         D(x, y) :- E(x, xp), D(xp, y), xp != y, xp != s1, xp != s2, xp != t2.\n\
         ?- D.",
        Arc::new(two_pairs_vocabulary()),
    )
    .expect("static program parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use kv_structures::generators::random_digraph;
    use kv_structures::{ConstId, Tuple};

    #[test]
    fn tc_is_pure_datalog_but_t_is_not() {
        assert!(transitive_closure().is_pure_datalog());
        assert!(!avoiding_path().is_pure_datalog());
        assert!(!q_prime().is_pure_datalog());
    }

    #[test]
    fn q_kl_generates_k_levels() {
        let p = q_kl(3, 1);
        assert_eq!(p.idb_count(), 3);
        for j in 1..=3usize {
            let idb = p.idb_by_name(&format!("Q{j}")).unwrap();
            assert_eq!(p.idb_arity(idb), 1 + 3 + 1, "all levels share arity");
        }
        assert_eq!(p.idb_name(p.goal()), "Q3");
    }

    #[test]
    fn q_1_0_is_plain_reachability() {
        let p = q_kl(1, 0);
        for seed in 0..4 {
            let g = random_digraph(7, 0.25, seed);
            let s = g.to_structure();
            let rel = Evaluator::new(&p).goal(&s);
            for x in 0..7u32 {
                for y in 0..7u32 {
                    let expected = kv_graphalg::avoiding_path(&g, x, y, &[]);
                    let got = rel.contains(&[x, y][..]);
                    assert_eq!(got, expected, "Q1({x},{y}) seed {seed}");
                }
            }
        }
    }

    #[test]
    fn q_1_1_matches_avoiding_path() {
        let p = q_kl(1, 1);
        let g = random_digraph(7, 0.3, 11);
        let s = g.to_structure();
        let rel = Evaluator::new(&p).goal(&s);
        for x in 0..7u32 {
            for y in 0..7u32 {
                for t in 0..7u32 {
                    let expected = kv_graphalg::avoiding_path(&g, x, y, &[t]);
                    let got = rel.contains(&[x, y, t][..]);
                    assert_eq!(got, expected, "Q1({x},{y}|{t})");
                }
            }
        }
    }

    #[test]
    fn q_2_0_matches_disjoint_fan_on_random_graphs() {
        let p = q_kl(2, 0);
        for seed in 0..6 {
            let g = random_digraph(7, 0.3, 20 + seed);
            let s = g.to_structure();
            let rel = Evaluator::new(&p).goal(&s);
            for src in 0..7u32 {
                for a in 0..7u32 {
                    for b in 0..7u32 {
                        if src == a || src == b || a == b {
                            continue;
                        }
                        let expected =
                            kv_graphalg::disjoint::has_disjoint_fan(&g, src, &[a, b], &[]);
                        let got = rel.contains(&[src, a, b][..]);
                        assert_eq!(got, expected, "Q2({src};{a},{b}) seed {}", 20 + seed);
                    }
                }
            }
        }
    }

    #[test]
    fn q_prime_agrees_with_q_2_0() {
        let qp = q_prime();
        let q20 = q_kl(2, 0);
        for seed in 0..4 {
            let g = random_digraph(6, 0.35, 40 + seed);
            let s = g.to_structure();
            let rel_qp = Evaluator::new(&qp).goal(&s);
            let rel_q2 = Evaluator::new(&q20).goal(&s);
            for src in 0..6u32 {
                for a in 0..6u32 {
                    for b in 0..6u32 {
                        if src == a || src == b || a == b {
                            continue;
                        }
                        // Q' lists targets as (s, s1, s2) with s2 the
                        // fan-out via Qp's walk; Q2 as (s, s1, s2).
                        let t: Tuple = vec![src, a, b].into_boxed_slice();
                        assert_eq!(rel_qp.contains(&t), rel_q2.contains(&t));
                    }
                }
            }
        }
    }

    #[test]
    fn two_disjoint_paths_program_parses_with_constants() {
        let p = two_disjoint_paths_acyclic();
        assert_eq!(p.idb_count(), 4); // W1, W2, D, Result
        assert_eq!(p.vocabulary().constant_count(), 4);
        assert_eq!(p.vocabulary().constant_name(ConstId(0)), "s1");
        assert_eq!(p.vocabulary().constant_name(ConstId(3)), "t2");
        assert_eq!(p.idb_name(p.goal()), "Result");
        let paper = two_disjoint_paths_paper_rules();
        assert_eq!(paper.idb_count(), 1);
    }

    #[test]
    fn and_or_program_on_hand_instances() {
        use kv_structures::Digraph;
        let p = two_disjoint_paths_acyclic();
        // Disjoint routes: s1=0 -> 4 -> t1=1, s2=2 -> 5 -> t2=3.
        let mut g = Digraph::new(6);
        g.add_edge(0, 4);
        g.add_edge(4, 1);
        g.add_edge(2, 5);
        g.add_edge(5, 3);
        g.set_distinguished(vec![0, 1, 2, 3]);
        let s = g.to_structure_with(Arc::new(two_pairs_vocabulary()));
        assert!(Evaluator::new(&p).holds(&s, &[]));
        // Shared midpoint: s1=0 -> 4 -> t1=1, s2=2 -> 4 -> t2=3.
        let mut h = Digraph::new(5);
        h.add_edge(0, 4);
        h.add_edge(4, 1);
        h.add_edge(2, 4);
        h.add_edge(4, 3);
        h.set_distinguished(vec![0, 1, 2, 3]);
        let sh = h.to_structure_with(Arc::new(two_pairs_vocabulary()));
        assert!(!Evaluator::new(&p).holds(&sh, &[]));
        // The scanned 3-rule version wrongly accepts the shared midpoint.
        let paper = two_disjoint_paths_paper_rules();
        let goal = Evaluator::new(&paper).goal(&sh);
        assert!(
            goal.contains(&[0u32, 2][..]),
            "cooperative relaxation accepts the counterexample"
        );
    }

    #[test]
    fn path_systems_matches_direct_fixpoint() {
        use kv_structures::SplitMix64;
        use kv_structures::{RelId, Structure};
        let p = path_systems();
        for seed in 0..6u64 {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let n = 10u32;
            let mut s = Structure::new(Arc::clone(p.vocabulary()), n as usize);
            // Random rules and axioms.
            for _ in 0..18 {
                let t = [
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                ];
                s.insert(RelId(0), &t);
            }
            for _ in 0..2 {
                s.insert(RelId(1), &[rng.gen_range(0..n)]);
            }
            // Direct least-fixpoint computation.
            let mut acc = vec![false; n as usize];
            for t in s.relation(RelId(1)).iter() {
                acc[t[0] as usize] = true;
            }
            loop {
                let mut changed = false;
                for t in s.relation(RelId(0)).iter() {
                    if !acc[t[0] as usize] && acc[t[1] as usize] && acc[t[2] as usize] {
                        acc[t[0] as usize] = true;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            let rel = Evaluator::new(&p).goal(&s);
            for x in 0..n {
                assert_eq!(
                    rel.contains(&[x][..]),
                    acc[x as usize],
                    "Acc({x}) seed {seed}"
                );
            }
        }
    }
}
