//! Sharded (hash-partitioned, owner-computes) stage execution.
//!
//! Sharding partitions each stage's *delta* across `W` workers by tuple
//! ownership — [`kv_structures::shard_of`] over one planner-chosen key
//! position per predicate — instead of partitioning rules. Every worker
//! runs the full live-rule set of the stage, but its [`JoinCtx`] narrows
//! each pinned `Δ` window to the worker's owner sub-range, so the workers'
//! derivation sets partition the stage's derivations exactly (each
//! semi-naive variant pins exactly one delta atom, and each delta tuple
//! has exactly one owner). Derived tuples are then routed *by the owner of
//! the derived tuple*: tuples a worker owns stay local, the rest cross the
//! [`DeltaExchange`] at the stage barrier. The merge drains exchange
//! inboxes in (owner, sender) order, which keeps every committed delta
//! owner-contiguous — the next stage's sub-ranges are just id ranges, and
//! resuming from a checkpoint recomputes them by scanning owners.
//!
//! The global stage loop — and with it the paper's Theorem 3.6 stage
//! semantics — is untouched: the stage barrier is the only synchronization
//! point, the merge is still a set union, and the committed stage sets are
//! identical for every `W` (pinned by `tests/sharded.rs` across programs ×
//! lowerings × magic binding patterns × W ∈ {1, 2, 4, 8}).

use crate::ast::{Pred, Term};
use crate::eval::{CompiledRule, IdbAccess, WorkerBuf};
use kv_structures::mutable::InsertOutcome;
use kv_structures::shard::{shard_of, DeltaExchange, ShardKey};
use kv_structures::{CardStats, Element, IdRange, MutableStore, TupleStore};

/// Aggregate statistics of one sharded run, surfaced on
/// [`EvalResult`](crate::EvalResult) (and folded into bench reports as
/// `exchanged_tuples` / `shard_skew_pct`).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Worker (shard) count the run executed with.
    pub workers: usize,
    /// The shard key position chosen per IDB predicate.
    pub idb_keys: Vec<usize>,
    /// Tuples that crossed worker boundaries through the delta exchange.
    pub exchanged_tuples: u64,
    /// Delta tuples merged under each worker's ownership, across all
    /// stages — the load-balance signal behind
    /// [`skew_pct`](Self::skew_pct).
    pub owned: Vec<u64>,
    /// Semi-naive rule variants whose head lands on the same owner as
    /// their delta seed (no exchange needed).
    pub local_variants: usize,
    /// Semi-naive rule variants that must route derivations through the
    /// exchange.
    pub exchange_variants: usize,
}

impl ShardStats {
    /// Load skew: how far the most loaded worker sits above the mean, in
    /// percent (0 = perfectly balanced).
    pub fn skew_pct(&self) -> f64 {
        let total: u64 = self.owned.iter().sum();
        let max = self.owned.iter().copied().max().unwrap_or(0);
        if total == 0 || self.workers == 0 {
            return 0.0;
        }
        let avg = total as f64 / self.workers as f64;
        (max as f64 / avg - 1.0) * 100.0
    }
}

/// The shard-key assignment for one run: one key position per IDB and per
/// EDB predicate, plus per-variant locality verdicts.
#[derive(Debug, Clone)]
pub(crate) struct ShardPlan {
    pub(crate) idb_keys: Vec<ShardKey>,
    pub(crate) edb_keys: Vec<ShardKey>,
    /// Per semi-naive variant: does its head land on its delta seed's
    /// owner (derivations never cross the exchange)?
    pub(crate) local: Vec<bool>,
}

/// The pinned delta atom of a semi-naive variant (each variant has at most
/// one; naive and fact rules have none).
fn delta_atom(rule: &CompiledRule) -> Option<&crate::eval::JoinAtom> {
    rule.atoms.iter().find(|a| a.access == IdbAccess::Delta)
}

/// Whether `rule`'s derivations stay on their delta seed's owner under the
/// given key assignment: the head's key-position argument is the same
/// variable as the delta atom's key-position argument, so both hash to the
/// same worker.
fn rule_is_local(rule: &CompiledRule, idb_keys: &[ShardKey], edb_keys: &[ShardKey]) -> bool {
    let Some(delta) = delta_atom(rule) else {
        return false;
    };
    let delta_key = match delta.pred {
        Pred::Idb(i) => idb_keys[i.0],
        Pred::Edb(r) => edb_keys[r.0],
    };
    let head_key = idb_keys[rule.head.0];
    match (
        rule.head_args.get(head_key.pos),
        delta.args.get(delta_key.pos),
    ) {
        (Some(Term::Var(h)), Some(Term::Var(d))) => h == d,
        _ => false,
    }
}

/// Estimated distinct values flowing into head position `pos` of `pred`'s
/// variants: the widest EDB posting feeding that head variable. Used as a
/// balance tie-break — a key position with more distinct values spreads
/// tuples across more workers.
fn distinct_estimate(
    variants: &[&CompiledRule],
    pred: usize,
    pos: usize,
    edb_stats: &[CardStats],
) -> usize {
    let mut best = 0usize;
    for rule in variants {
        if rule.head.0 != pred {
            continue;
        }
        let Some(Term::Var(v)) = rule.head_args.get(pos) else {
            continue;
        };
        for atom in &rule.atoms {
            let Pred::Edb(r) = atom.pred else { continue };
            for (q, arg) in atom.args.iter().enumerate() {
                if arg == &Term::Var(*v) {
                    if let Some(stats) = edb_stats.get(r.0) {
                        best = best.max(stats.distinct.get(q).copied().unwrap_or(0));
                    }
                }
            }
        }
    }
    best
}

/// Chooses shard keys for every predicate: a pure function of the compiled
/// variants and the EDB statistics (so interrupted runs re-derive the
/// identical plan on resume). Greedy coordinate ascent — for each
/// predicate pick the position making the most producing variants local
/// under the current assignment, tie-broken toward higher estimated
/// distinct counts — iterated a few sweeps so locality decisions
/// propagate through predicate dependencies.
pub(crate) fn choose_plan(
    semi_variants: &[CompiledRule],
    edb_variants: &[CompiledRule],
    idb_arities: &[usize],
    edb_arities: &[usize],
    edb_stats: &[CardStats],
) -> ShardPlan {
    let all: Vec<&CompiledRule> = semi_variants.iter().chain(edb_variants).collect();
    let mut idb_keys: Vec<ShardKey> = idb_arities.iter().map(|_| ShardKey::FALLBACK).collect();
    // EDB keys: start from the widest position (best balance); refined
    // below only for relations that seed delta variants.
    let mut edb_keys: Vec<ShardKey> = edb_arities
        .iter()
        .enumerate()
        .map(|(r, &arity)| {
            let pos = (0..arity)
                .max_by_key(|&p| edb_stats.get(r).map_or(0, |s| s.distinct[p]))
                .unwrap_or(0);
            ShardKey::at(pos)
        })
        .collect();
    for _sweep in 0..3 {
        for (p, &arity) in idb_arities.iter().enumerate() {
            if arity == 0 {
                continue;
            }
            let mut best = (0usize, 0usize, ShardKey::FALLBACK.pos);
            for pos in 0..arity {
                let mut trial = idb_keys.clone();
                trial[p] = ShardKey::at(pos);
                let local = all
                    .iter()
                    .filter(|r| r.head.0 == p && rule_is_local(r, &trial, &edb_keys))
                    .count();
                let spread = distinct_estimate(&all, p, pos, edb_stats);
                if (local, spread) > (best.0, best.1) {
                    best = (local, spread, pos);
                }
            }
            idb_keys[p] = ShardKey::at(best.2);
        }
        for rule in &all {
            // Align each delta-seeding EDB relation's key with the head
            // key of the variant it seeds, when that makes the variant
            // local and no earlier variant claimed a conflicting position.
            let Some(delta) = delta_atom(rule) else {
                continue;
            };
            let Pred::Edb(r) = delta.pred else { continue };
            let Some(Term::Var(h)) = rule.head_args.get(idb_keys[rule.head.0].pos) else {
                continue;
            };
            if let Some(pos) = delta.args.iter().position(|arg| arg == &Term::Var(*h)) {
                edb_keys[r.0] = ShardKey::at(pos);
            }
        }
    }
    let local = semi_variants
        .iter()
        .map(|r| rule_is_local(r, &idb_keys, &edb_keys))
        .collect();
    ShardPlan {
        idb_keys,
        edb_keys,
        local,
    }
}

/// Mutable sharded-run state carried across stages by the stage loop.
#[derive(Debug)]
pub(crate) struct ShardState {
    pub(crate) workers: usize,
    pub(crate) plan: ShardPlan,
    /// `ranges[w][pred]`: worker `w`'s owned sub-range of each IDB's
    /// current delta window. Owner-contiguous by construction of the
    /// merge; recomputed by owner scan when resuming from a checkpoint.
    pub(crate) ranges: Vec<Vec<IdRange>>,
    /// Tuples merged under each worker's ownership, across stages.
    pub(crate) owned: Vec<u64>,
    /// Tuples that crossed worker boundaries at stage barriers.
    pub(crate) exchanged: u64,
}

impl ShardState {
    pub(crate) fn stats(&self) -> ShardStats {
        let local_variants = self.plan.local.iter().filter(|&&l| l).count();
        ShardStats {
            workers: self.workers,
            idb_keys: self.plan.idb_keys.iter().map(|k| k.pos).collect(),
            exchanged_tuples: self.exchanged,
            owned: self.owned.clone(),
            local_variants,
            exchange_variants: self.plan.local.len() - local_variants,
        }
    }

    /// Folds a stage's committed owner ranges into the per-worker load
    /// counters and installs them as the next stage's delta sub-ranges.
    pub(crate) fn commit_stage(&mut self, next: Vec<Vec<IdRange>>) {
        for (w, per_pred) in next.iter().enumerate() {
            self.owned[w] += per_pred
                .iter()
                .map(|r| u64::from(r.end.saturating_sub(r.start)))
                .sum::<u64>();
        }
        self.ranges = next;
    }
}

/// Splits each store's delta window `[delta_lo, len)` into per-worker
/// owner sub-ranges. Deltas committed by a sharded merge are
/// owner-contiguous, so the scan finds monotone owner boundaries; a delta
/// committed by some *other* configuration (an unsharded checkpoint, a
/// different W) falls back to assigning the whole window to worker 0 —
/// correct for one stage, after which the merge restores owner order.
pub(crate) fn delta_ranges(
    stores: &[&TupleStore],
    delta_lo: &[u32],
    keys: &[ShardKey],
    workers: usize,
) -> Vec<Vec<IdRange>> {
    let mut ranges = vec![vec![IdRange { start: 0, end: 0 }; stores.len()]; workers];
    for (p, store) in stores.iter().enumerate() {
        let lo = delta_lo[p];
        let hi = store.len() as u32;
        // Owner boundaries: cuts[w] is the first id owned by a worker > w.
        let mut cuts = vec![hi; workers];
        let mut prev_owner = 0usize;
        let mut monotone = true;
        for id in lo..hi {
            let owner = shard_of(store.get(kv_structures::TupleId(id)), keys[p], workers);
            if owner < prev_owner {
                monotone = false;
                break;
            }
            while prev_owner < owner {
                cuts[prev_owner] = id;
                prev_owner += 1;
            }
        }
        if monotone {
            let mut start = lo;
            for w in 0..workers {
                let end = cuts[w];
                ranges[w][p] = IdRange { start, end };
                start = end;
            }
        } else {
            // Foreign delta order: worker 0 owns everything this stage.
            ranges[0][p] = IdRange { start: lo, end: hi };
            for row in ranges.iter_mut().skip(1) {
                row[p] = IdRange { start: hi, end: hi };
            }
        }
    }
    ranges
}

/// One worker's routed stage output: per predicate, per destination
/// worker, the flat (arity-strided) derived tuples — plus parallel
/// derivation counts in counting mode, and a separate derivation tally
/// for nullary predicates (whose owner is always worker 0).
#[derive(Debug)]
pub(crate) struct RoutedDelta {
    pub(crate) tuples: Vec<Vec<Vec<Element>>>,
    pub(crate) counts: Vec<Vec<Vec<u32>>>,
    pub(crate) nullary: Vec<u32>,
}

/// Partitions a worker's scratch arenas by the owner of each derived
/// tuple. Runs inside the worker (before the stage barrier), so routing
/// itself is parallel; the scratch arena already deduplicated this
/// worker's derivations, so each tuple crosses the exchange at most once
/// per worker.
pub(crate) fn route_worker(buf: &WorkerBuf, keys: &[ShardKey], workers: usize) -> RoutedDelta {
    let preds = buf.scratch.len();
    let mut routed = RoutedDelta {
        tuples: (0..preds).map(|_| vec![Vec::new(); workers]).collect(),
        counts: (0..preds).map(|_| vec![Vec::new(); workers]).collect(),
        nullary: vec![0; preds],
    };
    for (p, scratch) in buf.scratch.iter().enumerate() {
        let arity = scratch.arity();
        if arity == 0 {
            for (id, _) in scratch.iter().enumerate() {
                routed.nullary[p] += if buf.counting {
                    buf.scratch_counts[p][id]
                } else {
                    1
                };
            }
            continue;
        }
        for (id, tuple) in scratch.iter().enumerate() {
            let dest = shard_of(tuple, keys[p], workers);
            routed.tuples[p][dest].extend_from_slice(tuple);
            if buf.counting {
                routed.counts[p][dest].push(buf.scratch_counts[p][id]);
            }
        }
    }
    routed
}

/// Owner-ordered set-mode merge (from-scratch evaluation): seals each
/// predicate's per-worker outboxes into a [`DeltaExchange`], then interns
/// every owner's inbox in (owner, sender) order. The committed delta is
/// owner-contiguous; the returned ranges are the next stage's per-worker
/// delta sub-ranges. Cross-worker duplicate derivations land in `dups`,
/// exchange traffic in `exchanged`.
pub(crate) fn merge_set(
    idb_stores: &mut [TupleStore],
    mut routed: Vec<RoutedDelta>,
    workers: usize,
    new_count: &mut [usize],
    dups: &mut u64,
    exchanged: &mut u64,
) -> Vec<Vec<IdRange>> {
    let preds = idb_stores.len();
    let mut ranges = vec![vec![IdRange { start: 0, end: 0 }; preds]; workers];
    for p in 0..preds {
        let store = &mut idb_stores[p];
        let arity = store.arity();
        if arity == 0 {
            let derivations: u32 = routed.iter().map(|r| r.nullary[p]).sum();
            let start = store.len() as u32;
            if derivations > 0 {
                let fresh = store.intern(&[]).1;
                if fresh {
                    new_count[p] += 1;
                }
                *dups += u64::from(derivations) - u64::from(fresh);
            }
            for (w, row) in ranges.iter_mut().enumerate() {
                let end = store.len() as u32;
                row[p] = if w == 0 {
                    IdRange { start, end }
                } else {
                    IdRange { start: end, end }
                };
            }
            continue;
        }
        let matrix: Vec<Vec<Vec<Element>>> = routed
            .iter_mut()
            .map(|r| std::mem::take(&mut r.tuples[p]))
            .collect();
        let exchange = DeltaExchange::seal(arity, matrix);
        *exchanged += exchange.exchanged();
        for (w, row) in ranges.iter_mut().enumerate() {
            let start = store.len() as u32;
            for block in exchange.inbox(w) {
                let tuples = block.len() / arity;
                let fresh = store.extend_block(block);
                new_count[p] += fresh;
                *dups += (tuples - fresh) as u64;
            }
            row[p] = IdRange {
                start,
                end: store.len() as u32,
            };
        }
    }
    ranges
}

/// Owner-ordered counting-mode merge (incremental maintenance): like
/// [`merge_set`] but into [`MutableStore`]s, crediting each tuple's
/// support with its routed derivation count. The exchange matrices carry
/// parallel count blocks, so this drains them directly instead of going
/// through [`DeltaExchange`].
pub(crate) fn merge_counting(
    idb: &mut [MutableStore],
    routed: Vec<RoutedDelta>,
    workers: usize,
    new_count: &mut [usize],
    dups: &mut u64,
    exchanged: &mut u64,
) -> Vec<Vec<IdRange>> {
    let preds = idb.len();
    let mut ranges = vec![vec![IdRange { start: 0, end: 0 }; preds]; workers];
    for p in 0..preds {
        let arity = idb[p].store().arity();
        if arity == 0 {
            let derivations: u64 = routed.iter().map(|r| u64::from(r.nullary[p])).sum();
            let start = idb[p].len() as u32;
            if derivations > 0 {
                // Nullary derivations all route to worker 0; support gets
                // every derivation.
                match idb[p].insert_with_support(&[], derivations as u32) {
                    InsertOutcome::Fresh(_) => {
                        new_count[p] += 1;
                        *dups += derivations - 1;
                    }
                    _ => *dups += derivations,
                }
            }
            for (w, row) in ranges.iter_mut().enumerate() {
                let end = idb[p].len() as u32;
                row[p] = if w == 0 {
                    IdRange { start, end }
                } else {
                    IdRange { start: end, end }
                };
            }
            continue;
        }
        for (w, row) in ranges.iter_mut().enumerate().take(workers) {
            let start = idb[p].len() as u32;
            for (sender, r) in routed.iter().enumerate() {
                let block = &r.tuples[p][w];
                let counts = &r.counts[p][w];
                if sender != w {
                    *exchanged += (block.len() / arity) as u64;
                }
                for (tid, tuple) in block.chunks_exact(arity).enumerate() {
                    let c = counts[tid];
                    match idb[p].insert_with_support(tuple, c) {
                        InsertOutcome::Fresh(_) => {
                            new_count[p] += 1;
                            *dups += u64::from(c) - 1;
                        }
                        InsertOutcome::Bumped(_) => *dups += u64::from(c),
                        InsertOutcome::Revived(_) => {
                            debug_assert!(false, "no dead tuples during insertion");
                        }
                    }
                }
            }
            row[p] = IdRange {
                start,
                end: idb[p].len() as u32,
            };
        }
    }
    ranges
}
