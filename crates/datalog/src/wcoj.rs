//! Worst-case-optimal generic join: variable-at-a-time evaluation over
//! sorted posting lists.
//!
//! Binary join plans — even the cost-based ones picked by
//! [`crate::planner`] — materialize one intermediate relation per atom
//! pair, and for cyclic rule bodies (the triangle rule being the canonical
//! example) *every* binary order is asymptotically worse than the
//! AGM-bound output size. The generic-join algorithm sidesteps this by
//! binding one **variable** at a time instead of one **atom** at a time:
//! each step intersects, for every atom the variable occurs in, the
//! posting lists of candidate tuples consistent with the bindings so far,
//! in the style of leapfrog trie-join over the id-sorted
//! [`kv_structures::PosIndex`] lists.
//!
//! The lowering lives entirely *inside* the global semi-naive stage loop:
//! a rule executed generically still reads the same frozen old/delta/full
//! id ranges and emits into the same scratch arenas as the binary kernel
//! pipeline, so every stage is identical tuple-for-tuple to the binary
//! lowering (Theorem 3.6 stage identity — asserted program-by-program in
//! `tests/planned.rs`). Duplicate-suppression, ≠-constraints, free
//! variables, and resource governance all reuse the [`RuleJoin`]
//! machinery from [`crate::eval`].

use crate::ast::{Term, VarId};
use crate::eval::{find_index, CompiledRule, RuleJoin, SCAN_BLOCK};
use kv_structures::store::gallop_intersect;
use kv_structures::{Element, Interrupted, TupleId};

/// One variable-binding step of a generic-join execution: the variable to
/// bind, every non-seed atom (with argument positions) it occurs in, and
/// the ≠-constraints that become fully bound once it is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct VarStep {
    /// The canonical variable bound by this step (index into the
    /// binding vector).
    pub(crate) var: usize,
    /// `(atom_index, positions)` for every non-seed atom the variable
    /// occurs in; `positions` lists every argument slot holding it.
    pub(crate) occurrences: Vec<(usize, Vec<usize>)>,
    /// Indices into [`CompiledRule::neqs`] checked right after this step
    /// binds its variable.
    pub(crate) neqs: Vec<usize>,
}

/// A compiled generic-join plan for one rule: the seed atom (always atom
/// 0, which carries the delta pin under semi-naive rewriting) is scanned
/// in blocks; every remaining variable is bound by one [`VarStep`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct GenericPlan {
    /// Variable-binding steps, most-shared variables first.
    pub(crate) steps: Vec<VarStep>,
    /// Indices into [`CompiledRule::neqs`] whose variables are all bound
    /// by the seed atom (or constants), checked once per seed tuple.
    pub(crate) seed_neqs: Vec<usize>,
}

/// Builds a generic-join plan for `rule`, or `None` when the body has
/// fewer than two atoms (a single scan cannot benefit).
///
/// Seed variables are those of atom 0; the remaining atom variables are
/// ordered by descending occurrence count (ties by variable id) so the
/// most constrained variable is bound first. Atom-scheduled ≠-constraints
/// are re-hoisted for the new binding order: checks whose variables are
/// all seed-bound run per seed tuple, the rest attach to the latest step
/// binding one of their variables. Entry checks (`neq_at[0]`) run before
/// dispatch and free-variable checks keep their atom-order-independent
/// slots in the shared free-variable odometer.
pub(crate) fn build_generic_plan(rule: &CompiledRule) -> Option<GenericPlan> {
    if rule.atoms.len() < 2 {
        return None;
    }
    let mut is_seed = vec![false; rule.var_count];
    for t in &rule.atoms[0].args {
        if let Term::Var(v) = t {
            is_seed[v.0] = true;
        }
    }
    // Occurrence counts (once per atom) for the non-seed atom variables.
    let mut occ_count = vec![0usize; rule.var_count];
    for atom in &rule.atoms {
        let mut seen = vec![false; rule.var_count];
        for t in &atom.args {
            if let Term::Var(v) = t {
                if !is_seed[v.0] && !seen[v.0] {
                    occ_count[v.0] += 1;
                    seen[v.0] = true;
                }
            }
        }
    }
    let mut step_vars: Vec<usize> = (0..rule.var_count).filter(|&v| occ_count[v] > 0).collect();
    step_vars.sort_by_key(|&v| (std::cmp::Reverse(occ_count[v]), v));
    let mut steps: Vec<VarStep> = step_vars
        .iter()
        .map(|&v| {
            let mut occurrences = Vec::new();
            for (ai, atom) in rule.atoms.iter().enumerate().skip(1) {
                let positions: Vec<usize> = atom
                    .args
                    .iter()
                    .enumerate()
                    .filter_map(|(p, t)| match t {
                        Term::Var(w) if w.0 == v => Some(p),
                        _ => None,
                    })
                    .collect();
                if !positions.is_empty() {
                    occurrences.push((ai, positions));
                }
            }
            VarStep {
                var: v,
                occurrences,
                neqs: Vec::new(),
            }
        })
        .collect();
    // Re-hoist the atom-scheduled ≠-checks for the variable binding order.
    let mut handled = vec![false; rule.neqs.len()];
    for &ni in &rule.neq_at[0] {
        handled[ni] = true;
    }
    for slot in &rule.neq_at[rule.atoms.len() + 1..] {
        for &ni in slot {
            handled[ni] = true;
        }
    }
    let mut seed_neqs = Vec::new();
    for (ni, (a, b)) in rule.neqs.iter().enumerate() {
        if handled[ni] {
            continue;
        }
        let mut latest: Option<usize> = None;
        for t in [a, b] {
            if let Term::Var(v) = t {
                if let Some(si) = steps.iter().position(|s| s.var == v.0) {
                    latest = Some(latest.map_or(si, |l| l.max(si)));
                }
            }
        }
        match latest {
            Some(si) => steps[si].neqs.push(ni),
            None => seed_neqs.push(ni),
        }
    }
    Some(GenericPlan { steps, seed_neqs })
}

/// Checks a set of ≠-constraints against the current binding; a
/// constraint with an unbound side is vacuously satisfied (its check is
/// scheduled again at the step that binds it).
fn neqs_hold(join: &RuleJoin, neqs: &[usize]) -> bool {
    for &ni in neqs {
        let (a, b) = &join.rule.neqs[ni];
        if let (Some(x), Some(y)) = (join.term_value(a), join.term_value(b)) {
            if x == y {
                return false;
            }
        }
    }
    true
}

/// Executes `plan` for the rule held by `join`: scans the seed atom in
/// columnar blocks, then binds the remaining variables one at a time via
/// sorted-posting intersection, finishing each full assignment through
/// the shared free-variable odometer and head emission.
pub(crate) fn execute(join: &mut RuleJoin, plan: &GenericPlan) -> Result<(), Interrupted> {
    let seed = &join.rule.atoms[0];
    let (store, _, range) = join.ctx.source(seed);
    join.count_probe(seed.is_magic)?;
    let arity = seed.args.len();
    if arity == 0 {
        for _ in range.iter() {
            seed_tuple(join, plan, &[])?;
        }
        return Ok(());
    }
    let cols = store.range_slice(range);
    let mut first = true;
    for block in cols.chunks(SCAN_BLOCK * arity) {
        if !first {
            join.charge()?;
        }
        first = false;
        for tuple in block.chunks_exact(arity) {
            seed_tuple(join, plan, tuple)?;
        }
    }
    Ok(())
}

/// Binds the seed atom's arguments against one tuple (with repeated-var
/// and constant consistency checks), then runs the variable steps.
fn seed_tuple(
    join: &mut RuleJoin,
    plan: &GenericPlan,
    tuple: &[Element],
) -> Result<(), Interrupted> {
    let seed = &join.rule.atoms[0];
    let mut newly: Vec<VarId> = Vec::new();
    let mut ok = true;
    for (pos, t) in seed.args.iter().enumerate() {
        let good = match t {
            Term::Const(c) => join.ctx.structure.constant(*c) == tuple[pos],
            Term::Var(v) => match join.binding[v.0] {
                Some(e) => e == tuple[pos],
                None => {
                    join.binding[v.0] = Some(tuple[pos]);
                    newly.push(*v);
                    true
                }
            },
        };
        if !good {
            ok = false;
            break;
        }
    }
    let r = if ok && neqs_hold(join, &plan.seed_neqs) {
        run_steps(join, plan)
    } else {
        Ok(())
    };
    for v in newly {
        join.binding[v.0] = None;
    }
    r
}

/// Builds the initial per-atom candidate id lists for the current seed
/// binding and recurses through the variable steps.
fn run_steps(join: &mut RuleJoin, plan: &GenericPlan) -> Result<(), Interrupted> {
    let atom_count = join.rule.atoms.len();
    let mut cands: Vec<Vec<u32>> = Vec::with_capacity(atom_count);
    cands.push(Vec::new()); // seed slot, never consulted
    for ai in 1..atom_count {
        let atom = &join.rule.atoms[ai];
        let (_, indexes, range) = join.ctx.source(atom);
        join.count_probe(atom.is_magic)?;
        let mut lists: Vec<&[u32]> = Vec::new();
        for (pos, t) in atom.args.iter().enumerate() {
            if let Some(e) = join.term_value(t) {
                lists.push(find_index(indexes, pos).probe(e, range));
            }
        }
        let ids: Vec<u32> = if lists.is_empty() {
            // No position bound yet: every tuple in the accessible range
            // is a candidate (covers nullary atoms naturally).
            (range.start..range.end).collect()
        } else {
            let mut out = Vec::new();
            let mut gsteps = 0u64;
            gallop_intersect(&lists, &mut out, &mut gsteps);
            join.buf.gallop_steps += gsteps;
            out
        };
        if ids.is_empty() {
            return Ok(()); // some atom is unsatisfiable: dead branch
        }
        cands.push(ids);
    }
    step_rec(join, plan, &mut cands, 0)
}

/// Binds the variable of step `idx` to each value consistent with every
/// candidate list, refines the lists by posting intersection, and
/// recurses; exhausted steps hand off to the free-variable odometer.
fn step_rec(
    join: &mut RuleJoin,
    plan: &GenericPlan,
    cands: &mut Vec<Vec<u32>>,
    idx: usize,
) -> Result<(), Interrupted> {
    if idx == plan.steps.len() {
        // Every candidate list is non-empty and every atom variable bound:
        // the assignment satisfies the whole body.
        return join.enumerate_free(0);
    }
    let st = &plan.steps[idx];
    // Drive from the occurrence atom with the fewest candidates.
    #[allow(clippy::expect_used)]
    let (drv_ai, drv_pos) = st
        .occurrences
        .iter()
        .min_by_key(|(ai, _)| cands[*ai].len())
        .map(|(ai, pos)| (*ai, pos.as_slice()))
        .expect("step variables occur in at least one non-seed atom");
    let (drv_store, _, _) = join.ctx.source(&join.rule.atoms[drv_ai]);
    let mut vals: Vec<Element> = Vec::new();
    for &id in &cands[drv_ai] {
        let t = drv_store.get(TupleId(id));
        let v = t[drv_pos[0]];
        if drv_pos[1..].iter().all(|&p| t[p] == v) {
            vals.push(v);
        }
    }
    vals.sort_unstable();
    vals.dedup();
    for v in vals {
        join.charge()?;
        let mut saved: Vec<(usize, Vec<u32>)> = Vec::with_capacity(st.occurrences.len());
        let mut alive = true;
        for (ai, positions) in &st.occurrences {
            let atom = &join.rule.atoms[*ai];
            let (_, indexes, range) = join.ctx.source(atom);
            join.count_probe(atom.is_magic)?;
            let mut lists: Vec<&[u32]> = Vec::with_capacity(positions.len() + 1);
            lists.push(&cands[*ai]);
            for &p in positions {
                lists.push(find_index(indexes, p).probe(v, range));
            }
            let mut out = Vec::new();
            let mut gsteps = 0u64;
            gallop_intersect(&lists, &mut out, &mut gsteps);
            join.buf.gallop_steps += gsteps;
            let empty = out.is_empty();
            saved.push((*ai, std::mem::replace(&mut cands[*ai], out)));
            if empty {
                alive = false;
                break;
            }
        }
        let r = if alive {
            join.binding[st.var] = Some(v);
            let rr = if neqs_hold(join, &st.neqs) {
                step_rec(join, plan, cands, idx + 1)
            } else {
                Ok(())
            };
            join.binding[st.var] = None;
            rr
        } else {
            Ok(())
        };
        for (ai, old) in saved.into_iter().rev() {
            cands[ai] = old;
        }
        r?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::eval::{EvalOptions, Evaluator};
    use crate::parser::parse_program;
    use kv_structures::generators::random_digraph;
    use kv_structures::{JoinLowering, PlannerMode, Vocabulary};
    use std::sync::Arc;

    fn opts(lowering: JoinLowering) -> EvalOptions {
        EvalOptions::default()
            .with_planner(PlannerMode::CostBased)
            .with_lowering(lowering)
    }

    #[test]
    fn generic_matches_binary_on_triangles() {
        let p = parse_program(
            "T(x, y, z) :- E(x, y), E(y, z), E(z, x). ?- T.",
            Arc::new(Vocabulary::graph()),
        )
        .unwrap();
        for seed in 0..6 {
            let s = random_digraph(12, 0.25, seed).to_structure();
            let ev = Evaluator::new(&p);
            let bin = ev.run(&s, opts(JoinLowering::Binary));
            let gen = ev.run(&s, opts(JoinLowering::Generic));
            assert_eq!(bin.idb, gen.idb, "fixpoints differ on seed {seed}");
            assert!(bin.same_stages(&gen), "stages differ on seed {seed}");
            assert!(
                gen.eval_stats.wcoj_rules > 0,
                "generic lowering not engaged"
            );
        }
    }

    #[test]
    fn generic_handles_neqs_and_free_vars() {
        // w is free (occurs in no atom); x ≠ z prunes self-loop triangles.
        let p = parse_program(
            "T(x, z, w) :- E(x, y), E(y, z), x != z, w != x. ?- T.",
            Arc::new(Vocabulary::graph()),
        )
        .unwrap();
        for seed in 0..4 {
            let s = random_digraph(9, 0.3, seed).to_structure();
            let ev = Evaluator::new(&p);
            let bin = ev.run(&s, opts(JoinLowering::Binary));
            let gen = ev.run(&s, opts(JoinLowering::Generic));
            assert_eq!(bin.idb, gen.idb, "fixpoints differ on seed {seed}");
            assert!(bin.same_stages(&gen), "stages differ on seed {seed}");
        }
    }

    #[test]
    fn generic_matches_binary_on_recursive_program() {
        let p = parse_program(
            "S(x, y) :- E(x, y). S(x, y) :- E(x, z), S(z, y). ?- S.",
            Arc::new(Vocabulary::graph()),
        )
        .unwrap();
        for seed in 0..4 {
            let s = random_digraph(10, 0.2, seed).to_structure();
            let ev = Evaluator::new(&p);
            let bin = ev.run(&s, opts(JoinLowering::Binary));
            let gen = ev.run(&s, opts(JoinLowering::Generic));
            assert_eq!(bin.idb, gen.idb, "fixpoints differ on seed {seed}");
            assert!(bin.same_stages(&gen), "stages differ on seed {seed}");
            assert!(
                gen.eval_stats.wcoj_rules > 0,
                "generic lowering not engaged"
            );
        }
    }
}
