//! Differential tests: the store-backed evaluator vs. a brute-force
//! `HashSet<Tuple>` semi-naive-free oracle that implements the paper's
//! stage semantics literally — enumerate every assignment of every rule,
//! every stage. The oracle is deliberately the dumbest correct thing; it
//! shares **no code** with the engine's join machinery, so agreement on
//! goal relations *and full stage sequences* is strong evidence that the
//! interned-store engine (id-range deltas, static indexes, parallel
//! scratch merging) preserves the semantics of Section 2.
//!
//! `HashSet<Tuple>` is allowed here — this file is the test-only oracle
//! the production code is measured against.

use kv_datalog::programs::{
    avoiding_path, path_systems, q_kl, q_prime, transitive_closure, two_disjoint_paths_acyclic,
    two_disjoint_paths_paper_rules, two_pairs_vocabulary,
};
use kv_datalog::{EvalOptions, EvalResult, Evaluator, Literal, Pred, Program, Term};
use kv_structures::rng::SplitMix64;
use kv_structures::{Digraph, Element, RelId, Structure, Tuple};
use std::collections::HashSet;
use std::sync::Arc;

/// All cumulative stages Θ¹ ⊆ Θ² ⊆ … of `program` on `s`, computed by
/// exhaustive assignment enumeration. `stages[n][i]` is stage `n + 1`
/// restricted to IDB `i`.
fn oracle_stages(program: &Program, s: &Structure) -> Vec<Vec<HashSet<Tuple>>> {
    let n = s.universe_size() as Element;
    let mut current: Vec<HashSet<Tuple>> = vec![HashSet::new(); program.idb_count()];
    let mut stages = Vec::new();
    loop {
        let mut next = current.clone();
        for rule in program.rules() {
            let mut asg = vec![0 as Element; rule.var_count()];
            loop {
                if satisfies(rule, &asg, s, &current) {
                    let head: Tuple = rule.head_args.iter().map(|t| resolve(t, &asg, s)).collect();
                    next[rule.head.0].insert(head);
                }
                // Odometer over universe^var_count (runs once if 0 vars).
                let mut pos = 0;
                while pos < asg.len() {
                    asg[pos] += 1;
                    if asg[pos] < n {
                        break;
                    }
                    asg[pos] = 0;
                    pos += 1;
                }
                if pos == asg.len() {
                    break;
                }
            }
        }
        if next == current {
            return stages;
        }
        stages.push(next.clone());
        current = next;
    }
}

fn resolve(t: &Term, asg: &[Element], s: &Structure) -> Element {
    match t {
        Term::Var(v) => asg[v.0],
        Term::Const(c) => s.constant(*c),
    }
}

fn satisfies(
    rule: &kv_datalog::Rule,
    asg: &[Element],
    s: &Structure,
    idb: &[HashSet<Tuple>],
) -> bool {
    rule.body.iter().all(|lit| match lit {
        Literal::Atom(pred, args) => {
            let tuple: Vec<Element> = args.iter().map(|t| resolve(t, asg, s)).collect();
            match pred {
                Pred::Edb(r) => s.contains(*r, &tuple),
                Pred::Idb(i) => idb[i.0].contains(tuple.as_slice()),
            }
        }
        Literal::Eq(a, b) => resolve(a, asg, s) == resolve(b, asg, s),
        Literal::Neq(a, b) => resolve(a, asg, s) != resolve(b, asg, s),
    })
}

/// Engine result and oracle stages must agree exactly: same stage count,
/// same per-stage per-IDB tuple sets, same fixpoint.
fn assert_engine_matches_oracle(program: &Program, s: &Structure, label: &str) {
    let oracle = oracle_stages(program, s);
    for options in [
        EvalOptions::default(),
        EvalOptions {
            semi_naive: false,
            ..EvalOptions::default()
        },
        EvalOptions {
            parallel: false,
            ..EvalOptions::default()
        },
    ] {
        let result: EvalResult = Evaluator::new(program).run(s, options);
        assert!(result.converged, "{label}: engine did not converge");
        assert_eq!(
            result.stage_count(),
            oracle.len(),
            "{label}: stage count (options {options:?})"
        );
        for (n, snapshot) in oracle.iter().enumerate() {
            for (i, expected) in snapshot.iter().enumerate() {
                let view = result.stage_view(n + 1, i);
                assert_eq!(
                    view.len(),
                    expected.len(),
                    "{label}: stage {} IDB {i} size (options {options:?})",
                    n + 1
                );
                for t in expected {
                    assert!(
                        view.contains(t),
                        "{label}: stage {} IDB {i} missing {t:?}",
                        n + 1
                    );
                }
            }
        }
        // Fixpoint = last stage.
        if let Some(last) = oracle.last() {
            for (i, expected) in last.iter().enumerate() {
                assert_eq!(result.idb[i].len(), expected.len(), "{label}: fixpoint {i}");
            }
        } else {
            assert!(result.idb.iter().all(|r| r.is_empty()), "{label}: fixpoint");
        }
    }
}

fn random_graph_structure(max_n: usize, max_edges: usize, rng: &mut SplitMix64) -> Structure {
    let n = rng.gen_range(2usize..max_n + 1);
    let mut g = Digraph::new(n);
    for _ in 0..rng.gen_range(0usize..max_edges + 1) {
        g.add_edge(rng.gen_range(0u32..n as u32), rng.gen_range(0u32..n as u32));
    }
    g.to_structure()
}

#[test]
fn engine_matches_oracle_on_graph_programs() {
    for seed in 0..12u64 {
        let mut rng = SplitMix64::seed_from_u64(100 + seed);
        let s = random_graph_structure(6, 14, &mut rng);
        for (label, program) in [
            ("transitive_closure", transitive_closure()),
            ("avoiding_path", avoiding_path()),
            ("q_prime", q_prime()),
            ("q_2_0", q_kl(2, 0)),
            ("q_2_1", q_kl(2, 1)),
            ("q_3_1", q_kl(3, 1)),
        ] {
            assert_engine_matches_oracle(&program, &s, &format!("{label} seed {seed}"));
        }
    }
}

#[test]
fn engine_matches_oracle_on_path_systems() {
    let p = path_systems();
    for seed in 0..12u64 {
        let mut rng = SplitMix64::seed_from_u64(300 + seed);
        let n = rng.gen_range(2usize..7);
        let mut s = Structure::new(Arc::clone(p.vocabulary()), n);
        for _ in 0..rng.gen_range(0usize..14) {
            let t = [
                rng.gen_range(0u32..n as u32),
                rng.gen_range(0u32..n as u32),
                rng.gen_range(0u32..n as u32),
            ];
            s.insert(RelId(0), &t);
        }
        for _ in 0..rng.gen_range(0usize..3) {
            s.insert(RelId(1), &[rng.gen_range(0u32..n as u32)]);
        }
        assert_engine_matches_oracle(&p, &s, &format!("path_systems seed {seed}"));
    }
}

#[test]
fn engine_matches_oracle_on_two_pairs_programs() {
    for seed in 0..8u64 {
        let mut rng = SplitMix64::seed_from_u64(500 + seed);
        let n = rng.gen_range(4usize..7);
        let mut g = Digraph::new(n);
        for _ in 0..rng.gen_range(0usize..12) {
            g.add_edge(rng.gen_range(0u32..n as u32), rng.gen_range(0u32..n as u32));
        }
        // Four distinguished nodes interpreting s1, t1, s2, t2.
        g.set_distinguished(vec![
            rng.gen_range(0u32..n as u32),
            rng.gen_range(0u32..n as u32),
            rng.gen_range(0u32..n as u32),
            rng.gen_range(0u32..n as u32),
        ]);
        let s = g.to_structure_with(Arc::new(two_pairs_vocabulary()));
        for (label, program) in [
            ("two_disjoint_paths_acyclic", two_disjoint_paths_acyclic()),
            ("two_disjoint_paths_paper", two_disjoint_paths_paper_rules()),
        ] {
            assert_engine_matches_oracle(&program, &s, &format!("{label} seed {seed}"));
        }
    }
}
