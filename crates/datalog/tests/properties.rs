//! Randomized property tests for the Datalog(≠) engine, seed-deterministic
//! via the in-tree [`SplitMix64`] generator.

use kv_datalog::programs::{avoiding_path, q_kl, transitive_closure};
use kv_datalog::{parse_program, EvalOptions, Evaluator};
use kv_structures::rng::SplitMix64;
use kv_structures::{Digraph, RelId};
use std::sync::Arc;

fn random_case_digraph(max_n: usize, max_edges: usize, rng: &mut SplitMix64) -> Digraph {
    let n = rng.gen_range(2usize..max_n + 1);
    let mut g = Digraph::new(n);
    let edges = rng.gen_range(0usize..max_edges + 1);
    for _ in 0..edges {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        g.add_edge(u, v);
    }
    g
}

/// Naive and semi-naive evaluation produce identical fixpoints AND
/// identical stage statistics, for all three library programs.
#[test]
fn naive_equals_semi_naive() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let g = random_case_digraph(7, 20, &mut rng);
        let s = g.to_structure();
        for program in [transitive_closure(), avoiding_path(), q_kl(2, 0)] {
            let naive = Evaluator::new(&program).run(
                &s,
                EvalOptions {
                    semi_naive: false,
                    ..EvalOptions::default()
                },
            );
            let semi = Evaluator::new(&program).run(&s, EvalOptions::default());
            assert_eq!(naive.idb, semi.idb, "seed {seed}");
            assert_eq!(naive.stats, semi.stats, "seed {seed}");
            assert!(naive.same_stages(&semi), "seed {seed}");
        }
    }
}

/// Parallel semi-naive evaluation is stage-identical — fixpoint, per-stage
/// statistics, and recorded stage snapshots — to the sequential naive
/// baseline, across the library programs (including the mutually recursive
/// path-systems program and the multi-IDB `Q'`).
#[test]
fn parallel_is_stage_identical_to_sequential() {
    use kv_datalog::programs::{path_systems, q_prime};
    use kv_structures::Structure;

    fn check(program: &kv_datalog::Program, s: &Structure, seed: u64) {
        let sequential = Evaluator::new(program).run(
            s,
            EvalOptions {
                semi_naive: false,
                parallel: false,
                ..EvalOptions::default()
            },
        );
        let parallel = Evaluator::new(program).run(s, EvalOptions::default());
        assert_eq!(sequential.idb, parallel.idb, "idb, seed {seed}");
        assert_eq!(sequential.stats, parallel.stats, "stats, seed {seed}");
        assert!(sequential.same_stages(&parallel), "stages, seed {seed}");
        assert_eq!(sequential.converged, parallel.converged, "seed {seed}");
    }

    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(8000 + seed);
        let g = random_case_digraph(7, 20, &mut rng);
        let s = g.to_structure();
        for program in [transitive_closure(), avoiding_path(), q_prime(), q_kl(2, 1)] {
            check(&program, &s, seed);
        }
        // Path systems (nonlinear recursion) over its own {R/3, A/1}
        // vocabulary, with a random derivation system.
        let ps = path_systems();
        let n = rng.gen_range(2usize..7);
        let mut sys = Structure::new(Arc::clone(ps.vocabulary()), n);
        for _ in 0..rng.gen_range(0usize..16) {
            let t = [
                rng.gen_range(0u32..n as u32),
                rng.gen_range(0u32..n as u32),
                rng.gen_range(0u32..n as u32),
            ];
            sys.insert(RelId(0), &t);
        }
        for _ in 0..rng.gen_range(0usize..3) {
            sys.insert(RelId(1), &[rng.gen_range(0u32..n as u32)]);
        }
        check(&ps, &sys, seed);
    }
}

/// TC is really the transitive closure: agrees with BFS reachability.
#[test]
fn tc_matches_bfs() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::seed_from_u64(1000 + seed);
        let g = random_case_digraph(8, 20, &mut rng);
        let s = g.to_structure();
        let tc = Evaluator::new(&transitive_closure()).goal(&s);
        for x in 0..s.universe_size() as u32 {
            for y in 0..s.universe_size() as u32 {
                // TC's semantics: a *nonempty* path from x to y exists.
                let expected = kv_graphalg::avoiding_path(&g, x, y, &[]);
                assert_eq!(tc.contains(&[x, y][..]), expected, "seed {seed}");
            }
        }
    }
}

/// Monotonicity under edge addition: the goal relation only grows.
#[test]
fn goal_grows_under_edge_addition() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(2000 + seed);
        let g = random_case_digraph(7, 20, &mut rng);
        let n = g.node_count() as u32;
        let u = rng.gen_range(0u32..7) % n;
        let v = rng.gen_range(0u32..7) % n;
        let s = g.to_structure();
        let mut g2 = g.clone();
        g2.add_edge(u, v);
        let s2 = g2.to_structure();
        for program in [transitive_closure(), avoiding_path()] {
            let before = Evaluator::new(&program).goal(&s);
            let after = Evaluator::new(&program).goal(&s2);
            for t in before.iter() {
                assert!(after.contains(t), "seed {seed}: tuple {t:?} lost");
            }
        }
    }
}

/// Display → parse is the identity on the library programs (roundtrip
/// through the concrete syntax).
#[test]
fn display_parse_roundtrip() {
    for program in [transitive_closure(), avoiding_path(), q_kl(2, 1)] {
        let text = program.to_string();
        let reparsed = parse_program(&text, Arc::clone(program.vocabulary())).unwrap();
        assert_eq!(program.rules(), reparsed.rules());
        assert_eq!(program.goal(), reparsed.goal());
    }
}

/// The fixpoint is really a fixpoint: one more application of the rules
/// (running with the fixpoint as max_stages cut) adds nothing.
#[test]
fn fixpoint_is_stable() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(3000 + seed);
        let g = random_case_digraph(6, 15, &mut rng);
        let s = g.to_structure();
        let program = avoiding_path();
        let full = Evaluator::new(&program).run(&s, EvalOptions::default());
        assert!(full.converged);
        let again = Evaluator::new(&program).run(
            &s,
            EvalOptions {
                semi_naive: false,
                max_stages: Some(full.stage_count() + 3),
                ..EvalOptions::default()
            },
        );
        assert_eq!(full.idb, again.idb, "seed {seed}");
    }
}

/// Stage count for TC is bounded by the longest shortest-path distance
/// (diameter-ish bound), and never exceeds |V|.
#[test]
fn stage_count_bounded() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::seed_from_u64(4000 + seed);
        let g = random_case_digraph(8, 20, &mut rng);
        let s = g.to_structure();
        let r = Evaluator::new(&transitive_closure()).run(&s, EvalOptions::default());
        assert!(r.stage_count() <= s.universe_size().max(1), "seed {seed}");
    }
}

/// Equalities in bodies behave as substitution: P(x,y) :- E(x,z), z=y is
/// the edge relation.
#[test]
fn equality_is_substitution() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::seed_from_u64(5000 + seed);
        let g = random_case_digraph(7, 20, &mut rng);
        let s = g.to_structure();
        let p = parse_program(
            "P(x, y) :- E(x, z), z = y. ?- P.",
            Arc::new(kv_structures::Vocabulary::graph()),
        )
        .unwrap();
        let rel = Evaluator::new(&p).goal(&s);
        assert_eq!(rel.len(), s.relation(RelId(0)).len(), "seed {seed}");
        for t in s.relation(RelId(0)).iter() {
            assert!(rel.contains(t), "seed {seed}");
        }
    }
}

/// The parser never panics: arbitrary input yields Ok or Err.
#[test]
fn parser_total_on_arbitrary_input() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::seed_from_u64(6000 + seed);
        let len = rng.gen_range(0usize..81);
        let src: String = (0..len)
            .map(|_| {
                // Printable ASCII plus a couple of multi-byte characters.
                match rng.gen_range(0u32..20) {
                    0 => 'π',
                    1 => '≠',
                    _ => char::from(rng.gen_range(0x20u8..0x7f)),
                }
            })
            .collect();
        let _ = parse_program(&src, Arc::new(kv_structures::Vocabulary::graph()));
    }
}

/// The parser never panics on token-soup built from its own alphabet.
#[test]
fn parser_total_on_token_soup() {
    const TOKENS: [&str; 12] = [
        "P", "E", "x", "(", ")", ",", ".", ":-", "!=", "=", "?-", "s1",
    ];
    for seed in 0..256u64 {
        let mut rng = SplitMix64::seed_from_u64(7000 + seed);
        let len = rng.gen_range(0usize..24);
        let src = (0..len)
            .map(|_| TOKENS[rng.gen_range(0usize..TOKENS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = parse_program(
            &src,
            Arc::new(kv_structures::Vocabulary::graph_with_constants(1)),
        );
    }
}
