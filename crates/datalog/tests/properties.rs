//! Property-based tests for the Datalog(≠) engine.

use kv_datalog::programs::{avoiding_path, q_kl, transitive_closure};
use kv_datalog::{parse_program, EvalOptions, Evaluator};
use kv_structures::{Digraph, RelId};
use proptest::prelude::*;
use std::sync::Arc;

fn digraph_strategy(max_n: usize) -> impl Strategy<Value = Digraph> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(n * n / 2).min(20)).prop_map(
            move |edges| {
                let mut g = Digraph::new(n);
                for (u, v) in edges {
                    g.add_edge(u, v);
                }
                g
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Naive and semi-naive evaluation produce identical fixpoints AND
    /// identical stage statistics, for all three library programs.
    #[test]
    fn naive_equals_semi_naive(g in digraph_strategy(7)) {
        let s = g.to_structure();
        for program in [transitive_closure(), avoiding_path(), q_kl(2, 0)] {
            let naive = Evaluator::new(&program).run(
                &s,
                EvalOptions { semi_naive: false, record_stages: true, max_stages: None },
            );
            let semi = Evaluator::new(&program).run(
                &s,
                EvalOptions { semi_naive: true, record_stages: true, max_stages: None },
            );
            prop_assert_eq!(&naive.idb, &semi.idb);
            prop_assert_eq!(&naive.stats, &semi.stats);
            prop_assert_eq!(&naive.stages, &semi.stages);
        }
    }

    /// TC is really the transitive closure: agrees with BFS reachability.
    #[test]
    fn tc_matches_bfs(g in digraph_strategy(8)) {
        let s = g.to_structure();
        let tc = Evaluator::new(&transitive_closure()).goal(&s);
        for x in 0..s.universe_size() as u32 {
            for y in 0..s.universe_size() as u32 {
                // TC's semantics: a *nonempty* path from x to y exists.
                let expected = kv_graphalg::avoiding_path(&g, x, y, &[]);
                prop_assert_eq!(tc.contains(&[x, y][..]), expected);
            }
        }
    }

    /// Monotonicity under edge addition: the goal relation only grows.
    #[test]
    fn goal_grows_under_edge_addition(g in digraph_strategy(7), extra in (0u32..7, 0u32..7)) {
        let n = g.node_count() as u32;
        let (u, v) = (extra.0 % n, extra.1 % n);
        let s = g.to_structure();
        let mut g2 = g.clone();
        g2.add_edge(u, v);
        let s2 = g2.to_structure();
        for program in [transitive_closure(), avoiding_path()] {
            let before = Evaluator::new(&program).goal(&s);
            let after = Evaluator::new(&program).goal(&s2);
            for t in &before {
                prop_assert!(after.contains(t), "tuple {:?} lost", t);
            }
        }
    }

    /// Display → parse is the identity on the library programs (roundtrip
    /// through the concrete syntax).
    #[test]
    fn display_parse_roundtrip(seed in 0u64..100) {
        let programs = [transitive_closure(), avoiding_path(), q_kl(2, 1)];
        let program = &programs[(seed % 3) as usize];
        let text = program.to_string();
        let reparsed = parse_program(&text, Arc::clone(program.vocabulary())).unwrap();
        prop_assert_eq!(program.rules(), reparsed.rules());
        prop_assert_eq!(program.goal(), reparsed.goal());
    }

    /// The fixpoint is really a fixpoint: one more application of the
    /// rules (running with the fixpoint as max_stages cut) adds nothing.
    #[test]
    fn fixpoint_is_stable(g in digraph_strategy(6)) {
        let s = g.to_structure();
        let program = avoiding_path();
        let full = Evaluator::new(&program).run(&s, EvalOptions::default());
        prop_assert!(full.converged);
        let again = Evaluator::new(&program).run(
            &s,
            EvalOptions { semi_naive: false, record_stages: false, max_stages: Some(full.stage_count() + 3) },
        );
        prop_assert_eq!(full.idb, again.idb);
    }

    /// Stage count for TC is bounded by the longest shortest-path distance
    /// (diameter-ish bound), and never exceeds |V|.
    #[test]
    fn stage_count_bounded(g in digraph_strategy(8)) {
        let s = g.to_structure();
        let r = Evaluator::new(&transitive_closure()).run(&s, EvalOptions::default());
        prop_assert!(r.stage_count() <= s.universe_size().max(1));
    }

    /// Equalities in bodies behave as substitution: P(x,y) :- E(x,z), z=y
    /// is the edge relation.
    #[test]
    fn equality_is_substitution(g in digraph_strategy(7)) {
        let s = g.to_structure();
        let p = parse_program("P(x, y) :- E(x, z), z = y. ?- P.", Arc::new(
            kv_structures::Vocabulary::graph(),
        ))
        .unwrap();
        let rel = Evaluator::new(&p).goal(&s);
        prop_assert_eq!(rel.len(), s.relation(RelId(0)).len());
        for t in s.relation(RelId(0)).iter() {
            prop_assert!(rel.contains(t));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics: arbitrary input yields Ok or Err.
    #[test]
    fn parser_total_on_arbitrary_input(src in ".{0,80}") {
        let _ = parse_program(&src, Arc::new(kv_structures::Vocabulary::graph()));
    }

    /// The parser never panics on token-soup built from its own alphabet.
    #[test]
    fn parser_total_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("P".to_string()), Just("E".to_string()), Just("x".to_string()),
                Just("(".to_string()), Just(")".to_string()), Just(",".to_string()),
                Just(".".to_string()), Just(":-".to_string()), Just("!=".to_string()),
                Just("=".to_string()), Just("?-".to_string()), Just("s1".to_string()),
            ],
            0..24,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse_program(&src, Arc::new(kv_structures::Vocabulary::graph_with_constants(1)));
    }
}
