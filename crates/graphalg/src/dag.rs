//! Acyclicity, topological order, and node levels.
//!
//! The proof of Theorem 6.2 defines "the *level* of a node in `G` to be the
//! length of the longest path in `G` from that node", well-defined precisely
//! because `G` is acyclic; the Player I strategy there always points to a
//! pebble on a node of maximal level. [`levels`] computes that function.

use kv_structures::Digraph;

/// Kahn's algorithm. Returns a topological order of the nodes, or `None` if
/// the graph has a cycle (including self-loops).
pub fn topological_sort(g: &Digraph) -> Option<Vec<u32>> {
    let n = g.node_count();
    let mut indeg: Vec<usize> = (0..n as u32).map(|v| g.in_degree(v)).collect();
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
    while let Some(u) = stack.pop() {
        order.push(u);
        for &v in g.successors(u) {
            indeg[v as usize] -= 1;
            if indeg[v as usize] == 0 {
                stack.push(v);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Whether the graph is acyclic.
pub fn is_acyclic(g: &Digraph) -> bool {
    topological_sort(g).is_some()
}

/// For an acyclic graph, the level of each node: the length (number of
/// edges) of the longest path starting at that node. Sinks have level 0.
///
/// # Panics
/// Panics if the graph has a cycle; [`try_levels`] is the total variant.
pub fn levels(g: &Digraph) -> Vec<usize> {
    // Input contract documented above; try_levels is the fallible form.
    #[allow(clippy::expect_used)]
    let out = try_levels(g).expect("levels are defined only on acyclic graphs");
    out
}

/// Total form of [`levels`]: `None` if the graph has a cycle.
pub fn try_levels(g: &Digraph) -> Option<Vec<usize>> {
    let order = topological_sort(g)?;
    let mut level = vec![0usize; g.node_count()];
    for &u in order.iter().rev() {
        for &v in g.successors(u) {
            level[u as usize] = level[u as usize].max(level[v as usize] + 1);
        }
    }
    Some(level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_structures::generators::{directed_cycle_graph, directed_path_graph, random_dag};

    #[test]
    fn path_is_acyclic_cycle_is_not() {
        assert!(is_acyclic(&directed_path_graph(4)));
        assert!(!is_acyclic(&directed_cycle_graph(4)));
        let mut loopy = Digraph::new(1);
        loopy.add_edge(0, 0);
        assert!(!is_acyclic(&loopy));
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = random_dag(30, 0.2, 5);
        let order = topological_sort(&g).unwrap();
        let mut pos = vec![0usize; 30];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for (u, v) in g.edges() {
            assert!(pos[u as usize] < pos[v as usize]);
        }
    }

    #[test]
    fn levels_on_path() {
        let g = directed_path_graph(4);
        assert_eq!(levels(&g), vec![3, 2, 1, 0]);
    }

    #[test]
    fn levels_on_diamond() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 2 -> 1.
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 3);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        g.add_edge(2, 1);
        assert_eq!(levels(&g), vec![3, 1, 2, 0]);
    }

    #[test]
    fn levels_decrease_along_edges() {
        let g = random_dag(40, 0.15, 11);
        let l = levels(&g);
        for (u, v) in g.edges() {
            assert!(l[u as usize] > l[v as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn levels_panic_on_cycle() {
        levels(&directed_cycle_graph(3));
    }
}
