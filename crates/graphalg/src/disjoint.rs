//! Node-disjoint path *fans*: `k` pairwise node-disjoint simple paths from a
//! common source to `k` distinct targets.
//!
//! This is precisely the query `Q_{k,l}` of Theorem 6.1 (with `l` forbidden
//! nodes), solvable in polynomial time by max flow with unit node
//! capacities; Menger's theorem supplies both the path system (when the flow
//! is `k`) and a vertex cut of fewer than `k` nodes (when it is not).

use crate::flow::NodeCapNetwork;
use kv_structures::govern::{Governor, Interrupted};
use kv_structures::Digraph;

/// The outcome of a fan computation: either a witnessing path system or a
/// Menger cut explaining its absence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisjointFan {
    /// Pairwise node-disjoint simple paths, one per target, in target order.
    Paths(Vec<Vec<u32>>),
    /// A set of fewer-than-`k` nodes meeting every source→target path
    /// (excluding the source itself).
    Cut(Vec<u32>),
}

/// Decides whether `g` contains pairwise node-disjoint *nonempty* simple
/// paths from `source` to each node of `targets` (paths share only
/// `source`), avoiding every node in `forbidden`.
///
/// ```
/// use kv_graphalg::disjoint::{disjoint_fan, DisjointFan};
/// use kv_structures::Digraph;
///
/// let mut g = Digraph::new(5);
/// for (u, v) in [(0, 3), (3, 1), (0, 4), (4, 2)] {
///     g.add_edge(u, v);
/// }
/// match disjoint_fan(&g, 0, &[1, 2], &[]) {
///     DisjointFan::Paths(paths) => assert_eq!(paths.len(), 2),
///     DisjointFan::Cut(cut) => panic!("unexpected cut {cut:?}"),
/// }
/// ```
///
/// Requirements: targets are distinct, differ from `source`, and neither
/// `source` nor any target is forbidden — otherwise the answer is
/// immediately a trivial cut.
pub fn disjoint_fan(g: &Digraph, source: u32, targets: &[u32], forbidden: &[u32]) -> DisjointFan {
    match try_disjoint_fan(g, source, targets, forbidden, &Governor::unlimited()) {
        Ok(fan) => fan,
        Err(e) => unreachable!("unlimited governor interrupted: {e}"),
    }
}

/// Governed [`disjoint_fan`]: charges one step per graph edge while
/// building the split network and checks the governor inside the max-flow
/// augmenting loop. The computation is pure — on interrupt, simply call
/// again with a fresh or relaxed governor.
pub fn try_disjoint_fan(
    g: &Digraph,
    source: u32,
    targets: &[u32],
    forbidden: &[u32],
    gov: &Governor,
) -> Result<DisjointFan, Interrupted> {
    gov.check()?;
    let k = targets.len() as i64;
    // Degenerate inputs: unsatisfiable by definition.
    let mut sorted = targets.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != targets.len()
        || targets.contains(&source)
        || forbidden.contains(&source)
        || targets.iter().any(|t| forbidden.contains(t))
    {
        return Ok(DisjointFan::Cut(Vec::new()));
    }
    gov.step(g.edge_count() as u64)?;
    // Simple paths out of `source` never revisit it, so edges *into* the
    // source are irrelevant; removing them also prevents the flow from
    // recirculating through the source's capacity-k splitter, which would
    // corrupt the path decomposition.
    let mut pruned = Digraph::new(g.node_count());
    for (u, v) in g.edges() {
        if v != source {
            pruned.add_edge(u, v);
        }
    }
    let g = &pruned;
    let mut net = NodeCapNetwork::build(g, |v| {
        if v == source {
            k
        } else if forbidden.contains(&v) {
            0
        } else {
            1
        }
    });
    let sink = net.add_unit_sink(targets);
    let flow = net.try_run(source, sink, gov)?;
    if flow < k {
        return Ok(DisjointFan::Cut(net.min_vertex_cut(source)));
    }
    let mut paths = net.disjoint_paths(source);
    // Order the paths by target order. Decomposed flow paths are nonempty
    // and end at unit-sink predecessors, i.e. at targets.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    paths.sort_by_key(|p| {
        targets
            .iter()
            .position(|t| t == p.last().unwrap())
            .expect("path ends at a target")
    });
    Ok(DisjointFan::Paths(paths))
}

/// Boolean form of [`disjoint_fan`].
pub fn has_disjoint_fan(g: &Digraph, source: u32, targets: &[u32], forbidden: &[u32]) -> bool {
    matches!(
        disjoint_fan(g, source, targets, forbidden),
        DisjointFan::Paths(_)
    )
}

/// The reverse fan: node-disjoint paths from each of `sources` *to* a common
/// `target` (the class-`C` case where the root is the **head** of every
/// edge). Implemented on the reversed graph; returned paths run in original
/// edge direction, i.e. each starts at a source and ends at `target`.
pub fn disjoint_fan_into(
    g: &Digraph,
    sources: &[u32],
    target: u32,
    forbidden: &[u32],
) -> DisjointFan {
    match try_disjoint_fan_into(g, sources, target, forbidden, &Governor::unlimited()) {
        Ok(fan) => fan,
        Err(e) => unreachable!("unlimited governor interrupted: {e}"),
    }
}

/// Governed [`disjoint_fan_into`]; same restart-resume contract as
/// [`try_disjoint_fan`].
pub fn try_disjoint_fan_into(
    g: &Digraph,
    sources: &[u32],
    target: u32,
    forbidden: &[u32],
    gov: &Governor,
) -> Result<DisjointFan, Interrupted> {
    let mut rev = Digraph::new(g.node_count());
    for (u, v) in g.edges() {
        rev.add_edge(v, u);
    }
    match try_disjoint_fan(&rev, target, sources, forbidden, gov)? {
        DisjointFan::Paths(mut paths) => {
            for p in &mut paths {
                p.reverse();
            }
            Ok(DisjointFan::Paths(paths))
        }
        cut => Ok(cut),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_structures::generators::{layered_dag, random_digraph};

    /// Brute-force reference: try all ways to route the fan by depth-first
    /// search over joint simple paths. Exponential; small graphs only.
    fn fan_brute(g: &Digraph, source: u32, targets: &[u32], forbidden: &[u32]) -> bool {
        fn extend(
            g: &Digraph,
            targets: &[u32],
            forbidden: &[u32],
            used: &mut Vec<bool>,
            current: u32,
            idx: usize,
            source: u32,
        ) -> bool {
            if current == targets[idx] {
                if idx + 1 == targets.len() {
                    return true;
                }
                return extend(g, targets, forbidden, used, source, idx + 1, source);
            }
            let succ: Vec<u32> = g.successors(current).to_vec();
            for v in succ {
                if used[v as usize] || forbidden.contains(&v) || v == source {
                    continue;
                }
                // Interior nodes must not be other targets; endpoints only.
                if v != targets[idx] && targets.contains(&v) {
                    continue;
                }
                used[v as usize] = true;
                if extend(g, targets, forbidden, used, v, idx, source) {
                    return true;
                }
                used[v as usize] = false;
            }
            false
        }
        if targets.is_empty() {
            return true;
        }
        let mut used = vec![false; g.node_count()];
        extend(g, targets, forbidden, &mut used, source, 0, source)
    }

    #[test]
    fn simple_split_fan() {
        // 0 -> 1 -> 2, 0 -> 3 -> 4.
        let mut g = Digraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 3);
        g.add_edge(3, 4);
        match disjoint_fan(&g, 0, &[2, 4], &[]) {
            DisjointFan::Paths(paths) => {
                assert_eq!(paths, vec![vec![0, 1, 2], vec![0, 3, 4]]);
            }
            DisjointFan::Cut(c) => panic!("expected paths, got cut {c:?}"),
        }
    }

    #[test]
    fn shared_midpoint_is_a_cut() {
        // Both routes must pass node 1.
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(1, 3);
        match disjoint_fan(&g, 0, &[2, 3], &[]) {
            DisjointFan::Cut(cut) => assert_eq!(cut, vec![1]),
            DisjointFan::Paths(p) => panic!("expected cut, got {p:?}"),
        }
    }

    #[test]
    fn forbidden_node_blocks_fan() {
        let mut g = Digraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 3);
        g.add_edge(3, 4);
        assert!(has_disjoint_fan(&g, 0, &[2, 4], &[]));
        assert!(!has_disjoint_fan(&g, 0, &[2, 4], &[3]));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let g = Digraph::new(3);
        assert!(!has_disjoint_fan(&g, 0, &[1, 1], &[]));
        assert!(!has_disjoint_fan(&g, 0, &[0], &[]));
        assert!(!has_disjoint_fan(&g, 0, &[1], &[1]));
    }

    #[test]
    fn reverse_fan() {
        // 1 -> 0, 2 -> 3 -> 0 : disjoint paths from 1 and 2 into 0.
        let mut g = Digraph::new(4);
        g.add_edge(1, 0);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        match disjoint_fan_into(&g, &[1, 2], 0, &[]) {
            DisjointFan::Paths(paths) => {
                assert_eq!(paths, vec![vec![1, 0], vec![2, 3, 0]]);
            }
            DisjointFan::Cut(c) => panic!("expected paths, got {c:?}"),
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_graphs() {
        for seed in 0..30 {
            let g = random_digraph(9, 0.25, seed);
            let targets = [1u32, 2];
            let flow = has_disjoint_fan(&g, 0, &targets, &[]);
            let brute = fan_brute(&g, 0, &targets, &[]);
            assert_eq!(flow, brute, "mismatch on seed {seed}");
        }
    }

    #[test]
    fn agrees_with_brute_force_three_targets_with_forbidden() {
        for seed in 0..20 {
            let g = random_digraph(8, 0.35, 100 + seed);
            let targets = [1u32, 2, 3];
            let forbidden = [7u32];
            let flow = has_disjoint_fan(&g, 0, &targets, &forbidden);
            let brute = fan_brute(&g, 0, &targets, &forbidden);
            assert_eq!(flow, brute, "mismatch on seed {seed}");
        }
    }

    #[test]
    fn layered_dag_fan_paths_are_disjoint() {
        let g = layered_dag(4, 5, 0.6, 3);
        // Source layer 0 node 0; targets in the last layer.
        let targets = [15u32, 16, 17];
        if let DisjointFan::Paths(paths) = disjoint_fan(&g, 0, &targets, &[]) {
            let mut seen = std::collections::HashSet::new();
            for p in &paths {
                for &v in &p[1..] {
                    assert!(seen.insert(v), "node {v} reused");
                }
            }
        }
    }

    #[test]
    fn governed_unlimited_agrees_with_plain() {
        for seed in 0..10 {
            let g = random_digraph(9, 0.3, 900 + seed);
            let targets = [1u32, 2];
            let plain = disjoint_fan(&g, 0, &targets, &[]);
            let governed = try_disjoint_fan(&g, 0, &targets, &[], &Governor::unlimited())
                .expect("unlimited governor never interrupts");
            assert_eq!(plain, governed, "seed {seed}");
        }
    }

    #[test]
    fn interrupt_then_rerun_agrees_with_plain() {
        use kv_structures::govern::Budget;
        let g = random_digraph(10, 0.35, 4242);
        let targets = [1u32, 2, 3];
        let plain = disjoint_fan(&g, 0, &targets, &[]);
        // A tiny step budget must interrupt, never panic; rerunning with a
        // fresh unlimited governor recovers the exact answer.
        let tight = Governor::with_budget(Budget::steps(3));
        match try_disjoint_fan(&g, 0, &targets, &[], &tight) {
            Err(Interrupted::Limit(_)) => {}
            other => panic!("expected a limit interrupt, got {other:?}"),
        }
        let rerun = try_disjoint_fan(&g, 0, &targets, &[], &Governor::unlimited()).unwrap();
        assert_eq!(plain, rerun);
    }

    #[test]
    fn governed_reverse_fan_agrees_with_plain() {
        let mut g = Digraph::new(4);
        g.add_edge(1, 0);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        let plain = disjoint_fan_into(&g, &[1, 2], 0, &[]);
        let governed = try_disjoint_fan_into(&g, &[1, 2], 0, &[], &Governor::unlimited()).unwrap();
        assert_eq!(plain, governed);
    }

    #[test]
    fn menger_duality_cut_size_bounds_paths() {
        for seed in 0..15 {
            let g = random_digraph(10, 0.3, 500 + seed);
            let targets = [1u32, 2, 3];
            match disjoint_fan(&g, 0, &targets, &[]) {
                DisjointFan::Paths(p) => assert_eq!(p.len(), 3),
                DisjointFan::Cut(cut) => {
                    assert!(cut.len() < 3, "cut {cut:?} should have < k nodes");
                    // Removing the cut must disconnect 0 from some target
                    // (targets in the cut count as disconnected).
                    let reach = crate::reach::reachable_from(&g, 0, &cut);
                    let all_reachable = targets
                        .iter()
                        .all(|&t| !cut.contains(&t) && reach[t as usize]);
                    assert!(!all_reachable, "cut {cut:?} does not separate");
                }
            }
        }
    }
}
