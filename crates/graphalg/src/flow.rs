//! Maximum flow (Edmonds–Karp) and node-capacitated networks.
//!
//! Theorem 6.1's reduction views the input graph "as an appropriate directed
//! network with **node capacities**" and asks whether it carries a flow at
//! least the out-degree `k` of the pattern root. [`NodeCapNetwork`] realizes
//! node capacities by the classic in/out node-splitting, and
//! [`NodeCapNetwork::disjoint_paths`] decomposes an integral max flow into
//! the node-disjoint path system the Menger / Max-Flow Min-Cut argument
//! guarantees.

use kv_structures::govern::{Governor, Interrupted};
use kv_structures::Digraph;
use std::collections::VecDeque;

/// A directed flow network with integer capacities, stored as paired
/// edge/reverse-edge entries for residual bookkeeping.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// `(to, capacity)` per directed arc; arc `i ^ 1` is the reverse of `i`.
    arcs: Vec<(u32, i64)>,
    /// Arc indices leaving each node.
    adj: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        Self {
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds an arc `u -> v` with capacity `cap` (and its residual reverse).
    /// Returns the arc index.
    pub fn add_arc(&mut self, u: u32, v: u32, cap: i64) -> usize {
        assert!(cap >= 0, "negative capacity");
        let id = self.arcs.len();
        self.arcs.push((v, cap));
        self.arcs.push((u, 0));
        self.adj[u as usize].push(id);
        self.adj[v as usize].push(id + 1);
        id
    }

    /// Runs Edmonds–Karp from `s` to `t`, mutating residual capacities.
    /// Returns the max-flow value.
    pub fn max_flow(&mut self, s: u32, t: u32) -> i64 {
        match self.try_max_flow(s, t, &Governor::unlimited()) {
            Ok(flow) => flow,
            Err(e) => unreachable!("unlimited governor interrupted: {e}"),
        }
    }

    /// Governed [`max_flow`](Self::max_flow): checks the governor between
    /// augmenting iterations and charges one step per BFS edge scan. On
    /// interrupt the network keeps the flow pushed so far — the residual
    /// capacities *are* the checkpoint — so calling `try_max_flow` again
    /// with a fresh or relaxed governor continues augmenting and returns
    /// the **additional** flow; the final residual state is identical to
    /// an uninterrupted run.
    pub fn try_max_flow(&mut self, s: u32, t: u32, gov: &Governor) -> Result<i64, Interrupted> {
        assert_ne!(s, t, "source equals sink");
        let n = self.node_count();
        let mut total = 0i64;
        loop {
            gov.check()?;
            // BFS for a shortest augmenting path.
            let mut scanned = 0u64;
            let mut pred: Vec<Option<usize>> = vec![None; n];
            let mut seen = vec![false; n];
            seen[s as usize] = true;
            let mut queue = VecDeque::new();
            queue.push_back(s);
            'bfs: while let Some(u) = queue.pop_front() {
                scanned += self.adj[u as usize].len() as u64;
                for &a in &self.adj[u as usize] {
                    let (v, cap) = self.arcs[a];
                    if cap > 0 && !seen[v as usize] {
                        seen[v as usize] = true;
                        pred[v as usize] = Some(a);
                        if v == t {
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !seen[t as usize] {
                return Ok(total);
            }
            // Charge before augmenting: an interrupt here discards only
            // the (recomputable) BFS, never a half-applied augmentation.
            gov.step(scanned)?;
            // Bottleneck. The BFS reached `t`, so every node on the path
            // back to `s` has a predecessor arc.
            let mut bottleneck = i64::MAX;
            let mut v = t;
            #[allow(clippy::unwrap_used)]
            while v != s {
                let a = pred[v as usize].unwrap();
                bottleneck = bottleneck.min(self.arcs[a].1);
                v = self.arcs[a ^ 1].0;
            }
            // Augment.
            let mut v = t;
            #[allow(clippy::unwrap_used)]
            while v != s {
                let a = pred[v as usize].unwrap();
                self.arcs[a].1 -= bottleneck;
                self.arcs[a ^ 1].1 += bottleneck;
                v = self.arcs[a ^ 1].0;
            }
            total += bottleneck;
        }
    }

    /// After [`max_flow`], the flow pushed on arc `id` (forward arcs only).
    pub fn flow_on(&self, id: usize) -> i64 {
        debug_assert_eq!(id % 2, 0, "flow_on takes forward-arc indices");
        self.arcs[id ^ 1].1
    }

    /// After [`max_flow`], the set of nodes reachable from `s` in the
    /// residual graph — the source side of a minimum cut.
    pub fn residual_reachable(&self, s: u32) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        seen[s as usize] = true;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &a in &self.adj[u as usize] {
                let (v, cap) = self.arcs[a];
                if cap > 0 && !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }
}

/// A node-capacitated view of a [`Digraph`]: each graph node `v` becomes
/// `v_in = 2v` and `v_out = 2v + 1` joined by an arc of the node's capacity;
/// each graph edge `u -> v` becomes `u_out -> v_in` with unlimited capacity.
///
/// This is exactly the construction by which Fortune et al. (and Theorem
/// 6.1) turn node-disjointness into flow.
#[derive(Debug, Clone)]
pub struct NodeCapNetwork {
    net: FlowNetwork,
    /// Arc index of the `v_in -> v_out` splitter arc for each node.
    splitter: Vec<usize>,
    /// Arc indices of graph edges, with their endpoints.
    edge_arcs: Vec<(u32, u32, usize)>,
    /// Index of the auxiliary super-sink, if one was added.
    super_sink: Option<u32>,
}

const INF: i64 = i64::MAX / 4;

impl NodeCapNetwork {
    /// Builds the split network. `node_cap(v)` gives each node's capacity.
    pub fn build(g: &Digraph, node_cap: impl Fn(u32) -> i64) -> Self {
        let mut net = FlowNetwork::new(2 * g.node_count());
        let mut splitter = Vec::with_capacity(g.node_count());
        for v in g.nodes() {
            splitter.push(net.add_arc(2 * v, 2 * v + 1, node_cap(v)));
        }
        let mut edge_arcs = Vec::with_capacity(g.edge_count());
        for (u, v) in g.edges() {
            let a = net.add_arc(2 * u + 1, 2 * v, INF);
            edge_arcs.push((u, v, a));
        }
        Self {
            net,
            splitter,
            edge_arcs,
            super_sink: None,
        }
    }

    /// Adds a super-sink with an arc of capacity 1 from each target's
    /// out-node. Call before [`run`](Self::run) when computing a fan.
    pub fn add_unit_sink(&mut self, targets: &[u32]) -> u32 {
        let t = self.net.node_count() as u32;
        self.net.adj.push(Vec::new());
        for &v in targets {
            self.net.add_arc(2 * v + 1, t, 1);
        }
        self.super_sink = Some(t);
        t
    }

    /// Runs max flow from the out-node of `source` to `sink` (a raw network
    /// node id, e.g. the result of [`add_unit_sink`](Self::add_unit_sink) or
    /// `2 * v` for a graph node `v`'s in-node).
    pub fn run(&mut self, source: u32, sink_raw: u32) -> i64 {
        self.net.max_flow(2 * source + 1, sink_raw)
    }

    /// Governed [`run`](Self::run): see [`FlowNetwork::try_max_flow`] for
    /// the interrupt and resume semantics.
    pub fn try_run(
        &mut self,
        source: u32,
        sink_raw: u32,
        gov: &Governor,
    ) -> Result<i64, Interrupted> {
        self.net.try_max_flow(2 * source + 1, sink_raw, gov)
    }

    /// After [`run`](Self::run), decomposes the integral flow into
    /// node-disjoint paths in the original graph, starting at `source`.
    /// Each returned path is a node sequence `source, …, target` following
    /// saturated edges. Node capacities must have been 1 on all interior
    /// nodes for the node-disjointness guarantee to hold.
    pub fn disjoint_paths(&self, source: u32) -> Vec<Vec<u32>> {
        // Successor map along flow-carrying edges.
        let n = self.splitter.len();
        let mut next: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v, a) in &self.edge_arcs {
            let f = self.net.flow_on(a);
            for _ in 0..f {
                next[u as usize].push(v);
            }
        }
        let mut paths = Vec::new();
        // The flow out of `source` splits into unit paths; peel them off.
        while let Some(&first) = next[source as usize].last() {
            next[source as usize].pop();
            let mut path = vec![source, first];
            let mut cur = first;
            // Follow until a node with no outgoing flow (a target whose
            // sink arc absorbed the unit).
            while let Some(&nxt) = next[cur as usize].last() {
                next[cur as usize].pop();
                path.push(nxt);
                cur = nxt;
            }
            paths.push(path);
        }
        paths
    }

    /// After [`run`](Self::run), the set of graph nodes whose splitter arc is
    /// saturated and crosses the minimum cut — a minimum **vertex** cut
    /// separating source from targets (Menger's theorem's cut side).
    pub fn min_vertex_cut(&self, source: u32) -> Vec<u32> {
        let reach = self.net.residual_reachable(2 * source + 1);
        let mut cut = Vec::new();
        for (v, &a) in self.splitter.iter().enumerate() {
            let v_in = 2 * v;
            let v_out = 2 * v + 1;
            if reach[v_in] && !reach[v_out] && self.net.flow_on(a) > 0 {
                cut.push(v as u32);
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_structures::generators::directed_path_graph;

    #[test]
    fn unit_path_network() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 1);
        net.add_arc(1, 2, 1);
        assert_eq!(net.max_flow(0, 2), 1);
    }

    #[test]
    fn parallel_paths_add_up() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 3);
        net.add_arc(1, 3, 2);
        net.add_arc(0, 2, 2);
        net.add_arc(2, 3, 5);
        assert_eq!(net.max_flow(0, 3), 4);
    }

    #[test]
    fn classic_textbook_network() {
        // CLRS-style example with a known max flow of 23.
        let mut net = FlowNetwork::new(6);
        net.add_arc(0, 1, 16);
        net.add_arc(0, 2, 13);
        net.add_arc(1, 2, 10);
        net.add_arc(2, 1, 4);
        net.add_arc(1, 3, 12);
        net.add_arc(3, 2, 9);
        net.add_arc(2, 4, 14);
        net.add_arc(4, 3, 7);
        net.add_arc(3, 5, 20);
        net.add_arc(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn node_capacity_bottleneck() {
        // Two edge-disjoint s -> t routes sharing a middle node of cap 1.
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 3);
        g.add_edge(0, 1); // duplicate ignored by Digraph
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let mut net = NodeCapNetwork::build(&g, |v| if v == 0 || v == 3 { INF } else { 1 });
        let flow = net.run(0, 2 * 3);
        assert_eq!(flow, 1, "node 1 is a 1-cut despite two edge routes");
    }

    #[test]
    fn fan_with_unit_sink_and_path_extraction() {
        // Star: 0 -> {1, 2, 3} via disjoint two-hop paths.
        let mut g = Digraph::new(7);
        for (i, mid, t) in [(0u32, 4u32, 1u32), (0, 5, 2), (0, 6, 3)] {
            g.add_edge(i, mid);
            g.add_edge(mid, t);
        }
        let targets = [1u32, 2, 3];
        let mut net = NodeCapNetwork::build(&g, |v| if v == 0 { 3 } else { 1 });
        let sink = net.add_unit_sink(&targets);
        assert_eq!(net.run(0, sink), 3);
        let mut paths = net.disjoint_paths(0);
        paths.sort();
        assert_eq!(paths.len(), 3);
        // Pairwise node-disjoint except the shared source.
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                for x in &paths[i][1..] {
                    assert!(!paths[j][1..].contains(x));
                }
            }
        }
        for p in &paths {
            assert_eq!(p.len(), 3);
            assert_eq!(p[0], 0);
            assert!(targets.contains(p.last().unwrap()));
        }
    }

    #[test]
    fn min_vertex_cut_on_hourglass() {
        // 0 -> {1,2} -> 3 -> {4,5}; the cut is {3}.
        let mut g = Digraph::new(6);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(3, 5);
        let targets = [4u32, 5];
        let mut net = NodeCapNetwork::build(&g, |v| if v == 0 { 2 } else { 1 });
        let sink = net.add_unit_sink(&targets);
        assert_eq!(net.run(0, sink), 1);
        assert_eq!(net.min_vertex_cut(0), vec![3]);
    }

    #[test]
    fn single_path_graph_flow_is_one() {
        let g = directed_path_graph(6);
        let mut net = NodeCapNetwork::build(&g, |v| if v == 0 { 10 } else { 1 });
        let sink = net.add_unit_sink(&[5]);
        assert_eq!(net.run(0, sink), 1);
        let paths = net.disjoint_paths(0);
        assert_eq!(paths, vec![vec![0, 1, 2, 3, 4, 5]]);
    }
}
