//! Directed-graph algorithms backing the case study of Section 6.
//!
//! The positive side of the paper's dichotomy (Theorem 6.1) rests on the
//! reduction of `H`-subgraph homeomorphism for `H ∈ C` to a **network flow**
//! question with node capacities, and on the Max-Flow Min-Cut / Menger
//! theorem. This crate supplies that substrate:
//!
//! - [`reach`]: BFS reachability with forbidden-node sets (the `w`-avoiding
//!   paths of Example 2.1);
//! - [`dag`]: acyclicity tests, topological sort, and the *level* function
//!   (length of the longest path out of a node) used by the Theorem 6.2
//!   game argument;
//! - [`flow`]: Edmonds–Karp max-flow, node-capacitated networks via node
//!   splitting, flow decomposition into paths, and minimum vertex cuts;
//! - [`disjoint`]: Menger-style node-disjoint path systems (fan from a
//!   source to `k` targets);
//! - [`simple_paths`]: bounded enumeration of simple paths, the exponential
//!   baseline for the NP-complete side.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod dag;
pub mod disjoint;
pub mod flow;
pub mod reach;
pub mod simple_paths;

pub use dag::{is_acyclic, levels, topological_sort, try_levels};
pub use disjoint::{disjoint_fan, try_disjoint_fan, try_disjoint_fan_into, DisjointFan};
pub use flow::{FlowNetwork, NodeCapNetwork};
pub use reach::{avoiding_path, reachable_from, shortest_path};
pub use simple_paths::{enumerate_simple_paths, has_simple_path_where};
