//! Reachability and shortest paths with forbidden-node sets.
//!
//! Example 2.1's query "is there a `w`-avoiding path from `x` to `y`?" is the
//! seed of the whole positive side of the case study; [`avoiding_path`] is
//! its direct graph-algorithmic form and the ground truth against which the
//! Datalog(≠) program `T(x, y, w)` is tested.

use kv_structures::Digraph;
use std::collections::VecDeque;

/// The set of nodes reachable from `start` (including `start`) without
/// visiting any node in `forbidden`. If `start` itself is forbidden the
/// result is empty.
pub fn reachable_from(g: &Digraph, start: u32, forbidden: &[u32]) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    if forbidden.contains(&start) {
        return seen;
    }
    let mut queue = VecDeque::new();
    seen[start as usize] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for &v in g.successors(u) {
            if !seen[v as usize] && !forbidden.contains(&v) {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

/// A shortest path from `s` to `t` avoiding `forbidden` nodes, as a node
/// sequence `s, …, t`, or `None` if `t` is unreachable. A path of length 0
/// (`s == t`) is returned iff `s` is not forbidden.
pub fn shortest_path(g: &Digraph, s: u32, t: u32, forbidden: &[u32]) -> Option<Vec<u32>> {
    if forbidden.contains(&s) || forbidden.contains(&t) {
        return None;
    }
    let mut parent: Vec<Option<u32>> = vec![None; g.node_count()];
    let mut seen = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    seen[s as usize] = true;
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        if u == t {
            let mut path = vec![t];
            let mut cur = t;
            while let Some(p) = parent[cur as usize] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &v in g.successors(u) {
            if !seen[v as usize] && !forbidden.contains(&v) {
                seen[v as usize] = true;
                parent[v as usize] = Some(u);
                queue.push_back(v);
            }
        }
    }
    None
}

/// Is there a *nonempty* path from `x` to `y` avoiding all `forbidden`
/// nodes? Endpoints themselves must avoid the forbidden set. This matches
/// the semantics of the paper's `T(x, y, w)` program: the path must have at
/// least one edge, and no node on it (including `x` and `y`) equals a
/// forbidden node.
pub fn avoiding_path(g: &Digraph, x: u32, y: u32, forbidden: &[u32]) -> bool {
    if forbidden.contains(&x) || forbidden.contains(&y) {
        return false;
    }
    // Nonempty: start from the successors of x.
    let mut seen = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    for &v in g.successors(x) {
        if !forbidden.contains(&v) && !seen[v as usize] {
            seen[v as usize] = true;
            queue.push_back(v);
        }
    }
    while let Some(u) = queue.pop_front() {
        if u == y {
            return true;
        }
        for &v in g.successors(u) {
            if !seen[v as usize] && !forbidden.contains(&v) {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_structures::generators::{directed_cycle_graph, directed_path_graph};

    #[test]
    fn reachable_on_path() {
        let g = directed_path_graph(5);
        let r = reachable_from(&g, 1, &[]);
        assert_eq!(r, vec![false, true, true, true, true]);
    }

    #[test]
    fn reachable_blocked_by_forbidden() {
        let g = directed_path_graph(5);
        let r = reachable_from(&g, 0, &[2]);
        assert_eq!(r, vec![true, true, false, false, false]);
    }

    #[test]
    fn shortest_path_found_and_reconstructed() {
        let mut g = directed_path_graph(5);
        g.add_edge(0, 3); // shortcut
        let p = shortest_path(&g, 0, 4, &[]).unwrap();
        assert_eq!(p, vec![0, 3, 4]);
    }

    #[test]
    fn shortest_path_respects_forbidden() {
        let mut g = directed_path_graph(5);
        g.add_edge(0, 3);
        g.add_edge(2, 4);
        let p = shortest_path(&g, 0, 4, &[3]).unwrap();
        assert_eq!(p, vec![0, 1, 2, 4]);
        assert!(shortest_path(&g, 0, 4, &[3, 2]).is_none());
    }

    #[test]
    fn avoiding_path_nonempty_semantics() {
        let g = directed_cycle_graph(3);
        // Path from 0 back to 0 exists (around the cycle) and is nonempty.
        assert!(avoiding_path(&g, 0, 0, &[]));
        // A single node with no self-loop has no nonempty path to itself.
        let lone = Digraph::new(1);
        assert!(!avoiding_path(&lone, 0, 0, &[]));
    }

    #[test]
    fn avoiding_path_endpoint_forbidden() {
        let g = directed_path_graph(3);
        assert!(avoiding_path(&g, 0, 2, &[]));
        assert!(!avoiding_path(&g, 0, 2, &[2]));
        assert!(!avoiding_path(&g, 0, 2, &[0]));
        assert!(!avoiding_path(&g, 0, 2, &[1]));
    }
}
