//! Bounded enumeration of simple paths — the exponential baseline.
//!
//! The NP-complete queries of the case study (two node-disjoint paths, even
//! simple path) have no known polynomial algorithm; the reproduction uses
//! exhaustive search over simple paths as ground truth on small instances.

use kv_structures::Digraph;

/// Enumerates simple paths from `s` to `t` (node sequences, including
/// endpoints), invoking `visit` on each. Enumeration stops early when
/// `visit` returns `false` or when `max_paths` have been produced. Returns
/// the number of paths visited.
///
/// A "simple path" never repeats a node; the trivial path `[s]` is produced
/// when `s == t`.
pub fn enumerate_simple_paths(
    g: &Digraph,
    s: u32,
    t: u32,
    max_paths: usize,
    visit: &mut dyn FnMut(&[u32]) -> bool,
) -> usize {
    let mut on_path = vec![false; g.node_count()];
    let mut path = Vec::new();
    let mut count = 0usize;
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &Digraph,
        cur: u32,
        t: u32,
        on_path: &mut Vec<bool>,
        path: &mut Vec<u32>,
        count: &mut usize,
        max_paths: usize,
        visit: &mut dyn FnMut(&[u32]) -> bool,
    ) -> bool {
        on_path[cur as usize] = true;
        path.push(cur);
        let mut keep_going = true;
        if cur == t {
            *count += 1;
            keep_going = visit(path) && *count < max_paths;
        } else {
            for &v in g.successors(cur) {
                if !on_path[v as usize] && !dfs(g, v, t, on_path, path, count, max_paths, visit) {
                    keep_going = false;
                    break;
                }
            }
        }
        path.pop();
        on_path[cur as usize] = false;
        keep_going
    }
    dfs(
        g,
        s,
        t,
        &mut on_path,
        &mut path,
        &mut count,
        max_paths,
        visit,
    );
    count
}

/// Is there a simple path from `s` to `t` satisfying `pred` (called on the
/// full node sequence)? Exhaustive — exponential in the worst case.
pub fn has_simple_path_where(
    g: &Digraph,
    s: u32,
    t: u32,
    mut pred: impl FnMut(&[u32]) -> bool,
) -> bool {
    let mut found = false;
    enumerate_simple_paths(g, s, t, usize::MAX, &mut |p| {
        if pred(p) {
            found = true;
            false // stop
        } else {
            true
        }
    });
    found
}

/// All simple paths from `s` to `t` (small graphs only).
pub fn all_simple_paths(g: &Digraph, s: u32, t: u32) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    enumerate_simple_paths(g, s, t, usize::MAX, &mut |p| {
        out.push(p.to_vec());
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_structures::generators::{directed_cycle_graph, directed_path_graph};

    #[test]
    fn path_graph_has_one_path() {
        let g = directed_path_graph(5);
        assert_eq!(all_simple_paths(&g, 0, 4), vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn diamond_has_two_paths() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let mut paths = all_simple_paths(&g, 0, 3);
        paths.sort();
        assert_eq!(paths, vec![vec![0, 1, 3], vec![0, 2, 3]]);
    }

    #[test]
    fn trivial_path_when_endpoints_equal() {
        let g = directed_path_graph(3);
        assert_eq!(all_simple_paths(&g, 1, 1), vec![vec![1]]);
        // On a cycle, s == t still yields only the trivial path: a simple
        // path cannot revisit s.
        let c = directed_cycle_graph(3);
        assert_eq!(all_simple_paths(&c, 0, 0), vec![vec![0]]);
    }

    #[test]
    fn max_paths_truncates() {
        // Complete bipartite-ish blow-up with many paths.
        let mut g = Digraph::new(8);
        for a in 1..4 {
            g.add_edge(0, a);
            for b in 4..7 {
                g.add_edge(a, b);
                g.add_edge(b, 7);
            }
        }
        let n = enumerate_simple_paths(&g, 0, 7, 5, &mut |_| true);
        assert_eq!(n, 5);
        let total = enumerate_simple_paths(&g, 0, 7, usize::MAX, &mut |_| true);
        assert_eq!(total, 9);
    }

    #[test]
    fn predicate_search_even_length() {
        // Path of length 4 from 0 to 4 (even), plus a shortcut of length 1.
        let mut g = directed_path_graph(5);
        g.add_edge(0, 4);
        assert!(has_simple_path_where(&g, 0, 4, |p| (p.len() - 1) % 2 == 0));
        assert!(has_simple_path_where(&g, 0, 4, |p| (p.len() - 1) % 2 == 1));
        assert!(!has_simple_path_where(&g, 0, 4, |p| p.len() > 6));
    }

    #[test]
    fn early_stop_visits_once() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let mut seen = 0;
        enumerate_simple_paths(&g, 0, 3, usize::MAX, &mut |_| {
            seen += 1;
            false
        });
        assert_eq!(seen, 1);
    }
}
