//! Randomized property tests: Menger duality, flow correctness, DAG facts.
//! Seed-deterministic via the in-tree [`SplitMix64`] generator.

use kv_graphalg::disjoint::{disjoint_fan, DisjointFan};
use kv_graphalg::{is_acyclic, levels, reachable_from, topological_sort};
use kv_structures::rng::SplitMix64;
use kv_structures::Digraph;

/// A random loop-free digraph with `3..=max_n` nodes.
fn random_case_digraph(max_n: usize, max_edges: usize, rng: &mut SplitMix64) -> Digraph {
    let n = rng.gen_range(3usize..max_n + 1);
    let mut g = Digraph::new(n);
    let edges = rng.gen_range(0usize..max_edges + 1);
    for _ in 0..edges {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

/// Menger duality: either the fan exists, or the returned cut (of fewer
/// than k nodes) actually separates the source from some target.
#[test]
fn menger_duality() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let g = random_case_digraph(9, 30, &mut rng);
        let targets = [1u32, 2];
        match disjoint_fan(&g, 0, &targets, &[]) {
            DisjointFan::Paths(paths) => {
                assert_eq!(paths.len(), 2);
                // Validate edges, endpoints, and disjointness.
                for (p, &t) in paths.iter().zip(&targets) {
                    assert_eq!(p[0], 0);
                    assert_eq!(*p.last().unwrap(), t);
                    for w in p.windows(2) {
                        assert!(g.has_edge(w[0], w[1]), "seed {seed}");
                    }
                }
                for x in &paths[0][1..] {
                    assert!(!paths[1][1..].contains(x), "seed {seed}");
                }
            }
            DisjointFan::Cut(cut) => {
                assert!(cut.len() < 2);
                let reach = reachable_from(&g, 0, &cut);
                let all_ok = targets
                    .iter()
                    .all(|&t| !cut.contains(&t) && reach[t as usize]);
                assert!(!all_ok, "seed {seed}: cut {cut:?} fails to separate");
            }
        }
    }
}

/// Fan path interiors must avoid the distinguished endpoints.
#[test]
fn fan_interiors_avoid_endpoints() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::seed_from_u64(1000 + seed);
        let g = random_case_digraph(8, 30, &mut rng);
        if let DisjointFan::Paths(paths) = disjoint_fan(&g, 0, &[1, 2], &[]) {
            for p in &paths {
                for &x in &p[1..p.len() - 1] {
                    assert!(x != 0 && x != 1 && x != 2, "seed {seed}");
                }
            }
        }
    }
}

/// Topological sort exists iff acyclic, and respects all edges.
#[test]
fn topo_sort_is_consistent() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::seed_from_u64(2000 + seed);
        let g = random_case_digraph(9, 30, &mut rng);
        match topological_sort(&g) {
            Some(order) => {
                assert!(is_acyclic(&g));
                let mut pos = vec![0usize; g.node_count()];
                for (i, &v) in order.iter().enumerate() {
                    pos[v as usize] = i;
                }
                for (u, v) in g.edges() {
                    assert!(pos[u as usize] < pos[v as usize], "seed {seed}");
                }
            }
            None => assert!(!is_acyclic(&g), "seed {seed}"),
        }
    }
}

/// On DAGs, levels strictly decrease along edges and sinks are 0.
#[test]
fn level_function_laws() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::seed_from_u64(3000 + seed);
        let g = random_case_digraph(9, 30, &mut rng);
        if is_acyclic(&g) {
            let l = levels(&g);
            for (u, v) in g.edges() {
                assert!(l[u as usize] > l[v as usize], "seed {seed}");
            }
            for v in g.nodes() {
                if g.out_degree(v) == 0 {
                    assert_eq!(l[v as usize], 0, "seed {seed}");
                }
            }
        }
    }
}

/// Reachability is monotone in the forbidden set.
#[test]
fn reachability_antitone_in_forbidden() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::seed_from_u64(4000 + seed);
        let g = random_case_digraph(8, 30, &mut rng);
        let n = g.node_count() as u32;
        let f = rng.gen_range(1u32..8) % n;
        let base = reachable_from(&g, 0, &[]);
        let restricted = reachable_from(&g, 0, &[f]);
        for v in 0..n {
            if restricted[v as usize] {
                assert!(base[v as usize], "seed {seed}");
            }
        }
    }
}
