//! Property-based tests: Menger duality, flow correctness, DAG facts.

use kv_graphalg::disjoint::{disjoint_fan, DisjointFan};
use kv_graphalg::{is_acyclic, levels, reachable_from, topological_sort};
use kv_structures::Digraph;
use proptest::prelude::*;

fn digraph_strategy(max_n: usize) -> impl Strategy<Value = Digraph> {
    (3usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(2 * n * n / 3).min(30))
            .prop_map(move |edges| {
                let mut g = Digraph::new(n);
                for (u, v) in edges {
                    if u != v {
                        g.add_edge(u, v);
                    }
                }
                g
            })
    })
}

proptest! {
    /// Menger duality: either the fan exists, or the returned cut (of
    /// fewer than k nodes) actually separates the source from some target.
    #[test]
    fn menger_duality(g in digraph_strategy(9)) {
        let targets = [1u32, 2];
        match disjoint_fan(&g, 0, &targets, &[]) {
            DisjointFan::Paths(paths) => {
                prop_assert_eq!(paths.len(), 2);
                // Validate edges, endpoints, and disjointness.
                for (p, &t) in paths.iter().zip(&targets) {
                    prop_assert_eq!(p[0], 0);
                    prop_assert_eq!(*p.last().unwrap(), t);
                    for w in p.windows(2) {
                        prop_assert!(g.has_edge(w[0], w[1]));
                    }
                }
                for x in &paths[0][1..] {
                    prop_assert!(!paths[1][1..].contains(x));
                }
            }
            DisjointFan::Cut(cut) => {
                prop_assert!(cut.len() < 2);
                let reach = reachable_from(&g, 0, &cut);
                let all_ok = targets
                    .iter()
                    .all(|&t| !cut.contains(&t) && reach[t as usize]);
                prop_assert!(!all_ok, "cut {:?} fails to separate", cut);
            }
        }
    }

    /// Removing any returned fan path's interior node destroys at least
    /// that routing (sanity of witness minimality is not required — only
    /// validity — but interior nodes must be non-distinguished).
    #[test]
    fn fan_interiors_avoid_endpoints(g in digraph_strategy(8)) {
        if let DisjointFan::Paths(paths) = disjoint_fan(&g, 0, &[1, 2], &[]) {
            for p in &paths {
                for &x in &p[1..p.len() - 1] {
                    prop_assert!(x != 0 && x != 1 && x != 2);
                }
            }
        }
    }

    /// Topological sort exists iff acyclic, and respects all edges.
    #[test]
    fn topo_sort_is_consistent(g in digraph_strategy(9)) {
        match topological_sort(&g) {
            Some(order) => {
                prop_assert!(is_acyclic(&g));
                let mut pos = vec![0usize; g.node_count()];
                for (i, &v) in order.iter().enumerate() {
                    pos[v as usize] = i;
                }
                for (u, v) in g.edges() {
                    prop_assert!(pos[u as usize] < pos[v as usize]);
                }
            }
            None => prop_assert!(!is_acyclic(&g)),
        }
    }

    /// On DAGs, levels strictly decrease along edges and sinks are 0.
    #[test]
    fn level_function_laws(g in digraph_strategy(9)) {
        if is_acyclic(&g) {
            let l = levels(&g);
            for (u, v) in g.edges() {
                prop_assert!(l[u as usize] > l[v as usize]);
            }
            for v in g.nodes() {
                if g.out_degree(v) == 0 {
                    prop_assert_eq!(l[v as usize], 0);
                }
            }
        }
    }

    /// Reachability is monotone in the forbidden set.
    #[test]
    fn reachability_antitone_in_forbidden(g in digraph_strategy(8), f in 1u32..8) {
        let n = g.node_count() as u32;
        let f = f % n;
        let base = reachable_from(&g, 0, &[]);
        let restricted = reachable_from(&g, 0, &[f]);
        for v in 0..n {
            if restricted[v as usize] {
                prop_assert!(base[v as usize]);
            }
        }
    }
}
