//! Exhaustive homeomorphism testing — the exponential ground truth.

use kv_pebble::PatternSpec;
use kv_structures::govern::{Governor, Interrupted};
use kv_structures::Digraph;

/// Does `g` contain, for every edge `(i, j)` of `pattern`, a nonempty
/// simple path from `distinguished[i]` to `distinguished[j]`, all paths
/// pairwise node-disjoint except for shared endpoints?
///
/// This is the literal Definition of "`H` is homeomorphic to the
/// distinguished subgraph of `G`" (Section 6). Exponential backtracking —
/// intended for small graphs as the reference oracle.
///
/// # Panics
/// Panics if the pattern is invalid or the distinguished nodes are not
/// distinct.
pub fn brute_force_homeomorphism(
    pattern: &PatternSpec,
    g: &Digraph,
    distinguished: &[u32],
) -> bool {
    find_homeomorphism(pattern, g, distinguished).is_some()
}

/// Governed [`brute_force_homeomorphism`]: the governor is charged one
/// step per backtracking successor visit. The search carries no
/// committed state — on interrupt, restart with a fresh or relaxed
/// governor.
pub fn try_brute_force_homeomorphism(
    pattern: &PatternSpec,
    g: &Digraph,
    distinguished: &[u32],
    gov: &Governor,
) -> Result<bool, Interrupted> {
    Ok(try_find_homeomorphism(pattern, g, distinguished, gov)?.is_some())
}

/// Like [`brute_force_homeomorphism`] but returns the path system (one
/// node sequence per pattern edge, in pattern-edge order).
pub fn find_homeomorphism(
    pattern: &PatternSpec,
    g: &Digraph,
    distinguished: &[u32],
) -> Option<Vec<Vec<u32>>> {
    match try_find_homeomorphism(pattern, g, distinguished, &Governor::unlimited()) {
        Ok(witness) => witness,
        Err(e) => unreachable!("unlimited governor interrupted: {e}"),
    }
}

/// Governed [`find_homeomorphism`]; same restart-resume contract as
/// [`try_brute_force_homeomorphism`].
pub fn try_find_homeomorphism(
    pattern: &PatternSpec,
    g: &Digraph,
    distinguished: &[u32],
    gov: &Governor,
) -> Result<Option<Vec<Vec<u32>>>, Interrupted> {
    // Documented input contract: callers must pass a validated pattern.
    #[allow(clippy::expect_used)]
    pattern.validate_allow_self_loops().expect("valid pattern");
    assert_eq!(distinguished.len(), pattern.node_count);
    let mut uniq = distinguished.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(
        uniq.len(),
        distinguished.len(),
        "distinguished nodes distinct"
    );

    // `used[v]`: v is an interior node of some chosen path. Endpoints are
    // handled separately: every distinguished node may serve as an
    // endpoint of several paths but never as an interior node (the
    // pattern has no isolated nodes by assumption, so each distinguished
    // node is an endpoint of some path and interior to none).
    let mut used = vec![false; g.node_count()];
    let mut paths: Vec<Vec<u32>> = Vec::with_capacity(pattern.edges.len());
    if assign(pattern, g, distinguished, 0, &mut used, &mut paths, gov)? {
        Ok(Some(paths))
    } else {
        Ok(None)
    }
}

#[allow(clippy::too_many_arguments)]
fn assign(
    pattern: &PatternSpec,
    g: &Digraph,
    distinguished: &[u32],
    edge_idx: usize,
    used: &mut Vec<bool>,
    paths: &mut Vec<Vec<u32>>,
    gov: &Governor,
) -> Result<bool, Interrupted> {
    let Some(&(i, j)) = pattern.edges.get(edge_idx) else {
        return Ok(true);
    };
    let (from, to) = (distinguished[i], distinguished[j]);
    // Enumerate simple paths from `from` to `to` whose interior avoids
    // `used` and every distinguished node.
    let mut path = vec![from];
    extend(
        pattern,
        g,
        distinguished,
        edge_idx,
        used,
        paths,
        &mut path,
        from,
        to,
        gov,
    )
}

#[allow(clippy::too_many_arguments)]
fn extend(
    pattern: &PatternSpec,
    g: &Digraph,
    distinguished: &[u32],
    edge_idx: usize,
    used: &mut Vec<bool>,
    paths: &mut Vec<Vec<u32>>,
    path: &mut Vec<u32>,
    current: u32,
    target: u32,
    gov: &Governor,
) -> Result<bool, Interrupted> {
    for &v in g.successors(current) {
        gov.step(1)?;
        if v == target {
            // Self-loop patterns ask for a cycle: `from == to` is allowed
            // and the path from -> ... -> from is a proper cycle.
            path.push(v);
            paths.push(path.clone());
            if assign(pattern, g, distinguished, edge_idx + 1, used, paths, gov)? {
                return Ok(true);
            }
            paths.pop();
            path.pop();
            continue;
        }
        if used[v as usize] || distinguished.contains(&v) || path.contains(&v) {
            continue;
        }
        used[v as usize] = true;
        path.push(v);
        if extend(
            pattern,
            g,
            distinguished,
            edge_idx,
            used,
            paths,
            path,
            v,
            target,
            gov,
        )? {
            return Ok(true);
        }
        path.pop();
        used[v as usize] = false;
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h1_positive_and_negative() {
        let h1 = PatternSpec::two_disjoint_edges();
        // Disjoint routes.
        let mut g = Digraph::new(6);
        g.add_edge(0, 4);
        g.add_edge(4, 1);
        g.add_edge(2, 5);
        g.add_edge(5, 3);
        assert!(brute_force_homeomorphism(&h1, &g, &[0, 1, 2, 3]));
        // Shared midpoint.
        let mut h = Digraph::new(5);
        h.add_edge(0, 4);
        h.add_edge(4, 1);
        h.add_edge(2, 4);
        h.add_edge(4, 3);
        assert!(!brute_force_homeomorphism(&h1, &h, &[0, 1, 2, 3]));
    }

    #[test]
    fn paths_may_share_endpoints() {
        // Pattern: 0 -> 1, 2 -> 1 (in-star): two paths into the same node.
        let p = PatternSpec {
            node_count: 3,
            edges: vec![(0, 1), (2, 1)],
        };
        let mut g = Digraph::new(5);
        g.add_edge(0, 3);
        g.add_edge(3, 1);
        g.add_edge(2, 4);
        g.add_edge(4, 1);
        assert!(brute_force_homeomorphism(&p, &g, &[0, 1, 2]));
    }

    #[test]
    fn interior_cannot_be_distinguished() {
        // Pattern H2 = 0 -> 1 -> 2; leg 2 forced through distinguished 0.
        let p = PatternSpec::path_length_two();
        let mut g = Digraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(0, 2);
        // Path 1 -> 2 must be 1 -> 0 -> 2, interior 0 is distinguished.
        assert!(!brute_force_homeomorphism(&p, &g, &[0, 1, 2]));
    }

    #[test]
    fn self_loop_pattern_needs_cycle() {
        // Pattern: self-loop at 0 plus edge 0 -> 1.
        let p = PatternSpec {
            node_count: 2,
            edges: vec![(0, 0), (0, 1)],
        };
        let mut g = Digraph::new(4);
        g.add_edge(0, 2);
        g.add_edge(2, 0); // cycle through 0
        g.add_edge(0, 3);
        g.add_edge(3, 1);
        assert!(brute_force_homeomorphism(&p, &g, &[0, 1]));
        // Remove the cycle: no homeomorphism.
        let mut g2 = Digraph::new(4);
        g2.add_edge(0, 2);
        g2.add_edge(0, 3);
        g2.add_edge(3, 1);
        assert!(!brute_force_homeomorphism(&p, &g2, &[0, 1]));
    }

    #[test]
    fn governed_interrupt_then_rerun_agrees_with_plain() {
        use kv_structures::govern::{Budget, Governor, Interrupted};
        let h1 = PatternSpec::two_disjoint_edges();
        let mut g = Digraph::new(6);
        g.add_edge(0, 4);
        g.add_edge(4, 1);
        g.add_edge(2, 5);
        g.add_edge(5, 3);
        let d = [0u32, 1, 2, 3];
        let plain = find_homeomorphism(&h1, &g, &d);
        let tight = Governor::with_budget(Budget::steps(1));
        match try_find_homeomorphism(&h1, &g, &d, &tight) {
            Err(Interrupted::Limit(_)) => {}
            other => panic!("expected a limit interrupt, got {other:?}"),
        }
        let rerun = try_find_homeomorphism(&h1, &g, &d, &Governor::unlimited()).unwrap();
        assert_eq!(plain, rerun);
    }

    #[test]
    fn witness_paths_are_disjoint() {
        let h1 = PatternSpec::two_disjoint_edges();
        let mut g = Digraph::new(8);
        g.add_edge(0, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 1);
        g.add_edge(2, 6);
        g.add_edge(6, 7);
        g.add_edge(7, 3);
        let paths = find_homeomorphism(&h1, &g, &[0, 1, 2, 3]).unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].first(), Some(&0));
        assert_eq!(paths[0].last(), Some(&1));
        assert_eq!(paths[1].first(), Some(&2));
        assert_eq!(paths[1].last(), Some(&3));
        for x in &paths[0] {
            assert!(!paths[1].contains(x));
        }
    }
}
