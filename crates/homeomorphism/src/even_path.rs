//! The even simple path query (Example 5.2(1), Corollary 6.8).
//!
//! "Is there a simple path of even (nonzero) length from `s` to `t`?" —
//! NP-complete, monotone, pattern-based, and (the point of Corollary 6.8)
//! not expressible in `L^ω`.

use kv_graphalg::simple_paths::has_simple_path_where;
use kv_pebble::{ExistentialGame, Winner};
use kv_structures::{Digraph, HomKind, Structure};
use std::sync::Arc;

/// Brute-force ground truth: is there a simple path of even length `≥ 2`
/// from `s` to `t`? Exponential.
pub fn even_simple_path(g: &Digraph, s: u32, t: u32) -> bool {
    if s == t {
        return false; // a simple path cannot return to its start
    }
    has_simple_path_where(g, s, t, |p| p.len() >= 3 && (p.len() - 1) % 2 == 0)
}

/// The pattern generator `α` of Example 5.2(1): for an input with `n`
/// nodes, all directed paths with `k` nodes (`k` odd, `3 ≤ k ≤ n`), with
/// the endpoints distinguished. A one-to-one homomorphism of a pattern
/// into `(G, s, t)` mapping its endpoints to `s` and `t` is exactly an
/// even simple path.
pub fn even_path_patterns(n: usize) -> Vec<Structure> {
    let vocab = Arc::new(kv_structures::Vocabulary::graph_with_constants(2));
    let mut out = Vec::new();
    let mut k = 3usize;
    while k <= n {
        let mut p = kv_structures::generators::directed_path_graph(k);
        p.set_distinguished(vec![0, (k - 1) as u32]);
        out.push(p.to_structure_with(Arc::clone(&vocab)));
        k += 2;
    }
    out
}

/// The "algorithm" of Proposition 5.4: declare the query true iff some
/// pattern structure `A ∈ α(G)` satisfies `A ≼^k (G, s, t)` (Duplicator
/// wins the existential k-pebble game).
///
/// If the even simple path query *were* expressible in `L^k`, this would
/// be exact (Theorem 5.5 would put the query in PTIME). Since it is not
/// (Corollary 6.8), the procedure only **overapproximates**: it never
/// misses a real even path (the embedding hands the Duplicator a
/// strategy), but may accept graphs without one. Comparing it against
/// [`even_simple_path`] is how the reproduction *exhibits* the
/// inexpressibility concretely.
pub fn even_path_via_games(g: &Digraph, s: u32, t: u32, k: usize) -> bool {
    let vocab = Arc::new(kv_structures::Vocabulary::graph_with_constants(2));
    let mut gg = g.clone();
    gg.set_distinguished(vec![s, t]);
    let b = gg.to_structure_with(Arc::clone(&vocab));
    for a in even_path_patterns(g.node_count()) {
        if ExistentialGame::solve(&a, &b, k, HomKind::OneToOne).winner() == Winner::Duplicator {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_structures::generators::{directed_path_graph, random_digraph};

    #[test]
    fn brute_force_basics() {
        let g = directed_path_graph(5);
        assert!(even_simple_path(&g, 0, 2));
        assert!(even_simple_path(&g, 0, 4));
        assert!(!even_simple_path(&g, 0, 1));
        assert!(!even_simple_path(&g, 0, 3));
        assert!(!even_simple_path(&g, 0, 0));
    }

    #[test]
    fn odd_shortcut_does_not_fool_parity() {
        // 0 -> 1 -> 2 plus shortcut 0 -> 2: even path exists (length 2).
        let mut g = directed_path_graph(3);
        g.add_edge(0, 2);
        assert!(even_simple_path(&g, 0, 2));
        // Only the direct edge: no even simple path.
        let mut h = Digraph::new(2);
        h.add_edge(0, 1);
        assert!(!even_simple_path(&h, 0, 1));
    }

    #[test]
    fn patterns_are_odd_node_paths() {
        let pats = even_path_patterns(7);
        assert_eq!(pats.len(), 3); // k = 3, 5, 7
        for (idx, p) in pats.iter().enumerate() {
            let nodes = 3 + 2 * idx;
            assert_eq!(p.universe_size(), nodes);
            assert_eq!(p.tuple_count(), nodes - 1);
        }
    }

    #[test]
    fn game_procedure_is_sound_upper_bound() {
        // Never misses a real even simple path.
        for seed in 0..6 {
            let g = random_digraph(6, 0.3, 2700 + seed);
            for (s, t) in [(0u32, 1u32), (2, 5)] {
                if even_simple_path(&g, s, t) {
                    assert!(
                        even_path_via_games(&g, s, t, 2),
                        "game procedure missed a real even path, seed {}",
                        2700 + seed
                    );
                }
            }
        }
    }
}
