//! The polynomial algorithm for class-`C` patterns (Theorem 6.1's
//! reduction): fan patterns become node-capacitated max-flow questions;
//! the self-loop case adds a cycle through the root.

use crate::pattern::{ClassCRoot, Orientation};
use kv_graphalg::disjoint::{try_disjoint_fan, DisjointFan};
use kv_pebble::PatternSpec;
use kv_structures::govern::{Governor, Interrupted};
use kv_structures::Digraph;

/// Solves the `H`-subgraph homeomorphism query for a pattern in class `C`.
///
/// `distinguished[i]` interprets pattern node `i`; the classification
/// `root` must come from [`crate::pattern::class_c_root`] of the same
/// pattern.
///
/// Out-orientation without self-loop: `k` node-disjoint paths from the
/// root's node to the fan targets — a max-flow of value `k` with unit node
/// capacities. With a self-loop, additionally a simple cycle through the
/// root, node-disjoint from the fan: either a literal self-loop edge in
/// `G`, or an extra fan leg to some non-distinguished `w` with an edge
/// `w → root` (the paper's case analysis at the end of Theorem 6.1).
/// In-orientation is the same on the reversed graph.
pub fn solve_class_c(
    pattern: &PatternSpec,
    root: &ClassCRoot,
    g: &Digraph,
    distinguished: &[u32],
) -> bool {
    match try_solve_class_c(pattern, root, g, distinguished, &Governor::unlimited()) {
        Ok(answer) => answer,
        Err(e) => unreachable!("unlimited governor interrupted: {e}"),
    }
}

/// Governed [`solve_class_c`]: the governor is checked inside every
/// max-flow call and charged one step per candidate loop node in the
/// self-loop case. The computation is pure — on interrupt, call again
/// with a fresh or relaxed governor.
pub fn try_solve_class_c(
    pattern: &PatternSpec,
    root: &ClassCRoot,
    g: &Digraph,
    distinguished: &[u32],
    gov: &Governor,
) -> Result<bool, Interrupted> {
    assert_eq!(distinguished.len(), pattern.node_count);
    gov.check()?;
    // Work on the out-orientation; reverse the graph otherwise.
    let (graph, flipped);
    match root.orientation {
        Orientation::Out => {
            graph = g.clone();
            flipped = false;
        }
        Orientation::In => {
            let mut rev = Digraph::new(g.node_count());
            for (u, v) in g.edges() {
                rev.add_edge(v, u);
            }
            graph = rev;
            flipped = true;
        }
    }
    let s = distinguished[root.root];
    let targets: Vec<u32> = pattern
        .edges
        .iter()
        .filter(|&&(i, j)| i != j)
        .map(|&(i, j)| {
            let other = if flipped { i } else { j };
            debug_assert_eq!(if flipped { j } else { i }, root.root);
            distinguished[other]
        })
        .collect();
    debug_assert_eq!(targets.len(), root.fan);

    let plain_fan = |extra: Option<u32>| -> Result<bool, Interrupted> {
        let mut t = targets.clone();
        if let Some(w) = extra {
            t.push(w);
        }
        Ok(matches!(
            try_disjoint_fan(&graph, s, &t, &[], gov)?,
            DisjointFan::Paths(_)
        ))
    };

    if !root.self_loop {
        if targets.is_empty() {
            return Ok(true); // pattern had only isolated nodes / nothing to do
        }
        return plain_fan(None);
    }
    // Self-loop case. Option 1: G has a literal self-loop at s.
    if graph.has_edge(s, s) && (targets.is_empty() || plain_fan(None)?) {
        return Ok(true);
    }
    // Option 2: route the loop through some non-distinguished w with an
    // edge back to s, as a (k+1)-st fan leg.
    for w in graph.nodes() {
        if w == s || distinguished.contains(&w) {
            continue;
        }
        gov.step(1)?;
        if graph.has_edge(w, s) && plain_fan(Some(w))? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Convenience wrapper: classify and solve, panicking if the pattern is
/// not in class `C`.
pub fn solve_class_c_auto(pattern: &PatternSpec, g: &Digraph, distinguished: &[u32]) -> bool {
    // Documented input contract: the panic is the advertised behavior.
    #[allow(clippy::expect_used)]
    let root = crate::pattern::class_c_root(pattern).expect("pattern must be in class C");
    solve_class_c(pattern, &root, g, distinguished)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_homeomorphism;
    use kv_structures::generators::random_digraph;

    fn out_star(k: usize) -> PatternSpec {
        PatternSpec {
            node_count: k + 1,
            edges: (1..=k).map(|i| (0, i)).collect(),
        }
    }

    fn in_star(k: usize) -> PatternSpec {
        PatternSpec {
            node_count: k + 1,
            edges: (1..=k).map(|i| (i, 0)).collect(),
        }
    }

    #[test]
    fn out_star_matches_brute_force() {
        let p = out_star(2);
        for seed in 0..10 {
            let g = random_digraph(8, 0.25, 1000 + seed);
            let distinguished = [0u32, 1, 2];
            let flow = solve_class_c_auto(&p, &g, &distinguished);
            let brute = brute_force_homeomorphism(&p, &g, &distinguished);
            assert_eq!(flow, brute, "seed {}", 1000 + seed);
        }
    }

    #[test]
    fn out_star_three_targets_matches_brute_force() {
        let p = out_star(3);
        for seed in 0..8 {
            let g = random_digraph(9, 0.3, 1100 + seed);
            let distinguished = [0u32, 1, 2, 3];
            let flow = solve_class_c_auto(&p, &g, &distinguished);
            let brute = brute_force_homeomorphism(&p, &g, &distinguished);
            assert_eq!(flow, brute, "seed {}", 1100 + seed);
        }
    }

    #[test]
    fn in_star_matches_brute_force() {
        let p = in_star(2);
        for seed in 0..10 {
            let g = random_digraph(8, 0.25, 1200 + seed);
            let distinguished = [0u32, 1, 2];
            let flow = solve_class_c_auto(&p, &g, &distinguished);
            let brute = brute_force_homeomorphism(&p, &g, &distinguished);
            assert_eq!(flow, brute, "seed {}", 1200 + seed);
        }
    }

    #[test]
    fn self_loop_star_matches_brute_force() {
        let p = PatternSpec {
            node_count: 2,
            edges: vec![(0, 0), (0, 1)],
        };
        for seed in 0..12 {
            let g = random_digraph(7, 0.3, 1300 + seed);
            let distinguished = [0u32, 1];
            let flow = solve_class_c_auto(&p, &g, &distinguished);
            let brute = brute_force_homeomorphism(&p, &g, &distinguished);
            assert_eq!(flow, brute, "seed {}", 1300 + seed);
        }
    }

    #[test]
    fn governed_interrupt_then_rerun_agrees_with_plain() {
        use kv_structures::govern::{Budget, Governor, Interrupted};
        let p = PatternSpec {
            node_count: 2,
            edges: vec![(0, 0), (0, 1)],
        };
        let root = crate::pattern::class_c_root(&p).unwrap();
        let g = random_digraph(8, 0.3, 2026);
        let distinguished = [0u32, 1];
        let plain = solve_class_c(&p, &root, &g, &distinguished);
        let tight = Governor::with_budget(Budget::steps(2));
        match try_solve_class_c(&p, &root, &g, &distinguished, &tight) {
            Err(Interrupted::Limit(_)) => {}
            other => panic!("expected a limit interrupt, got {other:?}"),
        }
        let rerun =
            try_solve_class_c(&p, &root, &g, &distinguished, &Governor::unlimited()).unwrap();
        assert_eq!(plain, rerun);
    }

    #[test]
    fn pure_self_loop_pattern() {
        // Pattern: just a self-loop — "is there a simple cycle through s?".
        let p = PatternSpec {
            node_count: 1,
            edges: vec![(0, 0)],
        };
        for seed in 0..10 {
            let g = random_digraph(7, 0.2, 1400 + seed);
            let flow = solve_class_c_auto(&p, &g, &[0]);
            let brute = brute_force_homeomorphism(&p, &g, &[0]);
            assert_eq!(flow, brute, "seed {}", 1400 + seed);
        }
    }
}
