//! Fixed subgraph homeomorphism queries — the case study of Section 6.
//!
//! For a fixed *pattern graph* `H` with nodes `v1, …, vl`, the
//! `H`-subgraph homeomorphism query asks whether an input graph `G` with
//! distinguished nodes `s1, …, sl` contains pairwise node-disjoint simple
//! paths, one per edge of `H`, routing edge `(i, j)` from `si` to `sj`
//! (paths may share equal endpoints only).
//!
//! Fortune–Hopcroft–Wyllie (1980) classified these queries by the class
//! **C** of patterns whose root is the head (or the tail) of every edge:
//! polynomial for `H ∈ C`, NP-complete for `H ∈ C̄`, and polynomial for
//! every `H` on acyclic inputs. The paper sharpens both dichotomies to
//! Datalog(≠) expressibility; this crate implements the *positive* side:
//!
//! - [`pattern`]: pattern classification (class `C`, the `H1`/`H2`/`H3`
//!   witnesses generating `C̄`);
//! - [`brute`]: the exhaustive solver (ground truth, exponential);
//! - [`flow_solver`]: the polynomial algorithm for `H ∈ C` via
//!   node-capacitated max flow (Theorem 6.1's reduction);
//! - [`programs`]: generated Datalog(≠) programs — the class-`C` programs
//!   of Theorem 6.1 and the acyclic-input game programs `π_H` of
//!   Theorem 6.2;
//! - [`even_path`]: the even simple path query of Example 5.2 /
//!   Corollary 6.8 (brute force and its pattern generator);
//! - [`solver`]: a dispatching solver choosing the best method.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod brute;
pub mod even_path;
pub mod flow_solver;
pub mod named;
pub mod pattern;
pub mod programs;
pub mod solver;

pub use brute::{brute_force_homeomorphism, try_brute_force_homeomorphism};
pub use flow_solver::{solve_class_c, try_solve_class_c};
pub use named::{cycle_through_two, path_through_intermediate, two_disjoint_paths_query};
pub use pattern::{classify, CBarWitness, ClassCRoot, Orientation, PatternClass};
pub use programs::{acyclic_game_program, class_c_program};
pub use solver::{solve, try_solve, try_solve_with_plan, Method};

pub use kv_pebble::PatternSpec;
