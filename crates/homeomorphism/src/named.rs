//! The three "natural" fixed subgraph homeomorphism queries that generate
//! `C̄` (Section 6.2's list), as a direct API.
//!
//! Each is equivalent to the `H1`/`H2`/`H3` homeomorphism query, and each
//! also has an independent first-principles formulation in terms of simple
//! paths — the tests pin the equivalences.

use crate::solver::{solve, Method};
use kv_pebble::PatternSpec;
use kv_structures::Digraph;

/// "Are there two node-disjoint simple paths from `s1` to `s2` and from
/// `s3` to `s4`?" (the `H1` query). The four nodes must be distinct.
pub fn two_disjoint_paths_query(g: &Digraph, s: [u32; 4]) -> (bool, Method) {
    solve(&PatternSpec::two_disjoint_edges(), g, &s)
}

/// "Is there a simple path from `s1` to `s3` that goes through `s2`?"
/// (the `H2` query — the path decomposes into node-disjoint `s1 → s2` and
/// `s2 → s3` legs).
pub fn path_through_intermediate(g: &Digraph, s1: u32, s2: u32, s3: u32) -> (bool, Method) {
    solve(&PatternSpec::path_length_two(), g, &[s1, s2, s3])
}

/// "Is there a simple cycle containing both `s1` and `s2`?" (the `H3`
/// query — node-disjoint paths `s1 → s2` and `s2 → s1`).
pub fn cycle_through_two(g: &Digraph, s1: u32, s2: u32) -> (bool, Method) {
    solve(&PatternSpec::two_cycle(), g, &[s1, s2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_graphalg::simple_paths::has_simple_path_where;
    use kv_structures::generators::{random_dag, random_digraph};

    /// First-principles H2: enumerate simple s1 → s3 paths, ask for one
    /// containing s2.
    fn h2_direct(g: &Digraph, s1: u32, s2: u32, s3: u32) -> bool {
        has_simple_path_where(g, s1, s3, |p| p.len() >= 3 && p.contains(&s2))
    }

    /// First-principles H3: enumerate simple s1 → s2 paths; for each, a
    /// disjoint return path must exist — equivalently, enumerate cycles
    /// through s1 and check s2 membership. Simplest exact form: a simple
    /// path s1 → s2 followed by a simple path s2 → s1 avoiding the first
    /// path's interior; do it by nesting enumerations.
    fn h3_direct(g: &Digraph, s1: u32, s2: u32) -> bool {
        let mut found = false;
        kv_graphalg::simple_paths::enumerate_simple_paths(g, s1, s2, usize::MAX, &mut |p| {
            // Return leg avoiding interior of p (and s1/s2 as interiors).
            let forbidden: Vec<u32> = p[1..p.len() - 1].to_vec();
            if has_simple_path_where(g, s2, s1, |q| {
                q.len() >= 2 && q[1..q.len() - 1].iter().all(|x| !forbidden.contains(x))
            }) {
                found = true;
                return false;
            }
            true
        });
        found
    }

    #[test]
    fn h2_matches_direct_enumeration() {
        for seed in 0..15 {
            let g = random_digraph(7, 0.25, 12_000 + seed);
            let (by_solver, _) = path_through_intermediate(&g, 0, 1, 2);
            assert_eq!(by_solver, h2_direct(&g, 0, 1, 2), "seed {}", 12_000 + seed);
        }
    }

    #[test]
    fn h2_on_dags_uses_the_game() {
        for seed in 0..10 {
            let g = random_dag(8, 0.3, 12_500 + seed);
            let (by_solver, method) = path_through_intermediate(&g, 0, 3, 7);
            assert_eq!(method, Method::AcyclicGame);
            assert_eq!(by_solver, h2_direct(&g, 0, 3, 7), "seed {}", 12_500 + seed);
        }
    }

    #[test]
    fn h3_matches_direct_enumeration() {
        for seed in 0..15 {
            let g = random_digraph(6, 0.3, 13_000 + seed);
            let (by_solver, _) = cycle_through_two(&g, 0, 1);
            assert_eq!(by_solver, h3_direct(&g, 0, 1), "seed {}", 13_000 + seed);
        }
    }

    #[test]
    fn h3_never_holds_on_dags() {
        for seed in 0..5 {
            let g = random_dag(7, 0.4, 13_500 + seed);
            let (answer, _) = cycle_through_two(&g, 0, 5);
            assert!(!answer);
        }
    }

    #[test]
    fn h1_query_method_dispatch() {
        let g = random_digraph(7, 0.3, 14_000);
        let (_, method) = two_disjoint_paths_query(&g, [0, 1, 2, 3]);
        // Dense random digraphs are almost surely cyclic → brute force.
        assert_eq!(method, Method::BruteForce);
        let dag = random_dag(7, 0.3, 14_001);
        let (_, method) = two_disjoint_paths_query(&dag, [0, 5, 1, 6]);
        assert_eq!(method, Method::AcyclicGame);
    }
}
