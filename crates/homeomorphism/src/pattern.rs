//! Pattern classification: the class `C` and its complement.
//!
//! `C` consists of directed graphs with a distinguished *root* that is the
//! head of every edge or the tail of every edge (a root self-loop is
//! allowed — it has the root as both head and tail). The complement `C̄`
//! is exactly the class of patterns containing one of (Section 6.2):
//!
//! - `H1`: two disjoint edges,
//! - `H2`: a directed path of length 2 through three distinct nodes,
//! - `H3`: a 2-cycle.
//!
//! Both characterizations are implemented and their equivalence is tested
//! exhaustively on all small patterns.

use kv_pebble::PatternSpec;

/// Which side of every edge the root is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// The root is the tail of every edge (a fan-out / out-star).
    Out,
    /// The root is the head of every edge (a fan-in / in-star).
    In,
}

/// Evidence that a pattern is in class `C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassCRoot {
    /// The root node.
    pub root: usize,
    /// Edge orientation relative to the root.
    pub orientation: Orientation,
    /// Whether the pattern has a self-loop at the root.
    pub self_loop: bool,
    /// Number of non-self-loop edges (the fan width `k`).
    pub fan: usize,
}

/// A witness that a pattern is in `C̄`: an embedded copy of one of the
/// three generator patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CBarWitness {
    /// Two disjoint edges `(a→b, c→d)`.
    H1((usize, usize), (usize, usize)),
    /// A path `a → b → c` through three distinct nodes.
    H2(usize, usize, usize),
    /// A 2-cycle `a ⇄ b`.
    H3(usize, usize),
}

/// Classification result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternClass {
    /// In class `C`: polynomial / Datalog(≠)-expressible (Theorem 6.1).
    InC(ClassCRoot),
    /// In `C̄`: NP-complete / not `L^ω`-expressible (Theorem 6.7).
    InCBar(CBarWitness),
    /// No edges at all (trivially satisfied; degenerate).
    Empty,
    /// Outside `C` but containing none of `H1`/`H2`/`H3`: only possible
    /// for patterns whose non-root structure is carried by self-loops
    /// (e.g. `{0→0, 1→2}` or two self-loops at different nodes). These
    /// corner cases fall outside the FHW dichotomy as stated; the paper
    /// implicitly excludes them (its pattern discussion is in terms of the
    /// root edge structure).
    DegenerateSelfLoops,
}

/// Classifies a pattern graph. Isolated nodes are ignored, as in the paper
/// (they can be removed without changing the query).
pub fn classify(pattern: &PatternSpec) -> PatternClass {
    if pattern.edges.is_empty() {
        return PatternClass::Empty;
    }
    if let Some(root) = class_c_root(pattern) {
        return PatternClass::InC(root);
    }
    match c_bar_witness(pattern) {
        Some(witness) => PatternClass::InCBar(witness),
        None => PatternClass::DegenerateSelfLoops,
    }
}

/// Direct class-`C` test: some node is the tail of every edge, or the head
/// of every edge. Prefers the `Out` orientation when both apply (single
/// edge or pure self-loop).
pub fn class_c_root(pattern: &PatternSpec) -> Option<ClassCRoot> {
    let nodes: Vec<usize> = (0..pattern.node_count).collect();
    for &r in &nodes {
        if pattern.edges.iter().all(|&(i, _)| i == r) {
            let self_loop = pattern.edges.contains(&(r, r));
            return Some(ClassCRoot {
                root: r,
                orientation: Orientation::Out,
                self_loop,
                fan: pattern.edges.len() - usize::from(self_loop),
            });
        }
        if pattern.edges.iter().all(|&(_, j)| j == r) {
            let self_loop = pattern.edges.contains(&(r, r));
            return Some(ClassCRoot {
                root: r,
                orientation: Orientation::In,
                self_loop,
                fan: pattern.edges.len() - usize::from(self_loop),
            });
        }
    }
    None
}

/// Finds an `H1`/`H2`/`H3` sub-pattern if one exists.
pub fn c_bar_witness(pattern: &PatternSpec) -> Option<CBarWitness> {
    let edges = &pattern.edges;
    // H3: a 2-cycle.
    for &(a, b) in edges {
        if a != b && edges.contains(&(b, a)) {
            return Some(CBarWitness::H3(a, b));
        }
    }
    // H2: a path of length 2 through three distinct nodes.
    for &(a, b) in edges {
        if a == b {
            continue;
        }
        for &(b2, c) in edges {
            if b2 == b && c != a && c != b {
                return Some(CBarWitness::H2(a, b, c));
            }
        }
    }
    // H1: two node-disjoint edges.
    for (idx, &(a, b)) in edges.iter().enumerate() {
        if a == b {
            continue;
        }
        for &(c, d) in &edges[idx + 1..] {
            if c == d {
                continue;
            }
            if c != a && c != b && d != a && d != b {
                return Some(CBarWitness::H1((a, b), (c, d)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(n: usize, edges: &[(usize, usize)]) -> PatternSpec {
        PatternSpec {
            node_count: n,
            edges: edges.to_vec(),
        }
    }

    #[test]
    fn out_star_in_c() {
        let p = pat(4, &[(0, 1), (0, 2), (0, 3)]);
        match classify(&p) {
            PatternClass::InC(r) => {
                assert_eq!(r.root, 0);
                assert_eq!(r.orientation, Orientation::Out);
                assert_eq!(r.fan, 3);
                assert!(!r.self_loop);
            }
            other => panic!("expected InC, got {other:?}"),
        }
    }

    #[test]
    fn in_star_in_c() {
        let p = pat(3, &[(1, 0), (2, 0)]);
        match classify(&p) {
            PatternClass::InC(r) => {
                assert_eq!(r.root, 0);
                assert_eq!(r.orientation, Orientation::In);
                assert_eq!(r.fan, 2);
            }
            other => panic!("expected InC, got {other:?}"),
        }
    }

    #[test]
    fn star_with_self_loop_in_c() {
        let p = pat(3, &[(0, 0), (0, 1), (0, 2)]);
        match classify(&p) {
            PatternClass::InC(r) => {
                assert!(r.self_loop);
                assert_eq!(r.fan, 2);
            }
            other => panic!("expected InC, got {other:?}"),
        }
    }

    #[test]
    fn generators_in_c_bar() {
        assert!(matches!(
            classify(&pat(4, &[(0, 1), (2, 3)])),
            PatternClass::InCBar(CBarWitness::H1(_, _))
        ));
        assert!(matches!(
            classify(&pat(3, &[(0, 1), (1, 2)])),
            PatternClass::InCBar(CBarWitness::H2(0, 1, 2))
        ));
        assert!(matches!(
            classify(&pat(2, &[(0, 1), (1, 0)])),
            PatternClass::InCBar(CBarWitness::H3(_, _))
        ));
    }

    #[test]
    fn empty_pattern() {
        assert_eq!(classify(&pat(3, &[])), PatternClass::Empty);
    }

    /// FHW's characterization, exhaustively on all patterns with up to 4
    /// nodes: a nonempty pattern is outside C iff it contains H1, H2 or
    /// H3.
    #[test]
    fn characterization_exhaustive_small() {
        for n in 1..=4usize {
            // All possible directed edges, self-loops included.
            let all_edges: Vec<(usize, usize)> =
                (0..n).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
            let m = all_edges.len();
            assert!(m <= 16);
            for mask in 1u32..(1 << m) {
                let edges: Vec<(usize, usize)> = (0..m)
                    .filter(|&b| mask & (1 << b) != 0)
                    .map(|b| all_edges[b])
                    .collect();
                let p = pat(n, &edges);
                let in_c = class_c_root(&p).is_some();
                let has_witness = c_bar_witness(&p).is_some();
                // The FHW characterization "outside C ⇔ contains H1, H2 or
                // H3" is exact for self-loop-free patterns; patterns with
                // self-loops away from a root fall into the degenerate
                // bucket (see `PatternClass::DegenerateSelfLoops`).
                let loop_free = edges.iter().all(|&(a, b)| a != b);
                if loop_free {
                    assert_eq!(
                        in_c, !has_witness,
                        "characterization fails on n={n}, edges {edges:?}"
                    );
                } else if !in_c && !has_witness {
                    assert_eq!(classify(&p), PatternClass::DegenerateSelfLoops);
                }
            }
        }
    }
}
