//! Generated Datalog(≠) programs for the positive side of the case study.
//!
//! - [`class_c_program`]: Theorem 6.1 — for every pattern `H ∈ C`, a
//!   Datalog(≠) program computing the `H`-subgraph homeomorphism query on
//!   **arbitrary** inputs, assembled from the `Q_{k,l}` family (plus the
//!   self-loop case analysis).
//! - [`acyclic_game_program`]: Theorem 6.2 — for **every** pattern `H`, a
//!   Datalog(≠) program computing the query on **acyclic** inputs, by
//!   evaluating the two-player pebble game: one IDB per subset of still
//!   alive pebbles, and one rule per combination of "advance/retire" moves
//!   (the AND over pebbles is the multiple recursive atoms in a body; the
//!   OR over moves is the rule alternatives).
//!
//! Both take graphs over the vocabulary `{E/2}` with constants
//! `n0, …, n{l-1}` interpreting the pattern nodes; [`pattern_vocabulary`]
//! builds it and [`eval_on`] runs a program on a concrete `(G, s⃗)`.

// The generated program text parses by construction; the `expect`s are
// compile-time-style assertions.
#![allow(clippy::expect_used)]

use crate::pattern::{ClassCRoot, Orientation};
use kv_datalog::programs::q_kl_source;
use kv_datalog::{parse_program, Evaluator, Program};
use kv_pebble::PatternSpec;
use kv_structures::{Digraph, Vocabulary};
use std::fmt::Write as _;
use std::sync::Arc;

/// The vocabulary for a pattern with `l` nodes: `{E/2, n0, …, n{l-1}}`.
pub fn pattern_vocabulary(l: usize) -> Vocabulary {
    let mut v = Vocabulary::graph();
    for i in 0..l {
        v.add_constant(format!("n{i}"));
    }
    v
}

/// Runs a boolean (nullary-goal) program on `(g, distinguished)`.
///
/// # Panics
/// Panics if the goal predicate is not nullary or the constants don't
/// match `distinguished`.
pub fn eval_on(program: &Program, g: &Digraph, distinguished: &[u32]) -> bool {
    assert_eq!(program.idb_arity(program.goal()), 0, "goal must be nullary");
    let mut g = g.clone();
    g.set_distinguished(distinguished.to_vec());
    let s = g.to_structure_with(Arc::clone(program.vocabulary()));
    Evaluator::new(program).holds(&s, &[])
}

/// Theorem 6.1: the Datalog(≠) program for a class-`C` pattern.
///
/// # Panics
/// Panics if `root` does not classify `pattern`.
pub fn class_c_program(pattern: &PatternSpec, root: &ClassCRoot) -> Program {
    let l = pattern.node_count;
    let reversed = root.orientation == Orientation::In;
    let k = root.fan;
    let root_const = format!("n{}", root.root);
    let fan_consts: Vec<String> = pattern
        .edges
        .iter()
        .filter(|&&(i, j)| i != j)
        .map(|&(i, j)| {
            let other = if reversed { i } else { j };
            format!("n{other}")
        })
        .collect();
    let mut src = String::new();
    if k >= 1 {
        src.push_str(&q_kl_source(k, 0, "Q", reversed));
    }
    let fan_args = fan_consts.join(", ");
    if !root.self_loop {
        if k == 0 {
            // Pattern had no edges; vacuously true.
            let _ = writeln!(src, "Result().");
        } else {
            let _ = writeln!(src, "Result() :- Q{k}({root_const}, {fan_args}).");
        }
    } else {
        // Self-loop case analysis (end of Theorem 6.1's proof).
        // Option 1: a literal self-loop at the root.
        if k == 0 {
            let _ = writeln!(src, "Result() :- E({root_const}, {root_const}).");
        } else {
            let _ = writeln!(
                src,
                "Result() :- E({root_const}, {root_const}), Q{k}({root_const}, {fan_args})."
            );
        }
        // Option 2: a (k+1)-fan whose extra leg w closes a cycle.
        src.push_str(&q_kl_source(k + 1, 0, "P", reversed));
        let mut extra_args: Vec<String> = fan_consts.clone();
        extra_args.push("w".to_string());
        let closing = if reversed {
            format!("E({root_const}, w)")
        } else {
            format!("E(w, {root_const})")
        };
        let mut rule = format!(
            "Result() :- P{}({root_const}, {}), {closing}",
            k + 1,
            extra_args.join(", ")
        );
        for i in 0..l {
            let _ = write!(rule, ", w != n{i}");
        }
        let _ = writeln!(src, "{rule}.");
    }
    let _ = writeln!(src, "?- Result.");
    parse_program(&src, Arc::new(pattern_vocabulary(l))).expect("generated class-C program parses")
}

/// Theorem 6.2: the Datalog(≠) program `π_H` computing the `H`-subgraph
/// homeomorphism query on acyclic inputs, for an arbitrary (self-loop
/// free) pattern `H`.
///
/// One IDB `G<mask>` per subset of pattern edges (`mask` over edge
/// indices, arity = number of live pebbles), with the AND-OR game rules;
/// `Result()` queries the full set at the initial pebble placement.
///
/// Patterns **with** a self-loop yield the constantly-false program (an
/// acyclic input has no cycle through the root), with a lone unsatisfiable
/// rule.
pub fn acyclic_game_program(pattern: &PatternSpec) -> Program {
    let l = pattern.node_count;
    let vocab = Arc::new(pattern_vocabulary(l));
    if pattern.edges.iter().any(|&(i, j)| i == j) {
        // Constantly false: Result depends on an underivable predicate.
        return parse_program("Result() :- Never().\n?- Result.", vocab)
            .expect("static program parses");
    }
    pattern.validate().expect("valid pattern");
    let m = pattern.edges.len();
    assert!(
        m <= 6,
        "subset construction limited to patterns with <= 6 edges"
    );
    let mut src = String::new();
    // Base: the empty pebble set.
    let _ = writeln!(src, "G0().");
    let members =
        |mask: usize| -> Vec<usize> { (0..m).filter(|&e| mask & (1 << e) != 0).collect() };
    for mask in 1usize..(1 << m) {
        let live = members(mask);
        let head_args: Vec<String> = live.iter().map(|&e| format!("x{e}")).collect();
        let head = format!("G{mask}({})", head_args.join(", "));
        // All move combinations: each live pebble advances (0) or retires (1).
        for combo in 0usize..(1 << live.len()) {
            let mut body: Vec<String> = Vec::new();
            for (pos, &e) in live.iter().enumerate() {
                let (_, j) = pattern.edges[e];
                if combo & (1 << pos) == 0 {
                    // Advance pebble e to a fresh non-distinguished node.
                    body.push(format!("E(x{e}, y{e})"));
                    for t in 0..l {
                        body.push(format!("y{e} != n{t}"));
                    }
                    for &f in &live {
                        if f != e {
                            body.push(format!("y{e} != x{f}"));
                        }
                    }
                    let args: Vec<String> = live
                        .iter()
                        .map(|&f| {
                            if f == e {
                                format!("y{e}")
                            } else {
                                format!("x{f}")
                            }
                        })
                        .collect();
                    body.push(format!("G{mask}({})", args.join(", ")));
                } else {
                    // Retire pebble e onto its target.
                    body.push(format!("E(x{e}, n{j})"));
                    let smaller = mask & !(1 << e);
                    let args: Vec<String> = live
                        .iter()
                        .filter(|&&f| f != e)
                        .map(|&f| format!("x{f}"))
                        .collect();
                    body.push(format!("G{smaller}({})", args.join(", ")));
                }
            }
            let _ = writeln!(src, "{head} :- {}.", body.join(", "));
        }
    }
    // Initial placement: pebble e = (i, j) on n{i}.
    let full = (1usize << m) - 1;
    let init: Vec<String> = pattern
        .edges
        .iter()
        .map(|&(i, _)| format!("n{i}"))
        .collect();
    let _ = writeln!(src, "Result() :- G{full}({}).", init.join(", "));
    let _ = writeln!(src, "?- Result.");
    parse_program(&src, vocab).expect("generated acyclic game program parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_homeomorphism;
    use crate::flow_solver::solve_class_c_auto;
    use crate::pattern::class_c_root;
    use kv_pebble::acyclic::AcyclicGame;
    use kv_structures::generators::{random_dag, random_digraph};

    fn out_star(k: usize) -> PatternSpec {
        PatternSpec {
            node_count: k + 1,
            edges: (1..=k).map(|i| (0, i)).collect(),
        }
    }

    #[test]
    fn class_c_program_matches_flow_out_star() {
        let p = out_star(2);
        let root = class_c_root(&p).unwrap();
        let program = class_c_program(&p, &root);
        for seed in 0..8 {
            let g = random_digraph(7, 0.3, 2000 + seed);
            let distinguished = [0u32, 1, 2];
            let by_program = eval_on(&program, &g, &distinguished);
            let by_flow = solve_class_c_auto(&p, &g, &distinguished);
            assert_eq!(by_program, by_flow, "seed {}", 2000 + seed);
        }
    }

    #[test]
    fn class_c_program_matches_flow_in_star() {
        let p = PatternSpec {
            node_count: 3,
            edges: vec![(1, 0), (2, 0)],
        };
        let root = class_c_root(&p).unwrap();
        let program = class_c_program(&p, &root);
        for seed in 0..8 {
            let g = random_digraph(7, 0.3, 2100 + seed);
            let distinguished = [0u32, 1, 2];
            let by_program = eval_on(&program, &g, &distinguished);
            let by_flow = solve_class_c_auto(&p, &g, &distinguished);
            assert_eq!(by_program, by_flow, "seed {}", 2100 + seed);
        }
    }

    #[test]
    fn class_c_program_self_loop_case() {
        let p = PatternSpec {
            node_count: 2,
            edges: vec![(0, 0), (0, 1)],
        };
        let root = class_c_root(&p).unwrap();
        let program = class_c_program(&p, &root);
        for seed in 0..10 {
            let g = random_digraph(6, 0.3, 2200 + seed);
            let distinguished = [0u32, 1];
            let by_program = eval_on(&program, &g, &distinguished);
            let by_brute = brute_force_homeomorphism(&p, &g, &distinguished);
            assert_eq!(by_program, by_brute, "seed {}", 2200 + seed);
        }
    }

    #[test]
    fn acyclic_program_h1_matches_game_and_brute() {
        let p = PatternSpec::two_disjoint_edges();
        let program = acyclic_game_program(&p);
        for seed in 0..15 {
            let g = random_dag(8, 0.3, 2300 + seed);
            let distinguished = [0u32, 6, 1, 7];
            let by_program = eval_on(&program, &g, &distinguished);
            let by_game = AcyclicGame::solve(p.clone(), &g, &distinguished).duplicator_wins();
            let by_brute = brute_force_homeomorphism(&p, &g, &distinguished);
            assert_eq!(by_program, by_game, "game mismatch seed {}", 2300 + seed);
            assert_eq!(by_program, by_brute, "brute mismatch seed {}", 2300 + seed);
        }
    }

    #[test]
    fn acyclic_program_h2_matches_brute() {
        let p = PatternSpec::path_length_two();
        let program = acyclic_game_program(&p);
        for seed in 0..15 {
            let g = random_dag(8, 0.3, 2400 + seed);
            let distinguished = [0u32, 4, 7];
            let by_program = eval_on(&program, &g, &distinguished);
            let by_brute = brute_force_homeomorphism(&p, &g, &distinguished);
            assert_eq!(by_program, by_brute, "seed {}", 2400 + seed);
        }
    }

    #[test]
    fn acyclic_program_h3_always_false_on_dags() {
        let p = PatternSpec::two_cycle();
        let program = acyclic_game_program(&p);
        for seed in 0..5 {
            let g = random_dag(7, 0.4, 2500 + seed);
            assert!(!eval_on(&program, &g, &[0, 6]));
            assert!(!brute_force_homeomorphism(&p, &g, &[0, 6]));
        }
    }

    #[test]
    fn self_loop_pattern_constantly_false_on_acyclic() {
        let p = PatternSpec {
            node_count: 2,
            edges: vec![(0, 0), (0, 1)],
        };
        let program = acyclic_game_program(&p);
        let g = random_dag(6, 0.5, 2600);
        assert!(!eval_on(&program, &g, &[0, 5]));
    }

    #[test]
    fn shared_midpoint_counterexample_rejected_by_acyclic_program() {
        // The 5-node instance that fools the cooperative 3-rule program of
        // the extended abstract: the AND-OR program gets it right.
        let p = PatternSpec::two_disjoint_edges();
        let program = acyclic_game_program(&p);
        let mut g = Digraph::new(5);
        g.add_edge(0, 4);
        g.add_edge(4, 1);
        g.add_edge(2, 4);
        g.add_edge(4, 3);
        assert!(!eval_on(&program, &g, &[0, 1, 2, 3]));
    }
}
