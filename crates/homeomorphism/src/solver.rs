//! A dispatching solver mirroring the FHW/KV classification.

use crate::brute::try_brute_force_homeomorphism;
use crate::flow_solver::try_solve_class_c;
use crate::pattern::{classify, PatternClass};
use kv_graphalg::is_acyclic;
use kv_pebble::acyclic::AcyclicGame;
use kv_pebble::PatternSpec;
use kv_structures::govern::{Governor, Interrupted};
use kv_structures::{DemandStrategy, Digraph, QueryPlan};

/// Which algorithm answered the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Node-capacitated max flow (pattern in class `C`, Theorem 6.1).
    Flow,
    /// Two-player pebble game backward induction (acyclic input,
    /// Theorem 6.2).
    AcyclicGame,
    /// Exhaustive search (NP-complete configuration: pattern in `C̄` on a
    /// cyclic input).
    BruteForce,
}

/// Solves the `H`-subgraph homeomorphism query with the cheapest
/// applicable method, reporting which one ran.
///
/// ```
/// use kv_homeo::{solve, Method, PatternSpec};
/// use kv_structures::Digraph;
///
/// // An out-star pattern on a graph with a genuine 2-fan.
/// let star = PatternSpec { node_count: 3, edges: vec![(0, 1), (0, 2)] };
/// let mut g = Digraph::new(5);
/// for (u, v) in [(0, 3), (3, 1), (0, 4), (4, 2)] {
///     g.add_edge(u, v);
/// }
/// let (answer, method) = solve(&star, &g, &[0, 1, 2]);
/// assert!(answer);
/// assert_eq!(method, Method::Flow); // class C ⇒ max-flow, any input
/// ```
pub fn solve(pattern: &PatternSpec, g: &Digraph, distinguished: &[u32]) -> (bool, Method) {
    match try_solve(pattern, g, distinguished, &Governor::unlimited()) {
        Ok(outcome) => outcome,
        Err(e) => unreachable!("unlimited governor interrupted: {e}"),
    }
}

/// Governed [`solve`]: dispatches exactly like `solve` and threads the
/// governor into whichever method runs. Flow and brute-force searches are
/// pure (restart on interrupt); the acyclic game's resumable checkpoint is
/// dropped here — use [`AcyclicGame::try_solve`] directly to keep it.
pub fn try_solve(
    pattern: &PatternSpec,
    g: &Digraph,
    distinguished: &[u32],
    gov: &Governor,
) -> Result<(bool, Method), Interrupted> {
    // A homeomorphism query fixes every distinguished node — an all-bound
    // boolean query — so the automatic plan takes the demand route.
    let plan = QueryPlan::auto(vec![true; distinguished.len()]);
    try_solve_with_plan(pattern, g, distinguished, &plan, gov)
}

/// [`try_solve`] with an explicit [`QueryPlan`]: the plan's
/// [`DemandStrategy`] picks between the lazy, demand-driven acyclic-game
/// solver (expand configurations from the initial position only as the
/// verdict needs them) and the eager full-arena build. Flow and
/// brute-force dispatch are unaffected — those methods are inherently
/// goal-directed already.
pub fn try_solve_with_plan(
    pattern: &PatternSpec,
    g: &Digraph,
    distinguished: &[u32],
    plan: &QueryPlan,
    gov: &Governor,
) -> Result<(bool, Method), Interrupted> {
    gov.check()?;
    if let PatternClass::InC(root) = classify(pattern) {
        return Ok((
            try_solve_class_c(pattern, &root, g, distinguished, gov)?,
            Method::Flow,
        ));
    }
    let self_loop_free = pattern.edges.iter().all(|&(i, j)| i != j);
    if self_loop_free && is_acyclic(g) {
        let game = match plan.strategy() {
            DemandStrategy::Demand => {
                AcyclicGame::try_solve_lazy(pattern.clone(), g, distinguished, gov)
            }
            DemandStrategy::Full => AcyclicGame::try_solve(pattern.clone(), g, distinguished, gov),
        };
        return match game {
            Ok(game) => Ok((game.duplicator_wins(), Method::AcyclicGame)),
            Err(interrupted) => Err(interrupted.reason),
        };
    }
    Ok((
        try_brute_force_homeomorphism(pattern, g, distinguished, gov)?,
        Method::BruteForce,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_homeomorphism;
    use kv_structures::generators::{random_dag, random_digraph};

    #[test]
    fn dispatch_prefers_flow_for_class_c() {
        let p = PatternSpec {
            node_count: 3,
            edges: vec![(0, 1), (0, 2)],
        };
        let g = random_digraph(7, 0.3, 1);
        let (answer, method) = solve(&p, &g, &[0, 1, 2]);
        assert_eq!(method, Method::Flow);
        assert_eq!(answer, brute_force_homeomorphism(&p, &g, &[0, 1, 2]));
    }

    #[test]
    fn dispatch_uses_game_on_dags() {
        let p = PatternSpec::two_disjoint_edges();
        let g = random_dag(8, 0.3, 2);
        let (answer, method) = solve(&p, &g, &[0, 6, 1, 7]);
        assert_eq!(method, Method::AcyclicGame);
        assert_eq!(answer, brute_force_homeomorphism(&p, &g, &[0, 6, 1, 7]));
    }

    #[test]
    fn dispatch_falls_back_to_brute_force() {
        let p = PatternSpec::two_disjoint_edges();
        let mut g = random_digraph(7, 0.3, 3);
        g.add_edge(5, 0); // ensure a cycle is plausible
        g.add_edge(0, 5);
        let (answer, method) = solve(&p, &g, &[0, 1, 2, 3]);
        assert_eq!(method, Method::BruteForce);
        let _ = answer;
    }

    #[test]
    fn governed_dispatch_agrees_with_plain_on_every_method() {
        let cases: Vec<(PatternSpec, Digraph, Vec<u32>)> = vec![
            // Class C → Flow.
            (
                PatternSpec {
                    node_count: 3,
                    edges: vec![(0, 1), (0, 2)],
                },
                random_digraph(7, 0.3, 11),
                vec![0, 1, 2],
            ),
            // DAG input → AcyclicGame.
            (
                PatternSpec::two_disjoint_edges(),
                random_dag(8, 0.3, 12),
                vec![0, 6, 1, 7],
            ),
            // Cyclic input, pattern in C̄ → BruteForce.
            (
                PatternSpec::two_disjoint_edges(),
                {
                    let mut g = random_digraph(7, 0.3, 13);
                    g.add_edge(5, 0);
                    g.add_edge(0, 5);
                    g
                },
                vec![0, 1, 2, 3],
            ),
        ];
        for (p, g, d) in &cases {
            let plain = solve(p, g, d);
            let governed = try_solve(p, g, d, &Governor::unlimited()).unwrap();
            assert_eq!(plain, governed);
        }
    }

    #[test]
    fn full_plan_agrees_with_demand_plan() {
        let full = QueryPlan::full(4);
        let p = PatternSpec::two_disjoint_edges();
        for seed in 0..8 {
            let g = random_dag(8, 0.3, 300 + seed);
            let d = [0u32, 6, 1, 7];
            let gov = Governor::unlimited();
            let demand_answer = try_solve(&p, &g, &d, &gov).unwrap();
            let full_answer = try_solve_with_plan(&p, &g, &d, &full, &gov).unwrap();
            assert_eq!(demand_answer, full_answer, "seed {}", 300 + seed);
            assert_eq!(demand_answer.1, Method::AcyclicGame);
        }
    }

    #[test]
    fn all_methods_agree_where_applicable() {
        // H2 on DAGs: game and brute force; compare with the flow answer
        // indirectly impossible (H2 not in C) — so check game == brute.
        let p = PatternSpec::path_length_two();
        for seed in 0..10 {
            let g = random_dag(8, 0.35, 100 + seed);
            let d = [0u32, 4, 7];
            let (answer, method) = solve(&p, &g, &d);
            assert_eq!(method, Method::AcyclicGame);
            assert_eq!(answer, brute_force_homeomorphism(&p, &g, &d));
        }
    }
}
