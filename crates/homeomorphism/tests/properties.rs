//! Property-based tests: the dispatching solver always agrees with brute
//! force; classification is total and consistent.

use kv_homeo::pattern::{c_bar_witness, class_c_root, classify, PatternClass};
use kv_homeo::{brute_force_homeomorphism, solve, PatternSpec};
use kv_structures::Digraph;
use proptest::prelude::*;

fn digraph_strategy(max_n: usize) -> impl Strategy<Value = Digraph> {
    (4usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(n * n / 3).min(16)).prop_map(
            move |edges| {
                let mut g = Digraph::new(n);
                for (u, v) in edges {
                    if u != v {
                        g.add_edge(u, v);
                    }
                }
                g
            },
        )
    })
}

fn pattern_strategy() -> impl Strategy<Value = PatternSpec> {
    prop_oneof![
        Just(PatternSpec::two_disjoint_edges()),
        Just(PatternSpec::path_length_two()),
        Just(PatternSpec::two_cycle()),
        Just(PatternSpec {
            node_count: 3,
            edges: vec![(0, 1), (0, 2)],
        }),
        Just(PatternSpec {
            node_count: 3,
            edges: vec![(1, 0), (2, 0)],
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Whatever method the dispatcher picks, the answer equals brute force
    /// (when the distinguished nodes fit the pattern arity).
    #[test]
    fn solver_always_agrees_with_brute_force(
        g in digraph_strategy(7),
        pattern in pattern_strategy(),
    ) {
        let l = pattern.node_count;
        let distinguished: Vec<u32> = (0..l as u32).collect();
        let (answer, _method) = solve(&pattern, &g, &distinguished);
        prop_assert_eq!(
            answer,
            brute_force_homeomorphism(&pattern, &g, &distinguished)
        );
    }

    /// Classification is total and the two sides are mutually exclusive on
    /// loop-free patterns.
    #[test]
    fn classification_is_consistent(edges in proptest::collection::vec((0usize..4, 0usize..4), 1..6)) {
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .filter(|&(i, j)| i != j)
            .collect();
        let mut dedup = edges.clone();
        dedup.sort_unstable();
        dedup.dedup();
        if dedup.is_empty() {
            return Ok(());
        }
        let p = PatternSpec { node_count: 4, edges: dedup };
        let in_c = class_c_root(&p).is_some();
        let witness = c_bar_witness(&p).is_some();
        prop_assert_eq!(in_c, !witness, "classification must partition loop-free patterns");
        match classify(&p) {
            PatternClass::InC(_) => prop_assert!(in_c),
            PatternClass::InCBar(_) => prop_assert!(witness),
            other => prop_assert!(false, "unexpected class {:?}", other),
        }
    }
}
