//! Randomized tests: the dispatching solver always agrees with brute
//! force; classification is total and consistent. Seed-deterministic via
//! the in-tree [`SplitMix64`] generator.

use kv_homeo::pattern::{c_bar_witness, class_c_root, classify, PatternClass};
use kv_homeo::{brute_force_homeomorphism, solve, PatternSpec};
use kv_structures::rng::SplitMix64;
use kv_structures::Digraph;

fn random_case_digraph(max_n: usize, rng: &mut SplitMix64) -> Digraph {
    let n = rng.gen_range(4usize..max_n + 1);
    let mut g = Digraph::new(n);
    let edges = rng.gen_range(0usize..(n * n / 3).min(16) + 1);
    for _ in 0..edges {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

fn pattern_pool() -> Vec<PatternSpec> {
    vec![
        PatternSpec::two_disjoint_edges(),
        PatternSpec::path_length_two(),
        PatternSpec::two_cycle(),
        PatternSpec {
            node_count: 3,
            edges: vec![(0, 1), (0, 2)],
        },
        PatternSpec {
            node_count: 3,
            edges: vec![(1, 0), (2, 0)],
        },
    ]
}

/// Whatever method the dispatcher picks, the answer equals brute force
/// (when the distinguished nodes fit the pattern arity).
#[test]
fn solver_always_agrees_with_brute_force() {
    let pool = pattern_pool();
    for seed in 0..40u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let g = random_case_digraph(7, &mut rng);
        let pattern = &pool[rng.gen_range(0usize..pool.len())];
        let l = pattern.node_count;
        let distinguished: Vec<u32> = (0..l as u32).collect();
        let (answer, _method) = solve(pattern, &g, &distinguished);
        assert_eq!(
            answer,
            brute_force_homeomorphism(pattern, &g, &distinguished),
            "seed {seed}"
        );
    }
}

/// Classification is total and the two sides are mutually exclusive on
/// loop-free patterns.
#[test]
fn classification_is_consistent() {
    for seed in 0..40u64 {
        let mut rng = SplitMix64::seed_from_u64(1000 + seed);
        let len = rng.gen_range(1usize..6);
        let mut edges: Vec<(usize, usize)> = (0..len)
            .map(|_| (rng.gen_range(0usize..4), rng.gen_range(0usize..4)))
            .filter(|&(i, j)| i != j)
            .collect();
        edges.sort_unstable();
        edges.dedup();
        if edges.is_empty() {
            continue;
        }
        let p = PatternSpec {
            node_count: 4,
            edges,
        };
        let in_c = class_c_root(&p).is_some();
        let witness = c_bar_witness(&p).is_some();
        assert_eq!(
            in_c, !witness,
            "seed {seed}: classification must partition loop-free patterns"
        );
        match classify(&p) {
            PatternClass::InC(_) => assert!(in_c, "seed {seed}"),
            PatternClass::InCBar(_) => assert!(witness, "seed {seed}"),
            other => panic!("seed {seed}: unexpected class {other:?}"),
        }
    }
}
