//! The paper's example formulas (Examples 3.3 and 3.4).

use crate::formula::{Formula, Var};
use kv_structures::Digraph;
use kv_structures::RelId;
use std::collections::VecDeque;

/// Example 3.4: `p_n(v0, v1)` — "there is a path (walk) of length `n` from
/// `v0` to `v1`" — written with only **three** distinct variables
/// `v0, v1, v2` by the Immerman recycling trick:
///
/// ```text
/// p_1(x, y) ≡ E(x, y)
/// p_n(x, y) ≡ ∃z (E(x, z) ∧ ∃x (x = z ∧ p_{n-1}(x, y)))
/// ```
///
/// ```
/// use kv_logic::builders::path_formula;
/// use kv_logic::eval::eval_with;
/// use kv_structures::{generators::directed_path, RelId};
///
/// let p3 = path_formula(RelId(0), 3);
/// assert!(p3.width() <= 3); // the point of the example
/// let s = directed_path(5);
/// assert!(eval_with(&p3, &s, &[Some(0), Some(3)]));
/// assert!(!eval_with(&p3, &s, &[Some(0), Some(2)]));
/// ```
///
/// # Panics
/// Panics if `n == 0`.
pub fn path_formula(edge: RelId, n: usize) -> Formula {
    assert!(n >= 1, "p_n defined for n >= 1");
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let mut p = Formula::edge(edge, x, y);
    for _ in 1..n {
        // p_{k+1}(x,y) = ∃z (E(x,z) ∧ ∃x (x = z ∧ p_k(x,y)))
        let rebind = Formula::exists(x, Formula::and([Formula::Eq(x.into(), z.into()), p]));
        p = Formula::exists(z, Formula::and([Formula::edge(edge, x, z), rebind]));
    }
    p
}

/// Example 3.3: `τ_n` — "there are at least `n` elements" — on **total
/// orders**, written with only **two** distinct variables:
///
/// ```text
/// τ_1 ≡ ∃x (x = x)
/// τ_{n+1} ≡ ∃x χ_n(x)   where   χ_1(x) ≡ ⊤,  χ_{m+1}(x) ≡ ∃y (x < y ∧ χ_m(y))
/// ```
///
/// (the chain alternates the two variable slots, as in the paper's `τ_4`).
///
/// # Panics
/// Panics if `n == 0`.
pub fn at_least_formula(less_than: RelId, n: usize) -> Formula {
    assert!(n >= 1);
    let slots = [Var(0), Var(1)];
    // Build the chain from the inside out: χ with m remaining hops, whose
    // free variable is `slots[(n - 1 - m) % 2]`… easier: build outward.
    // chain(m, cur): "there are m more elements above `cur`".
    fn chain(less_than: RelId, m: usize, cur: usize, slots: [Var; 2]) -> Formula {
        if m == 0 {
            return Formula::True;
        }
        let nxt = 1 - cur;
        Formula::exists(
            slots[nxt],
            Formula::and([
                Formula::edge(less_than, slots[cur], slots[nxt]),
                chain(less_than, m - 1, nxt, slots),
            ]),
        )
    }
    Formula::exists(
        slots[0],
        Formula::and([
            Formula::Eq(slots[0].into(), slots[0].into()),
            chain(less_than, n - 1, 0, slots),
        ]),
    )
}

/// Example 3.3: `ρ_n ≡ τ_n ∧ ¬τ_{n+1}` — "there are exactly `n` elements"
/// on total orders. Uses negation, so it lives in `L²_{∞ω}` but **not** in
/// the existential fragment `L²`.
pub fn exactly_formula(less_than: RelId, n: usize) -> Formula {
    Formula::and([
        at_least_formula(less_than, n),
        Formula::Not(std::rc::Rc::new(at_least_formula(less_than, n + 1))),
    ])
}

/// Ground truth for infinitary walk-length disjunctions: is there a walk
/// from `x` to `y` of length `≥ 1` congruent to `residue` mod `modulus`?
/// Exact, via reachability in the product graph `G × Z_modulus`.
pub fn has_walk_mod(g: &Digraph, x: u32, y: u32, residue: usize, modulus: usize) -> bool {
    assert!(modulus >= 1);
    let n = g.node_count();
    let mut seen = vec![false; n * modulus];
    let mut queue = VecDeque::new();
    // Start states: successors of x at length 1.
    for &v in g.successors(x) {
        let st = v as usize * modulus + 1 % modulus;
        if !seen[st] {
            seen[st] = true;
            queue.push_back((v, 1 % modulus));
        }
    }
    while let Some((u, r)) = queue.pop_front() {
        if u == y && r == residue % modulus {
            return true;
        }
        for &v in g.successors(u) {
            let nr = (r + 1) % modulus;
            let st = v as usize * modulus + nr;
            if !seen[st] {
                seen[st] = true;
                queue.push_back((v, nr));
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_closed, eval_with};
    use kv_structures::generators::{
        directed_cycle, directed_cycle_graph, directed_path, directed_path_graph, random_digraph,
        total_order,
    };

    const E: RelId = RelId(0);

    #[test]
    fn path_formula_width_is_three() {
        for n in 1..6 {
            let p = path_formula(E, n);
            assert!(p.width() <= 3, "p_{n} uses more than 3 variables");
            assert!(p.is_existential_positive());
            assert!(p.is_inequality_free());
        }
    }

    #[test]
    fn path_formula_semantics_on_path_graph() {
        let s = directed_path(6);
        for n in 1..6 {
            let p = path_formula(E, n);
            for a in 0..6u32 {
                for b in 0..6u32 {
                    let expected = b >= a && (b - a) as usize == n;
                    assert_eq!(
                        eval_with(&p, &s, &[Some(a), Some(b)]),
                        expected,
                        "p_{n}({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn path_formula_counts_walks_not_simple_paths() {
        // On a 3-cycle, a walk of length 4 from 0 exists (to node 1).
        let s = directed_cycle(3);
        let p4 = path_formula(E, 4);
        assert!(eval_with(&p4, &s, &[Some(0), Some(1)]));
        assert!(!eval_with(&p4, &s, &[Some(0), Some(0)]));
    }

    #[test]
    fn path_formula_matches_walk_mod_ground_truth() {
        for seed in 0..5 {
            let g = random_digraph(6, 0.3, seed);
            let s = g.to_structure();
            // Even-length walks: ⋁ {p_n : n even, n <= 2 * |V|^2} is exact
            // because the product graph G × Z2 has 2|V| states.
            let bound = 2 * 6 * 6;
            for a in 0..6u32 {
                for b in 0..6u32 {
                    let family: bool = (2..=bound)
                        .step_by(2)
                        .any(|n| eval_with(&path_formula(E, n), &s, &[Some(a), Some(b)]));
                    let exact = has_walk_mod(&g, a, b, 0, 2);
                    assert_eq!(family, exact, "even-walk({a},{b}) seed {seed}");
                }
            }
        }
    }

    #[test]
    fn at_least_formula_on_orders() {
        for size in 1..6usize {
            let s = total_order(size);
            for n in 1..8usize {
                let f = at_least_formula(E, n);
                assert!(f.width() <= 2, "τ_{n} must use 2 variables");
                assert_eq!(eval_closed(&f, &s), size >= n, "τ_{n} on order of {size}");
            }
        }
    }

    #[test]
    fn exactly_formula_on_orders() {
        for size in 1..6usize {
            let s = total_order(size);
            for n in 1..8usize {
                let f = exactly_formula(E, n);
                assert!(f.width() <= 2);
                assert_eq!(eval_closed(&f, &s), size == n, "ρ_{n} on order of {size}");
            }
        }
    }

    #[test]
    fn even_cardinality_on_orders_via_family() {
        // ⋁_n ρ_{2n} expresses "even number of elements" on total orders.
        for size in 1..7usize {
            let s = total_order(size);
            let even = (1..=4).any(|n| eval_closed(&exactly_formula(E, 2 * n), &s));
            assert_eq!(even, size % 2 == 0);
        }
    }

    #[test]
    fn has_walk_mod_basics() {
        let p = directed_path_graph(5);
        assert!(has_walk_mod(&p, 0, 4, 0, 2));
        assert!(!has_walk_mod(&p, 0, 3, 0, 2));
        assert!(has_walk_mod(&p, 0, 3, 1, 2));
        let c = directed_cycle_graph(3);
        // Walks 0 -> 0 have lengths 3, 6, 9, …
        assert!(has_walk_mod(&c, 0, 0, 0, 3));
        assert!(!has_walk_mod(&c, 0, 0, 1, 3));
        assert!(has_walk_mod(&c, 0, 0, 0, 2)); // length 6
        assert!(has_walk_mod(&c, 0, 0, 1, 2)); // length 3
    }
}
