//! Formula evaluation on finite structures, with per-node memoization.
//!
//! Stage formulas (Theorem 3.6) are DAGs whose tree expansion is
//! exponential; naive recursive evaluation would re-evaluate shared nodes
//! under the same assignment over and over. [`Evaluator`] memoizes on
//! `(node identity, restriction of the assignment to the node's free
//! variables)`, which makes evaluation polynomial in the DAG size times the
//! number of relevant assignments.

use crate::formula::{Formula, LTerm, Var};
use kv_structures::{Element, Structure};
use std::collections::HashMap;
use std::rc::Rc;

/// A variable assignment: `asg[i]` interprets `Var(i)`.
pub type Assignment = Vec<Option<Element>>;

/// Evaluates a closed formula (sentence) on a structure.
pub fn eval_closed(f: &Formula, s: &Structure) -> bool {
    let mut ev = Evaluator::new(s);
    ev.eval(f, &mut vec![None; max_var(f) + 1])
}

/// Evaluates a formula under the given assignment of its free variables.
/// The assignment vector must be long enough for every variable index used
/// anywhere in the formula.
pub fn eval_with(f: &Formula, s: &Structure, asg: &[Option<Element>]) -> bool {
    let mut ev = Evaluator::new(s);
    let mut asg = asg.to_vec();
    let need = max_var(f) + 1;
    if asg.len() < need {
        asg.resize(need, None);
    }
    ev.eval(f, &mut asg)
}

fn max_var(f: &Formula) -> usize {
    f.all_vars().iter().map(|v| v.0).max().unwrap_or(0)
}

/// A memoizing evaluator bound to one structure.
///
/// Reuse a single evaluator across many queries on the same structure to
/// share the memo table (entries are keyed by node identity and free-variable
/// values, so they remain valid across calls).
pub struct Evaluator<'s> {
    structure: &'s Structure,
    /// Free variables per shared node (cached).
    free_cache: HashMap<*const Formula, Rc<Vec<Var>>>,
    /// Memo: (node, values of its free vars) -> truth.
    memo: HashMap<(*const Formula, Vec<Option<Element>>), bool>,
}

impl<'s> Evaluator<'s> {
    /// Creates an evaluator for `structure`.
    pub fn new(structure: &'s Structure) -> Self {
        Self {
            structure,
            free_cache: HashMap::new(),
            memo: HashMap::new(),
        }
    }

    // Infallible: evaluation assigns every free variable before descending.
    #[allow(clippy::expect_used)]
    fn term_value(&self, t: &LTerm, asg: &[Option<Element>]) -> Element {
        match t {
            LTerm::Var(v) => asg[v.0].expect("free variable left unassigned"),
            LTerm::Const(c) => self.structure.constant(*c),
        }
    }

    fn free_vars_of(&mut self, f: &Rc<Formula>) -> Rc<Vec<Var>> {
        let key = Rc::as_ptr(f);
        if let Some(v) = self.free_cache.get(&key) {
            return Rc::clone(v);
        }
        let vars = Rc::new(f.free_vars().into_iter().collect::<Vec<_>>());
        self.free_cache.insert(key, Rc::clone(&vars));
        vars
    }

    /// Evaluates `f` under `asg` (which must cover every variable index in
    /// `f`; entries for bound variables are scratch space).
    pub fn eval(&mut self, f: &Formula, asg: &mut Assignment) -> bool {
        match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(rel, ts) => {
                let tuple: Vec<Element> = ts.iter().map(|t| self.term_value(t, asg)).collect();
                self.structure.contains(*rel, &tuple)
            }
            Formula::Eq(a, b) => self.term_value(a, asg) == self.term_value(b, asg),
            Formula::Neq(a, b) => self.term_value(a, asg) != self.term_value(b, asg),
            Formula::Not(g) => !self.eval_shared(g, asg),
            Formula::And(fs) => {
                for g in fs {
                    if !self.eval_shared(g, asg) {
                        return false;
                    }
                }
                true
            }
            Formula::Or(fs) => {
                for g in fs {
                    if self.eval_shared(g, asg) {
                        return true;
                    }
                }
                false
            }
            Formula::Exists(v, g) => {
                let saved = asg[v.0];
                let mut found = false;
                for e in self.structure.elements() {
                    asg[v.0] = Some(e);
                    if self.eval_shared(g, asg) {
                        found = true;
                        break;
                    }
                }
                asg[v.0] = saved;
                found
            }
            Formula::Forall(v, g) => {
                let saved = asg[v.0];
                let mut all = true;
                for e in self.structure.elements() {
                    asg[v.0] = Some(e);
                    if !self.eval_shared(g, asg) {
                        all = false;
                        break;
                    }
                }
                asg[v.0] = saved;
                all
            }
        }
    }

    fn eval_shared(&mut self, g: &Rc<Formula>, asg: &mut Assignment) -> bool {
        // Only memoize interior nodes with some weight; leaves are cheap.
        let heavy = matches!(
            **g,
            Formula::And(_) | Formula::Or(_) | Formula::Exists(_, _) | Formula::Forall(_, _)
        );
        if !heavy {
            return self.eval(g, asg);
        }
        let free = self.free_vars_of(g);
        let key_vals: Vec<Option<Element>> = free.iter().map(|v| asg[v.0]).collect();
        let key = (Rc::as_ptr(g), key_vals);
        if let Some(&v) = self.memo.get(&key) {
            return v;
        }
        let result = self.eval(g, asg);
        self.memo.insert(key, result);
        result
    }

    /// Number of memoized entries (introspection for tests/benches).
    pub fn memo_size(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{Formula, Var};
    use kv_structures::generators::{directed_cycle, directed_path};
    use kv_structures::RelId;

    const E: RelId = RelId(0);

    #[test]
    fn atoms_and_equality() {
        let s = directed_path(3);
        let f = Formula::edge(E, Var(0), Var(1));
        assert!(eval_with(&f, &s, &[Some(0), Some(1)]));
        assert!(!eval_with(&f, &s, &[Some(1), Some(0)]));
        let eq = Formula::Eq(Var(0).into(), Var(1).into());
        assert!(eval_with(&eq, &s, &[Some(2), Some(2)]));
        assert!(!eval_with(&eq, &s, &[Some(1), Some(2)]));
    }

    #[test]
    fn exists_scans_universe() {
        let s = directed_path(3);
        // ∃v1 E(v0, v1): out-degree > 0.
        let f = Formula::exists(Var(1), Formula::edge(E, Var(0), Var(1)));
        assert!(eval_with(&f, &s, &[Some(0)]));
        assert!(eval_with(&f, &s, &[Some(1)]));
        assert!(!eval_with(&f, &s, &[Some(2)]));
    }

    #[test]
    fn closed_sentence_on_cycle() {
        // ∃v0 ∃v1 (E(v0,v1) ∧ E(v1,v0)) — 2-cycle present?
        let f = Formula::exists_many(
            [Var(0), Var(1)],
            Formula::and([
                Formula::edge(E, Var(0), Var(1)),
                Formula::edge(E, Var(1), Var(0)),
            ]),
        );
        assert!(eval_closed(&f, &directed_cycle(2)));
        assert!(!eval_closed(&f, &directed_cycle(3)));
    }

    #[test]
    fn negation_and_forall() {
        // ∀v0 ∃v1 E(v0, v1): every node has a successor (cycle yes, path no).
        let f = Formula::Forall(
            Var(0),
            std::rc::Rc::new(Formula::exists(Var(1), Formula::edge(E, Var(0), Var(1)))),
        );
        assert!(eval_closed(&f, &directed_cycle(4)));
        assert!(!eval_closed(&f, &directed_path(4)));
        let neg = Formula::Not(std::rc::Rc::new(f));
        assert!(eval_closed(&neg, &directed_path(4)));
    }

    #[test]
    fn memoization_reuses_shared_nodes() {
        // A shared subformula under two conjuncts should be evaluated once
        // per assignment of its free variables.
        let shared = std::rc::Rc::new(Formula::exists(Var(1), Formula::edge(E, Var(0), Var(1))));
        let f = Formula::And(vec![std::rc::Rc::clone(&shared), shared]);
        let s = directed_path(5);
        let mut ev = Evaluator::new(&s);
        assert!(ev.eval(&f, &mut vec![Some(0), None]));
        assert!(ev.memo_size() >= 1);
    }

    #[test]
    fn bound_variable_scratch_is_restored() {
        let s = directed_path(3);
        let f = Formula::exists(Var(1), Formula::edge(E, Var(0), Var(1)));
        let mut ev = Evaluator::new(&s);
        let mut asg = vec![Some(0), Some(2)]; // v1 pre-assigned
        assert!(ev.eval(&f, &mut asg));
        assert_eq!(asg[1], Some(2), "quantifier must restore the slot");
    }
}
