//! Formula families: finite stand-ins for infinitary disjunctions.
//!
//! An `L^k_{∞ω}` sentence like `⋁_{n ∈ P} p_n` has infinitely many
//! disjuncts, but on any *fixed finite structure* only finitely many matter.
//! A [`FormulaFamily`] packages the generator `n ↦ φ_n` together with a
//! *bound policy*: a function of the structure that returns an index `N`
//! such that `⋁_{n ≤ N} φ_n ≡ ⋁_n φ_n` on that structure (e.g. `|A| · m`
//! for walk-length-mod-`m` families, from the product-graph argument).

use crate::eval::eval_with;
use crate::formula::Formula;
use kv_structures::{Element, Structure};

/// A lazily generated family `φ_1, φ_2, …` with a per-structure sufficient
/// bound.
pub struct FormulaFamily {
    name: String,
    gen: Box<dyn Fn(usize) -> Formula>,
    bound: Box<dyn Fn(&Structure) -> usize>,
}

impl FormulaFamily {
    /// Creates a family from a generator and a bound policy.
    pub fn new(
        name: impl Into<String>,
        gen: impl Fn(usize) -> Formula + 'static,
        bound: impl Fn(&Structure) -> usize + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            gen: Box::new(gen),
            bound: Box::new(bound),
        }
    }

    /// The family's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The `n`-th member formula.
    pub fn member(&self, n: usize) -> Formula {
        (self.gen)(n)
    }

    /// The sufficient disjunction bound for `structure`.
    pub fn bound_for(&self, structure: &Structure) -> usize {
        (self.bound)(structure)
    }

    /// Evaluates the infinitary disjunction `⋁_{n ∈ selector} φ_n` on
    /// `structure` under `asg`, using the family's bound.
    pub fn eval_disjunction(
        &self,
        structure: &Structure,
        asg: &[Option<Element>],
        selector: impl Fn(usize) -> bool,
    ) -> bool {
        let bound = self.bound_for(structure);
        (1..=bound)
            .filter(|&n| selector(n))
            .any(|n| eval_with(&self.member(n), structure, asg))
    }

    /// The maximum variable width over the first `bound` members — the `k`
    /// for which the infinitary disjunction lies in `L^k_{∞ω}`.
    pub fn width_upto(&self, bound: usize) -> usize {
        (1..=bound)
            .map(|n| self.member(n).width())
            .max()
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for FormulaFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FormulaFamily({})", self.name)
    }
}

/// The family of Example 3.4: `p_n(v0, v1)` (walk of length `n`), with the
/// product-graph bound `|A| · modulus` sufficient for any modulus-periodic
/// selector with period dividing `modulus`.
pub fn walk_length_family(edge: kv_structures::RelId, modulus: usize) -> FormulaFamily {
    FormulaFamily::new(
        format!("p_n (walks, periodic mod {modulus})"),
        move |n| crate::builders::path_formula(edge, n),
        move |s| s.universe_size() * modulus.max(1),
    )
}

/// The family of Example 3.3: `ρ_n` ("exactly n elements") on total orders;
/// bound `|A| + 1` suffices since `ρ_n` fails for all `n > |A|`.
pub fn cardinality_family(less_than: kv_structures::RelId) -> FormulaFamily {
    FormulaFamily::new(
        "rho_n (exact cardinality on orders)",
        move |n| crate::builders::exactly_formula(less_than, n),
        |s| s.universe_size() + 1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::has_walk_mod;
    use kv_structures::generators::{random_digraph, total_order};
    use kv_structures::{Digraph, RelId};

    const E: RelId = RelId(0);

    #[test]
    fn even_walk_family_matches_product_graph() {
        let fam = walk_length_family(E, 2);
        for seed in 0..4 {
            let g = random_digraph(6, 0.25, 70 + seed);
            let s = g.to_structure();
            for a in 0..6u32 {
                for b in 0..6u32 {
                    let via_family = fam.eval_disjunction(&s, &[Some(a), Some(b)], |n| n % 2 == 0);
                    let exact = has_walk_mod(&g, a, b, 0, 2);
                    assert_eq!(via_family, exact, "({a},{b}) seed {}", 70 + seed);
                }
            }
        }
    }

    #[test]
    fn walk_family_width_is_three() {
        let fam = walk_length_family(E, 2);
        assert!(fam.width_upto(10) <= 3);
    }

    #[test]
    fn cardinality_family_expresses_parity() {
        let fam = cardinality_family(E);
        for size in 1..8usize {
            let s = total_order(size);
            let even = fam.eval_disjunction(&s, &[], |n| n % 2 == 0);
            assert_eq!(even, size % 2 == 0, "order of {size}");
        }
    }

    #[test]
    fn nonrecursive_selectors_work() {
        // "Cardinality is a perfect square" — the kind of nonrecursive
        // query the paper uses to show L^ω ⊄ PTIME-queries.
        let fam = cardinality_family(E);
        let squares = |n: usize| {
            let r = (n as f64).sqrt() as usize;
            r * r == n || (r + 1) * (r + 1) == n
        };
        for size in 1..10usize {
            let s = total_order(size);
            let got = fam.eval_disjunction(&s, &[], squares);
            assert_eq!(got, squares(size));
        }
    }

    #[test]
    fn bound_policy_scales_with_structure() {
        let fam = walk_length_family(E, 2);
        let small = Digraph::new(3).to_structure();
        let large = Digraph::new(9).to_structure();
        assert_eq!(fam.bound_for(&small), 6);
        assert_eq!(fam.bound_for(&large), 18);
    }
}
