//! Fixpoint logic: first-order logic with the least fixpoint operator.
//!
//! Section 2 of the paper frames Datalog(≠) as "the negation-free
//! existential fragment of fixpoint logic" (after Chandra–Harel): the
//! operator `Θ_A` of a program is uniformly defined by an existential
//! first-order formula `φ(w⃗, S)` with only positive occurrences of `S`,
//! and the program's semantics is `lfp(φ)`. This module supplies that
//! frame:
//!
//! - [`FpFormula`]: first-order syntax extended with relation variables
//!   and an `lfp` binder;
//! - positivity checking (the monotonicity precondition);
//! - evaluation by naive fixpoint iteration;
//! - [`program_to_lfp`]: the Chandra–Harel translation for single-IDB
//!   Datalog(≠) programs, tested equivalent to the bottom-up engine.
//!
//! The full logic is strictly stronger than Datalog(≠) — it has negation
//! and universal quantification — which is exactly the gap the paper's
//! Theorem 6.2 discussion walks along (the single-player game algorithm is
//! fixpoint-expressible but seemingly not Datalog(≠)-expressible).

use crate::formula::{LTerm, Var};
use kv_datalog::{IdbId, Literal, Pred, Program, Term};
use kv_structures::govern::{Governor, Interrupted};
use kv_structures::{Element, RelId, Structure, TupleStore};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A second-order (relation) variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelVar(pub usize);

/// Fixpoint-logic formulas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpFormula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// An EDB atom `R(t⃗)`.
    Edb(RelId, Vec<LTerm>),
    /// A relation-variable atom `S(t⃗)`.
    Rel(RelVar, Vec<LTerm>),
    /// `t1 = t2`.
    Eq(LTerm, LTerm),
    /// `t1 ≠ t2`.
    Neq(LTerm, LTerm),
    /// Negation.
    Not(Rc<FpFormula>),
    /// Conjunction.
    And(Vec<Rc<FpFormula>>),
    /// Disjunction.
    Or(Vec<Rc<FpFormula>>),
    /// `∃v φ`.
    Exists(Var, Rc<FpFormula>),
    /// `∀v φ`.
    Forall(Var, Rc<FpFormula>),
    /// `lfp[S, (v⃗)](body)(args)`: the least fixpoint of
    /// `S ↦ {v⃗ : body}` applied to `args`. `body` must be positive in
    /// `rel`.
    Lfp {
        /// The bound relation variable.
        rel: RelVar,
        /// The tuple variables the fixpoint abstracts.
        vars: Vec<Var>,
        /// The body formula.
        body: Rc<FpFormula>,
        /// The arguments the fixpoint relation is applied to.
        args: Vec<LTerm>,
    },
}

impl FpFormula {
    /// Is `rel` positive (under an even number of negations) everywhere it
    /// occurs free in this formula? (The `lfp` well-formedness condition.)
    pub fn is_positive_in(&self, rel: RelVar) -> bool {
        self.polarity_ok(rel, true)
    }

    fn polarity_ok(&self, rel: RelVar, positive: bool) -> bool {
        match self {
            FpFormula::True
            | FpFormula::False
            | FpFormula::Edb(_, _)
            | FpFormula::Eq(_, _)
            | FpFormula::Neq(_, _) => true,
            FpFormula::Rel(r, _) => *r != rel || positive,
            FpFormula::Not(g) => g.polarity_ok(rel, !positive),
            FpFormula::And(gs) | FpFormula::Or(gs) => {
                gs.iter().all(|g| g.polarity_ok(rel, positive))
            }
            FpFormula::Exists(_, g) | FpFormula::Forall(_, g) => g.polarity_ok(rel, positive),
            FpFormula::Lfp {
                rel: inner,
                body,
                args,
                ..
            } => {
                // Args are terms (no polarity); body polarity continues
                // unless the inner binder shadows `rel`.
                let _ = args;
                *inner == rel || body.polarity_ok(rel, positive)
            }
        }
    }

    /// Whether the formula lies in the **negation-free existential**
    /// fragment (the Datalog(≠) image): no `¬`, no `∀`.
    pub fn is_existential_positive(&self) -> bool {
        match self {
            FpFormula::Not(_) | FpFormula::Forall(_, _) => false,
            FpFormula::And(gs) | FpFormula::Or(gs) => {
                gs.iter().all(|g| g.is_existential_positive())
            }
            FpFormula::Exists(_, g) => g.is_existential_positive(),
            FpFormula::Lfp { body, .. } => body.is_existential_positive(),
            _ => true,
        }
    }
}

/// Evaluation environment: first-order assignment plus relation bindings.
/// Relation variables bind interned [`TupleStore`]s, so fixpoint stages
/// live in the same storage engine as the bottom-up Datalog evaluator.
#[derive(Debug, Default, Clone)]
pub struct FpEnv {
    /// `vars[i]` interprets `Var(i)`.
    pub vars: Vec<Option<Element>>,
    /// Relation-variable bindings.
    pub rels: HashMap<RelVar, TupleStore>,
}

/// Evaluates a fixpoint-logic formula.
///
/// # Panics
/// Panics on unbound first-order or relation variables, or on an `lfp`
/// whose body is not positive in its bound relation variable.
pub fn fp_eval(f: &FpFormula, s: &Structure, env: &mut FpEnv) -> bool {
    match try_fp_eval(f, s, env, &Governor::unlimited()) {
        Ok(b) => b,
        Err(e) => unreachable!("unlimited governor interrupted: {e}"),
    }
}

/// Governed formula evaluation: charges one step per quantifier-element
/// iteration and per fixpoint candidate, so an adversarial formula (deep
/// quantifier nests, large `lfp` bodies) can be bounded, timed out, or
/// cancelled through `gov`.
///
/// # Panics
/// Panics on unbound first-order or relation variables, or on an `lfp`
/// whose body is not positive in its bound relation variable.
pub fn try_fp_eval(
    f: &FpFormula,
    s: &Structure,
    env: &mut FpEnv,
    gov: &Governor,
) -> Result<bool, Interrupted> {
    // Infallible: quantifiers bind every variable before it is read, and
    // the LFP driver seeds every relation variable in the environment.
    #[allow(clippy::expect_used)]
    let term = |t: &LTerm, env: &FpEnv| -> Element {
        match t {
            LTerm::Var(v) => env.vars[v.0].expect("unbound variable"),
            LTerm::Const(c) => s.constant(*c),
        }
    };
    Ok(match f {
        FpFormula::True => true,
        FpFormula::False => false,
        FpFormula::Edb(rel, ts) => {
            let tuple: Vec<Element> = ts.iter().map(|t| term(t, env)).collect();
            s.contains(*rel, &tuple)
        }
        FpFormula::Rel(rv, ts) => {
            let tuple: Vec<Element> = ts.iter().map(|t| term(t, env)).collect();
            #[allow(clippy::expect_used)]
            let rel = env.rels.get(rv).expect("unbound relation variable");
            rel.contains(tuple.as_slice())
        }
        FpFormula::Eq(a, b) => term(a, env) == term(b, env),
        FpFormula::Neq(a, b) => term(a, env) != term(b, env),
        FpFormula::Not(g) => !try_fp_eval(g, s, env, gov)?,
        FpFormula::And(gs) => {
            let mut all = true;
            for g in gs {
                if !try_fp_eval(g, s, &mut env.clone(), gov)? {
                    all = false;
                    break;
                }
            }
            all
        }
        FpFormula::Or(gs) => {
            let mut any = false;
            for g in gs {
                if try_fp_eval(g, s, &mut env.clone(), gov)? {
                    any = true;
                    break;
                }
            }
            any
        }
        FpFormula::Exists(v, g) => {
            let saved = env.vars[v.0];
            let mut found = false;
            for e in s.elements() {
                gov.step(1)?;
                env.vars[v.0] = Some(e);
                if try_fp_eval(g, s, env, gov)? {
                    found = true;
                    break;
                }
            }
            env.vars[v.0] = saved;
            found
        }
        FpFormula::Forall(v, g) => {
            let saved = env.vars[v.0];
            let mut all = true;
            for e in s.elements() {
                gov.step(1)?;
                env.vars[v.0] = Some(e);
                if !try_fp_eval(g, s, env, gov)? {
                    all = false;
                    break;
                }
            }
            env.vars[v.0] = saved;
            all
        }
        FpFormula::Lfp {
            rel,
            vars,
            body,
            args,
        } => {
            assert!(
                body.is_positive_in(*rel),
                "lfp body must be positive in the bound relation variable"
            );
            let fixpoint = try_compute_lfp(*rel, vars, body, s, env, gov).map_err(|e| e.reason)?;
            let tuple: Vec<Element> = args.iter().map(|t| term(t, env)).collect();
            fixpoint.contains(tuple.as_slice())
        }
    })
}

/// Resumable state of an interrupted [`try_compute_lfp`]: the last
/// *completed* iteration's relation. The next iteration is a pure
/// function of this store, so resuming reproduces exactly the stages an
/// uninterrupted run would compute.
#[derive(Debug, Clone)]
pub struct LfpCheckpoint {
    current: TupleStore,
    iterations: u64,
}

impl LfpCheckpoint {
    /// Completed fixpoint iterations.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Tuples in the last completed iteration's relation.
    pub fn tuples(&self) -> usize {
        self.current.len()
    }

    /// The last completed iteration's relation (partial progress).
    pub fn relation(&self) -> &TupleStore {
        &self.current
    }
}

/// A governed lfp computation was interrupted.
#[derive(Debug, Clone)]
pub struct LfpInterrupted {
    /// Why the computation stopped.
    pub reason: Interrupted,
    /// Completed-iteration state; pass to [`resume_lfp`].
    pub checkpoint: LfpCheckpoint,
}

impl fmt::Display for LfpInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} lfp iteration(s), {} tuple(s)",
            self.reason,
            self.checkpoint.iterations(),
            self.checkpoint.tuples()
        )
    }
}

impl std::error::Error for LfpInterrupted {}

/// Computes the least fixpoint relation of an `lfp` binder under `env`,
/// materialized as an interned [`TupleStore`]. Convergence is the store
/// set-equality check (id order is irrelevant).
pub fn compute_lfp(
    rel: RelVar,
    vars: &[Var],
    body: &FpFormula,
    s: &Structure,
    env: &FpEnv,
) -> TupleStore {
    match try_compute_lfp(rel, vars, body, s, env, &Governor::unlimited()) {
        Ok(store) => store,
        Err(e) => unreachable!("unlimited governor interrupted: {e}"),
    }
}

/// Governed lfp iteration: charges one stage per iteration, one step per
/// candidate tuple, and the per-iteration tuple growth; interrupts
/// gracefully at the last completed iteration with a resumable
/// [`LfpCheckpoint`].
pub fn try_compute_lfp(
    rel: RelVar,
    vars: &[Var],
    body: &FpFormula,
    s: &Structure,
    env: &FpEnv,
    gov: &Governor,
) -> Result<TupleStore, LfpInterrupted> {
    run_lfp_from(
        rel,
        vars,
        body,
        s,
        env,
        gov,
        LfpCheckpoint {
            current: TupleStore::new(vars.len()),
            iterations: 0,
        },
    )
}

/// Resumes an interrupted governed lfp computation. `rel`, `vars`,
/// `body`, `s`, and `env` must be those of the original call; budget
/// counters live in the governor, so pass a fresh or relaxed one.
pub fn resume_lfp(
    rel: RelVar,
    vars: &[Var],
    body: &FpFormula,
    s: &Structure,
    env: &FpEnv,
    checkpoint: LfpCheckpoint,
    gov: &Governor,
) -> Result<TupleStore, LfpInterrupted> {
    run_lfp_from(rel, vars, body, s, env, gov, checkpoint)
}

#[allow(clippy::too_many_arguments)]
fn run_lfp_from(
    rel: RelVar,
    vars: &[Var],
    body: &FpFormula,
    s: &Structure,
    env: &FpEnv,
    gov: &Governor,
    cp: LfpCheckpoint,
) -> Result<TupleStore, LfpInterrupted> {
    let LfpCheckpoint {
        mut current,
        mut iterations,
    } = cp;
    loop {
        // One full iteration is the committed unit: an interrupt anywhere
        // inside discards `next` and checkpoints `current`.
        if let Err(reason) = gov.check().and_then(|()| gov.charge_stage()) {
            return Err(LfpInterrupted {
                reason,
                checkpoint: LfpCheckpoint {
                    current,
                    iterations,
                },
            });
        }
        let mut inner_env = env.clone();
        let max_var = vars.iter().map(|v| v.0).max().unwrap_or(0);
        if inner_env.vars.len() <= max_var {
            inner_env.vars.resize(max_var + 1, None);
        }
        inner_env.rels.insert(rel, current.clone());
        let mut next = TupleStore::new(vars.len());
        let mut tuple = vec![0 as Element; vars.len()];
        // Immediately-invoked closure emulates a `try` block so `?` can
        // short-circuit into the checkpoint-wrapping branch below.
        #[allow(clippy::redundant_closure_call)]
        let iteration = (|| -> Result<(), Interrupted> {
            try_enumerate_tuples(s.universe_size() as Element, &mut tuple, 0, &mut |t| {
                gov.step(1)?;
                for (i, v) in vars.iter().enumerate() {
                    inner_env.vars[v.0] = Some(t[i]);
                }
                if try_fp_eval(body, s, &mut inner_env, gov)? {
                    next.intern(t);
                }
                Ok(())
            })
        })();
        if let Err(reason) = iteration {
            return Err(LfpInterrupted {
                reason,
                checkpoint: LfpCheckpoint {
                    current,
                    iterations,
                },
            });
        }
        iterations += 1;
        if next.set_eq(&current) {
            return Ok(current);
        }
        // lfp iteration is monotone: the growth is the new tuple count.
        let growth = (next.len() - current.len()) as u64;
        current = next;
        if let Err(reason) = gov
            .charge_tuples(growth)
            .and_then(|()| gov.charge_bytes(growth * vars.len().max(1) as u64 * 4))
        {
            return Err(LfpInterrupted {
                reason,
                checkpoint: LfpCheckpoint {
                    current,
                    iterations,
                },
            });
        }
    }
}

fn try_enumerate_tuples(
    n: Element,
    tuple: &mut Vec<Element>,
    pos: usize,
    visit: &mut impl FnMut(&[Element]) -> Result<(), Interrupted>,
) -> Result<(), Interrupted> {
    if pos == tuple.len() {
        return visit(tuple);
    }
    for e in 0..n {
        tuple[pos] = e;
        try_enumerate_tuples(n, tuple, pos + 1, visit)?;
    }
    Ok(())
}

/// The Chandra–Harel translation (Section 2): a **single-IDB** Datalog(≠)
/// program becomes `lfp[S, w⃗](⋁_rules ∃z⃗ (⋀ wᵢ = tᵢ ∧ body))(w⃗)` —
/// an existential negation-free fixpoint formula. Returns the formula with
/// free variables `Var(0), …, Var(r-1)` standing for the goal tuple.
///
/// # Panics
/// Panics if the program has more than one IDB predicate (the paper's
/// simultaneous-system case; use the bottom-up engine for those).
pub fn program_to_lfp(program: &Program) -> FpFormula {
    assert_eq!(
        program.idb_count(),
        1,
        "translation implemented for single-IDB programs"
    );
    let idb = IdbId(0);
    let arity = program.idb_arity(idb);
    let rel = RelVar(0);
    // Variable layout: w-slots 0..arity, rule vars arity..arity+L.
    let rule_slot = |v: usize| Var(arity + v);
    let to_lterm = |t: &Term| -> LTerm {
        match t {
            Term::Var(v) => LTerm::Var(rule_slot(v.0)),
            Term::Const(c) => LTerm::Const(*c),
        }
    };
    let mut disjuncts: Vec<Rc<FpFormula>> = Vec::new();
    for rule in program.rules() {
        let mut conjuncts: Vec<Rc<FpFormula>> = Vec::new();
        for (p, t) in rule.head_args.iter().enumerate() {
            conjuncts.push(Rc::new(FpFormula::Eq(LTerm::Var(Var(p)), to_lterm(t))));
        }
        for lit in &rule.body {
            conjuncts.push(Rc::new(match lit {
                Literal::Atom(Pred::Edb(r), args) => {
                    FpFormula::Edb(*r, args.iter().map(to_lterm).collect())
                }
                Literal::Atom(Pred::Idb(_), args) => {
                    FpFormula::Rel(rel, args.iter().map(to_lterm).collect())
                }
                Literal::Eq(a, b) => FpFormula::Eq(to_lterm(a), to_lterm(b)),
                Literal::Neq(a, b) => FpFormula::Neq(to_lterm(a), to_lterm(b)),
            }));
        }
        let mut disjunct = FpFormula::And(conjuncts);
        for v in (0..rule.var_count()).rev() {
            disjunct = FpFormula::Exists(rule_slot(v), Rc::new(disjunct));
        }
        disjuncts.push(Rc::new(disjunct));
    }
    let body = FpFormula::Or(disjuncts);
    FpFormula::Lfp {
        rel,
        vars: (0..arity).map(Var).collect(),
        body: Rc::new(body),
        args: (0..arity).map(|i| LTerm::Var(Var(i))).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_datalog::programs::{avoiding_path, transitive_closure};
    use kv_datalog::Evaluator;
    use kv_structures::generators::{directed_path, random_digraph};

    fn eval_at(f: &FpFormula, s: &Structure, args: &[Element]) -> bool {
        let mut env = FpEnv {
            vars: args.iter().map(|&e| Some(e)).collect(),
            rels: HashMap::new(),
        };
        // Pad generously for bound variables.
        env.vars.resize(16, None);
        fp_eval(f, s, &mut env)
    }

    #[test]
    fn lfp_translation_matches_engine_tc() {
        let program = transitive_closure();
        let f = program_to_lfp(&program);
        assert!(f.is_existential_positive());
        for seed in 0..4 {
            let s = random_digraph(5, 0.3, 16_000 + seed).to_structure();
            let engine = Evaluator::new(&program).goal(&s);
            for x in 0..5u32 {
                for y in 0..5u32 {
                    assert_eq!(
                        eval_at(&f, &s, &[x, y]),
                        engine.contains(&[x, y][..]),
                        "TC({x},{y}) seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn lfp_translation_matches_engine_avoiding_path() {
        let program = avoiding_path();
        let f = program_to_lfp(&program);
        assert!(f.is_existential_positive());
        let s = random_digraph(4, 0.35, 17_000).to_structure();
        let engine = Evaluator::new(&program).goal(&s);
        for x in 0..4u32 {
            for y in 0..4u32 {
                for w in 0..4u32 {
                    assert_eq!(
                        eval_at(&f, &s, &[x, y, w]),
                        engine.contains(&[x, y, w][..]),
                        "T({x},{y},{w})"
                    );
                }
            }
        }
    }

    #[test]
    fn positivity_checker() {
        let s_atom = FpFormula::Rel(RelVar(0), vec![LTerm::Var(Var(0))]);
        assert!(s_atom.is_positive_in(RelVar(0)));
        let negated = FpFormula::Not(Rc::new(s_atom.clone()));
        assert!(!negated.is_positive_in(RelVar(0)));
        let double = FpFormula::Not(Rc::new(negated.clone()));
        assert!(double.is_positive_in(RelVar(0)));
        // A different relation variable is unaffected.
        assert!(negated.is_positive_in(RelVar(1)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn lfp_rejects_negative_bodies() {
        // lfp[S, x](¬S(x))(x) — not monotone.
        let body = FpFormula::Not(Rc::new(FpFormula::Rel(RelVar(0), vec![LTerm::Var(Var(0))])));
        let f = FpFormula::Lfp {
            rel: RelVar(0),
            vars: vec![Var(0)],
            body: Rc::new(body),
            args: vec![LTerm::Var(Var(0))],
        };
        let s = directed_path(2);
        eval_at(&f, &s, &[0]);
    }

    #[test]
    fn fixpoint_logic_expresses_complement_of_tc() {
        // ¬ lfp(TC)(x, y): expressible in fixpoint logic (with negation
        // outside), NOT in Datalog(≠) — the paper's Section 1 example of
        // the monotonicity gap.
        let program = transitive_closure();
        let tc = program_to_lfp(&program);
        let not_tc = FpFormula::Not(Rc::new(tc));
        assert!(!not_tc.is_existential_positive());
        let s = directed_path(3);
        assert!(eval_at(&not_tc, &s, &[2, 0])); // no path 2 -> 0
        assert!(!eval_at(&not_tc, &s, &[0, 2]));
    }

    #[test]
    fn governed_fp_eval_matches_plain() {
        let program = transitive_closure();
        let f = program_to_lfp(&program);
        let s = random_digraph(5, 0.3, 18_000).to_structure();
        for x in 0..5u32 {
            for y in 0..5u32 {
                let mut env = FpEnv {
                    vars: vec![Some(x), Some(y)],
                    rels: HashMap::new(),
                };
                env.vars.resize(16, None);
                let plain = fp_eval(&f, &s, &mut env.clone());
                let governed = try_fp_eval(&f, &s, &mut env, &Governor::unlimited());
                assert_eq!(governed, Ok(plain), "TC({x},{y})");
            }
        }
    }

    #[test]
    fn interrupted_lfp_resumes_to_identical_fixpoint() {
        let program = transitive_closure();
        let FpFormula::Lfp {
            rel, vars, body, ..
        } = program_to_lfp(&program)
        else {
            panic!("program_to_lfp returns an lfp binder");
        };
        let s = random_digraph(6, 0.3, 19_000).to_structure();
        let mut env = FpEnv {
            vars: Vec::new(),
            rels: HashMap::new(),
        };
        env.vars.resize(16, None);
        let baseline = compute_lfp(rel, &vars, &body, &s, &env);
        for max_steps in [1u64, 7, 40, 300, 5_000] {
            let gov = kv_structures::govern::chaos::step_tripper(max_steps);
            match try_compute_lfp(rel, &vars, &body, &s, &env, &gov) {
                Ok(store) => assert!(store.set_eq(&baseline), "budget {max_steps}"),
                Err(e) => {
                    assert!(matches!(e.reason, Interrupted::Limit(_)));
                    assert!(e.checkpoint.tuples() <= baseline.len());
                    let resumed = resume_lfp(
                        rel,
                        &vars,
                        &body,
                        &s,
                        &env,
                        e.checkpoint,
                        &Governor::unlimited(),
                    )
                    .expect("unlimited resume completes");
                    assert!(resumed.set_eq(&baseline), "budget {max_steps}");
                }
            }
        }
    }

    #[test]
    fn cancelled_lfp_reports_partial_progress() {
        let program = transitive_closure();
        let FpFormula::Lfp {
            rel, vars, body, ..
        } = program_to_lfp(&program)
        else {
            panic!("program_to_lfp returns an lfp binder");
        };
        let s = directed_path(4);
        let mut env = FpEnv {
            vars: Vec::new(),
            rels: HashMap::new(),
        };
        env.vars.resize(16, None);
        let gov = Governor::unlimited();
        gov.cancel_token().cancel();
        let err = try_compute_lfp(rel, &vars, &body, &s, &env, &gov).unwrap_err();
        assert_eq!(err.reason, Interrupted::Cancelled);
        assert_eq!(err.checkpoint.iterations(), 0);
        assert_eq!(err.checkpoint.relation().len(), 0);
    }

    #[test]
    fn universal_quantification_available() {
        // ∀x ∃y E(x, y): total out-degree — fixpoint logic's FO part.
        let f = FpFormula::Forall(
            Var(0),
            Rc::new(FpFormula::Exists(
                Var(1),
                Rc::new(FpFormula::Edb(
                    RelId(0),
                    vec![LTerm::Var(Var(0)), LTerm::Var(Var(1))],
                )),
            )),
        );
        let cycle = kv_structures::generators::directed_cycle(4);
        let path = directed_path(4);
        assert!(eval_at(&f, &cycle, &[]));
        assert!(!eval_at(&f, &path, &[]));
    }
}
