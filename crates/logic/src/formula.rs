//! Formula syntax for `L^k_{∞ω}` fragments.
//!
//! Variables are global indices `v0, v1, …`; a formula of `L^k` uses
//! indices `< k`. Children are [`Rc`]-shared: the Theorem 3.6 stage
//! formulas reuse the previous stage at every IDB-atom occurrence, so the
//! same node may have many parents — sharing keeps them polynomial-sized
//! (as DAGs) and lets evaluation memoize per node.

use kv_structures::{ConstId, RelId};
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

/// A logical variable `v_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub usize);

/// A term in an atom: a variable or a constant symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LTerm {
    /// A variable.
    Var(Var),
    /// A constant symbol of the vocabulary.
    Const(ConstId),
}

impl From<Var> for LTerm {
    fn from(v: Var) -> Self {
        LTerm::Var(v)
    }
}

/// A formula. The existential negation-free fragment (`L^k` of Definition
/// 3.5) uses only [`Atom`](Formula::Atom), [`Eq`](Formula::Eq),
/// [`Neq`](Formula::Neq), [`And`](Formula::And), [`Or`](Formula::Or) and
/// [`Exists`](Formula::Exists); [`Not`](Formula::Not) and
/// [`Forall`](Formula::Forall) are provided for the full `L^k_{∞ω}`
/// contrast examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// The constant true (empty conjunction).
    True,
    /// The constant false (empty disjunction).
    False,
    /// `R(t1, …, tn)`.
    Atom(RelId, Vec<LTerm>),
    /// `t1 = t2`.
    Eq(LTerm, LTerm),
    /// `t1 ≠ t2`.
    Neq(LTerm, LTerm),
    /// Negation (not in `L^k`).
    Not(Rc<Formula>),
    /// Finite conjunction.
    And(Vec<Rc<Formula>>),
    /// Finite disjunction.
    Or(Vec<Rc<Formula>>),
    /// `∃v φ`.
    Exists(Var, Rc<Formula>),
    /// `∀v φ` (not in `L^k`).
    Forall(Var, Rc<Formula>),
}

impl Formula {
    /// Convenience: conjunction of owned formulas.
    pub fn and(parts: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::And(parts.into_iter().map(Rc::new).collect())
    }

    /// Convenience: disjunction of owned formulas.
    pub fn or(parts: impl IntoIterator<Item = Formula>) -> Formula {
        Formula::Or(parts.into_iter().map(Rc::new).collect())
    }

    /// Convenience: `∃v φ`.
    pub fn exists(v: Var, f: Formula) -> Formula {
        Formula::Exists(v, Rc::new(f))
    }

    /// Convenience: nested `∃v1 ∃v2 … φ`.
    pub fn exists_many(vs: impl IntoIterator<Item = Var>, f: Formula) -> Formula {
        let vs: Vec<Var> = vs.into_iter().collect();
        vs.into_iter()
            .rev()
            .fold(f, |acc, v| Formula::Exists(v, Rc::new(acc)))
    }

    /// Convenience: binary atom `R(a, b)`.
    pub fn edge(rel: RelId, a: impl Into<LTerm>, b: impl Into<LTerm>) -> Formula {
        Formula::Atom(rel, vec![a.into(), b.into()])
    }

    /// The set of free variables.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        fn term(t: &LTerm, out: &mut BTreeSet<Var>) {
            if let LTerm::Var(v) = t {
                out.insert(*v);
            }
        }
        match self {
            Formula::True | Formula::False => BTreeSet::new(),
            Formula::Atom(_, ts) => {
                let mut out = BTreeSet::new();
                for t in ts {
                    term(t, &mut out);
                }
                out
            }
            Formula::Eq(a, b) | Formula::Neq(a, b) => {
                let mut out = BTreeSet::new();
                term(a, &mut out);
                term(b, &mut out);
                out
            }
            Formula::Not(f) => f.free_vars(),
            Formula::And(fs) | Formula::Or(fs) => {
                let mut out = BTreeSet::new();
                for f in fs {
                    out.extend(f.free_vars());
                }
                out
            }
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                let mut out = f.free_vars();
                out.remove(v);
                out
            }
        }
    }

    /// All distinct variables occurring (free or bound) — the quantity the
    /// `L^k` hierarchy counts.
    pub fn all_vars(&self) -> BTreeSet<Var> {
        fn walk(f: &Formula, out: &mut BTreeSet<Var>, seen: &mut BTreeSet<*const Formula>) {
            // DAG-aware: visit each shared node once.
            let ptr = f as *const Formula;
            if !seen.insert(ptr) {
                return;
            }
            let mut term = |t: &LTerm| {
                if let LTerm::Var(v) = t {
                    out.insert(*v);
                }
            };
            match f {
                Formula::True | Formula::False => {}
                Formula::Atom(_, ts) => ts.iter().for_each(term),
                Formula::Eq(a, b) | Formula::Neq(a, b) => {
                    term(a);
                    term(b);
                }
                Formula::Not(g) => walk(g, out, seen),
                Formula::And(fs) | Formula::Or(fs) => {
                    for g in fs {
                        walk(g, out, seen);
                    }
                }
                Formula::Exists(v, g) | Formula::Forall(v, g) => {
                    out.insert(*v);
                    walk(g, out, seen);
                }
            }
        }
        let mut out = BTreeSet::new();
        let mut seen = BTreeSet::new();
        walk(self, &mut out, &mut seen);
        out
    }

    /// The number of distinct variables: the least `k` with `φ ∈ L^k_{∞ω}`
    /// (assuming variables are densely numbered; otherwise use
    /// `all_vars().len()` semantics, which this returns).
    pub fn width(&self) -> usize {
        self.all_vars().len()
    }

    /// Whether the formula lies in the existential negation-free fragment
    /// `L^k` of Definition 3.5 (no `¬`, no `∀`).
    pub fn is_existential_positive(&self) -> bool {
        fn walk(f: &Formula, seen: &mut BTreeSet<*const Formula>) -> bool {
            if !seen.insert(f as *const Formula) {
                return true;
            }
            match f {
                Formula::Not(_) | Formula::Forall(_, _) => false,
                Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|g| walk(g, seen)),
                Formula::Exists(_, g) => walk(g, seen),
                _ => true,
            }
        }
        walk(self, &mut BTreeSet::new())
    }

    /// Whether the formula avoids `≠` (the Datalog fragment of Theorem 3.6's
    /// second claim).
    pub fn is_inequality_free(&self) -> bool {
        fn walk(f: &Formula, seen: &mut BTreeSet<*const Formula>) -> bool {
            if !seen.insert(f as *const Formula) {
                return true;
            }
            match f {
                Formula::Neq(_, _) => false,
                Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => walk(g, seen),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|g| walk(g, seen)),
                _ => true,
            }
        }
        walk(self, &mut BTreeSet::new())
    }

    /// DAG node count (shared nodes counted once) — the honest size measure
    /// for stage formulas.
    pub fn dag_size(&self) -> usize {
        fn walk(f: &Formula, seen: &mut BTreeSet<*const Formula>) -> usize {
            if !seen.insert(f as *const Formula) {
                return 0;
            }
            1 + match f {
                Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => walk(g, seen),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().map(|g| walk(g, seen)).sum(),
                _ => 0,
            }
        }
        walk(self, &mut BTreeSet::new())
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn term(t: &LTerm, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match t {
                LTerm::Var(v) => write!(f, "v{}", v.0),
                LTerm::Const(c) => write!(f, "c{}", c.0),
            }
        }
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Atom(r, ts) => {
                write!(f, "R{}(", r.0)?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    term(t, f)?;
                }
                write!(f, ")")
            }
            Formula::Eq(a, b) => {
                term(a, f)?;
                write!(f, "=")?;
                term(b, f)
            }
            Formula::Neq(a, b) => {
                term(a, f)?;
                write!(f, "≠")?;
                term(b, f)
            }
            Formula::Not(g) => write!(f, "¬({g})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Exists(v, g) => write!(f, "∃v{} ({g})", v.0),
            Formula::Forall(v, g) => write!(f, "∀v{} ({g})", v.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_structures::RelId;

    const E: RelId = RelId(0);

    #[test]
    fn free_vs_all_vars() {
        // ∃v2 (E(v0, v2) ∧ E(v2, v1))
        let f = Formula::exists(
            Var(2),
            Formula::and([
                Formula::edge(E, Var(0), Var(2)),
                Formula::edge(E, Var(2), Var(1)),
            ]),
        );
        assert_eq!(f.free_vars(), BTreeSet::from([Var(0), Var(1)]));
        assert_eq!(f.all_vars(), BTreeSet::from([Var(0), Var(1), Var(2)]));
        assert_eq!(f.width(), 3);
    }

    #[test]
    fn variable_reuse_keeps_width_small() {
        // ∃v1 (E(v0, v1) ∧ ∃v0 (v0 = v1 ∧ E(v0, v0))) : width 2.
        let inner = Formula::exists(
            Var(0),
            Formula::and([
                Formula::Eq(Var(0).into(), Var(1).into()),
                Formula::edge(E, Var(0), Var(0)),
            ]),
        );
        let f = Formula::exists(
            Var(1),
            Formula::and([Formula::edge(E, Var(0), Var(1)), inner]),
        );
        assert_eq!(f.width(), 2);
    }

    #[test]
    fn fragment_classification() {
        let pos = Formula::exists(Var(0), Formula::edge(E, Var(0), Var(0)));
        assert!(pos.is_existential_positive());
        assert!(pos.is_inequality_free());
        let with_neq = Formula::and([pos.clone(), Formula::Neq(Var(0).into(), Var(1).into())]);
        assert!(with_neq.is_existential_positive());
        assert!(!with_neq.is_inequality_free());
        let neg = Formula::Not(Rc::new(pos.clone()));
        assert!(!neg.is_existential_positive());
        let univ = Formula::Forall(Var(0), Rc::new(Formula::True));
        assert!(!univ.is_existential_positive());
    }

    #[test]
    fn dag_size_counts_shared_once() {
        let shared = Rc::new(Formula::edge(E, Var(0), Var(1)));
        let f = Formula::And(vec![
            Rc::clone(&shared),
            Rc::clone(&shared),
            Rc::new(Formula::Or(vec![Rc::clone(&shared)])),
        ]);
        // Nodes: And, Or, shared-atom = 3.
        assert_eq!(f.dag_size(), 3);
    }

    #[test]
    fn display_is_readable() {
        let f = Formula::exists(Var(1), Formula::edge(E, Var(0), Var(1)));
        assert_eq!(f.to_string(), "∃v1 (R0(v0,v1))");
    }
}
