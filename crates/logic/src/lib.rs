//! The infinitary logics with finitely many variables (Section 3).
//!
//! `L^k_{∞ω}` is first-order logic with at most `k` distinct variables,
//! closed under *infinitary* conjunctions and disjunctions; `L^k` is its
//! existential negation-free fragment (atoms, `=`, `≠`, `∧`, `∨`, `∃`), and
//! `L^ω = ⋃_k L^k` (Definition 3.5). Datalog(≠) ⊆ `L^ω` by Theorem 3.6.
//!
//! On a *fixed finite structure* every infinitary combination collapses to
//! a finite one (the paper's own stage argument: `Θ^∞ = Θ^{n₀}` for
//! `n₀ ≤ s^r`), so this crate represents:
//!
//! - concrete formulas ([`formula`]) with finite connectives, shared via
//!   [`std::rc::Rc`] so that the Theorem 3.6 stage formulas stay small as
//!   DAGs even when their tree expansion is exponential;
//! - *formula families* ([`family`]) — lazily generated sequences
//!   `φ_1, φ_2, …` standing for infinitary disjunctions `⋁_n φ_n`, with
//!   structure-dependent sufficient bounds;
//! - the paper's example formulas ([`builders`]): `p_n(x, y)` with three
//!   variables (Example 3.4) and `τ_n` / `ρ_n` with two variables on total
//!   orders (Example 3.3);
//! - the Theorem 3.6 translation ([`stage`]): stage formulas `φ^n`
//!   equivalent to the Datalog(≠) stages `Θ^n`, built with the
//!   variable-recycling substitution so the variable count never grows.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod builders;
pub mod eval;
pub mod family;
pub mod fixpoint;
pub mod formula;
pub mod materialize;
pub mod simplify;
pub mod stage;

pub use eval::{eval_closed, eval_with, Evaluator};
pub use family::FormulaFamily;
pub use fixpoint::{
    compute_lfp, fp_eval, program_to_lfp, resume_lfp, try_compute_lfp, try_fp_eval, FpEnv,
    FpFormula, LfpCheckpoint, LfpInterrupted, RelVar,
};
pub use formula::{Formula, LTerm, Var};
pub use materialize::{
    compare_stages_on_shared_store, resume_compare_stages, try_compare_stages_on_shared_store,
    CompareCheckpoint, CompareInterrupted, StageComparison, StageIdentityReport,
};
pub use simplify::{simplify, simplify_rc};
pub use stage::{stage_formula, StageTranslation};
