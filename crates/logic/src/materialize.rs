//! Stage identity on the shared store: Theorem 3.6, operationalized.
//!
//! Theorem 3.6 says every Datalog(≠) stage `Θ^n_i` is defined by an `L^k`
//! stage formula `φ^n_i`. Because the bottom-up engine materializes every
//! IDB into one append-only [`TupleStore`](kv_structures::TupleStore), the
//! stage `Θ^n_i` *is* the id prefix `[0, mark)` of that store — so the two
//! sides of the theorem can be compared **by tuple id** against the same
//! interned arena: evaluate `φ^n_i` on every candidate tuple, look the
//! tuple up with [`Relation::id_of`](kv_structures::Relation::id_of), and
//! check the satisfying set is exactly the id range of the stage view. No
//! tuples are re-boxed or re-hashed into a second representation.
//!
//! The experiment harness (E5) and the worked-example differential tests
//! use [`compare_stages_on_shared_store`] as the machine-checked form of
//! the theorem on concrete structures.

use crate::eval::Evaluator;
use crate::stage::StageTranslation;
use kv_datalog::{EvalOptions, Evaluator as DatalogEvaluator, IdbId, Program};
use kv_structures::govern::{Governor, Interrupted};
use kv_structures::{Element, Structure};
use std::fmt;

/// The two sides of Theorem 3.6 at one stage, per IDB predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageComparison {
    /// The (1-based) stage `n`.
    pub stage: usize,
    /// `|Θ^n_i|` per IDB `i`: tuples in the engine's stage view.
    pub datalog: Vec<usize>,
    /// Number of tuples satisfying the stage formula `φ^n_i`, per IDB.
    pub lk: Vec<usize>,
    /// Whether every satisfying tuple's interned id lies inside the stage
    /// view and the counts agree — id-set equality.
    pub identical: bool,
}

/// The result of comparing all stages of a program run against the
/// Theorem 3.6 stage formulas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageIdentityReport {
    /// Per-stage comparisons, stage 1 first.
    pub stages: Vec<StageComparison>,
    /// Whether every stage matched.
    pub identical: bool,
    /// The translation's variable budget (`2r + l` slots).
    pub var_budget: usize,
}

/// Resumable state of an interrupted [`try_compare_stages_on_shared_store`]:
/// the comparisons for every fully completed stage. A stage comparison is
/// a pure function of the (deterministic) evaluation result, so resuming
/// reproduces exactly what an uninterrupted run would report.
#[derive(Debug, Clone)]
pub struct CompareCheckpoint {
    stages: Vec<StageComparison>,
    identical: bool,
}

impl CompareCheckpoint {
    /// Fully compared stages so far.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The completed comparisons (partial progress).
    pub fn stages(&self) -> &[StageComparison] {
        &self.stages
    }
}

/// A governed stage-identity comparison was interrupted.
#[derive(Debug, Clone)]
pub struct CompareInterrupted {
    /// Why the comparison stopped.
    pub reason: Interrupted,
    /// Completed-stage state; pass to [`resume_compare_stages`].
    pub checkpoint: CompareCheckpoint,
}

impl fmt::Display for CompareInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} compared stage(s)",
            self.reason,
            self.checkpoint.stage_count()
        )
    }
}

impl std::error::Error for CompareInterrupted {}

/// Runs `program` on `s`, translates each stage to its `L^k` formula, and
/// checks id-set equality of `Θ^n_i` and `φ^n_i` on the engine's own
/// interned store, for every stage up to the fixpoint (or `max_stages`).
pub fn compare_stages_on_shared_store(
    program: &Program,
    s: &Structure,
    max_stages: Option<usize>,
) -> StageIdentityReport {
    match try_compare_stages_on_shared_store(program, s, max_stages, &Governor::unlimited()) {
        Ok(report) => report,
        Err(e) => unreachable!("unlimited governor interrupted: {e}"),
    }
}

/// Governed [`compare_stages_on_shared_store`]: the Datalog run itself is
/// governed, and the formula-side sweep charges one step per candidate
/// tuple with a full governor check per (stage, IDB) pair. Interrupts at
/// the last fully compared stage with a resumable [`CompareCheckpoint`].
pub fn try_compare_stages_on_shared_store(
    program: &Program,
    s: &Structure,
    max_stages: Option<usize>,
    gov: &Governor,
) -> Result<StageIdentityReport, CompareInterrupted> {
    run_compare_from(
        program,
        s,
        max_stages,
        gov,
        CompareCheckpoint {
            stages: Vec::new(),
            identical: true,
        },
    )
}

/// Resumes an interrupted governed comparison. `program`, `s`, and
/// `max_stages` must be those of the original call; the (deterministic)
/// Datalog evaluation is recomputed under the new governor, then
/// comparison picks up at the first unfinished stage.
pub fn resume_compare_stages(
    program: &Program,
    s: &Structure,
    max_stages: Option<usize>,
    checkpoint: CompareCheckpoint,
    gov: &Governor,
) -> Result<StageIdentityReport, CompareInterrupted> {
    run_compare_from(program, s, max_stages, gov, checkpoint)
}

fn run_compare_from(
    program: &Program,
    s: &Structure,
    max_stages: Option<usize>,
    gov: &Governor,
    cp: CompareCheckpoint,
) -> Result<StageIdentityReport, CompareInterrupted> {
    let CompareCheckpoint {
        mut stages,
        mut identical,
    } = cp;
    let options = EvalOptions {
        max_stages,
        ..EvalOptions::default()
    };
    let result = match DatalogEvaluator::new(program).try_run_governed(s, options, gov) {
        Ok(r) => r,
        Err(e) => {
            return Err(CompareInterrupted {
                reason: e.reason,
                checkpoint: CompareCheckpoint { stages, identical },
            })
        }
    };
    let mut translation = StageTranslation::new(program);
    let budget = translation.var_budget();
    let n_elems = s.universe_size() as Element;
    for n in (stages.len() + 1)..=result.stage_count() {
        match compare_one_stage(
            program,
            s,
            &result,
            &mut translation,
            budget,
            n_elems,
            n,
            gov,
        ) {
            Ok(c) => {
                identical &= c.identical;
                stages.push(c);
            }
            Err(reason) => {
                return Err(CompareInterrupted {
                    reason,
                    checkpoint: CompareCheckpoint { stages, identical },
                })
            }
        }
    }
    Ok(StageIdentityReport {
        stages,
        identical,
        var_budget: budget,
    })
}

#[allow(clippy::too_many_arguments)]
fn compare_one_stage(
    program: &Program,
    s: &Structure,
    result: &kv_datalog::EvalResult,
    translation: &mut StageTranslation,
    budget: usize,
    n_elems: Element,
    n: usize,
    gov: &Governor,
) -> Result<StageComparison, Interrupted> {
    {
        let mut datalog = Vec::with_capacity(program.idb_count());
        let mut lk = Vec::with_capacity(program.idb_count());
        let mut stage_ok = true;
        for i in 0..program.idb_count() {
            gov.check()?;
            let formula = translation.stage(n, IdbId(i));
            let arity = program.idb_arity(IdbId(i));
            let view = result.stage_view(n, i);
            let mut ev = Evaluator::new(s);
            let mut asg = vec![None; budget.max(1)];
            let mut satisfying = 0usize;
            let mut all_in_view = true;
            let mut tuple = vec![0 as Element; arity];
            loop {
                gov.step(1)?;
                for (q, &e) in tuple.iter().enumerate() {
                    asg[q] = Some(e);
                }
                for slot in asg.iter_mut().skip(arity) {
                    *slot = None;
                }
                if ev.eval(&formula, &mut asg) {
                    satisfying += 1;
                    // Id-set membership: the tuple must be interned in the
                    // final store with an id inside this stage's prefix.
                    let in_view = match result.idb[i].id_of(&tuple) {
                        Some(id) => view.id_range().contains(id),
                        None => false,
                    };
                    all_in_view &= in_view;
                }
                // Odometer over the tuple space.
                let mut pos = 0;
                while pos < arity {
                    tuple[pos] += 1;
                    if tuple[pos] < n_elems {
                        break;
                    }
                    tuple[pos] = 0;
                    pos += 1;
                }
                if pos == arity || arity == 0 {
                    break;
                }
            }
            datalog.push(view.len());
            lk.push(satisfying);
            stage_ok &= all_in_view && satisfying == view.len();
        }
        Ok(StageComparison {
            stage: n,
            datalog,
            lk,
            identical: stage_ok,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_datalog::programs::{avoiding_path, transitive_closure};
    use kv_structures::generators::{directed_path, random_digraph};

    #[test]
    fn tc_stages_are_id_identical() {
        let p = transitive_closure();
        let report = compare_stages_on_shared_store(&p, &directed_path(5), None);
        assert!(report.identical);
        assert_eq!(report.stages.len(), 4);
        // Per-stage counts on the path: cumulative distance-<=n pairs.
        assert_eq!(report.stages[0].datalog, vec![4]);
        assert_eq!(report.stages[0].lk, vec![4]);
        assert_eq!(report.stages[3].datalog, vec![10]);
    }

    #[test]
    fn avoiding_path_stages_are_id_identical() {
        let p = avoiding_path();
        let s = random_digraph(4, 0.3, 42).to_structure();
        let report = compare_stages_on_shared_store(&p, &s, Some(3));
        assert!(report.identical);
        for c in &report.stages {
            assert_eq!(c.datalog, c.lk);
        }
    }

    #[test]
    fn governed_compare_matches_plain() {
        let p = transitive_closure();
        let s = directed_path(5);
        let baseline = compare_stages_on_shared_store(&p, &s, None);
        let governed = try_compare_stages_on_shared_store(&p, &s, None, &Governor::unlimited())
            .expect("unlimited governor never interrupts");
        assert_eq!(governed, baseline);
    }

    #[test]
    fn interrupted_compare_resumes_identically() {
        let p = transitive_closure();
        let s = directed_path(5);
        let baseline = compare_stages_on_shared_store(&p, &s, None);
        for max_steps in [1u64, 9, 77, 500, 100_000] {
            let gov = kv_structures::govern::chaos::step_tripper(max_steps);
            match try_compare_stages_on_shared_store(&p, &s, None, &gov) {
                Ok(report) => assert_eq!(report, baseline, "budget {max_steps}"),
                Err(e) => {
                    assert!(matches!(e.reason, Interrupted::Limit(_)));
                    assert!(e.checkpoint.stage_count() <= baseline.stages.len());
                    let resumed =
                        resume_compare_stages(&p, &s, None, e.checkpoint, &Governor::unlimited())
                            .expect("unlimited resume completes");
                    assert_eq!(resumed, baseline, "budget {max_steps}");
                }
            }
        }
    }

    #[test]
    fn cancelled_compare_interrupts() {
        let p = transitive_closure();
        let gov = Governor::unlimited();
        gov.cancel_token().cancel();
        let err =
            try_compare_stages_on_shared_store(&p, &directed_path(4), None, &gov).unwrap_err();
        assert_eq!(err.reason, Interrupted::Cancelled);
        assert_eq!(err.checkpoint.stage_count(), 0);
    }
}
