//! Boolean simplification of formulas.
//!
//! Stage formulas accumulate structural noise (`⊥` leaves from stage 0,
//! single-element conjunctions from the bridging construction).
//! [`simplify`] performs sound constant folding and flattening without
//! changing the variable set semantics:
//!
//! - `∧` with a `⊥` conjunct → `⊥`; `⊤` conjuncts dropped; nested `∧`
//!   flattened; singleton unwrapped;
//! - dually for `∨`;
//! - `∃v ⊥ → ⊥`, `∃v ⊤ → ⊤` (universes are nonempty), `∀` dually;
//! - `¬⊤ → ⊥`, `¬⊥ → ⊤`, double negation removed;
//! - trivial `t = t` → `⊤`, `t ≠ t` → `⊥` (for identical terms).
//!
//! Shared nodes are simplified once (memoized on node identity), so the
//! result preserves the DAG-sharing that keeps stage formulas small.

use crate::formula::{Formula, LTerm};
use std::collections::HashMap;
use std::rc::Rc;

/// Simplifies a formula (see module docs). Equivalence is preserved on all
/// structures with nonempty universes — which is every [`kv_structures::Structure`]
/// this workspace builds (constants need interpretations).
pub fn simplify(f: &Formula) -> Formula {
    let mut memo: HashMap<*const Formula, Rc<Formula>> = HashMap::new();
    simplify_rc_inner(f, &mut memo)
}

/// Simplifies through an `Rc`, reusing shared results.
pub fn simplify_rc(f: &Rc<Formula>) -> Rc<Formula> {
    let mut memo: HashMap<*const Formula, Rc<Formula>> = HashMap::new();
    shared(f, &mut memo)
}

fn shared(f: &Rc<Formula>, memo: &mut HashMap<*const Formula, Rc<Formula>>) -> Rc<Formula> {
    let key = Rc::as_ptr(f);
    if let Some(done) = memo.get(&key) {
        return Rc::clone(done);
    }
    let result = Rc::new(simplify_rc_inner(f, memo));
    memo.insert(key, Rc::clone(&result));
    result
}

fn simplify_rc_inner(f: &Formula, memo: &mut HashMap<*const Formula, Rc<Formula>>) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom(_, _) => f.clone(),
        Formula::Eq(a, b) => {
            if trivially_same(a, b) {
                Formula::True
            } else {
                f.clone()
            }
        }
        Formula::Neq(a, b) => {
            if trivially_same(a, b) {
                Formula::False
            } else {
                f.clone()
            }
        }
        Formula::Not(g) => match &*shared(g, memo) as &Formula {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => (**inner).clone(),
            other => Formula::Not(Rc::new(other.clone())),
        },
        Formula::And(parts) => {
            let mut out: Vec<Rc<Formula>> = Vec::with_capacity(parts.len());
            for p in parts {
                let s = shared(p, memo);
                match &*s as &Formula {
                    Formula::True => {}
                    Formula::False => return Formula::False,
                    Formula::And(inner) => out.extend(inner.iter().cloned()),
                    _ => out.push(s),
                }
            }
            match out.len() {
                0 => Formula::True,
                1 => (*out[0]).clone(),
                _ => Formula::And(out),
            }
        }
        Formula::Or(parts) => {
            let mut out: Vec<Rc<Formula>> = Vec::with_capacity(parts.len());
            for p in parts {
                let s = shared(p, memo);
                match &*s as &Formula {
                    Formula::False => {}
                    Formula::True => return Formula::True,
                    Formula::Or(inner) => out.extend(inner.iter().cloned()),
                    _ => out.push(s),
                }
            }
            match out.len() {
                0 => Formula::False,
                1 => (*out[0]).clone(),
                _ => Formula::Or(out),
            }
        }
        Formula::Exists(v, g) => match &*shared(g, memo) as &Formula {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            other => Formula::Exists(*v, Rc::new(other.clone())),
        },
        Formula::Forall(v, g) => match &*shared(g, memo) as &Formula {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            other => Formula::Forall(*v, Rc::new(other.clone())),
        },
    }
}

fn trivially_same(a: &LTerm, b: &LTerm) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_with;
    use crate::formula::Var;
    use kv_structures::generators::random_digraph;
    use kv_structures::RelId;

    const E: RelId = RelId(0);

    #[test]
    fn constant_folding() {
        let f = Formula::and([
            Formula::True,
            Formula::edge(E, Var(0), Var(1)),
            Formula::or([Formula::False, Formula::True]),
        ]);
        assert_eq!(simplify(&f), Formula::edge(E, Var(0), Var(1)));
        let g = Formula::and([Formula::edge(E, Var(0), Var(1)), Formula::False]);
        assert_eq!(simplify(&g), Formula::False);
    }

    #[test]
    fn quantifier_folding() {
        let f = Formula::exists(Var(0), Formula::False);
        assert_eq!(simplify(&f), Formula::False);
        let g = Formula::exists(Var(0), Formula::True);
        assert_eq!(simplify(&g), Formula::True);
    }

    #[test]
    fn trivial_equalities() {
        assert_eq!(
            simplify(&Formula::Eq(Var(3).into(), Var(3).into())),
            Formula::True
        );
        assert_eq!(
            simplify(&Formula::Neq(Var(3).into(), Var(3).into())),
            Formula::False
        );
        // Distinct variables stay put (they may or may not coincide).
        assert_eq!(
            simplify(&Formula::Eq(Var(0).into(), Var(1).into())),
            Formula::Eq(Var(0).into(), Var(1).into())
        );
    }

    #[test]
    fn negation_folding() {
        let f = Formula::Not(Rc::new(Formula::Not(Rc::new(Formula::edge(
            E,
            Var(0),
            Var(0),
        )))));
        assert_eq!(simplify(&f), Formula::edge(E, Var(0), Var(0)));
    }

    #[test]
    fn flattening_nested_connectives() {
        let inner = Formula::and([
            Formula::edge(E, Var(0), Var(1)),
            Formula::edge(E, Var(1), Var(0)),
        ]);
        let f = Formula::and([inner, Formula::edge(E, Var(0), Var(0))]);
        match simplify(&f) {
            Formula::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flat And, got {other}"),
        }
    }

    #[test]
    fn simplification_preserves_semantics_on_stage_formulas() {
        use crate::stage::StageTranslation;
        use kv_datalog::programs::avoiding_path;
        let program = avoiding_path();
        let s = random_digraph(5, 0.3, 42).to_structure();
        let mut t = StageTranslation::new(&program);
        for n in 1..=4 {
            let f = t.stage(n, program.goal());
            let simplified = simplify_rc(&f);
            assert!(simplified.dag_size() <= f.dag_size());
            for a in 0..5u32 {
                for b in 0..5u32 {
                    for w in 0..5u32 {
                        let asg = [Some(a), Some(b), Some(w)];
                        assert_eq!(
                            eval_with(&f, &s, &asg),
                            eval_with(&simplified, &s, &asg),
                            "stage {n}, ({a},{b},{w})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stage_zero_shrinks_dramatically() {
        use crate::stage::stage_formula;
        use kv_datalog::programs::transitive_closure;
        let program = transitive_closure();
        let f1 = stage_formula(&program, program.goal(), 1);
        let s1 = simplify_rc(&f1);
        // Stage 1 contains a ⊥ branch from the recursive rule; it folds
        // away entirely.
        assert!(s1.dag_size() < f1.dag_size());
    }
}
