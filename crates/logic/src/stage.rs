//! Theorem 3.6: every Datalog(≠) stage `Θ^n` is definable by an existential
//! negation-free first-order formula with a **fixed** number of variables.
//!
//! The translation follows the paper's proof. Variables are drawn from
//! three disjoint slot pools that never grow with `n`:
//!
//! - `w`-slots `0 … R-1` — the canonical head variables (`R` = max IDB
//!   arity);
//! - `y`-slots `R … 2R-1` — the fresh bridge variables of the proof's
//!   substitution trick;
//! - rule slots `2R … 2R+L-1` — the body variables of each rule (`L` = max
//!   variables in any rule).
//!
//! Each rule of head predicate `S_i` contributes the disjunct
//!
//! ```text
//! ∃(rule vars) [ ⋀_p (w_p = head-term_p) ∧ body ]
//! ```
//!
//! and each IDB atom `S_j(t⃗)` in a body is replaced, at stage `n+1`, by the
//! bridge
//!
//! ```text
//! ∃y_1…y_r ( ⋀_q y_q = t_q ∧ ∃w_1…w_r ( ⋀_q w_q = y_q ∧ φ_j^n(w⃗) ) )
//! ```
//!
//! where `φ_j^n` is **shared** (an [`Rc`] node), so stage formulas are
//! polynomial-sized DAGs. If the program is pure Datalog the result is
//! inequality-free, giving the theorem's second claim.

use crate::formula::{Formula, LTerm, Var};
use kv_datalog::{IdbId, Literal, Pred, Program, Term};
use std::rc::Rc;

/// The stage-formula translation of a program.
pub struct StageTranslation<'p> {
    program: &'p Program,
    /// `stages[n][i]` = `φ_i^n`, the formula defining stage `n` of IDB `i`
    /// (free variables: `w`-slots `0 … arity_i - 1`). `stages[0]` is the
    /// empty-relation formula `⊥`.
    stages: Vec<Vec<Rc<Formula>>>,
    /// Max IDB arity `R`.
    r: usize,
    /// Max rule variable count `L`.
    l: usize,
}

impl<'p> StageTranslation<'p> {
    /// Initializes the translation at stage 0 (`Θ^0 = ∅`).
    pub fn new(program: &'p Program) -> Self {
        let r = (0..program.idb_count())
            .map(|i| program.idb_arity(IdbId(i)))
            .max()
            .unwrap_or(0);
        let l = program.max_rule_vars();
        let stage0: Vec<Rc<Formula>> = (0..program.idb_count())
            .map(|_| Rc::new(Formula::False))
            .collect();
        Self {
            program,
            stages: vec![stage0],
            r,
            l,
        }
    }

    /// The fixed variable budget: stage formulas only ever use variable
    /// indices `< var_budget()`, independent of the stage (Theorem 3.6's
    /// point).
    pub fn var_budget(&self) -> usize {
        2 * self.r + self.l
    }

    /// Number of stages computed so far (`highest n` with `φ^n` available).
    pub fn computed_stages(&self) -> usize {
        self.stages.len() - 1
    }

    fn w_slot(&self, q: usize) -> Var {
        Var(q)
    }

    fn y_slot(&self, q: usize) -> Var {
        Var(self.r + q)
    }

    fn rule_slot(&self, v: usize) -> Var {
        Var(2 * self.r + v)
    }

    fn term_to_lterm(&self, t: &Term) -> LTerm {
        match t {
            Term::Var(v) => LTerm::Var(self.rule_slot(v.0)),
            Term::Const(c) => LTerm::Const(*c),
        }
    }

    /// Computes `φ^{n+1}` from `φ^n` for every IDB.
    pub fn advance(&mut self) {
        // Infallible: the constructor pushes stage 0.
        #[allow(clippy::expect_used)]
        let prev = self.stages.last().expect("stage 0 exists").clone();
        let mut next = Vec::with_capacity(self.program.idb_count());
        for i in 0..self.program.idb_count() {
            next.push(Rc::new(self.idb_stage_formula(IdbId(i), &prev)));
        }
        self.stages.push(next);
    }

    /// Ensures at least `n` stages are computed and returns `φ_idb^n`.
    pub fn stage(&mut self, n: usize, idb: IdbId) -> Rc<Formula> {
        while self.computed_stages() < n {
            self.advance();
        }
        Rc::clone(&self.stages[n][idb.0])
    }

    /// Builds `φ_i` at the next stage, substituting `prev` for IDB atoms.
    fn idb_stage_formula(&self, idb: IdbId, prev: &[Rc<Formula>]) -> Formula {
        let mut disjuncts = Vec::new();
        for rule in self.program.rules() {
            if rule.head != idb {
                continue;
            }
            let mut conjuncts: Vec<Formula> = Vec::new();
            // Head bridging: w_p = head-term_p.
            for (p, t) in rule.head_args.iter().enumerate() {
                conjuncts.push(Formula::Eq(self.w_slot(p).into(), self.term_to_lterm(t)));
            }
            // Body.
            for lit in &rule.body {
                conjuncts.push(match lit {
                    Literal::Atom(Pred::Edb(rel), args) => {
                        Formula::Atom(*rel, args.iter().map(|t| self.term_to_lterm(t)).collect())
                    }
                    Literal::Atom(Pred::Idb(j), args) => self.bridge(*j, args, prev),
                    Literal::Eq(a, b) => Formula::Eq(self.term_to_lterm(a), self.term_to_lterm(b)),
                    Literal::Neq(a, b) => {
                        Formula::Neq(self.term_to_lterm(a), self.term_to_lterm(b))
                    }
                });
            }
            // Quantify the rule variables.
            let body = Formula::and(conjuncts);
            let rule_vars = (0..rule.var_count()).map(|v| self.rule_slot(v));
            disjuncts.push(Formula::exists_many(rule_vars, body));
        }
        Formula::or(disjuncts)
    }

    /// The paper's substitution trick for an IDB atom `S_j(t⃗)`.
    fn bridge(&self, j: IdbId, args: &[Term], prev: &[Rc<Formula>]) -> Formula {
        let arity = self.program.idb_arity(j);
        debug_assert_eq!(args.len(), arity);
        // ∃w⃗ (⋀ w_q = y_q ∧ φ_j^n)
        let mut inner: Vec<Rc<Formula>> = Vec::with_capacity(arity + 1);
        for q in 0..arity {
            inner.push(Rc::new(Formula::Eq(
                self.w_slot(q).into(),
                self.y_slot(q).into(),
            )));
        }
        inner.push(Rc::clone(&prev[j.0]));
        let mut inner_f = Formula::And(inner);
        for q in (0..arity).rev() {
            inner_f = Formula::Exists(self.w_slot(q), Rc::new(inner_f));
        }
        // ∃y⃗ (⋀ y_q = t_q ∧ inner)
        let mut outer: Vec<Formula> = Vec::with_capacity(arity + 1);
        for (q, t) in args.iter().enumerate() {
            outer.push(Formula::Eq(self.y_slot(q).into(), self.term_to_lterm(t)));
        }
        outer.push(inner_f);
        Formula::exists_many((0..arity).map(|q| self.y_slot(q)), Formula::and(outer))
    }
}

/// Convenience: the stage-`n` formula of `program`'s IDB `idb`.
pub fn stage_formula(program: &Program, idb: IdbId, n: usize) -> Rc<Formula> {
    StageTranslation::new(program).stage(n, idb)
}

/// Convenience: the formula for `π^∞` restricted to the goal predicate, on
/// structures of at most `universe` elements: the finite disjunction
/// `⋁_{n ≤ bound} φ^n` where `bound = universe^r` bounds the closure
/// ordinal (Section 2: `n₀ ≤ s^r`). In practice far fewer stages are
/// needed; use [`StageTranslation`] directly to track convergence.
pub fn fixpoint_formula_bound(program: &Program, universe: usize) -> usize {
    let r_total: usize = (0..program.idb_count())
        .map(|i| {
            universe
                .checked_pow(program.idb_arity(IdbId(i)) as u32)
                .unwrap_or(usize::MAX / 4)
        })
        .fold(0usize, |a, b| a.saturating_add(b));
    r_total.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use kv_datalog::programs::{avoiding_path, q_kl, transitive_closure};
    use kv_datalog::{EvalOptions, Evaluator as DatalogEvaluator};
    use kv_structures::generators::{directed_path, random_digraph};
    use kv_structures::{Element, Structure};

    /// Checks that φ^n defines Θ^n exactly, for every stage until the
    /// fixpoint, on the given structure.
    fn assert_stages_match(program: &Program, s: &Structure) {
        let result = DatalogEvaluator::new(program).run(s, EvalOptions::default());
        let mut translation = StageTranslation::new(program);
        let budget = translation.var_budget();
        let n_elems = s.universe_size() as Element;
        for stage_idx in 0..result.stage_count() {
            let n = stage_idx + 1;
            #[allow(clippy::needless_range_loop)]
            for i in 0..program.idb_count() {
                let formula = translation.stage(n, IdbId(i));
                assert!(
                    formula.all_vars().iter().all(|v| v.0 < budget),
                    "stage {n} exceeds variable budget"
                );
                let arity = program.idb_arity(IdbId(i));
                let mut ev = Evaluator::new(s);
                let mut asg = vec![None; budget.max(1)];
                for tuple in all_tuples(arity, n_elems) {
                    for (q, &e) in tuple.iter().enumerate() {
                        asg[q] = Some(e);
                    }
                    let by_formula = ev.eval(&formula, &mut asg);
                    let by_stages = result.stage_view(n, i).contains(&tuple);
                    assert_eq!(by_formula, by_stages, "stage {n}, IDB {i}, tuple {tuple:?}");
                }
            }
        }
    }

    /// All tuples of the given arity over `0..n`.
    fn all_tuples(arity: usize, n: Element) -> Vec<Vec<Element>> {
        let mut out: Vec<Vec<Element>> = vec![Vec::new()];
        for _ in 0..arity {
            out = out
                .into_iter()
                .flat_map(|t| {
                    (0..n).map(move |e| {
                        let mut t2 = t.clone();
                        t2.push(e);
                        t2
                    })
                })
                .collect();
        }
        out
    }

    #[test]
    fn tc_stage_formulas_match_stages() {
        let p = transitive_closure();
        assert_stages_match(&p, &directed_path(5));
        assert_stages_match(&p, &random_digraph(6, 0.25, 1).to_structure());
    }

    #[test]
    fn tc_stage_formulas_are_inequality_free_datalog() {
        // Theorem 3.6, second claim: Datalog ⇒ inequality-free L formulas.
        let p = transitive_closure();
        let f = stage_formula(&p, IdbId(0), 4);
        assert!(f.is_existential_positive());
        assert!(f.is_inequality_free());
    }

    #[test]
    fn avoiding_path_stage_formulas_match_and_use_inequalities() {
        let p = avoiding_path();
        let s = random_digraph(5, 0.3, 2).to_structure();
        assert_stages_match(&p, &s);
        let f = stage_formula(&p, IdbId(0), 3);
        assert!(f.is_existential_positive());
        assert!(!f.is_inequality_free());
    }

    #[test]
    fn multi_idb_program_stages_match() {
        // Q_{2,0} has two mutually layered IDBs.
        let p = q_kl(2, 0);
        let s = random_digraph(4, 0.4, 3).to_structure();
        assert_stages_match(&p, &s);
    }

    #[test]
    fn variable_budget_constant_across_stages() {
        let p = transitive_closure();
        let mut t = StageTranslation::new(&p);
        let budget = t.var_budget();
        let mut widths = Vec::new();
        for n in 1..6 {
            let f = t.stage(n, IdbId(0));
            widths.push(f.all_vars().len());
            assert!(f.all_vars().iter().all(|v| v.0 < budget));
        }
        // Width stabilizes (does not grow with n).
        assert_eq!(widths[2], widths[4]);
    }

    #[test]
    fn stage_formula_dag_size_grows_linearly() {
        let p = transitive_closure();
        let mut t = StageTranslation::new(&p);
        let s3 = t.stage(3, IdbId(0)).dag_size();
        let s6 = t.stage(6, IdbId(0)).dag_size();
        // Sharing keeps growth additive per stage, not multiplicative.
        let per_stage = (s6 - s3) / 3;
        assert!(per_stage <= s3, "growth should be linear-ish: {s3} -> {s6}");
    }

    #[test]
    fn fixpoint_bound_is_generous() {
        let p = transitive_closure();
        assert!(fixpoint_formula_bound(&p, 4) >= 16);
    }
}
