//! Property-based tests for the logic layer.

use kv_datalog::programs::{avoiding_path, transitive_closure};
use kv_datalog::{EvalOptions, Evaluator};
use kv_logic::builders::path_formula;
use kv_logic::eval::{eval_with, Evaluator as LogicEvaluator};
use kv_logic::formula::{Formula, Var};
use kv_logic::stage::StageTranslation;
use kv_structures::{Digraph, Element, RelId};
use proptest::prelude::*;

fn digraph_strategy(max_n: usize) -> impl Strategy<Value = Digraph> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=(n * n / 2).min(12)).prop_map(
            move |edges| {
                let mut g = Digraph::new(n);
                for (u, v) in edges {
                    g.add_edge(u, v);
                }
                g
            },
        )
    })
}

/// Walks of length exactly n between two nodes, by dynamic programming.
fn has_walk_of_length(g: &Digraph, from: u32, to: u32, n: usize) -> bool {
    let mut current = vec![false; g.node_count()];
    current[from as usize] = true;
    for _ in 0..n {
        let mut next = vec![false; g.node_count()];
        for v in g.nodes() {
            if current[v as usize] {
                for &w in g.successors(v) {
                    next[w as usize] = true;
                }
            }
        }
        current = next;
    }
    current[to as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// p_n (3-variable form) agrees with the walk DP for every pair.
    #[test]
    fn path_formula_equals_walk_dp(g in digraph_strategy(5), n in 1usize..6) {
        let s = g.to_structure();
        let f = path_formula(RelId(0), n);
        prop_assert!(f.width() <= 3);
        for a in 0..s.universe_size() as u32 {
            for b in 0..s.universe_size() as u32 {
                prop_assert_eq!(
                    eval_with(&f, &s, &[Some(a), Some(b)]),
                    has_walk_of_length(&g, a, b, n),
                    "p_{}({}, {})", n, a, b
                );
            }
        }
    }

    /// Memoized evaluation agrees with itself across evaluator reuse.
    #[test]
    fn memoization_is_transparent(g in digraph_strategy(5)) {
        let s = g.to_structure();
        let f = path_formula(RelId(0), 4);
        let mut shared = LogicEvaluator::new(&s);
        for a in 0..s.universe_size() as u32 {
            for b in 0..s.universe_size() as u32 {
                let mut asg = vec![Some(a), Some(b), None];
                let with_shared = shared.eval(&f, &mut asg);
                let fresh = eval_with(&f, &s, &[Some(a), Some(b)]);
                prop_assert_eq!(with_shared, fresh);
            }
        }
    }

    /// Theorem 3.6 on random graphs: stage formulas define the stages (TC,
    /// first three stages — the deep exhaustive check lives in unit tests).
    #[test]
    fn stage_formula_matches_stages(g in digraph_strategy(4)) {
        let s = g.to_structure();
        for program in [transitive_closure(), avoiding_path()] {
            let result = Evaluator::new(&program).run(
                &s,
                EvalOptions { semi_naive: true, record_stages: true, max_stages: Some(3) },
            );
            let mut translation = StageTranslation::new(&program);
            let goal = program.goal();
            let arity = program.idb_arity(goal);
            for (idx, snapshot) in result.stages.iter().enumerate() {
                let formula = translation.stage(idx + 1, goal);
                let mut ev = LogicEvaluator::new(&s);
                let budget = translation.var_budget();
                // Enumerate all tuples.
                let n = s.universe_size() as Element;
                let mut tuple = vec![0 as Element; arity];
                loop {
                    let mut asg = vec![None; budget.max(1)];
                    for (q, &e) in tuple.iter().enumerate() {
                        asg[q] = Some(e);
                    }
                    prop_assert_eq!(
                        ev.eval(&formula, &mut asg),
                        snapshot[goal.0].contains(tuple.as_slice()),
                        "stage {} tuple {:?}", idx + 1, tuple
                    );
                    // Odometer.
                    let mut pos = 0;
                    while pos < arity {
                        tuple[pos] += 1;
                        if tuple[pos] < n {
                            break;
                        }
                        tuple[pos] = 0;
                        pos += 1;
                    }
                    if pos == arity {
                        break;
                    }
                }
            }
        }
    }

    /// Width accounting: exists_many over fresh variables adds exactly
    /// those variables.
    #[test]
    fn width_accounting(extra in 1usize..5) {
        let base = Formula::edge(RelId(0), Var(0), Var(1));
        let f = Formula::exists_many((2..2 + extra).map(Var), base);
        prop_assert_eq!(f.width(), 2 + extra);
        prop_assert_eq!(f.free_vars().len(), 2);
    }
}
