//! Randomized tests for the logic layer, seed-deterministic via the
//! in-tree [`SplitMix64`] generator.

use kv_datalog::programs::{avoiding_path, transitive_closure};
use kv_datalog::{EvalOptions, Evaluator};
use kv_logic::builders::path_formula;
use kv_logic::eval::{eval_with, Evaluator as LogicEvaluator};
use kv_logic::formula::{Formula, Var};
use kv_logic::stage::StageTranslation;
use kv_structures::rng::SplitMix64;
use kv_structures::{Digraph, Element, RelId};

fn random_case_digraph(min_n: usize, max_n: usize, rng: &mut SplitMix64) -> Digraph {
    let n = rng.gen_range(min_n..max_n + 1);
    let mut g = Digraph::new(n);
    let edges = rng.gen_range(0usize..(n * n / 2).min(12) + 1);
    for _ in 0..edges {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        g.add_edge(u, v);
    }
    g
}

/// Walks of length exactly n between two nodes, by dynamic programming.
fn has_walk_of_length(g: &Digraph, from: u32, to: u32, n: usize) -> bool {
    let mut current = vec![false; g.node_count()];
    current[from as usize] = true;
    for _ in 0..n {
        let mut next = vec![false; g.node_count()];
        for v in g.nodes() {
            if current[v as usize] {
                for &w in g.successors(v) {
                    next[w as usize] = true;
                }
            }
        }
        current = next;
    }
    current[to as usize]
}

/// p_n (3-variable form) agrees with the walk DP for every pair.
#[test]
fn path_formula_equals_walk_dp() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let g = random_case_digraph(2, 5, &mut rng);
        let n = rng.gen_range(1usize..6);
        let s = g.to_structure();
        let f = path_formula(RelId(0), n);
        assert!(f.width() <= 3);
        for a in 0..s.universe_size() as u32 {
            for b in 0..s.universe_size() as u32 {
                assert_eq!(
                    eval_with(&f, &s, &[Some(a), Some(b)]),
                    has_walk_of_length(&g, a, b, n),
                    "seed {seed}: p_{n}({a}, {b})"
                );
            }
        }
    }
}

/// Memoized evaluation agrees with itself across evaluator reuse.
#[test]
fn memoization_is_transparent() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(1000 + seed);
        let g = random_case_digraph(2, 5, &mut rng);
        let s = g.to_structure();
        let f = path_formula(RelId(0), 4);
        let mut shared = LogicEvaluator::new(&s);
        for a in 0..s.universe_size() as u32 {
            for b in 0..s.universe_size() as u32 {
                let mut asg = vec![Some(a), Some(b), None];
                let with_shared = shared.eval(&f, &mut asg);
                let fresh = eval_with(&f, &s, &[Some(a), Some(b)]);
                assert_eq!(with_shared, fresh, "seed {seed}: ({a}, {b})");
            }
        }
    }
}

/// Theorem 3.6 on random graphs: stage formulas define the stages (TC,
/// first three stages — the deep exhaustive check lives in unit tests).
#[test]
fn stage_formula_matches_stages() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::seed_from_u64(2000 + seed);
        let g = random_case_digraph(2, 4, &mut rng);
        let s = g.to_structure();
        for program in [transitive_closure(), avoiding_path()] {
            let result = Evaluator::new(&program).run(
                &s,
                EvalOptions {
                    max_stages: Some(3),
                    ..EvalOptions::default()
                },
            );
            let mut translation = StageTranslation::new(&program);
            let goal = program.goal();
            let arity = program.idb_arity(goal);
            for idx in 0..result.stage_count() {
                let formula = translation.stage(idx + 1, goal);
                let mut ev = LogicEvaluator::new(&s);
                let budget = translation.var_budget();
                // Enumerate all tuples.
                let n = s.universe_size() as Element;
                let mut tuple = vec![0 as Element; arity];
                loop {
                    let mut asg = vec![None; budget.max(1)];
                    for (q, &e) in tuple.iter().enumerate() {
                        asg[q] = Some(e);
                    }
                    assert_eq!(
                        ev.eval(&formula, &mut asg),
                        result.stage_view(idx + 1, goal.0).contains(&tuple),
                        "seed {seed}: stage {} tuple {:?}",
                        idx + 1,
                        tuple
                    );
                    // Odometer.
                    let mut pos = 0;
                    while pos < arity {
                        tuple[pos] += 1;
                        if tuple[pos] < n {
                            break;
                        }
                        tuple[pos] = 0;
                        pos += 1;
                    }
                    if pos == arity {
                        break;
                    }
                }
            }
        }
    }
}

/// Width accounting: exists_many over fresh variables adds exactly
/// those variables.
#[test]
fn width_accounting() {
    for extra in 1usize..5 {
        let base = Formula::edge(RelId(0), Var(0), Var(1));
        let f = Formula::exists_many((2..2 + extra).map(Var), base);
        assert_eq!(f.width(), 2 + extra);
        assert_eq!(f.free_vars().len(), 2);
    }
}
