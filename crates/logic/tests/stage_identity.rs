//! Stage identity for the paper's worked examples: the Datalog(≠) stages
//! Θ^n and the Theorem 3.6 stage formulas φ^n are compared **by tuple id**
//! on the engine's own interned store ([`compare_stages_on_shared_store`])
//! — Examples 2.1 and 2.2 (Section 2) and the expressibility examples of
//! Section 3 (3.3-flavored total orders, the 3.4 bounded-variable family
//! via `Q_{k,l}`).

use kv_datalog::programs::{avoiding_path, q_kl, q_prime, transitive_closure};
use kv_logic::compare_stages_on_shared_store;
use kv_structures::generators::{directed_cycle, directed_path, random_digraph};
use kv_structures::{Digraph, Structure};

/// The strict total order on `n` elements as a graph-vocabulary structure
/// (`E` interpreted as `<`), so the Datalog programs apply directly.
fn total_order_graph(n: usize) -> Structure {
    let mut g = Digraph::new(n);
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            g.add_edge(i, j);
        }
    }
    g.to_structure()
}

/// Example 2.2: transitive closure, pure Datalog.
#[test]
fn example_2_2_transitive_closure() {
    let p = transitive_closure();
    for s in [
        directed_path(6),
        directed_cycle(5),
        random_digraph(5, 0.3, 220).to_structure(),
    ] {
        let report = compare_stages_on_shared_store(&p, &s, None);
        assert!(report.identical, "TC stages differ from φ^n");
        assert!(!report.stages.is_empty());
        for c in &report.stages {
            assert_eq!(c.datalog, c.lk, "stage {} counts", c.stage);
        }
    }
}

/// Example 2.1: the w-avoiding-path query, Datalog(≠) with inequalities
/// and an atom-unbound head variable.
#[test]
fn example_2_1_avoiding_path() {
    let p = avoiding_path();
    for s in [
        directed_path(4),
        random_digraph(4, 0.35, 221).to_structure(),
    ] {
        let report = compare_stages_on_shared_store(&p, &s, Some(4));
        assert!(report.identical, "avoiding-path stages differ from φ^n");
    }
}

/// Section 3.3 flavor: stages on total orders, where the paper's
/// two-variable formulas live.
#[test]
fn example_3_3_total_orders() {
    let p = transitive_closure();
    for n in [3usize, 5] {
        let report = compare_stages_on_shared_store(&p, &total_order_graph(n), None);
        assert!(report.identical, "total-order stages differ from φ^n");
        // On a total order, TC of < converges in O(log) stages but the
        // identity must hold at every one of them.
        for c in &report.stages {
            assert!(c.identical, "stage {}", c.stage);
        }
    }
}

/// Section 3.4 flavor: the bounded-variable family `Q_{k,l}` (and the
/// multi-IDB `Q'` of Example 3.1) — stage identity holds for every IDB
/// simultaneously.
#[test]
fn example_3_4_bounded_variable_programs() {
    for (label, p) in [
        ("q_prime", q_prime()),
        ("q_2_0", q_kl(2, 0)),
        ("q_2_1", q_kl(2, 1)),
    ] {
        let s = random_digraph(4, 0.3, 222).to_structure();
        let report = compare_stages_on_shared_store(&p, &s, Some(3));
        assert!(report.identical, "{label}: stages differ from φ^n");
    }
}
