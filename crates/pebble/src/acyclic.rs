//! The pebble games on **acyclic input graphs** behind Theorem 6.2.
//!
//! To each edge `e = (i, j)` of a fixed pattern graph `H` corresponds a
//! pebble `p_e`, initially on the distinguished node `s_i` of the input
//! graph `G`. Player I points at a pebble; Player II must move it along an
//! edge of `G` to a node carrying no other pebble and not distinguished —
//! except that moving `p_e` onto `s_j` removes the pebble. Player II wins
//! when every pebble is removed; whoever cannot move loses.
//!
//! The paper proves (for acyclic `G`): Player II has a winning strategy iff
//! `H` is homeomorphic to the distinguished subgraph of `G`. The
//! single-player (cooperative) variant is FHW's Lemma 4 game; the two
//! variants coincide on acyclic graphs — which is exactly what lets the
//! *cooperative* Datalog(≠) program of Theorem 6.2 capture the
//! *adversarial* game. Both solvers live here; their agreement is
//! experiment E13's backbone.
//!
//! The two-player game runs on the shared [`crate::arena`] with closure
//! under subpositions **off**: Player I cannot undo moves, the state graph
//! is acyclic (each move strictly decreases the pebbles' level sum), and
//! worklist deletion therefore coincides with backward induction. The
//! literal memoized recursion is retained as
//! [`AcyclicGame::solve_by_recursion`] and differential-tested.

use crate::arena::{Arena, ArenaCheckpoint, Child, GameSpec};
use crate::game::Winner;
use kv_graphalg::is_acyclic;
use kv_structures::govern::{Governor, Interrupted};
use kv_structures::Digraph;
use std::collections::HashMap;
use std::fmt;

/// A pattern graph `H`: nodes `0 … node_count-1`, directed edges, no
/// parallel edges, no isolated nodes required (isolated nodes are simply
/// ignored by the game).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSpec {
    /// Number of pattern nodes.
    pub node_count: usize,
    /// Directed edges `(tail, head)`.
    pub edges: Vec<(usize, usize)>,
}

impl PatternSpec {
    /// The pattern `H1`: two disjoint edges (nodes 0→1, 2→3).
    pub fn two_disjoint_edges() -> Self {
        Self {
            node_count: 4,
            edges: vec![(0, 1), (2, 3)],
        }
    }

    /// The pattern `H2`: a path of length 2 (0→1→2).
    pub fn path_length_two() -> Self {
        Self {
            node_count: 3,
            edges: vec![(0, 1), (1, 2)],
        }
    }

    /// The pattern `H3`: a 2-cycle (0→1, 1→0).
    pub fn two_cycle() -> Self {
        Self {
            node_count: 2,
            edges: vec![(0, 1), (1, 0)],
        }
    }

    /// Validation: edges in range, no self-loops (a pattern self-loop is
    /// handled at a higher level, per Theorem 6.1's special case), no
    /// duplicates.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_allow_self_loops()?;
        for &(i, j) in &self.edges {
            if i == j {
                return Err(format!("self-loop ({i},{j}) not supported by the game"));
            }
        }
        Ok(())
    }

    /// Validation accepting self-loops (used by the brute-force
    /// homeomorphism oracle, where a self-loop means "a simple cycle
    /// through the node").
    pub fn validate_allow_self_loops(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for &(i, j) in &self.edges {
            if i >= self.node_count || j >= self.node_count {
                return Err(format!("edge ({i},{j}) out of range"));
            }
            if !seen.insert((i, j)) {
                return Err(format!("duplicate edge ({i},{j})"));
            }
        }
        Ok(())
    }
}

/// Sentinel for a removed pebble.
const REMOVED: u32 = u32::MAX;

/// Legal destinations for pebble `e` in `state` (empty if removed or
/// stuck). A move to the pebble's target is encoded as [`REMOVED`].
fn legal_moves(
    pattern: &PatternSpec,
    graph: &Digraph,
    distinguished: &[u32],
    state: &[u32],
    e: usize,
) -> Vec<u32> {
    let u = state[e];
    if u == REMOVED {
        return Vec::new();
    }
    let (_, j) = pattern.edges[e];
    let target = distinguished[j];
    let mut out = Vec::new();
    for &v in graph.successors(u) {
        if v == target {
            out.push(REMOVED);
            continue;
        }
        if distinguished.contains(&v) {
            continue;
        }
        if state.contains(&v) {
            continue;
        }
        out.push(v);
    }
    out
}

/// The two-player acyclic game as a [`GameSpec`]: keys are pebble-location
/// vectors, challenges are pebble indices, replies are destinations.
struct AcyclicSpec<'g> {
    pattern: PatternSpec,
    graph: &'g Digraph,
    distinguished: Vec<u32>,
}

impl GameSpec for AcyclicSpec<'_> {
    type Key = Vec<u32>;
    type Challenge = usize;
    type Reply = u32;

    fn depth(&self) -> usize {
        // The state graph is finite and acyclic; expansion stops when the
        // frontier drains.
        usize::MAX
    }

    fn closure_under_subpositions(&self) -> bool {
        // Player I cannot undo a move: pure backward induction.
        false
    }

    fn expand(&self, state: &Vec<u32>, _level: usize) -> Vec<(usize, Vec<(u32, Child<Vec<u32>>)>)> {
        (0..state.len())
            .filter(|&e| state[e] != REMOVED)
            .map(|e| {
                let replies = legal_moves(&self.pattern, self.graph, &self.distinguished, state, e)
                    .into_iter()
                    .map(|v| {
                        let mut next = state.clone();
                        next[e] = v;
                        (v, Child::Key(next))
                    })
                    .collect();
                (e, replies)
            })
            .collect()
    }
}

/// Resumable state of an interrupted governed acyclic-game solve.
#[derive(Debug)]
pub struct AcyclicCheckpoint {
    arena: ArenaCheckpoint<Vec<u32>, usize, u32>,
}

impl AcyclicCheckpoint {
    /// Game states interned so far (partial progress).
    pub fn states(&self) -> usize {
        self.arena.positions()
    }
}

/// A governed acyclic-game solve was interrupted.
#[derive(Debug)]
pub struct AcyclicInterrupted {
    /// Why the solve stopped.
    pub reason: Interrupted,
    /// Committed state; pass to [`AcyclicGame::resume`].
    pub checkpoint: AcyclicCheckpoint,
}

impl fmt::Display for AcyclicInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} state(s)",
            self.reason,
            self.checkpoint.states()
        )
    }
}

impl std::error::Error for AcyclicInterrupted {}

/// A solved two-player pebble game instance on an acyclic graph.
#[derive(Debug)]
pub struct AcyclicGame<'g> {
    pattern: PatternSpec,
    graph: &'g Digraph,
    distinguished: Vec<u32>,
    arena: Arena<Vec<u32>, usize, u32>,
    initial: Vec<u32>,
}

impl<'g> AcyclicGame<'g> {
    fn validate_inputs(pattern: &PatternSpec, graph: &Digraph, distinguished: &[u32]) {
        // Documented input contract: the panic is the advertised behavior.
        #[allow(clippy::expect_used)]
        pattern.validate().expect("valid pattern");
        assert!(is_acyclic(graph), "Theorem 6.2 requires acyclic inputs");
        assert_eq!(
            distinguished.len(),
            pattern.node_count,
            "one distinguished node per pattern node"
        );
        let mut uniq = distinguished.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(
            uniq.len(),
            distinguished.len(),
            "distinguished nodes must be distinct"
        );
    }

    /// Solves the game by worklist deletion over the reachable state
    /// arena (equivalent to backward induction: the state graph is
    /// acyclic).
    ///
    /// # Panics
    /// Panics if the graph is cyclic, the pattern is invalid, or
    /// `distinguished` has the wrong length / duplicate nodes.
    pub fn solve(pattern: PatternSpec, graph: &'g Digraph, distinguished: &[u32]) -> Self {
        match Self::try_solve(pattern, graph, distinguished, &Governor::unlimited()) {
            Ok(game) => game,
            Err(e) => unreachable!("unlimited governor interrupted: {e}"),
        }
    }

    /// Governed [`solve`](Self::solve): honors the governor's budget,
    /// deadline, and cancellation token inside the state-space generation
    /// and the deletion worklist, interrupting at a committed boundary
    /// with a resumable [`AcyclicCheckpoint`].
    ///
    /// # Panics
    /// Same input-validation panics as [`solve`](Self::solve).
    pub fn try_solve(
        pattern: PatternSpec,
        graph: &'g Digraph,
        distinguished: &[u32],
        gov: &Governor,
    ) -> Result<Self, AcyclicInterrupted> {
        Self::validate_inputs(&pattern, graph, distinguished);
        let initial: Vec<u32> = pattern
            .edges
            .iter()
            .map(|&(i, _)| distinguished[i])
            .collect();
        let spec = AcyclicSpec {
            pattern,
            graph,
            distinguished: distinguished.to_vec(),
        };
        match Arena::try_build_and_solve(&spec, initial.clone(), gov) {
            Ok(arena) => Ok(Self {
                pattern: spec.pattern,
                graph,
                distinguished: spec.distinguished,
                arena,
                initial,
            }),
            Err(e) => Err(AcyclicInterrupted {
                reason: e.reason,
                checkpoint: AcyclicCheckpoint {
                    arena: e.checkpoint,
                },
            }),
        }
    }

    /// Demand-driven [`solve`](Self::solve) via the lazy arena solver:
    /// explores only the states needed to decide the initial position
    /// (one committed move per challenge, early exit once the verdict is
    /// known). The winner agrees exactly with the eager solve;
    /// [`state_count`](Self::state_count) reports the (smaller) explored
    /// subspace and is not comparable to an eager build.
    ///
    /// # Panics
    /// Same input-validation panics as [`solve`](Self::solve).
    pub fn solve_lazy(pattern: PatternSpec, graph: &'g Digraph, distinguished: &[u32]) -> Self {
        match Self::try_solve_lazy(pattern, graph, distinguished, &Governor::unlimited()) {
            Ok(game) => game,
            Err(e) => unreachable!("unlimited governor interrupted: {e}"),
        }
    }

    /// Governed [`solve_lazy`](Self::solve_lazy), interrupting at a
    /// committed boundary with a resumable [`AcyclicCheckpoint`] (resume
    /// with the ordinary [`resume`](Self::resume)).
    ///
    /// # Panics
    /// Same input-validation panics as [`solve`](Self::solve).
    pub fn try_solve_lazy(
        pattern: PatternSpec,
        graph: &'g Digraph,
        distinguished: &[u32],
        gov: &Governor,
    ) -> Result<Self, AcyclicInterrupted> {
        Self::validate_inputs(&pattern, graph, distinguished);
        let initial: Vec<u32> = pattern
            .edges
            .iter()
            .map(|&(i, _)| distinguished[i])
            .collect();
        let spec = AcyclicSpec {
            pattern,
            graph,
            distinguished: distinguished.to_vec(),
        };
        match Arena::try_lazy_solve(&spec, initial.clone(), gov) {
            Ok(arena) => Ok(Self {
                pattern: spec.pattern,
                graph,
                distinguished: spec.distinguished,
                arena,
                initial,
            }),
            Err(e) => Err(AcyclicInterrupted {
                reason: e.reason,
                checkpoint: AcyclicCheckpoint {
                    arena: e.checkpoint,
                },
            }),
        }
    }

    /// Resumes an interrupted governed solve (eager or lazy). `pattern`,
    /// `graph`, and `distinguished` must be those of the original call;
    /// pass a fresh or relaxed governor.
    pub fn resume(
        pattern: PatternSpec,
        graph: &'g Digraph,
        distinguished: &[u32],
        checkpoint: AcyclicCheckpoint,
        gov: &Governor,
    ) -> Result<Self, AcyclicInterrupted> {
        Self::validate_inputs(&pattern, graph, distinguished);
        let initial: Vec<u32> = pattern
            .edges
            .iter()
            .map(|&(i, _)| distinguished[i])
            .collect();
        let spec = AcyclicSpec {
            pattern,
            graph,
            distinguished: distinguished.to_vec(),
        };
        match Arena::resume_build(&spec, checkpoint.arena, gov) {
            Ok(arena) => Ok(Self {
                pattern: spec.pattern,
                graph,
                distinguished: spec.distinguished,
                arena,
                initial,
            }),
            Err(e) => Err(AcyclicInterrupted {
                reason: e.reason,
                checkpoint: AcyclicCheckpoint {
                    arena: e.checkpoint,
                },
            }),
        }
    }

    /// The paper's literal backward induction (memoized recursion),
    /// retained as the differential partner for [`solve`](Self::solve).
    /// Returns only the winner.
    pub fn solve_by_recursion(
        pattern: PatternSpec,
        graph: &Digraph,
        distinguished: &[u32],
    ) -> Winner {
        Self::validate_inputs(&pattern, graph, distinguished);
        let initial: Vec<u32> = pattern
            .edges
            .iter()
            .map(|&(i, _)| distinguished[i])
            .collect();
        let mut memo: HashMap<Vec<u32>, bool> = HashMap::new();

        fn win_ii(
            pattern: &PatternSpec,
            graph: &Digraph,
            distinguished: &[u32],
            memo: &mut HashMap<Vec<u32>, bool>,
            state: &[u32],
        ) -> bool {
            if state.iter().all(|&p| p == REMOVED) {
                return true; // Player I cannot point at anything.
            }
            if let Some(&v) = memo.get(state) {
                return v;
            }
            // Player I picks the pebble; Player II needs an answer for all.
            let mut result = true;
            for e in 0..state.len() {
                if state[e] == REMOVED {
                    continue;
                }
                let mut has_good_move = false;
                for v in legal_moves(pattern, graph, distinguished, state, e) {
                    let mut next = state.to_vec();
                    next[e] = v;
                    if win_ii(pattern, graph, distinguished, memo, &next) {
                        has_good_move = true;
                        break;
                    }
                }
                if !has_good_move {
                    result = false;
                    break;
                }
            }
            memo.insert(state.to_vec(), result);
            result
        }

        if win_ii(&pattern, graph, distinguished, &mut memo, &initial) {
            Winner::Duplicator
        } else {
            Winner::Spoiler
        }
    }

    /// The winner from the initial position.
    pub fn winner(&self) -> Winner {
        if self.arena.is_alive(0) {
            Winner::Duplicator
        } else {
            Winner::Spoiler
        }
    }

    /// Does Player II (the pebble mover) win?
    pub fn duplicator_wins(&self) -> bool {
        self.winner() == Winner::Duplicator
    }

    /// Number of reachable game states (benchmark metric).
    pub fn state_count(&self) -> usize {
        self.arena.len()
    }

    /// Number of move edges in the state arena (benchmark metric).
    pub fn edge_count(&self) -> usize {
        self.arena.edge_count()
    }

    fn moves(&self, state: &[u32], e: usize) -> Vec<u32> {
        legal_moves(&self.pattern, self.graph, &self.distinguished, state, e)
    }

    /// The **unconstrained** single-player (cooperative) variant: is there
    /// *any* sequence of moves removing all pebbles?
    ///
    /// This strictly overapproximates the two-player game: a pebble may
    /// sneak through a node another pebble *used to* occupy, which genuine
    /// node-disjoint paths forbid (see the `h1_with_shared_midpoint` test
    /// for the 5-node witness). FHW's Lemma 4 game needs the *max-level
    /// discipline* — see
    /// [`single_player_max_level`](Self::single_player_max_level) — to
    /// coincide with the two-player game and with homeomorphism.
    pub fn single_player_reachable(&self) -> bool {
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![self.initial.clone()];
        while let Some(state) = stack.pop() {
            if state.iter().all(|&p| p == REMOVED) {
                return true;
            }
            if !visited.insert(state.clone()) {
                continue;
            }
            for e in 0..state.len() {
                for v in self.moves(&state, e) {
                    let mut next = state.clone();
                    next[e] = v;
                    if !visited.contains(&next) {
                        stack.push(next);
                    }
                }
            }
        }
        false
    }

    /// FHW's Lemma 4 discipline: a cooperative play in which **every move
    /// advances a pebble of maximal level** (length of the longest path
    /// from its node; removed pebbles don't count). The paper's Theorem
    /// 6.2 argument shows this variant coincides with the two-player game
    /// and with the homeomorphism property on acyclic inputs: max-level
    /// trajectories cannot thread through each other's wakes.
    pub fn single_player_max_level(&self) -> bool {
        let level = kv_graphalg::levels(self.graph);
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![self.initial.clone()];
        while let Some(state) = stack.pop() {
            if state.iter().all(|&p| p == REMOVED) {
                return true;
            }
            if !visited.insert(state.clone()) {
                continue;
            }
            // Infallible: the all-REMOVED case returned above.
            #[allow(clippy::expect_used)]
            let max_level = state
                .iter()
                .filter(|&&p| p != REMOVED)
                .map(|&p| level[p as usize])
                .max()
                .expect("some pebble alive");
            for e in 0..state.len() {
                if state[e] == REMOVED || level[state[e] as usize] != max_level {
                    continue;
                }
                for v in self.moves(&state, e) {
                    let mut next = state.clone();
                    next[e] = v;
                    if !visited.contains(&next) {
                        stack.push(next);
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kv_structures::generators::random_dag;

    /// Two genuinely disjoint routes: II wins the H1 game.
    #[test]
    fn h1_on_disjoint_routes() {
        // s1=0 -> 4 -> 1=t1 ; s2=2 -> 5 -> 3=t2
        let mut g = Digraph::new(6);
        g.add_edge(0, 4);
        g.add_edge(4, 1);
        g.add_edge(2, 5);
        g.add_edge(5, 3);
        let game = AcyclicGame::solve(PatternSpec::two_disjoint_edges(), &g, &[0, 1, 2, 3]);
        assert!(game.duplicator_wins());
        assert!(game.single_player_reachable());
    }

    /// Routes forced through a shared midpoint: Player I wins the
    /// two-player game (and there is no homeomorphism), yet the
    /// *unconstrained* cooperative game sneaks through by moving pebble 1
    /// across node 4 only after pebble 0 has vacated it. This is the
    /// 5-node witness that the cooperative relaxation is strictly weaker —
    /// the max-level discipline restores the equivalence.
    #[test]
    fn h1_with_shared_midpoint() {
        // 0 -> 4 -> 1 and 2 -> 4 -> 3: both paths need node 4.
        let mut g = Digraph::new(5);
        g.add_edge(0, 4);
        g.add_edge(4, 1);
        g.add_edge(2, 4);
        g.add_edge(4, 3);
        let game = AcyclicGame::solve(PatternSpec::two_disjoint_edges(), &g, &[0, 1, 2, 3]);
        assert!(!game.duplicator_wins());
        assert!(!game.single_player_max_level());
        assert!(
            game.single_player_reachable(),
            "the unconstrained cooperative game overapproximates"
        );
    }

    /// Direct edges to the targets: instant removals.
    #[test]
    fn h1_direct_edges() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let game = AcyclicGame::solve(PatternSpec::two_disjoint_edges(), &g, &[0, 1, 2, 3]);
        assert!(game.duplicator_wins());
    }

    /// H2 (path of length 2) on a graph realizing it.
    #[test]
    fn h2_realizable() {
        // s1=0 -> 3 -> 1 (=middle), 1 -> 4 -> 2.
        let mut g = Digraph::new(5);
        g.add_edge(0, 3);
        g.add_edge(3, 1);
        g.add_edge(1, 4);
        g.add_edge(4, 2);
        let game = AcyclicGame::solve(PatternSpec::path_length_two(), &g, &[0, 1, 2]);
        assert!(game.duplicator_wins());
    }

    /// H2 with no route at all for the second leg: I wins.
    #[test]
    fn h2_blocked() {
        let mut g = Digraph::new(4);
        g.add_edge(0, 3);
        g.add_edge(3, 1);
        let game = AcyclicGame::solve(PatternSpec::path_length_two(), &g, &[0, 1, 2]);
        assert!(!game.duplicator_wins());
    }

    /// H2 where both legs are forced through the same interior node: I
    /// wins even though each leg individually has a route.
    #[test]
    fn h2_legs_share_interior() {
        // Leg 1: 0 -> 3 -> 1; leg 2: 1 -> 3 -> 2 would reuse node 3, but
        // that creates a cycle 3 -> 1 -> 3, so route leg 2 as 1 -> 4 -> 2
        // and delete 4's outgoing edge to block it instead.
        let mut g = Digraph::new(5);
        g.add_edge(0, 3);
        g.add_edge(3, 1);
        g.add_edge(3, 2); // only exit toward node 2 goes through 3
        g.add_edge(1, 4); // dead end
        let game = AcyclicGame::solve(PatternSpec::path_length_two(), &g, &[0, 1, 2]);
        assert!(!game.duplicator_wins());
        assert!(!game.single_player_reachable());
    }

    /// The max-level single-player variant and the two-player game agree
    /// on random DAGs (the crux of Theorem 6.2's proof), while the
    /// unconstrained cooperative game only upper-bounds them.
    #[test]
    fn max_level_and_two_player_agree_on_random_dags() {
        for seed in 0..40 {
            let g = random_dag(9, 0.25, 900 + seed);
            let distinguished = [0u32, 7, 1, 8];
            let game = AcyclicGame::solve(PatternSpec::two_disjoint_edges(), &g, &distinguished);
            assert_eq!(
                game.duplicator_wins(),
                game.single_player_max_level(),
                "max-level variant disagrees on seed {}",
                900 + seed
            );
            let coop = game.single_player_reachable();
            assert!(
                coop || !game.duplicator_wins(),
                "cooperative must dominate on seed {}",
                900 + seed
            );
        }
        // The overapproximation gap is witnessed deterministically by the
        // shared-midpoint instance of `h1_with_shared_midpoint`.
    }

    /// The worklist arena and the literal backward induction agree
    /// everywhere (differential test for the arena-based rewrite).
    #[test]
    fn worklist_agrees_with_recursion_on_random_dags() {
        for seed in 0..40 {
            let g = random_dag(8, 0.3, 1700 + seed);
            for (pattern, distinguished) in [
                (PatternSpec::two_disjoint_edges(), vec![0u32, 6, 1, 7]),
                (PatternSpec::path_length_two(), vec![0u32, 6, 7]),
            ] {
                let game = AcyclicGame::solve(pattern.clone(), &g, &distinguished);
                let recursive = AcyclicGame::solve_by_recursion(pattern, &g, &distinguished);
                assert_eq!(
                    game.winner(),
                    recursive,
                    "seed {}: worklist vs recursion",
                    1700 + seed
                );
            }
        }
    }

    /// An interrupted governed acyclic-game solve, resumed, agrees with
    /// the uninterrupted solve and the literal recursion.
    #[test]
    fn interrupted_acyclic_solve_resumes_identically() {
        for seed in 0..8 {
            let g = random_dag(8, 0.3, 2_600 + seed);
            let distinguished = [0u32, 6, 1, 7];
            let pattern = PatternSpec::two_disjoint_edges;
            let baseline = AcyclicGame::solve(pattern(), &g, &distinguished);
            for max_steps in [1u64, 9, 90, 2_000] {
                let gov = kv_structures::govern::chaos::step_tripper(max_steps);
                let game = match AcyclicGame::try_solve(pattern(), &g, &distinguished, &gov) {
                    Ok(game) => game,
                    Err(e) => AcyclicGame::resume(
                        pattern(),
                        &g,
                        &distinguished,
                        e.checkpoint,
                        &Governor::unlimited(),
                    )
                    .expect("unlimited resume completes"),
                };
                assert_eq!(
                    game.winner(),
                    baseline.winner(),
                    "seed {} budget {max_steps}",
                    2_600 + seed
                );
                assert_eq!(game.state_count(), baseline.state_count());
                assert_eq!(game.edge_count(), baseline.edge_count());
            }
        }
    }

    /// The lazy solver agrees with the eager worklist and the literal
    /// recursion on random DAGs, never exploring more states.
    #[test]
    fn lazy_agrees_with_eager_on_random_dags() {
        for seed in 0..40 {
            let g = random_dag(8, 0.3, 4_400 + seed);
            for (pattern, distinguished) in [
                (PatternSpec::two_disjoint_edges(), vec![0u32, 6, 1, 7]),
                (PatternSpec::path_length_two(), vec![0u32, 6, 7]),
            ] {
                let eager = AcyclicGame::solve(pattern.clone(), &g, &distinguished);
                let lazy = AcyclicGame::solve_lazy(pattern, &g, &distinguished);
                assert_eq!(
                    lazy.winner(),
                    eager.winner(),
                    "seed {}: lazy vs eager",
                    4_400 + seed
                );
                assert!(
                    lazy.state_count() <= eager.state_count(),
                    "seed {}: lazy {} > eager {}",
                    4_400 + seed,
                    lazy.state_count(),
                    eager.state_count()
                );
            }
        }
    }

    /// An interrupted lazy acyclic-game solve resumes to the identical
    /// verdict and explored subspace.
    #[test]
    fn interrupted_lazy_acyclic_solve_resumes_identically() {
        let g = random_dag(8, 0.3, 2_600);
        let distinguished = [0u32, 6, 1, 7];
        let pattern = PatternSpec::two_disjoint_edges;
        let baseline = AcyclicGame::solve_lazy(pattern(), &g, &distinguished);
        for max_steps in [1u64, 9, 90, 2_000] {
            let gov = kv_structures::govern::chaos::step_tripper(max_steps);
            let game = match AcyclicGame::try_solve_lazy(pattern(), &g, &distinguished, &gov) {
                Ok(game) => game,
                Err(e) => AcyclicGame::resume(
                    pattern(),
                    &g,
                    &distinguished,
                    e.checkpoint,
                    &Governor::unlimited(),
                )
                .expect("unlimited resume completes"),
            };
            assert_eq!(game.winner(), baseline.winner(), "budget {max_steps}");
            assert_eq!(game.state_count(), baseline.state_count());
            assert_eq!(game.edge_count(), baseline.edge_count());
        }
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn cyclic_input_rejected() {
        let g = kv_structures::generators::directed_cycle_graph(4);
        AcyclicGame::solve(PatternSpec::two_disjoint_edges(), &g, &[0, 1, 2, 3]);
    }

    #[test]
    fn pattern_validation() {
        assert!(PatternSpec::two_disjoint_edges().validate().is_ok());
        assert!(PatternSpec {
            node_count: 2,
            edges: vec![(0, 0)]
        }
        .validate()
        .is_err());
        assert!(PatternSpec {
            node_count: 1,
            edges: vec![(0, 1)]
        }
        .validate()
        .is_err());
        assert!(PatternSpec {
            node_count: 2,
            edges: vec![(0, 1), (0, 1)]
        }
        .validate()
        .is_err());
    }
}
