//! The shared game arena: level-synchronous position enumeration with
//! parallel frontier fan-out, and worklist-driven deletion propagation.
//!
//! Every solver in this crate decides an AND-OR deletion game over a
//! space of positions: the Spoiler picks a *challenge*, the Duplicator
//! must pick a surviving *reply*. A position dies when some challenge has
//! no alive reply (forth failure); in games where the Spoiler may also
//! retreat (remove a pebble), every extension of a dead position dies
//! with it (closure under subpositions, contrapositive).
//!
//! [`Arena::build_and_solve`] does both steps:
//!
//! 1. **Generation** proceeds level by level from the root. Each frontier
//!    is expanded *in parallel* ([`kv_structures::par::par_map`]) — the
//!    per-position [`GameSpec::expand`] calls are pure and independent —
//!    and the results are interned sequentially in frontier order, so node
//!    ids are identical to a sequential build.
//! 2. **Deletion** runs a worklist seeded with forth failures. Every
//!    option edge carries a reverse (parent) link; when a position dies,
//!    its extensions are killed directly (if the game closes under
//!    subpositions) and each predecessor's alive-reply counter for the
//!    linking challenge is decremented, dying in turn on reaching zero.
//!    Each arena edge is thus examined O(1) times — total work O(edges) —
//!    instead of rescanning every position each round as a naive value
//!    iteration does ([`crate::win_iteration`], kept as the differential
//!    partner).

use kv_structures::govern::{Governor, Interrupted};
use kv_structures::par::try_par_map;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// Where a reply leads, as reported by [`GameSpec::expand`].
#[derive(Debug, Clone)]
pub enum Child<K> {
    /// The reply leads back to the same position (re-pebbling an existing
    /// pair). A stutter counts as an option that can never be refuted: it
    /// gets no reverse link, so it is never decremented — the position it
    /// protects only dies by closure or another challenge.
    Stutter,
    /// The reply leads to the position with this key (interned on first
    /// sight).
    Key(K),
}

/// Why a position was deleted from the surviving family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Death<C> {
    /// Forth failure: this challenge defeated every reply.
    Forth(C),
    /// Closure under subpositions: the subposition `parent` died, and
    /// removing the pebble placed by `challenge` exposes it.
    Retreat {
        /// Id of the dead subposition.
        parent: usize,
        /// The challenge whose pebble the Spoiler picks up to retreat.
        challenge: C,
    },
}

/// A game presented to the arena builder.
///
/// `expand` must be **pure**: it is called from worker threads during the
/// parallel frontier fan-out, and its output must depend only on the key
/// (and level) so that parallel and sequential builds agree exactly.
pub trait GameSpec: Sync {
    /// Canonical position key (interning identity).
    type Key: Clone + Eq + Hash + Send + Sync;
    /// A Spoiler challenge.
    type Challenge: Clone + PartialEq + Send;
    /// A Duplicator reply.
    type Reply: Clone + PartialEq + Send;

    /// Number of expansion levels from the root (positions generated at
    /// the final level are not expanded — they have no challenge entries
    /// and stay alive unless killed by closure). Use `usize::MAX` for
    /// games whose position space is exhausted by reachability, e.g. on
    /// acyclic state graphs.
    fn depth(&self) -> usize;

    /// Whether extensions of a dead position die with it (the Spoiler may
    /// retreat by removing pebbles). `false` turns the deletion into pure
    /// backward induction, correct on acyclic position graphs.
    fn closure_under_subpositions(&self) -> bool;

    /// All challenges at `key` with, for each, every valid reply and the
    /// position it leads to. A challenge with an empty reply list is an
    /// immediate forth failure.
    fn expand(&self, key: &Self::Key, level: usize) -> Expansion<Self>;

    /// All **direct subpositions** of `key` (one pebble removed), each
    /// with the challenge/reply of the removed pebble. Used only by the
    /// lazy solver ([`Arena::lazy_solve`]) and only when
    /// [`closure_under_subpositions`](Self::closure_under_subpositions)
    /// is `true`, where it must be *honest* (return every direct
    /// subposition): a materialized position is admitted to the witness
    /// family only together with its subpositions, and dies when one of
    /// them dies. Games without closure may keep the empty default.
    fn subpositions(&self, _key: &Self::Key) -> Vec<(Self::Key, Self::Challenge, Self::Reply)> {
        Vec::new()
    }
}

/// The result of expanding one position: every challenge paired with its
/// reply options.
pub type Expansion<S> = Vec<(
    <S as GameSpec>::Challenge,
    Vec<(<S as GameSpec>::Reply, Child<<S as GameSpec>::Key>)>,
)>;

/// [`Expansion`] spelled over bare key/challenge/reply types, for arena
/// internals that are generic over `K, C, R` rather than a [`GameSpec`].
type RawExpansion<K, C, R> = Vec<(C, Vec<(R, Child<K>)>)>;

/// Per-challenge bookkeeping: surviving-reply counter plus the option
/// edges `(reply, child_id)`.
#[derive(Debug)]
struct ExtEntry<R> {
    alive_options: u32,
    options: Vec<(R, usize)>,
}

#[derive(Debug)]
pub(crate) struct Node<K, C, R> {
    pub(crate) key: K,
    /// Expanded nodes participate in forth seeding; final-level nodes do
    /// not (they carry no challenge entries).
    pub(crate) expanded: bool,
    pub(crate) alive: bool,
    pub(crate) death: Option<Death<C>>,
    extensions: Vec<(C, ExtEntry<R>)>,
    /// Reverse links: `(parent_id, challenge, reply)` for every non-stutter
    /// option edge `parent --challenge/reply--> self`.
    parents: Vec<(usize, C, R)>,
}

impl<K, C, R> Node<K, C, R> {
    /// A freshly interned, unexpanded, alive node with no edges.
    pub(crate) fn fresh(key: K) -> Self {
        Self {
            key,
            expanded: false,
            alive: true,
            death: None,
            extensions: Vec::new(),
            parents: Vec::new(),
        }
    }
}

/// A built and solved arena: positions, option edges, aliveness verdicts.
#[derive(Debug)]
pub struct Arena<K, C, R> {
    pub(crate) nodes: Vec<Node<K, C, R>>,
    pub(crate) by_key: HashMap<K, usize>,
    pub(crate) edge_count: usize,
}

/// Where an interrupted governed solve stopped.
#[derive(Debug)]
pub(crate) enum Phase<K, C, R> {
    /// Generating the position space: `pending` frontier positions at
    /// `level` are not yet expanded; `next` holds the ids discovered for
    /// the following level so far.
    Generation {
        pending: Vec<usize>,
        next: Vec<usize>,
        level: usize,
    },
    /// Seeding the deletion worklist: positions `< seed_pos` are scanned.
    Seed { seed_pos: usize, queue: Vec<usize> },
    /// Draining the deletion worklist.
    Deletion { queue: Vec<usize> },
    /// Demand-driven lazy solve ([`Arena::lazy_solve`]); the state lives
    /// in [`crate::lazy`].
    Lazy(crate::lazy::LazyState<K, C, R>),
}

/// Resumable state of an interrupted governed arena build: the arena as
/// committed so far plus the exact phase position. Expansion is pure and
/// interning/deletion order is checkpointed verbatim, so resuming yields
/// an arena identical — id by id, verdict by verdict — to an
/// uninterrupted build.
#[derive(Debug)]
pub struct ArenaCheckpoint<K, C, R> {
    pub(crate) arena: Arena<K, C, R>,
    pub(crate) phase: Phase<K, C, R>,
}

impl<K, C, R> ArenaCheckpoint<K, C, R> {
    /// Positions interned so far (partial progress).
    pub fn positions(&self) -> usize {
        self.arena.nodes.len()
    }

    /// Option edges recorded so far.
    pub fn edges(&self) -> usize {
        self.arena.edge_count
    }

    /// Whether the interrupt fell in the generation phase (as opposed to
    /// the deletion solve).
    pub fn is_generating(&self) -> bool {
        matches!(self.phase, Phase::Generation { .. })
    }
}

/// A governed arena build was interrupted.
#[derive(Debug)]
pub struct ArenaInterrupted<K, C, R> {
    /// Why the build stopped.
    pub reason: Interrupted,
    /// Committed state; pass to [`Arena::resume_build`].
    pub checkpoint: ArenaCheckpoint<K, C, R>,
}

impl<K, C, R> fmt::Display for ArenaInterrupted<K, C, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} position(s), {} edge(s) ({})",
            self.reason,
            self.checkpoint.positions(),
            self.checkpoint.edges(),
            if self.checkpoint.is_generating() {
                "generating"
            } else {
                "solving"
            }
        )
    }
}

impl<K: fmt::Debug, C: fmt::Debug, R: fmt::Debug> std::error::Error for ArenaInterrupted<K, C, R> {}

impl<K, C, R> Arena<K, C, R>
where
    K: Clone + Eq + Hash + Send + Sync,
    C: Clone + PartialEq + Send,
    R: Clone + PartialEq + Send,
{
    /// An arena with no positions at all (used by games whose root is
    /// already invalid).
    pub fn empty() -> Self {
        Self {
            nodes: Vec::new(),
            by_key: HashMap::new(),
            edge_count: 0,
        }
    }

    /// Enumerates the position space reachable from `root` and runs the
    /// deletion worklist. Position 0 is the root.
    pub fn build_and_solve<S>(spec: &S, root: K) -> Self
    where
        S: GameSpec<Key = K, Challenge = C, Reply = R>,
    {
        match Self::try_build_and_solve(spec, root, &Governor::unlimited()) {
            Ok(arena) => arena,
            Err(e) => unreachable!("unlimited governor interrupted: {}", e.reason),
        }
    }

    /// Governed [`build_and_solve`](Self::build_and_solve): charges one
    /// position per interned node, one step per option edge and worklist
    /// propagation, and checks the governor cooperatively inside both the
    /// parallel frontier fan-out and the deletion worklist. Interrupts at
    /// a committed boundary (a fully interned frontier position, a fully
    /// propagated death) with a resumable [`ArenaCheckpoint`].
    pub fn try_build_and_solve<S>(
        spec: &S,
        root: K,
        gov: &Governor,
    ) -> Result<Self, ArenaInterrupted<K, C, R>>
    where
        S: GameSpec<Key = K, Challenge = C, Reply = R>,
    {
        let arena = Self {
            nodes: vec![Node::fresh(root.clone())],
            by_key: HashMap::from([(root, 0usize)]),
            edge_count: 0,
        };
        let checkpoint = ArenaCheckpoint {
            arena,
            phase: Phase::Generation {
                pending: vec![0],
                next: Vec::new(),
                level: 0,
            },
        };
        if let Err(reason) = gov.check().and_then(|()| gov.charge_positions(1)) {
            return Err(ArenaInterrupted { reason, checkpoint });
        }
        Self::run_from(spec, gov, checkpoint)
    }

    /// Demand-driven solve: explores only as much of the position space as
    /// needed to decide the **root**. Positions are expanded on demand
    /// (one witness reply is committed per challenge; siblings stay
    /// unexplored unless the committed child dies), subpositions are
    /// materialized only for closure games, and the run stops as soon as
    /// the root's verdict is known — immediately on root death, or when no
    /// demanded position is left unexpanded.
    ///
    /// The verdict for position 0 agrees exactly with
    /// [`build_and_solve`](Self::build_and_solve); the arena itself is a
    /// *partial* subarena (unexplored positions are absent, and positions
    /// left alive may include optimistic, never-expanded ones), so only
    /// the root's aliveness — not [`alive_count`](Self::alive_count) or
    /// node ids — is comparable to an eager build.
    pub fn lazy_solve<S>(spec: &S, root: K) -> Self
    where
        S: GameSpec<Key = K, Challenge = C, Reply = R>,
    {
        match Self::try_lazy_solve(spec, root, &Governor::unlimited()) {
            Ok(arena) => arena,
            Err(e) => unreachable!("unlimited governor interrupted: {}", e.reason),
        }
    }

    /// Governed [`lazy_solve`](Self::lazy_solve): charges one position per
    /// demanded node and steps per option scanned or death propagated,
    /// interrupting at committed boundaries (a fully recorded expansion, a
    /// fully propagated death) with a resumable [`ArenaCheckpoint`].
    pub fn try_lazy_solve<S>(
        spec: &S,
        root: K,
        gov: &Governor,
    ) -> Result<Self, ArenaInterrupted<K, C, R>>
    where
        S: GameSpec<Key = K, Challenge = C, Reply = R>,
    {
        let arena = Self {
            nodes: vec![Node::fresh(root.clone())],
            by_key: HashMap::from([(root, 0usize)]),
            edge_count: 0,
        };
        let checkpoint = ArenaCheckpoint {
            arena,
            phase: Phase::Lazy(crate::lazy::LazyState::with_root()),
        };
        if let Err(reason) = gov.check().and_then(|()| gov.charge_positions(1)) {
            return Err(ArenaInterrupted { reason, checkpoint });
        }
        Self::run_from(spec, gov, checkpoint)
    }

    /// Resumes an interrupted governed build. `spec` must be that of the
    /// original call (expansion is pure, so re-expanding the pending
    /// frontier reproduces the original options exactly); budget counters
    /// live in the governor, so pass a fresh or relaxed one.
    pub fn resume_build<S>(
        spec: &S,
        checkpoint: ArenaCheckpoint<K, C, R>,
        gov: &Governor,
    ) -> Result<Self, ArenaInterrupted<K, C, R>>
    where
        S: GameSpec<Key = K, Challenge = C, Reply = R>,
    {
        Self::run_from(spec, gov, checkpoint)
    }

    fn run_from<S>(
        spec: &S,
        gov: &Governor,
        cp: ArenaCheckpoint<K, C, R>,
    ) -> Result<Self, ArenaInterrupted<K, C, R>>
    where
        S: GameSpec<Key = K, Challenge = C, Reply = R>,
    {
        let ArenaCheckpoint {
            mut arena,
            mut phase,
        } = cp;
        loop {
            phase = match phase {
                Phase::Generation {
                    mut pending,
                    mut next,
                    mut level,
                } => {
                    loop {
                        if pending.is_empty() {
                            if next.is_empty() {
                                break;
                            }
                            pending = std::mem::take(&mut next);
                            level += 1;
                        }
                        if level >= spec.depth() {
                            break;
                        }
                        // Parallel fan-out: expansion is pure, so farm it
                        // out per frontier position; interning below stays
                        // sequential and in frontier order, keeping ids
                        // deterministic.
                        let keys: Vec<K> = pending
                            .iter()
                            .map(|&id| arena.nodes[id].key.clone())
                            .collect();
                        let expansions =
                            match try_par_map(&keys, gov, |_, key| Ok(spec.expand(key, level))) {
                                Ok(e) => e,
                                Err(reason) => {
                                    return Err(ArenaInterrupted {
                                        reason,
                                        checkpoint: ArenaCheckpoint {
                                            arena,
                                            phase: Phase::Generation {
                                                pending,
                                                next,
                                                level,
                                            },
                                        },
                                    })
                                }
                            };
                        // Intern sequentially; one frontier position is
                        // the committed unit — its charges land after its
                        // expansion is fully recorded.
                        let mut done = 0usize;
                        let mut trip: Option<Interrupted> = None;
                        for (idx, expansion) in expansions.into_iter().enumerate() {
                            let fid = pending[idx];
                            let (new_nodes, new_edges) =
                                arena.intern_expansion(fid, expansion, &mut next);
                            done = idx + 1;
                            if let Err(reason) = gov
                                .charge_positions(new_nodes)
                                .and_then(|()| gov.step(new_edges))
                            {
                                trip = Some(reason);
                                break;
                            }
                        }
                        pending.drain(..done);
                        if let Some(reason) = trip {
                            return Err(ArenaInterrupted {
                                reason,
                                checkpoint: ArenaCheckpoint {
                                    arena,
                                    phase: Phase::Generation {
                                        pending,
                                        next,
                                        level,
                                    },
                                },
                            });
                        }
                    }
                    Phase::Seed {
                        seed_pos: 0,
                        queue: Vec::new(),
                    }
                }
                Phase::Seed {
                    mut seed_pos,
                    mut queue,
                } => {
                    while seed_pos < arena.nodes.len() {
                        let id = seed_pos;
                        if arena.nodes[id].expanded {
                            let failed = arena.nodes[id]
                                .extensions
                                .iter()
                                .find(|(_, e)| e.alive_options == 0)
                                .map(|(c, _)| c.clone());
                            if let Some(ch) = failed {
                                arena.kill(id, Death::Forth(ch), &mut queue);
                            }
                        }
                        seed_pos += 1;
                        if let Err(reason) = gov.step(1) {
                            return Err(ArenaInterrupted {
                                reason,
                                checkpoint: ArenaCheckpoint {
                                    arena,
                                    phase: Phase::Seed { seed_pos, queue },
                                },
                            });
                        }
                    }
                    Phase::Deletion { queue }
                }
                Phase::Deletion { mut queue } => {
                    let closure = spec.closure_under_subpositions();
                    while let Some(dead) = queue.pop() {
                        // One death's propagation is the committed unit:
                        // the queue in the checkpoint already excludes it
                        // and includes everything it killed.
                        let work = arena.propagate_death(dead, closure, &mut queue);
                        if let Err(reason) = gov.step(work) {
                            return Err(ArenaInterrupted {
                                reason,
                                checkpoint: ArenaCheckpoint {
                                    arena,
                                    phase: Phase::Deletion { queue },
                                },
                            });
                        }
                    }
                    return Ok(arena);
                }
                Phase::Lazy(state) => return crate::lazy::run_lazy(spec, gov, arena, state),
            };
        }
    }

    /// Interns one frontier position's expansion; returns the number of
    /// newly discovered positions and recorded option edges.
    fn intern_expansion(
        &mut self,
        fid: usize,
        expansion: RawExpansion<K, C, R>,
        next: &mut Vec<usize>,
    ) -> (u64, u64) {
        let mut new_nodes = 0u64;
        let mut new_edges = 0u64;
        self.nodes[fid].expanded = true;
        for (ch, opts) in expansion {
            let mut options: Vec<(R, usize)> = Vec::with_capacity(opts.len());
            for (reply, child) in opts {
                let child_id = match child {
                    Child::Stutter => fid,
                    Child::Key(key) => {
                        let id = match self.by_key.entry(key) {
                            Entry::Occupied(e) => *e.get(),
                            Entry::Vacant(e) => {
                                let id = self.nodes.len();
                                self.nodes.push(Node {
                                    key: e.key().clone(),
                                    expanded: false,
                                    alive: true,
                                    death: None,
                                    extensions: Vec::new(),
                                    parents: Vec::new(),
                                });
                                next.push(id);
                                e.insert(id);
                                new_nodes += 1;
                                id
                            }
                        };
                        self.nodes[id]
                            .parents
                            .push((fid, ch.clone(), reply.clone()));
                        id
                    }
                };
                options.push((reply, child_id));
            }
            self.edge_count += options.len();
            new_edges += options.len() as u64;
            self.nodes[fid].extensions.push((
                ch,
                ExtEntry {
                    alive_options: options.len() as u32,
                    options,
                },
            ));
        }
        (new_nodes, new_edges)
    }

    /// Propagates one death along closure and reverse links; returns the
    /// number of edges examined (the step charge for this unit).
    fn propagate_death(&mut self, dead: usize, closure: bool, queue: &mut Vec<usize>) -> u64 {
        let mut work = 1u64;
        if closure {
            // Every extension of a dead position dies: the Spoiler
            // retreats to `dead` by lifting the linking pebble.
            let children: Vec<(C, usize)> = self.nodes[dead]
                .extensions
                .iter()
                .flat_map(|(c, e)| e.options.iter().map(|&(_, child)| (c.clone(), child)))
                .filter(|&(_, child)| child != dead)
                .collect();
            work += children.len() as u64;
            for (ch, child) in children {
                if self.nodes[child].alive {
                    self.kill(
                        child,
                        Death::Retreat {
                            parent: dead,
                            challenge: ch,
                        },
                        queue,
                    );
                }
            }
        }
        // Predecessors lose one surviving reply for the linking
        // challenge; on zero they fail forth.
        let parents = std::mem::take(&mut self.nodes[dead].parents);
        work += parents.len() as u64;
        for &(pid, ref ch, _) in &parents {
            if !self.nodes[pid].alive {
                continue;
            }
            let exhausted = {
                // Infallible: parent links are created only when the
                // matching extension entry is interned.
                #[allow(clippy::expect_used)]
                let entry = self.nodes[pid]
                    .extensions
                    .iter_mut()
                    .find(|(c, _)| c == ch)
                    .map(|(_, e)| e)
                    .expect("reverse link matches an extension entry");
                entry.alive_options -= 1;
                entry.alive_options == 0
            };
            if exhausted {
                self.kill(pid, Death::Forth(ch.clone()), queue);
            }
        }
        self.nodes[dead].parents = parents;
        work
    }

    pub(crate) fn kill(&mut self, id: usize, death: Death<C>, queue: &mut Vec<usize>) {
        let node = &mut self.nodes[id];
        if node.alive {
            node.alive = false;
            node.death = Some(death);
            queue.push(id);
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no positions.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total number of option edges (the worklist's propagation budget).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of surviving positions.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Did position `id` survive?
    pub fn is_alive(&self, id: usize) -> bool {
        self.nodes[id].alive
    }

    /// Why position `id` died, if it did.
    pub fn death(&self, id: usize) -> Option<&Death<C>> {
        self.nodes[id].death.as_ref()
    }

    /// The key of position `id`.
    pub fn key(&self, id: usize) -> &K {
        &self.nodes[id].key
    }

    /// Looks a position up by key.
    pub fn id_of(&self, key: &K) -> Option<usize> {
        self.by_key.get(key).copied()
    }

    /// First surviving reply to `challenge` at position `id`.
    pub fn reply(&self, id: usize, challenge: &C) -> Option<(R, usize)> {
        self.entry(id, challenge)?
            .options
            .iter()
            .find(|&&(_, child)| self.nodes[child].alive)
            .cloned()
    }

    /// The position reached from `id` by `challenge` answered with
    /// `reply`, dead or alive.
    pub fn child(&self, id: usize, challenge: &C, reply: &R) -> Option<usize> {
        self.entry(id, challenge)?
            .options
            .iter()
            .find(|(r, _)| r == reply)
            .map(|&(_, child)| child)
    }

    /// The subposition reached from `id` by removing the pebble placed by
    /// `challenge` (any reply).
    pub fn parent_by_challenge(&self, id: usize, challenge: &C) -> Option<usize> {
        self.nodes[id]
            .parents
            .iter()
            .find(|(_, c, _)| c == challenge)
            .map(|&(pid, _, _)| pid)
    }

    /// The subposition reached from `id` by removing the exact pebble
    /// `(challenge, reply)`.
    pub fn parent_by_edge(&self, id: usize, challenge: &C, reply: &R) -> Option<usize> {
        self.nodes[id]
            .parents
            .iter()
            .find(|(_, c, r)| c == challenge && r == reply)
            .map(|&(pid, _, _)| pid)
    }

    fn entry(&self, id: usize, challenge: &C) -> Option<&ExtEntry<R>> {
        self.nodes[id]
            .extensions
            .iter()
            .find(|(c, _)| c == challenge)
            .map(|(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy game on small integers: position `n` (up to `max`) is
    /// challenged once; replies go to `n + 1` (if `n + 1 <= max`) and,
    /// when `n` is even, also stutter. Positions at `max` are leaves.
    struct Count {
        max: usize,
        closure: bool,
    }

    impl GameSpec for Count {
        type Key = usize;
        type Challenge = u8;
        type Reply = u8;

        fn depth(&self) -> usize {
            self.max
        }

        fn closure_under_subpositions(&self) -> bool {
            self.closure
        }

        fn expand(&self, key: &usize, _level: usize) -> Vec<(u8, Vec<(u8, Child<usize>)>)> {
            let mut replies = Vec::new();
            if *key < self.max {
                replies.push((0u8, Child::Key(key + 1)));
            }
            if key.is_multiple_of(2) {
                replies.push((1u8, Child::Stutter));
            }
            vec![(0u8, replies)]
        }
    }

    #[test]
    fn chain_survives_when_leaf_survives() {
        let arena = Arena::build_and_solve(
            &Count {
                max: 3,
                closure: true,
            },
            0usize,
        );
        assert_eq!(arena.len(), 4);
        // Leaf 3 is unexpanded, hence alive; everything upstream follows.
        for id in 0..4 {
            assert!(arena.is_alive(id), "position {id}");
        }
        // Edges: 0 -> {1, stutter}, 1 -> {2}, 2 -> {3, stutter}.
        assert_eq!(arena.edge_count(), 5);
    }

    /// A game where a mid-chain position has zero replies: the forth seed
    /// kills it, the worklist walks the death back to the root, and (with
    /// closure) forward over its extensions.
    struct Gap;

    impl GameSpec for Gap {
        type Key = usize;
        type Challenge = u8;
        type Reply = u8;

        fn depth(&self) -> usize {
            3
        }

        fn closure_under_subpositions(&self) -> bool {
            true
        }

        fn expand(&self, key: &usize, _level: usize) -> Vec<(u8, Vec<(u8, Child<usize>)>)> {
            match key {
                0 => vec![(0u8, vec![(0u8, Child::Key(1)), (1u8, Child::Key(2))])],
                // Position 1 extends to 3; position 2 is stuck.
                1 => vec![(0u8, vec![(0u8, Child::Key(3))])],
                2 => vec![(0u8, vec![])],
                _ => vec![],
            }
        }
    }

    #[test]
    fn forth_failure_propagates_both_ways() {
        let arena = Arena::build_and_solve(&Gap, 0usize);
        assert_eq!(arena.len(), 4);
        // 2 dies by forth; 0 survives via reply to 1; 1 and 3 survive.
        assert!(arena.is_alive(0));
        assert!(arena.is_alive(1));
        assert!(!arena.is_alive(2));
        assert!(arena.is_alive(3));
        assert_eq!(arena.death(2), Some(&Death::Forth(0u8)));
        // The surviving reply from the root skips the dead child.
        assert_eq!(arena.reply(0, &0u8), Some((0u8, 1)));
        assert_eq!(arena.alive_count(), 3);
    }

    /// Without the stuck branch the root's only reply dies, killing the
    /// root by forth — and with closure enabled, the root's death kills
    /// its extensions in turn.
    struct DeadEnd;

    impl GameSpec for DeadEnd {
        type Key = usize;
        type Challenge = u8;
        type Reply = u8;

        fn depth(&self) -> usize {
            3
        }

        fn closure_under_subpositions(&self) -> bool {
            true
        }

        fn expand(&self, key: &usize, _level: usize) -> Vec<(u8, Vec<(u8, Child<usize>)>)> {
            match key {
                0 => vec![(0u8, vec![(0u8, Child::Key(1))])],
                1 => vec![(0u8, vec![]), (1u8, vec![(0u8, Child::Key(2))])],
                _ => vec![],
            }
        }
    }

    #[test]
    fn closure_kills_extensions_of_the_dead() {
        let arena = Arena::build_and_solve(&DeadEnd, 0usize);
        assert!(!arena.is_alive(1), "stuck by challenge 0");
        assert!(!arena.is_alive(0), "its predecessor fails forth");
        assert!(
            !arena.is_alive(2),
            "closure kills the dead node's extension"
        );
        assert!(matches!(
            arena.death(2),
            Some(Death::Retreat { parent: 1, .. })
        ));
        assert_eq!(arena.alive_count(), 0);
    }

    #[test]
    fn no_closure_spares_extensions() {
        struct DeadEndOpen;
        impl GameSpec for DeadEndOpen {
            type Key = usize;
            type Challenge = u8;
            type Reply = u8;
            fn depth(&self) -> usize {
                3
            }
            fn closure_under_subpositions(&self) -> bool {
                false
            }
            fn expand(&self, key: &usize, _level: usize) -> Vec<(u8, Vec<(u8, Child<usize>)>)> {
                match key {
                    0 => vec![(0u8, vec![(0u8, Child::Key(1))])],
                    1 => vec![(0u8, vec![]), (1u8, vec![(0u8, Child::Key(2))])],
                    _ => vec![],
                }
            }
        }
        let arena = Arena::build_and_solve(&DeadEndOpen, 0usize);
        assert!(!arena.is_alive(1));
        assert!(!arena.is_alive(0));
        assert!(
            arena.is_alive(2),
            "backward induction leaves successors alone"
        );
    }

    fn assert_same_arena(a: &Arena<usize, u8, u8>, b: &Arena<usize, u8, u8>) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edge_count(), b.edge_count());
        for id in 0..a.len() {
            assert_eq!(a.key(id), b.key(id), "key of {id}");
            assert_eq!(a.is_alive(id), b.is_alive(id), "aliveness of {id}");
            assert_eq!(a.death(id), b.death(id), "death of {id}");
        }
    }

    #[test]
    fn governed_build_matches_plain() {
        for spec in [
            Count {
                max: 3,
                closure: true,
            },
            Count {
                max: 6,
                closure: false,
            },
        ] {
            let baseline = Arena::build_and_solve(&spec, 0usize);
            let governed = Arena::try_build_and_solve(&spec, 0usize, &Governor::unlimited())
                .expect("unlimited governor never interrupts");
            assert_same_arena(&baseline, &governed);
        }
    }

    #[test]
    fn interrupted_build_resumes_to_identical_arena() {
        let spec = Gap;
        let baseline = Arena::build_and_solve(&spec, 0usize);
        for max_steps in [1u64, 2, 3, 5, 8, 13, 50] {
            let gov = kv_structures::govern::chaos::step_tripper(max_steps);
            match Arena::try_build_and_solve(&spec, 0usize, &gov) {
                Ok(arena) => assert_same_arena(&baseline, &arena),
                Err(e) => {
                    assert!(matches!(e.reason, Interrupted::Limit(_)));
                    assert!(e.checkpoint.positions() <= baseline.len());
                    let resumed = Arena::resume_build(&spec, e.checkpoint, &Governor::unlimited())
                        .expect("unlimited resume completes");
                    assert_same_arena(&baseline, &resumed);
                }
            }
        }
    }

    #[test]
    fn position_budget_interrupts_generation() {
        let spec = Count {
            max: 10,
            closure: true,
        };
        let gov = Governor::with_budget(kv_structures::govern::Budget::positions(3));
        let err = Arena::try_build_and_solve(&spec, 0usize, &gov).unwrap_err();
        assert!(matches!(err.reason, Interrupted::Limit(_)));
        assert!(err.checkpoint.is_generating());
        let resumed = Arena::resume_build(&spec, err.checkpoint, &Governor::unlimited())
            .expect("relaxed resume completes");
        assert_same_arena(&Arena::build_and_solve(&spec, 0usize), &resumed);
    }

    #[test]
    fn cancelled_build_interrupts_immediately() {
        let gov = Governor::unlimited();
        gov.cancel_token().cancel();
        let err = Arena::try_build_and_solve(&Gap, 0usize, &gov).unwrap_err();
        assert_eq!(err.reason, Interrupted::Cancelled);
        assert_eq!(err.checkpoint.positions(), 1, "only the root is interned");
    }

    #[test]
    fn navigation_helpers() {
        let arena = Arena::build_and_solve(&Gap, 0usize);
        assert_eq!(arena.id_of(&1), Some(1));
        assert_eq!(arena.child(0, &0u8, &1u8), Some(2));
        assert_eq!(arena.parent_by_challenge(1, &0u8), Some(0));
        assert_eq!(arena.parent_by_edge(2, &0u8, &1u8), Some(0));
        assert_eq!(arena.parent_by_edge(2, &0u8, &0u8), None);
        assert_eq!(*arena.key(3), 3usize);
    }
}
